//! Property tests: elaborated arithmetic must match `u64` semantics.

use proptest::prelude::*;

use mate_rtl::{ModuleBuilder, RegisterFile, Signal};
use mate_sim::Simulator;

fn mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ripple-carry addition with carry-in equals wrapping integer addition.
    #[test]
    fn adder_matches_u64(
        width in 1usize..16,
        a in any::<u64>(),
        b in any::<u64>(),
        cin in any::<bool>(),
    ) {
        let a = a & mask(width);
        let b = b & mask(width);
        let mut m = ModuleBuilder::new("adder");
        let sa = m.input("a", width);
        let sb = m.input("b", width);
        let sc = m.input("cin", 1);
        let (sum, carries) = m.adder(&sa, &sb, &sc);
        m.output(&sum);
        m.output(&carries);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.write_bus(sa.nets(), a);
        sim.write_bus(sb.nets(), b);
        sim.write_bus(sc.nets(), cin as u64);
        let total = a + b + cin as u64;
        prop_assert_eq!(sim.read_bus(sum.nets()), total & mask(width));
        let cout = sim.read_bus(carries.nets()) >> (width - 1) & 1;
        prop_assert_eq!(cout == 1, total > mask(width));
    }

    /// Subtraction, equality, unsigned less-than.
    #[test]
    fn compare_ops_match_u64(
        width in 1usize..12,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let a = a & mask(width);
        let b = b & mask(width);
        let mut m = ModuleBuilder::new("cmp");
        let sa = m.input("a", width);
        let sb = m.input("b", width);
        let diff = m.sub(&sa, &sb);
        let eq = m.eq(&sa, &sb);
        let lt = m.ltu(&sa, &sb);
        for s in [&diff, &eq, &lt] {
            m.output(s);
        }
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.write_bus(sa.nets(), a);
        sim.write_bus(sb.nets(), b);
        prop_assert_eq!(sim.read_bus(diff.nets()), a.wrapping_sub(b) & mask(width));
        prop_assert_eq!(sim.read_bus(eq.nets()) == 1, a == b);
        prop_assert_eq!(sim.read_bus(lt.nets()) == 1, a < b);
    }

    /// A mux tree behaves like array indexing.
    #[test]
    fn mux_tree_indexes(
        sel_width in 1usize..4,
        values in proptest::collection::vec(any::<u64>(), 16),
        sel in any::<u64>(),
    ) {
        let count = 1usize << sel_width;
        let sel = sel % count as u64;
        let width = 7;
        let mut m = ModuleBuilder::new("muxt");
        let ssel = m.input("sel", sel_width);
        let items: Vec<Signal> = values[..count]
            .iter()
            .map(|&v| m.constant(v & mask(width), width))
            .collect();
        let y = m.mux_tree(&ssel, &items);
        m.output(&y);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.write_bus(ssel.nets(), sel);
        prop_assert_eq!(sim.read_bus(y.nets()), values[sel as usize] & mask(width));
    }

    /// Register file behaves like an array under a random write/read script.
    #[test]
    fn register_file_matches_array(
        ops in proptest::collection::vec((any::<bool>(), 0u64..8, any::<u64>()), 1..40),
    ) {
        let mut m = ModuleBuilder::new("rf");
        let we = m.input("we", 1);
        let waddr = m.input("waddr", 3);
        let wdata = m.input("wdata", 8);
        let raddr = m.input("raddr", 3);
        let rf = RegisterFile::new(&mut m, "r", 8, 8);
        let rdata = rf.read(&mut m, &raddr);
        m.output(&rdata);
        rf.finish_write(&mut m, &we, &waddr, &wdata);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        let mut model = [0u64; 8];
        for (do_write, addr, data) in ops {
            let data = data & 0xFF;
            sim.write_bus(we.nets(), do_write as u64);
            sim.write_bus(waddr.nets(), addr);
            sim.write_bus(wdata.nets(), data);
            // Read port must reflect the *current* state before the edge.
            sim.write_bus(raddr.nets(), addr);
            prop_assert_eq!(sim.read_bus(rdata.nets()), model[addr as usize]);
            sim.tick();
            if do_write {
                model[addr as usize] = data;
            }
            // And the new state after the edge.
            prop_assert_eq!(sim.read_bus(rdata.nets()), model[addr as usize]);
        }
    }

    /// Shift-by-constant matches integer shifts.
    #[test]
    fn shifts_match_u64(width in 2usize..10, a in any::<u64>(), amount in 0usize..4) {
        let a = a & mask(width);
        let mut m = ModuleBuilder::new("sh");
        let sa = m.input("a", width);
        let zero = m.zero();
        let l = m.shl_const(&sa, amount);
        let r = m.shr_const(&sa, amount, &zero);
        m.output(&l);
        m.output(&r);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.write_bus(sa.nets(), a);
        prop_assert_eq!(sim.read_bus(l.nets()), (a << amount) & mask(width));
        prop_assert_eq!(sim.read_bus(r.nets()), a >> amount);
    }
}
