//! Multi-bit signals (buses) over netlist wires.

use std::fmt;

use mate_netlist::NetId;

/// A bundle of nets forming a little-endian bus: bit 0 is the LSB.
///
/// Signals are cheap handles; all logic construction happens through
/// [`crate::ModuleBuilder`] methods that consume signal references.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signal {
    bits: Vec<NetId>,
}

impl Signal {
    /// Wraps existing nets as a signal (`nets[0]` is the LSB).
    ///
    /// # Panics
    ///
    /// Panics on an empty net list.
    pub fn from_nets(nets: Vec<NetId>) -> Self {
        assert!(!nets.is_empty(), "signals must have at least one bit");
        Self { bits: nets }
    }

    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The net carrying bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> NetId {
        self.bits[i]
    }

    /// The most significant bit's net.
    pub fn msb(&self) -> NetId {
        *self.bits.last().expect("signals are non-empty")
    }

    /// All nets, LSB first.
    pub fn nets(&self) -> &[NetId] {
        &self.bits
    }

    /// A sub-bus `[lo, hi)` as a new signal.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice(&self, lo: usize, hi: usize) -> Signal {
        assert!(lo < hi && hi <= self.bits.len(), "bad slice {lo}..{hi}");
        Signal::from_nets(self.bits[lo..hi].to_vec())
    }

    /// A single bit as a 1-bit signal.
    pub fn bit_signal(&self, i: usize) -> Signal {
        Signal::from_nets(vec![self.bit(i)])
    }

    /// Concatenates `self` (low part) with `high`.
    pub fn concat(&self, high: &Signal) -> Signal {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Signal::from_nets(bits)
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signal[{}]{:?}", self.width(), self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NetId {
        NetId::from_index(i)
    }

    #[test]
    fn basic_accessors() {
        let s = Signal::from_nets(vec![n(0), n(1), n(2)]);
        assert_eq!(s.width(), 3);
        assert_eq!(s.bit(1), n(1));
        assert_eq!(s.msb(), n(2));
        assert_eq!(s.nets(), &[n(0), n(1), n(2)]);
    }

    #[test]
    fn slicing_and_concat() {
        let s = Signal::from_nets(vec![n(0), n(1), n(2), n(3)]);
        let lo = s.slice(0, 2);
        let hi = s.slice(2, 4);
        assert_eq!(lo.nets(), &[n(0), n(1)]);
        assert_eq!(hi.nets(), &[n(2), n(3)]);
        assert_eq!(lo.concat(&hi), s);
        assert_eq!(s.bit_signal(3).nets(), &[n(3)]);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_signal_panics() {
        Signal::from_nets(vec![]);
    }

    #[test]
    #[should_panic(expected = "bad slice")]
    fn bad_slice_panics() {
        Signal::from_nets(vec![n(0)]).slice(1, 1);
    }
}
