//! Register files, decoders, and wide multiplexers.

use crate::builder::ModuleBuilder;
use crate::signal::Signal;

impl ModuleBuilder {
    /// One-hot decoder: output `i` is high iff `sel == i`.
    ///
    /// Returns `2^sel.width()` one-bit signals.
    pub fn decoder(&mut self, sel: &Signal) -> Vec<Signal> {
        let w = sel.width();
        let inv: Vec<Signal> = (0..w)
            .map(|i| {
                let bit = sel.bit_signal(i);
                self.not(&bit)
            })
            .collect();
        (0..1usize << w)
            .map(|value| {
                let mut bits = Vec::with_capacity(w);
                for (i, inverted) in inv.iter().enumerate() {
                    if value & (1 << i) != 0 {
                        bits.push(sel.bit(i));
                    } else {
                        bits.push(inverted.bit(0));
                    }
                }
                let lits = Signal::from_nets(bits);
                self.reduce_and(&lits)
            })
            .collect()
    }

    /// Selects `items[sel]` with a balanced MUX2 tree.
    ///
    /// # Panics
    ///
    /// Panics unless `items.len() == 2^sel.width()` and all items share one
    /// width.
    pub fn mux_tree(&mut self, sel: &Signal, items: &[Signal]) -> Signal {
        assert_eq!(
            items.len(),
            1usize << sel.width(),
            "mux tree needs 2^{} items, got {}",
            sel.width(),
            items.len()
        );
        let width = items[0].width();
        assert!(
            items.iter().all(|s| s.width() == width),
            "mux tree items must share a width"
        );
        let mut layer: Vec<Signal> = items.to_vec();
        for level in 0..sel.width() {
            let s = sel.bit_signal(level);
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                next.push(self.mux(&s, &pair[0], &pair[1]));
            }
            layer = next;
        }
        layer.pop().expect("mux tree reduces to one signal")
    }
}

/// A flip-flop-based register file with one synchronous write port and
/// combinational read ports.
///
/// Matches the paper's cores: the AVR register file is 31/32 × 8-bit DFFs,
/// the MSP430's is 16 × 16-bit — all plain flip-flops, which is why the
/// paper evaluates a separate "FF w/o RF" fault set.
///
/// # Example
///
/// ```
/// use mate_rtl::{ModuleBuilder, RegisterFile};
///
/// let mut m = ModuleBuilder::new("rf_demo");
/// let we = m.input("we", 1);
/// let waddr = m.input("waddr", 2);
/// let wdata = m.input("wdata", 8);
/// let raddr = m.input("raddr", 2);
/// let rf = RegisterFile::new(&mut m, "r", 4, 8);
/// let rdata = rf.read(&mut m, &raddr);
/// m.output(&rdata);
/// rf.finish_write(&mut m, &we, &waddr, &wdata);
/// let (netlist, topo) = m.finish().unwrap();
/// assert_eq!(topo.seq_cells().len(), 32); // 4 regs x 8 bit
/// ```
#[derive(Debug)]
pub struct RegisterFile {
    regs: Vec<Signal>,
    addr_width: usize,
}

impl RegisterFile {
    /// Creates `num_regs` registers of `width` bits named `{name}{i}`.
    ///
    /// # Panics
    ///
    /// Panics unless `num_regs` is a power of two (the read port is a full
    /// mux tree).
    pub fn new(m: &mut ModuleBuilder, name: &str, num_regs: usize, width: usize) -> Self {
        assert!(
            num_regs.is_power_of_two() && num_regs >= 2,
            "register count must be a power of two, got {num_regs}"
        );
        let regs = (0..num_regs)
            .map(|i| m.reg(&format!("{name}{i}"), width))
            .collect();
        Self {
            regs,
            addr_width: num_regs.trailing_zeros() as usize,
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Returns `true` if the file has no registers (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Address width in bits.
    pub fn addr_width(&self) -> usize {
        self.addr_width
    }

    /// Direct access to register `i`'s Q bus (for architectural inspection
    /// and special registers like PC/SP).
    pub fn register(&self, i: usize) -> &Signal {
        &self.regs[i]
    }

    /// A combinational read port.
    ///
    /// # Panics
    ///
    /// Panics if the address width does not match.
    pub fn read(&self, m: &mut ModuleBuilder, addr: &Signal) -> Signal {
        assert_eq!(addr.width(), self.addr_width, "read address width");
        m.mux_tree(addr, &self.regs)
    }

    /// Closes the register file with one synchronous write port: register
    /// `waddr` loads `wdata` when `we` is high, all others hold.
    ///
    /// Consumes the write capability — each register file is driven exactly
    /// once.  For registers needing extra update logic (e.g. an
    /// auto-incrementing PC inside the file), use
    /// [`RegisterFile::finish_write_with`].
    pub fn finish_write(self, m: &mut ModuleBuilder, we: &Signal, waddr: &Signal, wdata: &Signal) {
        self.finish_write_with(m, we, waddr, wdata, |_, _, d| d.clone());
    }

    /// Like [`RegisterFile::finish_write`], but `override_d(m, index, d)` may
    /// replace the next-value signal of each register (it receives the
    /// default write-port next value `d` and returns the actual one).
    ///
    /// # Panics
    ///
    /// Panics if widths do not match.
    pub fn finish_write_with(
        self,
        m: &mut ModuleBuilder,
        we: &Signal,
        waddr: &Signal,
        wdata: &Signal,
        mut override_d: impl FnMut(&mut ModuleBuilder, usize, &Signal) -> Signal,
    ) {
        assert_eq!(waddr.width(), self.addr_width, "write address width");
        assert_eq!(we.width(), 1, "write enable must be one bit");
        let onehot = m.decoder(waddr);
        for (i, q) in self.regs.iter().enumerate() {
            let en = m.and(we, &onehot[i]);
            let loaded = m.mux(&en, q, wdata);
            let next = override_d(m, i, &loaded);
            m.drive_reg(q, &next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_sim::Simulator;

    #[test]
    fn decoder_is_onehot() {
        let mut m = ModuleBuilder::new("dec");
        let sel = m.input("sel", 3);
        let outs = m.decoder(&sel);
        for o in &outs {
            m.output(o);
        }
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        for v in 0..8u64 {
            sim.write_bus(sel.nets(), v);
            for (i, o) in outs.iter().enumerate() {
                assert_eq!(
                    sim.read_bus(o.nets()) == 1,
                    i as u64 == v,
                    "sel={v} out={i}"
                );
            }
        }
    }

    #[test]
    fn mux_tree_selects_every_item() {
        let mut m = ModuleBuilder::new("muxt");
        let sel = m.input("sel", 2);
        let items: Vec<Signal> = (0..4).map(|i| m.constant(10 + i, 6)).collect();
        let y = m.mux_tree(&sel, &items);
        m.output(&y);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        for v in 0..4u64 {
            sim.write_bus(sel.nets(), v);
            assert_eq!(sim.read_bus(y.nets()), 10 + v);
        }
    }

    #[test]
    #[should_panic(expected = "mux tree needs")]
    fn mux_tree_wrong_arity_panics() {
        let mut m = ModuleBuilder::new("bad");
        let sel = m.input("sel", 2);
        let items = vec![m.constant(0, 4); 3];
        m.mux_tree(&sel, &items);
    }

    #[test]
    fn register_file_write_read() {
        let mut m = ModuleBuilder::new("rf");
        let we = m.input("we", 1);
        let waddr = m.input("waddr", 2);
        let wdata = m.input("wdata", 8);
        let raddr = m.input("raddr", 2);
        let rf = RegisterFile::new(&mut m, "r", 4, 8);
        let rdata = rf.read(&mut m, &raddr);
        m.output(&rdata);
        rf.finish_write(&mut m, &we, &waddr, &wdata);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        // Write 4 distinct values.
        sim.write_bus(we.nets(), 1);
        for i in 0..4u64 {
            sim.write_bus(waddr.nets(), i);
            sim.write_bus(wdata.nets(), 0x40 + i);
            sim.tick();
        }
        sim.write_bus(we.nets(), 0);
        for i in 0..4u64 {
            sim.write_bus(raddr.nets(), i);
            assert_eq!(sim.read_bus(rdata.nets()), 0x40 + i);
        }
        // Disabled write changes nothing.
        sim.write_bus(wdata.nets(), 0xFF);
        sim.tick();
        for i in 0..4u64 {
            sim.write_bus(raddr.nets(), i);
            assert_eq!(sim.read_bus(rdata.nets()), 0x40 + i);
        }
    }

    #[test]
    fn finish_write_with_override() {
        // Register 0 acts as a free-running counter regardless of writes.
        let mut m = ModuleBuilder::new("rf_pc");
        let we = m.input("we", 1);
        let waddr = m.input("waddr", 1);
        let wdata = m.input("wdata", 4);
        let rf = RegisterFile::new(&mut m, "r", 2, 4);
        let r0 = rf.register(0).clone();
        m.output(&r0);
        rf.finish_write_with(&mut m, &we, &waddr, &wdata, |m, i, d| {
            if i == 0 {
                m.inc(d)
            } else {
                d.clone()
            }
        });
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.write_bus(we.nets(), 0);
        for expect in 1..5u64 {
            sim.tick();
            assert_eq!(sim.read_bus(r0.nets()), expect);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut m = ModuleBuilder::new("bad");
        RegisterFile::new(&mut m, "r", 3, 4);
    }
}
