//! A small hardware-construction DSL that elaborates word-level designs
//! directly into [`mate_netlist`] standard cells.
//!
//! The paper evaluates MATEs on netlists produced by an ASIC synthesis flow.
//! We replace that flow with structural elaboration: multi-bit
//! [`Signal`]s are combined with word-level operators (`add`, `mux`, `eq`,
//! shifts, register files) and every operator instantiates gates from the
//! `open15` cell library.  The result is a flat, mapped, gate-level netlist —
//! exactly the input format the MATE search consumes.
//!
//! # Example
//!
//! A 4-bit accumulator:
//!
//! ```
//! use mate_rtl::ModuleBuilder;
//!
//! let mut m = ModuleBuilder::new("accu");
//! let din = m.input("din", 4);
//! let acc = m.reg("acc", 4);
//! let sum = m.add(&acc, &din);
//! m.drive_reg(&acc, &sum);
//! m.output(&acc);
//! let (netlist, topo) = m.finish().unwrap();
//! assert_eq!(topo.seq_cells().len(), 4);
//! ```

pub mod builder;
pub mod regfile;
pub mod signal;

pub use builder::ModuleBuilder;
pub use regfile::RegisterFile;
pub use signal::Signal;
