//! The module builder: word-level operators lowered to standard cells.

use std::collections::HashSet;

use mate_netlist::prelude::*;

use crate::signal::Signal;

/// Builds a gate-level netlist from word-level operations.
///
/// All operators instantiate cells of the `open15` library.  Registers are
/// created with [`ModuleBuilder::reg`] (which yields the Q bus immediately so
/// feedback paths can be described) and closed with
/// [`ModuleBuilder::drive_reg`]; [`ModuleBuilder::finish`] checks that every
/// register was driven and validates the netlist.
///
/// # Panics
///
/// Operator methods panic on width mismatches — these are construction-time
/// programming errors, analogous to elaboration errors in an HDL.
#[derive(Debug)]
pub struct ModuleBuilder {
    n: Netlist,
    undriven_regs: HashSet<NetId>,
    tie0: Option<NetId>,
    tie1: Option<NetId>,
}

impl ModuleBuilder {
    /// Creates a builder for a module with the given name.
    pub fn new(name: &str) -> Self {
        Self {
            n: Netlist::new(name, Library::open15()),
            undriven_regs: HashSet::new(),
            tie0: None,
            tie1: None,
        }
    }

    /// Read-only access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.n
    }

    fn cell(&mut self, ty: &str, inputs: &[NetId]) -> NetId {
        self.n
            .add_cell(ty, "", inputs)
            .expect("builder instantiates only known cells with correct arity")
    }

    /// A multi-bit primary input.
    ///
    /// Bit nets are named `name_0 .. name_{w-1}` (single-bit inputs use the
    /// plain name).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn input(&mut self, name: &str, width: usize) -> Signal {
        assert!(width > 0, "input {name} must have at least one bit");
        let bits = (0..width)
            .map(|i| {
                let bit_name = if width == 1 {
                    name.to_owned()
                } else {
                    format!("{name}_{i}")
                };
                self.n.add_input(&bit_name)
            })
            .collect();
        Signal::from_nets(bits)
    }

    /// Marks every bit of `sig` as a primary output.
    pub fn output(&mut self, sig: &Signal) {
        for &b in sig.nets() {
            self.n.set_output(b);
        }
    }

    /// The constant 0 wire (shared TIE0 cell).
    pub fn zero(&mut self) -> Signal {
        if self.tie0.is_none() {
            self.tie0 = Some(self.cell("TIE0", &[]));
        }
        Signal::from_nets(vec![self.tie0.unwrap()])
    }

    /// The constant 1 wire (shared TIE1 cell).
    pub fn one(&mut self) -> Signal {
        if self.tie1.is_none() {
            self.tie1 = Some(self.cell("TIE1", &[]));
        }
        Signal::from_nets(vec![self.tie1.unwrap()])
    }

    /// A `width`-bit constant.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or the value does not fit.
    pub fn constant(&mut self, value: u64, width: usize) -> Signal {
        assert!(width > 0 && width <= 64, "bad constant width {width}");
        assert!(
            width == 64 || value < (1u64 << width),
            "constant {value} does not fit into {width} bits"
        );
        let zero = self.zero().bit(0);
        let one = self.one().bit(0);
        let bits = (0..width)
            .map(|i| if value & (1 << i) != 0 { one } else { zero })
            .collect();
        Signal::from_nets(bits)
    }

    fn bitwise1(&mut self, ty: &str, a: &Signal) -> Signal {
        let bits = a.nets().iter().map(|&x| self.cell(ty, &[x])).collect();
        Signal::from_nets(bits)
    }

    fn bitwise2(&mut self, ty: &str, a: &Signal, b: &Signal) -> Signal {
        assert_eq!(
            a.width(),
            b.width(),
            "width mismatch in {ty}: {} vs {}",
            a.width(),
            b.width()
        );
        let bits = a
            .nets()
            .iter()
            .zip(b.nets())
            .map(|(&x, &y)| self.cell(ty, &[x, y]))
            .collect();
        Signal::from_nets(bits)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: &Signal) -> Signal {
        self.bitwise1("INV", a)
    }

    /// Bitwise AND.  Panics on width mismatch.
    pub fn and(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise2("AND2", a, b)
    }

    /// Bitwise OR.  Panics on width mismatch.
    pub fn or(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise2("OR2", a, b)
    }

    /// Bitwise XOR.  Panics on width mismatch.
    pub fn xor(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise2("XOR2", a, b)
    }

    /// Bitwise NAND.  Panics on width mismatch.
    pub fn nand(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise2("NAND2", a, b)
    }

    /// Bitwise NOR.  Panics on width mismatch.
    pub fn nor(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise2("NOR2", a, b)
    }

    /// Bitwise XNOR.  Panics on width mismatch.
    pub fn xnor(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise2("XNOR2", a, b)
    }

    /// Per-bit 2:1 multiplexer: `sel = 0` selects `a0`, `sel = 1` selects
    /// `a1`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not 1 bit wide or `a0`/`a1` widths differ.
    pub fn mux(&mut self, sel: &Signal, a0: &Signal, a1: &Signal) -> Signal {
        assert_eq!(sel.width(), 1, "mux select must be one bit");
        assert_eq!(a0.width(), a1.width(), "mux arm width mismatch");
        let s = sel.bit(0);
        let bits = a0
            .nets()
            .iter()
            .zip(a1.nets())
            .map(|(&x, &y)| self.cell("MUX2", &[s, x, y]))
            .collect();
        Signal::from_nets(bits)
    }

    /// Ripple-carry addition with explicit carry-in.
    ///
    /// Returns `(sum, carries)` where `carries.bit(i)` is the carry **out**
    /// of bit `i` — flag logic (C, V, H) reads individual carries.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or a non-1-bit carry-in.
    pub fn adder(&mut self, a: &Signal, b: &Signal, cin: &Signal) -> (Signal, Signal) {
        assert_eq!(a.width(), b.width(), "adder width mismatch");
        assert_eq!(cin.width(), 1, "carry-in must be one bit");
        let mut carry = cin.bit(0);
        let mut sum_bits = Vec::with_capacity(a.width());
        let mut carry_bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.nets().iter().zip(b.nets()) {
            sum_bits.push(self.cell("XOR3", &[x, y, carry]));
            carry = self.cell("MAJ3", &[x, y, carry]);
            carry_bits.push(carry);
        }
        (Signal::from_nets(sum_bits), Signal::from_nets(carry_bits))
    }

    /// Addition, discarding carries.
    pub fn add(&mut self, a: &Signal, b: &Signal) -> Signal {
        let cin = self.zero();
        self.adder(a, b, &cin).0
    }

    /// Subtraction `a - b` via two's complement.
    ///
    /// Returns `(difference, carries)`; `carries.msb()` is the **carry** out
    /// (1 = no borrow, i.e. `a >= b` unsigned).
    pub fn subtractor(&mut self, a: &Signal, b: &Signal) -> (Signal, Signal) {
        let nb = self.not(b);
        let one = self.one();
        self.adder(a, &nb, &one)
    }

    /// Subtraction, discarding carries.
    pub fn sub(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.subtractor(a, b).0
    }

    /// Increment by one.
    pub fn inc(&mut self, a: &Signal) -> Signal {
        let zero_w = {
            let z = self.zero().bit(0);
            Signal::from_nets(vec![z; a.width()])
        };
        let one = self.one();
        self.adder(a, &zero_w, &one).0
    }

    /// AND-reduction to a single bit.
    pub fn reduce_and(&mut self, a: &Signal) -> Signal {
        self.reduce_tree("AND2", a)
    }

    /// OR-reduction to a single bit.
    pub fn reduce_or(&mut self, a: &Signal) -> Signal {
        self.reduce_tree("OR2", a)
    }

    fn reduce_tree(&mut self, ty: &str, a: &Signal) -> Signal {
        let mut layer: Vec<NetId> = a.nets().to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.cell(ty, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        Signal::from_nets(layer)
    }

    /// Equality comparison: 1 iff `a == b`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn eq(&mut self, a: &Signal, b: &Signal) -> Signal {
        let x = self.xnor(a, b);
        self.reduce_and(&x)
    }

    /// 1 iff `a == 0`.
    pub fn is_zero(&mut self, a: &Signal) -> Signal {
        let any = self.reduce_or(a);
        self.bitwise1("INV", &any)
    }

    /// Unsigned comparison: 1 iff `a < b`.
    pub fn ltu(&mut self, a: &Signal, b: &Signal) -> Signal {
        let (_, carries) = self.subtractor(a, b);
        let carry = Signal::from_nets(vec![carries.msb()]);
        self.bitwise1("INV", &carry)
    }

    /// Logical shift left by a constant amount, filling with zero.
    pub fn shl_const(&mut self, a: &Signal, amount: usize) -> Signal {
        let zero = self.zero().bit(0);
        let w = a.width();
        let bits = (0..w)
            .map(|i| if i >= amount { a.bit(i - amount) } else { zero })
            .collect();
        Signal::from_nets(bits)
    }

    /// Logical shift right by a constant amount, filling with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `fill` is not one bit.
    pub fn shr_const(&mut self, a: &Signal, amount: usize, fill: &Signal) -> Signal {
        assert_eq!(fill.width(), 1, "fill must be one bit");
        let f = fill.bit(0);
        let w = a.width();
        let bits = (0..w)
            .map(|i| if i + amount < w { a.bit(i + amount) } else { f })
            .collect();
        Signal::from_nets(bits)
    }

    /// Zero-extends `a` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width < a.width()`.
    pub fn zext(&mut self, a: &Signal, width: usize) -> Signal {
        assert!(width >= a.width(), "zext target narrower than source");
        let zero = self.zero().bit(0);
        let mut bits = a.nets().to_vec();
        bits.resize(width, zero);
        Signal::from_nets(bits)
    }

    /// Sign-extends `a` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width < a.width()`.
    pub fn sext(&mut self, a: &Signal, width: usize) -> Signal {
        assert!(width >= a.width(), "sext target narrower than source");
        let msb = a.msb();
        let mut bits = a.nets().to_vec();
        bits.resize(width, msb);
        Signal::from_nets(bits)
    }

    /// Creates a register bus; returns the Q signal immediately so feedback
    /// logic can use it.  Must be completed with [`ModuleBuilder::drive_reg`].
    pub fn reg(&mut self, name: &str, width: usize) -> Signal {
        assert!(width > 0, "register {name} must have at least one bit");
        let bits: Vec<NetId> = (0..width)
            .map(|i| {
                let bit_name = if width == 1 {
                    name.to_owned()
                } else {
                    format!("{name}_{i}")
                };
                let q = self.n.add_net(&bit_name);
                self.undriven_regs.insert(q);
                q
            })
            .collect();
        Signal::from_nets(bits)
    }

    /// Connects the data input of a register created with
    /// [`ModuleBuilder::reg`].
    ///
    /// # Panics
    ///
    /// Panics if widths mismatch or a bit of `q` is not an undriven register
    /// output.
    pub fn drive_reg(&mut self, q: &Signal, d: &Signal) {
        assert_eq!(q.width(), d.width(), "drive_reg width mismatch");
        for (i, (&qb, &db)) in q.nets().iter().zip(d.nets()).enumerate() {
            assert!(
                self.undriven_regs.remove(&qb),
                "bit {i} of register is not an undriven register output"
            );
            let name = format!("ff_{}", self.n.net(qb).name());
            self.n
                .add_cell_to("DFF", &name, &[db], qb)
                .expect("register output is undriven by construction");
        }
    }

    /// Register with load-enable: keeps its value when `en = 0`.
    ///
    /// Lowered as `drive_reg(q, mux(en, q, d))` — the synthesized feedback
    /// mux that makes "FF not overwritten" structurally visible to the MATE
    /// analysis.
    pub fn drive_reg_en(&mut self, q: &Signal, en: &Signal, d: &Signal) {
        let next = self.mux(en, q, d);
        self.drive_reg(q, &next);
    }

    /// Finalizes the module: checks all registers are driven and validates.
    ///
    /// # Errors
    ///
    /// Propagates structural validation errors.
    ///
    /// # Panics
    ///
    /// Panics if a register created with [`ModuleBuilder::reg`] was never
    /// driven.
    pub fn finish(self) -> Result<(Netlist, Topology), NetlistError> {
        if let Some(&q) = self.undriven_regs.iter().next() {
            panic!(
                "register bit `{}` was never driven (drive_reg missing)",
                self.n.net(q).name()
            );
        }
        let topo = self.n.validate()?;
        Ok((self.n, topo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_sim::Simulator;

    /// Elaborates a two-input combinational function and evaluates it for
    /// all (a, b) pairs of the given width.
    fn check_binop(
        width: usize,
        build: impl Fn(&mut ModuleBuilder, &Signal, &Signal) -> Signal,
        expect: impl Fn(u64, u64) -> u64,
    ) {
        let mut m = ModuleBuilder::new("binop");
        let a = m.input("a", width);
        let b = m.input("b", width);
        let y = build(&mut m, &a, &b);
        m.output(&y);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        let mask = (1u64 << width) - 1;
        for av in 0..1u64 << width {
            for bv in 0..1u64 << width {
                sim.write_bus(a.nets(), av);
                sim.write_bus(b.nets(), bv);
                let got = sim.read_bus(y.nets());
                let want = expect(av, bv) & (if y.width() == width { mask } else { 1 });
                assert_eq!(got, want, "a={av} b={bv}");
            }
        }
    }

    #[test]
    fn bitwise_ops() {
        check_binop(3, |m, a, b| m.and(a, b), |a, b| a & b);
        check_binop(3, |m, a, b| m.or(a, b), |a, b| a | b);
        check_binop(3, |m, a, b| m.xor(a, b), |a, b| a ^ b);
        check_binop(3, |m, a, b| m.nand(a, b), |a, b| !(a & b));
        check_binop(3, |m, a, b| m.nor(a, b), |a, b| !(a | b));
        check_binop(3, |m, a, b| m.xnor(a, b), |a, b| !(a ^ b));
    }

    #[test]
    fn add_sub_exhaustive_4bit() {
        check_binop(4, |m, a, b| m.add(a, b), |a, b| a.wrapping_add(b));
        check_binop(4, |m, a, b| m.sub(a, b), |a, b| a.wrapping_sub(b));
    }

    #[test]
    fn comparisons() {
        check_binop(4, |m, a, b| m.eq(a, b), |a, b| (a == b) as u64);
        check_binop(4, |m, a, b| m.ltu(a, b), |a, b| (a < b) as u64);
    }

    #[test]
    fn adder_carries_flags() {
        // 8-bit adder: check carry-out and overflow bit positions.
        let mut m = ModuleBuilder::new("flags");
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let cin = m.zero();
        let (sum, carries) = m.adder(&a, &b, &cin);
        m.output(&sum);
        m.output(&carries);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        for (av, bv) in [(0x7Fu64, 0x01u64), (0xFF, 0x01), (0x80, 0x80), (0x12, 0x34)] {
            sim.write_bus(a.nets(), av);
            sim.write_bus(b.nets(), bv);
            let s = sim.read_bus(sum.nets());
            let c = sim.read_bus(carries.nets());
            assert_eq!(s, (av + bv) & 0xFF);
            let cout = (av + bv) > 0xFF;
            assert_eq!(c >> 7 & 1 == 1, cout, "carry out for {av:#x}+{bv:#x}");
            // Signed overflow = carry into MSB != carry out of MSB.
            let c6 = ((av & 0x7F) + (bv & 0x7F)) >> 7 & 1 == 1;
            let v = c6 != cout;
            let got_v = (c >> 7 & 1 == 1) != (c >> 6 & 1 == 1);
            assert_eq!(got_v, v, "overflow for {av:#x}+{bv:#x}");
        }
    }

    #[test]
    fn mux_and_constants() {
        let mut m = ModuleBuilder::new("mux");
        let s = m.input("s", 1);
        let k5 = m.constant(5, 4);
        let k9 = m.constant(9, 4);
        let y = m.mux(&s, &k5, &k9);
        m.output(&y);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.write_bus(s.nets(), 0);
        assert_eq!(sim.read_bus(y.nets()), 5);
        sim.write_bus(s.nets(), 1);
        assert_eq!(sim.read_bus(y.nets()), 9);
    }

    #[test]
    fn shifts_and_extensions() {
        let mut m = ModuleBuilder::new("shift");
        let a = m.input("a", 4);
        let fill = m.input("fill", 1);
        let l = m.shl_const(&a, 1);
        let r = m.shr_const(&a, 1, &fill);
        let z = m.zext(&a, 6);
        let sx = m.sext(&a, 6);
        for s in [&l, &r, &z, &sx] {
            m.output(s);
        }
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.write_bus(a.nets(), 0b1010);
        sim.write_bus(fill.nets(), 1);
        assert_eq!(sim.read_bus(l.nets()), 0b0100);
        assert_eq!(sim.read_bus(r.nets()), 0b1101);
        assert_eq!(sim.read_bus(z.nets()), 0b001010);
        assert_eq!(sim.read_bus(sx.nets()), 0b111010);
    }

    #[test]
    fn is_zero_and_reductions() {
        let mut m = ModuleBuilder::new("red");
        let a = m.input("a", 5);
        let z = m.is_zero(&a);
        let all = m.reduce_and(&a);
        let any = m.reduce_or(&a);
        for s in [&z, &all, &any] {
            m.output(s);
        }
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        for v in [0u64, 1, 0b11111, 0b10110] {
            sim.write_bus(a.nets(), v);
            assert_eq!(sim.read_bus(z.nets()) == 1, v == 0);
            assert_eq!(sim.read_bus(all.nets()) == 1, v == 0b11111);
            assert_eq!(sim.read_bus(any.nets()) == 1, v != 0);
        }
    }

    #[test]
    fn register_with_enable_holds() {
        let mut m = ModuleBuilder::new("regen");
        let en = m.input("en", 1);
        let d = m.input("d", 4);
        let q = m.reg("q", 4);
        m.drive_reg_en(&q, &en, &d);
        m.output(&q);
        let (n, topo) = m.finish().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.write_bus(d.nets(), 0xA);
        sim.write_bus(en.nets(), 1);
        sim.tick();
        assert_eq!(sim.read_bus(q.nets()), 0xA);
        sim.write_bus(d.nets(), 0x5);
        sim.write_bus(en.nets(), 0);
        sim.tick();
        assert_eq!(sim.read_bus(q.nets()), 0xA, "disabled register holds");
        sim.write_bus(en.nets(), 1);
        sim.tick();
        assert_eq!(sim.read_bus(q.nets()), 0x5);
    }

    #[test]
    #[should_panic(expected = "never driven")]
    fn undriven_register_panics_at_finish() {
        let mut m = ModuleBuilder::new("bad");
        let _q = m.reg("q", 2);
        let _ = m.finish();
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut m = ModuleBuilder::new("bad");
        let a = m.input("a", 2);
        let b = m.input("b", 3);
        m.and(&a, &b);
    }

    #[test]
    fn constants_share_tie_cells() {
        let mut m = ModuleBuilder::new("ties");
        let a = m.constant(0b1010, 4);
        let b = m.constant(0b0110, 4);
        m.output(&a);
        m.output(&b);
        let (n, _) = m.finish().unwrap();
        let ties = n
            .cells()
            .iter()
            .filter(|c| {
                let name = n.library().cell_type(c.type_id()).name();
                name == "TIE0" || name == "TIE1"
            })
            .count();
        assert_eq!(ties, 2, "exactly one TIE0 and one TIE1");
    }
}
