//! Plain-text persistence for MATE sets.
//!
//! The paper publishes its computed MATE sets as raw-data artifacts; this
//! module provides the equivalent: a line-oriented, human-readable format
//! keyed by net *names* (stable across tool runs, unlike net ids).
//!
//! ```text
//! # mate-set v1 design=tmr
//! !load & r1 & r2 :: r0
//! load & din :: r0, r1, r2
//! ```

use std::io::{BufRead, Write};

use mate_netlist::{MateError, NetCube, Netlist};

use crate::mates::{Mate, MateSet};

/// Writes a MATE set in the `mate-set v1` text format.
///
/// # Errors
///
/// Propagates I/O errors from `out` as [`MateError::Io`].
pub fn write_mates(netlist: &Netlist, mates: &MateSet, out: impl Write) -> Result<(), MateError> {
    write_mates_io(netlist, mates, out).map_err(|e| MateError::io("mate-set output", e))
}

fn write_mates_io(netlist: &Netlist, mates: &MateSet, mut out: impl Write) -> std::io::Result<()> {
    writeln!(out, "# mate-set v1 design={}", netlist.name())?;
    for mate in mates {
        let cube: Vec<String> = mate
            .cube
            .literals()
            .map(|(net, pol)| format!("{}{}", if pol { "" } else { "!" }, netlist.net(net).name()))
            .collect();
        let wires: Vec<&str> = mate.masked.iter().map(|&w| netlist.net(w).name()).collect();
        let cube_text = if cube.is_empty() {
            "true".to_owned()
        } else {
            cube.join(" & ")
        };
        writeln!(out, "{cube_text} :: {}", wires.join(", "))?;
    }
    Ok(())
}

/// Reads a MATE set written by [`write_mates`], resolving net names against
/// `netlist`.
///
/// # Errors
///
/// Returns [`MateError`] on I/O problems, malformed lines, or names the
/// netlist does not contain.
pub fn read_mates(netlist: &Netlist, input: impl BufRead) -> Result<MateSet, MateError> {
    let mut mates = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.map_err(|e| MateError::io("mate-set input", e))?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (cube_text, wires_text) = trimmed.split_once("::").ok_or(MateError::MateFormat {
            line: line_no,
            message: "missing `::` separator".to_owned(),
        })?;
        let resolve = |name: &str| {
            netlist.find_net(name).ok_or(MateError::UnknownNet {
                line: line_no,
                name: name.to_owned(),
            })
        };
        let mut literals = Vec::new();
        let cube_text = cube_text.trim();
        if cube_text != "true" {
            for token in cube_text.split('&') {
                let token = token.trim();
                let (name, polarity) = match token.strip_prefix('!') {
                    Some(rest) => (rest, false),
                    None => (token, true),
                };
                if name.is_empty() {
                    return Err(MateError::MateFormat {
                        line: line_no,
                        message: "empty literal".to_owned(),
                    });
                }
                literals.push((resolve(name)?, polarity));
            }
        }
        let cube = NetCube::from_literals(literals).ok_or(MateError::MateFormat {
            line: line_no,
            message: "contradictory literals".to_owned(),
        })?;
        let mut masked = Vec::new();
        for name in wires_text.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            masked.push(resolve(name)?);
        }
        if masked.is_empty() {
            return Err(MateError::MateFormat {
                line: line_no,
                message: "a MATE must mask at least one wire".to_owned(),
            });
        }
        mates.push(Mate { cube, masked });
    }
    Ok(crate::mates::summarize(mates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search_design, SearchConfig};
    use std::io::BufReader;

    #[test]
    fn roundtrip_searched_set() {
        let (n, topo) = mate_netlist::examples::tmr_register();
        let wires = crate::ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        assert!(!mates.is_empty());
        let mut buf = Vec::new();
        write_mates(&n, &mates, &mut buf).unwrap();
        let back = read_mates(&n, BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, mates);
    }

    #[test]
    fn parses_hand_written_file() {
        let (n, _) = mate_netlist::examples::tmr_register();
        let text = "# comment\n\n!load & r1 :: r0\nr1 & r2 :: r0, vote\n";
        let set = read_mates(&n, BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(set.len(), 2);
        // Sorted by masked-count descending.
        assert_eq!(set.mates()[0].masked.len(), 2);
    }

    #[test]
    fn unknown_net_reports_line() {
        let (n, _) = mate_netlist::examples::tmr_register();
        let text = "bogus :: r0\n";
        let err = read_mates(&n, BufReader::new(text.as_bytes())).unwrap_err();
        assert!(
            matches!(err, MateError::UnknownNet { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn malformed_lines_rejected() {
        let (n, _) = mate_netlist::examples::tmr_register();
        for bad in ["no separator", "load :: ", " & :: r0", "load & !load :: r0"] {
            let err = read_mates(&n, BufReader::new(bad.as_bytes())).unwrap_err();
            assert!(matches!(err, MateError::MateFormat { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn empty_cube_serializes_as_true() {
        let (n, _) = mate_netlist::examples::tmr_register();
        let r0 = n.find_net("r0").unwrap();
        let set = crate::mates::summarize([Mate::single(NetCube::top(), r0)]);
        let mut buf = Vec::new();
        write_mates(&n, &set, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("true :: r0"));
        let back = read_mates(&n, BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(back, set);
    }
}
