//! Trace replay and fault-space pruning evaluation (Section 5.3).

use std::collections::HashMap;
use std::fmt;

use mate_netlist::{BitSet, NetId};
use mate_sim::WaveTrace;

use crate::mates::MateSet;

/// The pruned fault space: for every `(wire, cycle)` point, whether some
/// MATE proved the fault benign.
///
/// This is the data structure rendered as the dot matrix of Figure 1b.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PruneMatrix {
    wires: Vec<NetId>,
    wire_index: HashMap<NetId, usize>,
    cycles: usize,
    bits: BitSet,
}

impl PruneMatrix {
    /// Creates an all-unpruned matrix.
    pub fn new(wires: &[NetId], cycles: usize) -> Self {
        let wire_index = wires.iter().enumerate().map(|(i, &w)| (w, i)).collect();
        Self {
            wires: wires.to_vec(),
            wire_index,
            cycles,
            bits: BitSet::new(wires.len() * cycles.max(1)),
        }
    }

    /// The faulty wires spanning the matrix.
    pub fn wires(&self) -> &[NetId] {
        &self.wires
    }

    /// Number of cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Marks `(wire index, cycle)` as benign.  The index refers to the
    /// position in [`PruneMatrix::wires`].
    ///
    /// # Panics
    ///
    /// Panics when the index or cycle is out of range.
    pub fn mark_index(&mut self, wire_idx: usize, cycle: usize) {
        assert!(wire_idx < self.wires.len() && cycle < self.cycles);
        self.bits.insert(cycle * self.wires.len() + wire_idx);
    }

    /// Whether the fault `(wire, cycle)` was proven benign.
    ///
    /// # Panics
    ///
    /// Panics if the wire is not part of the matrix or the cycle is out of
    /// range.
    pub fn is_masked(&self, wire: NetId, cycle: usize) -> bool {
        assert!(cycle < self.cycles, "cycle out of range");
        let idx = self.wire_index[&wire];
        self.bits.contains(cycle * self.wires.len() + idx)
    }

    /// Number of pruned fault-space points.
    pub fn masked_points(&self) -> usize {
        self.bits.count()
    }

    /// Total fault-space size (`wires × cycles`).
    pub fn total_points(&self) -> usize {
        self.wires.len() * self.cycles
    }

    /// Pruned fraction of the fault space (the paper's "Masked Faults"
    /// percentage, as a ratio in `0.0..=1.0`).
    pub fn masked_fraction(&self) -> f64 {
        if self.total_points() == 0 {
            0.0
        } else {
            self.masked_points() as f64 / self.total_points() as f64
        }
    }

    /// Renders the matrix like Figure 1b: one row per wire, `●` for a
    /// potentially effective fault, `○` for a pruned (benign) one.
    pub fn render(&self, name_of: impl Fn(NetId) -> String) -> String {
        let mut out = String::new();
        for (i, &wire) in self.wires.iter().enumerate() {
            let name = name_of(wire);
            out.push_str(&format!("{name:>8} "));
            for cycle in 0..self.cycles {
                out.push(if self.bits.contains(cycle * self.wires.len() + i) {
                    '○'
                } else {
                    '●'
                });
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for PruneMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} fault-space points pruned ({:.2}%)",
            self.masked_points(),
            self.total_points(),
            100.0 * self.masked_fraction()
        )
    }
}

/// Result of replaying a trace against a MATE set.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// The pruned fault space.
    pub matrix: PruneMatrix,
    /// Per-MATE trigger counts (cycles in which the cube was true).
    pub triggers: Vec<usize>,
    /// Number of *effective* MATEs — triggered at least once on this trace.
    pub effective: usize,
    /// Mean input count of the effective MATEs.
    pub avg_inputs: f64,
    /// Standard deviation of the effective MATEs' input counts.
    pub std_inputs: f64,
}

impl EvalReport {
    /// Pruned fraction of the fault space.
    pub fn masked_fraction(&self) -> f64 {
        self.matrix.masked_fraction()
    }
}

/// Replays `trace` and computes which fault-space points over `wires` are
/// pruned by `mates`.
///
/// MATE cubes are evaluated against the *fault-free* trace of each cycle —
/// border wires are outside the fault cone, so their recorded values are
/// valid even in the presence of the hypothetical fault.
pub fn evaluate(mates: &MateSet, trace: &WaveTrace, wires: &[NetId]) -> EvalReport {
    let mut matrix = PruneMatrix::new(wires, trace.num_cycles());
    let mut triggers = vec![0usize; mates.len()];

    // Restrict each MATE's masked list to wire indices of the fault space,
    // and prefilter the MATEs once: a MATE masking nothing in this space can
    // never mark a point, so it is dropped before the cycle loop instead of
    // being re-checked `num_cycles` times.
    let relevant: Vec<(usize, &crate::mates::Mate, Vec<usize>)> = mates
        .iter()
        .enumerate()
        .filter_map(|(i, m)| {
            let indices: Vec<usize> = m
                .masked
                .iter()
                .filter_map(|w| matrix.wire_index.get(w).copied())
                .collect();
            (!indices.is_empty()).then_some((i, m, indices))
        })
        .collect();

    for cycle in 0..trace.num_cycles() {
        let read = trace.cycle_reader(cycle);
        for (i, mate, indices) in &relevant {
            if mate.cube.eval(&read) {
                triggers[*i] += 1;
                for &w in indices {
                    matrix.mark_index(w, cycle);
                }
            }
        }
    }

    let effective_idx: Vec<usize> = (0..mates.len()).filter(|&i| triggers[i] > 0).collect();
    let effective = effective_idx.len();
    let (avg_inputs, std_inputs) = if effective == 0 {
        (0.0, 0.0)
    } else {
        let lens: Vec<f64> = effective_idx
            .iter()
            .map(|&i| mates.mates()[i].num_inputs() as f64)
            .collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        let var = lens.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / lens.len() as f64;
        (mean, var.sqrt())
    };

    EvalReport {
        matrix,
        triggers,
        effective,
        avg_inputs,
        std_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search_design, SearchConfig};
    use mate_netlist::examples::figure1b;
    use mate_sim::{InputWave, Testbench};

    fn figure1b_setup(
        stimulus: Vec<bool>,
        cycles: usize,
    ) -> (mate_netlist::Netlist, MateSet, WaveTrace, Vec<NetId>) {
        let (n, topo) = figure1b();
        let wires = crate::ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let trace = {
            let mut tb = Testbench::new(&n, &topo);
            tb.drive(n.find_net("in").unwrap(), InputWave::from_vec(stimulus));
            tb.run(cycles)
        };
        (n, mates, trace, wires)
    }

    #[test]
    fn all_zero_state_triggers_ab_mates() {
        // With b = 0 forever, faults in a are always masked (MATE ¬b) and
        // vice versa; c is masked whenever d = 1 (never happens while state
        // stays 0... d' = c|d stays 0). So masked points = a-row + b-row.
        let (n, mates, trace, wires) = figure1b_setup(vec![false], 6);
        let report = evaluate(&mates, &trace, &wires);
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        let c = n.find_net("c").unwrap();
        for cycle in 0..4 {
            // a/b flip while the other is 0: masked... but note a' = !e
            // turns a to 1 in cycle 1; then a=1 makes ¬a false for b.
            let a_val = trace.value(cycle, a);
            let b_val = trace.value(cycle, b);
            assert_eq!(report.matrix.is_masked(a, cycle), !b_val);
            assert_eq!(report.matrix.is_masked(b, cycle), !a_val);
            assert!(!report.matrix.is_masked(c, cycle)); // d stays 0
        }
        assert!(report.effective >= 2);
    }

    #[test]
    fn masked_fraction_counts_points() {
        let (_, mates, trace, wires) = figure1b_setup(vec![false], 8);
        let report = evaluate(&mates, &trace, &wires);
        let frac = report.masked_fraction();
        assert!(frac > 0.0 && frac < 1.0, "fraction = {frac}");
        assert_eq!(
            report.matrix.total_points(),
            wires.len() * trace.num_cycles()
        );
    }

    #[test]
    fn render_uses_dots() {
        let (n, mates, trace, wires) = figure1b_setup(vec![false], 4);
        let report = evaluate(&mates, &trace, &wires);
        let picture = report.matrix.render(|w| n.net(w).name().to_owned());
        assert!(picture.contains('●'));
        assert!(picture.contains('○'));
        assert_eq!(picture.lines().count(), wires.len());
    }

    #[test]
    fn empty_mate_set_prunes_nothing() {
        let (_, _, trace, wires) = figure1b_setup(vec![true], 4);
        let report = evaluate(&MateSet::default(), &trace, &wires);
        assert_eq!(report.matrix.masked_points(), 0);
        assert_eq!(report.effective, 0);
        assert_eq!(report.avg_inputs, 0.0);
    }

    #[test]
    fn display_formats_percentage() {
        let m = PruneMatrix::new(&[NetId::from_index(0)], 4);
        assert!(format!("{m}").contains("0/4"));
    }
}
