//! Trace replay and fault-space pruning evaluation (Section 5.3).
//!
//! Evaluation is lane-parallel on the cycle axis: the trace is transposed
//! into per-net bit-planes ([`TransposedTrace`]) once, and every MATE cube
//! then evaluates over a whole lane block of cycles with one AND/ANDN per
//! literal ([`TransposedTrace::cube_block`]).  [`evaluate`] runs 256 cycles
//! per probe ([`B256`]); [`evaluate_transposed_blocks`] generalizes to any
//! [`LaneBlock`] width, with the 64-lane word path kept as
//! [`evaluate_transposed`] for the bench baseline.  The per-cycle scalar
//! path is kept as [`evaluate_scalar`], the bit-identical reference the
//! equivalence tests and benches compare against.

use std::collections::HashMap;
use std::fmt;

use mate_netlist::{LaneBlock, NetId, B256, WORD_LANES};
use mate_sim::{TransposedTrace, WaveTrace};

use crate::mates::{Mate, MateSet};

/// The pruned fault space: for every `(wire, cycle)` point, whether some
/// MATE proved the fault benign.
///
/// This is the data structure rendered as the dot matrix of Figure 1b.
/// Storage is wire-major packed words — bit `c % 64` of word `c / 64` in a
/// wire's row is cycle `c` — so a MATE's 64-cycle trigger word ORs straight
/// into a row ([`PruneMatrix::mark_cycle_word`]) and coverage counts are
/// popcounts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PruneMatrix {
    wires: Vec<NetId>,
    wire_index: HashMap<NetId, usize>,
    cycles: usize,
    words_per_wire: usize,
    words: Vec<u64>,
}

impl PruneMatrix {
    /// Creates an all-unpruned matrix.
    pub fn new(wires: &[NetId], cycles: usize) -> Self {
        let wire_index = wires.iter().enumerate().map(|(i, &w)| (w, i)).collect();
        let words_per_wire = cycles.div_ceil(WORD_LANES);
        Self {
            wires: wires.to_vec(),
            wire_index,
            cycles,
            words_per_wire,
            words: vec![0u64; wires.len() * words_per_wire],
        }
    }

    /// The faulty wires spanning the matrix.
    pub fn wires(&self) -> &[NetId] {
        &self.wires
    }

    /// Number of cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The row position of `wire` in [`PruneMatrix::wires`], if present.
    pub fn wire_position(&self, wire: NetId) -> Option<usize> {
        self.wire_index.get(&wire).copied()
    }

    /// Marks `(wire index, cycle)` as benign.  The index refers to the
    /// position in [`PruneMatrix::wires`].
    ///
    /// # Panics
    ///
    /// Panics when the index or cycle is out of range.
    pub fn mark_index(&mut self, wire_idx: usize, cycle: usize) {
        assert!(wire_idx < self.wires.len() && cycle < self.cycles);
        self.words[wire_idx * self.words_per_wire + cycle / WORD_LANES] |=
            1u64 << (cycle % WORD_LANES);
    }

    /// ORs a 64-cycle trigger word into a wire's row: bit `c` of `mask`
    /// marks cycle `64 * word + c` as benign.  This is the word-parallel
    /// marking path of [`evaluate`].
    ///
    /// # Panics
    ///
    /// Panics when the index or word is out of range, or `mask` has bits at
    /// cycles beyond the matrix (which would corrupt the popcount-based
    /// [`PruneMatrix::masked_points`]).
    pub fn mark_cycle_word(&mut self, wire_idx: usize, word: usize, mask: u64) {
        assert!(wire_idx < self.wires.len() && word < self.words_per_wire);
        let tail = self.cycles - word * WORD_LANES;
        if tail < WORD_LANES {
            assert_eq!(
                mask >> tail,
                0,
                "mask has bits beyond cycle {}",
                self.cycles
            );
        }
        self.words[wire_idx * self.words_per_wire + word] |= mask;
    }

    /// ORs a whole lane block of trigger cycles into a wire's row: lane `c`
    /// of `mask` marks cycle `B::WIDTH * block + c` as benign.  This is the
    /// block-parallel marking path of [`evaluate_transposed_blocks`];
    /// `mark_cycle_block::<u64>` is exactly [`PruneMatrix::mark_cycle_word`].
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range, the block starts beyond the
    /// matrix, or `mask` has bits at cycles beyond the matrix (which would
    /// corrupt the popcount-based [`PruneMatrix::masked_points`]).
    pub fn mark_cycle_block<B: LaneBlock>(&mut self, wire_idx: usize, block: usize, mask: B) {
        let base = block * B::WORDS;
        assert!(wire_idx < self.wires.len() && base < self.words_per_wire);
        for w in 0..B::WORDS {
            let m = mask.word(w);
            if base + w < self.words_per_wire {
                if m != 0 {
                    self.mark_cycle_word(wire_idx, base + w, m);
                }
            } else {
                // Words past the matrix tail: a block straddling the horizon
                // may only trigger on in-range cycles.
                assert_eq!(m, 0, "mask has bits beyond cycle {}", self.cycles);
            }
        }
    }

    /// One wire's packed benign-cycle row (bit `c % 64` of word `c / 64` is
    /// cycle `c`).
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    pub fn row_words(&self, wire_idx: usize) -> &[u64] {
        assert!(wire_idx < self.wires.len());
        &self.words[wire_idx * self.words_per_wire..(wire_idx + 1) * self.words_per_wire]
    }

    /// Whether the fault `(wire, cycle)` was proven benign.
    ///
    /// # Panics
    ///
    /// Panics if the wire is not part of the matrix or the cycle is out of
    /// range.
    pub fn is_masked(&self, wire: NetId, cycle: usize) -> bool {
        assert!(cycle < self.cycles, "cycle out of range");
        let idx = self.wire_index[&wire];
        self.words[idx * self.words_per_wire + cycle / WORD_LANES] & (1u64 << (cycle % WORD_LANES))
            != 0
    }

    /// Number of pruned fault-space points.
    pub fn masked_points(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total fault-space size (`wires × cycles`).
    pub fn total_points(&self) -> usize {
        self.wires.len() * self.cycles
    }

    /// Pruned fraction of the fault space (the paper's "Masked Faults"
    /// percentage, as a ratio in `0.0..=1.0`).
    pub fn masked_fraction(&self) -> f64 {
        if self.total_points() == 0 {
            0.0
        } else {
            self.masked_points() as f64 / self.total_points() as f64
        }
    }

    /// Renders the matrix like Figure 1b: one row per wire, `●` for a
    /// potentially effective fault, `○` for a pruned (benign) one.
    pub fn render(&self, name_of: impl Fn(NetId) -> String) -> String {
        let mut out = String::new();
        for (i, &wire) in self.wires.iter().enumerate() {
            let name = name_of(wire);
            out.push_str(&format!("{name:>8} "));
            let row = self.row_words(i);
            for cycle in 0..self.cycles {
                out.push(
                    if row[cycle / WORD_LANES] & (1u64 << (cycle % WORD_LANES)) != 0 {
                        '○'
                    } else {
                        '●'
                    },
                );
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for PruneMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} fault-space points pruned ({:.2}%)",
            self.masked_points(),
            self.total_points(),
            100.0 * self.masked_fraction()
        )
    }
}

/// Result of replaying a trace against a MATE set.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// The pruned fault space.
    pub matrix: PruneMatrix,
    /// Per-MATE trigger counts (cycles in which the cube was true).
    pub triggers: Vec<usize>,
    /// Number of *effective* MATEs — triggered at least once on this trace.
    pub effective: usize,
    /// Mean input count of the effective MATEs.
    pub avg_inputs: f64,
    /// Standard deviation of the effective MATEs' input counts.
    pub std_inputs: f64,
}

impl EvalReport {
    /// Pruned fraction of the fault space.
    pub fn masked_fraction(&self) -> f64 {
        self.matrix.masked_fraction()
    }
}

/// Restricts each MATE's masked list to wire indices of the fault space and
/// drops MATEs that can never mark a point.
fn relevant_mates<'m>(
    mates: &'m MateSet,
    matrix: &PruneMatrix,
) -> Vec<(usize, &'m Mate, Vec<usize>)> {
    mates
        .iter()
        .enumerate()
        .filter_map(|(i, m)| {
            let indices: Vec<usize> = m
                .masked
                .iter()
                .filter_map(|w| matrix.wire_index.get(w).copied())
                .collect();
            (!indices.is_empty()).then_some((i, m, indices))
        })
        .collect()
}

/// Turns the raw marking state into an [`EvalReport`] with the effective-MATE
/// statistics of the paper's Table 1.
fn finish_report(mates: &MateSet, matrix: PruneMatrix, triggers: Vec<usize>) -> EvalReport {
    let effective_idx: Vec<usize> = (0..mates.len()).filter(|&i| triggers[i] > 0).collect();
    let effective = effective_idx.len();
    let (avg_inputs, std_inputs) = if effective == 0 {
        (0.0, 0.0)
    } else {
        let lens: Vec<f64> = effective_idx
            .iter()
            .map(|&i| mates.mates()[i].num_inputs() as f64)
            .collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        let var = lens.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / lens.len() as f64;
        (mean, var.sqrt())
    };

    EvalReport {
        matrix,
        triggers,
        effective,
        avg_inputs,
        std_inputs,
    }
}

/// Replays `trace` and computes which fault-space points over `wires` are
/// pruned by `mates`.
///
/// MATE cubes are evaluated against the *fault-free* trace of each cycle —
/// border wires are outside the fault cone, so their recorded values are
/// valid even in the presence of the hypothetical fault.
///
/// The trace is transposed once and each cube then evaluates 256 cycles per
/// step ([`B256`] lane blocks); [`evaluate_scalar`] is the bit-identical
/// per-cycle reference and [`evaluate_transposed`] the 64-lane word path.
pub fn evaluate(mates: &MateSet, trace: &WaveTrace, wires: &[NetId]) -> EvalReport {
    evaluate_transposed_blocks::<B256>(mates, &TransposedTrace::from_trace(trace), wires)
}

/// Word-parallel (64-lane) evaluation over an already-transposed trace —
/// the historical engine, kept as the baseline `BENCH_evalrank.json`
/// compares the wide blocks against.
pub fn evaluate_transposed(
    mates: &MateSet,
    trace: &TransposedTrace,
    wires: &[NetId],
) -> EvalReport {
    evaluate_transposed_blocks::<u64>(mates, trace, wires)
}

/// Block-parallel evaluation over an already-transposed trace (use this when
/// the caller also ranks, to share the transposition): each MATE cube
/// evaluates `B::WIDTH` cycles with one AND/ANDN per literal per block.
/// Bit-identical to [`evaluate_scalar`] for every lane width.
pub fn evaluate_transposed_blocks<B: LaneBlock>(
    mates: &MateSet,
    trace: &TransposedTrace,
    wires: &[NetId],
) -> EvalReport {
    let mut matrix = PruneMatrix::new(wires, trace.num_cycles());
    let mut triggers = vec![0usize; mates.len()];
    let relevant = relevant_mates(mates, &matrix);

    for (i, mate, indices) in &relevant {
        for block in 0..trace.num_blocks::<B>() {
            let hit = trace.cube_block::<B>(&mate.cube, block);
            if hit.is_zero() {
                continue;
            }
            triggers[*i] += hit.count_ones() as usize;
            for &w in indices {
                matrix.mark_cycle_block(w, block, hit);
            }
        }
    }

    finish_report(mates, matrix, triggers)
}

/// The per-cycle scalar reference for [`evaluate`]: one cube probe per
/// `(MATE, cycle)`, exactly the pre-transposition implementation.  Kept for
/// the equivalence proptests and as the baseline of `BENCH_evalrank.json`.
pub fn evaluate_scalar(mates: &MateSet, trace: &WaveTrace, wires: &[NetId]) -> EvalReport {
    let mut matrix = PruneMatrix::new(wires, trace.num_cycles());
    let mut triggers = vec![0usize; mates.len()];
    let relevant = relevant_mates(mates, &matrix);

    for cycle in 0..trace.num_cycles() {
        let read = trace.cycle_reader(cycle);
        for (i, mate, indices) in &relevant {
            if mate.cube.eval(&read) {
                triggers[*i] += 1;
                for &w in indices {
                    matrix.mark_index(w, cycle);
                }
            }
        }
    }

    finish_report(mates, matrix, triggers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search_design, SearchConfig};
    use mate_netlist::examples::figure1b;
    use mate_sim::{InputWave, Testbench};

    fn figure1b_setup(
        stimulus: Vec<bool>,
        cycles: usize,
    ) -> (mate_netlist::Netlist, MateSet, WaveTrace, Vec<NetId>) {
        let (n, topo) = figure1b();
        let wires = crate::ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let trace = {
            let mut tb = Testbench::new(&n, &topo);
            tb.drive(n.find_net("in").unwrap(), InputWave::from_vec(stimulus));
            tb.run(cycles)
        };
        (n, mates, trace, wires)
    }

    #[test]
    fn all_zero_state_triggers_ab_mates() {
        // With b = 0 forever, faults in a are always masked (MATE ¬b) and
        // vice versa; c is masked whenever d = 1 (never happens while state
        // stays 0... d' = c|d stays 0). So masked points = a-row + b-row.
        let (n, mates, trace, wires) = figure1b_setup(vec![false], 6);
        let report = evaluate(&mates, &trace, &wires);
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        let c = n.find_net("c").unwrap();
        for cycle in 0..4 {
            // a/b flip while the other is 0: masked... but note a' = !e
            // turns a to 1 in cycle 1; then a=1 makes ¬a false for b.
            let a_val = trace.value(cycle, a);
            let b_val = trace.value(cycle, b);
            assert_eq!(report.matrix.is_masked(a, cycle), !b_val);
            assert_eq!(report.matrix.is_masked(b, cycle), !a_val);
            assert!(!report.matrix.is_masked(c, cycle)); // d stays 0
        }
        assert!(report.effective >= 2);
    }

    #[test]
    fn masked_fraction_counts_points() {
        let (_, mates, trace, wires) = figure1b_setup(vec![false], 8);
        let report = evaluate(&mates, &trace, &wires);
        let frac = report.masked_fraction();
        assert!(frac > 0.0 && frac < 1.0, "fraction = {frac}");
        assert_eq!(
            report.matrix.total_points(),
            wires.len() * trace.num_cycles()
        );
    }

    #[test]
    fn scalar_and_word_parallel_agree_on_figure1b() {
        for (stimulus, cycles) in [(vec![false], 6), (vec![true, false, true], 70)] {
            let (_, mates, trace, wires) = figure1b_setup(stimulus, cycles);
            let word = evaluate(&mates, &trace, &wires);
            let scalar = evaluate_scalar(&mates, &trace, &wires);
            assert_eq!(word.matrix, scalar.matrix);
            assert_eq!(word.triggers, scalar.triggers);
            assert_eq!(word.effective, scalar.effective);
        }
    }

    #[test]
    fn block_widths_agree_with_scalar_on_figure1b() {
        use mate_netlist::{B256, B512};
        // Horizons straddling every block boundary: word, 256 and 512 lanes.
        for (stimulus, cycles) in [
            (vec![false], 6),
            (vec![true, false, true], 70),
            (vec![true, true, false], 257),
            (vec![false, true], 520),
        ] {
            let (_, mates, trace, wires) = figure1b_setup(stimulus, cycles);
            let scalar = evaluate_scalar(&mates, &trace, &wires);
            let transposed = TransposedTrace::from_trace(&trace);
            let word = evaluate_transposed(&mates, &transposed, &wires);
            let b256 = evaluate_transposed_blocks::<B256>(&mates, &transposed, &wires);
            let b512 = evaluate_transposed_blocks::<B512>(&mates, &transposed, &wires);
            for report in [&word, &b256, &b512] {
                assert_eq!(report.matrix, scalar.matrix, "{cycles} cycles");
                assert_eq!(report.triggers, scalar.triggers, "{cycles} cycles");
                assert_eq!(report.effective, scalar.effective, "{cycles} cycles");
            }
        }
    }

    #[test]
    fn mark_cycle_block_matches_word_marks() {
        use mate_netlist::{LaneBlock, B256};
        let wires: Vec<NetId> = (0..2).map(NetId::from_index).collect();
        let mut by_block = PruneMatrix::new(&wires, 300);
        let mut by_word = PruneMatrix::new(&wires, 300);
        let mut mask = B256::ZERO;
        mask.set_word(0, 0b1001);
        mask.set_word(3, 1 << 17);
        by_block.mark_cycle_block(1, 0, mask);
        by_word.mark_cycle_word(1, 0, 0b1001);
        by_word.mark_cycle_word(1, 3, 1 << 17);
        assert_eq!(by_block, by_word);
        // Second block covers cycles 256..300: words past the tail must be 0.
        let mut tail = B256::ZERO;
        tail.set_word(0, 1 << 43); // cycle 299
        by_block.mark_cycle_block(0, 1, tail);
        assert!(by_block.is_masked(wires[0], 299));
        assert_eq!(by_block.masked_points(), 4);
    }

    #[test]
    #[should_panic(expected = "bits beyond cycle")]
    fn mark_cycle_block_rejects_tail_bits() {
        use mate_netlist::{LaneBlock, B256};
        let wires = [NetId::from_index(0)];
        let mut m = PruneMatrix::new(&wires, 300);
        // Cycle 320 lives in block 1's word 1 — past the 300-cycle horizon.
        let mut mask = B256::ZERO;
        mask.set_word(1, 1);
        m.mark_cycle_block(0, 1, mask);
    }

    #[test]
    fn mark_cycle_word_matches_per_cycle_marks() {
        let wires: Vec<NetId> = (0..3).map(NetId::from_index).collect();
        let mut by_word = PruneMatrix::new(&wires, 70);
        let mut by_bit = PruneMatrix::new(&wires, 70);
        by_word.mark_cycle_word(1, 0, 0b1010_0001);
        by_word.mark_cycle_word(1, 1, 0b10_0000); // cycle 69
        for c in [0usize, 5, 7, 69] {
            by_bit.mark_index(1, c);
        }
        assert_eq!(by_word, by_bit);
        assert_eq!(by_word.masked_points(), 4);
        assert_eq!(by_word.row_words(0), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "bits beyond cycle")]
    fn mark_cycle_word_rejects_tail_bits() {
        let wires = [NetId::from_index(0)];
        let mut m = PruneMatrix::new(&wires, 10);
        m.mark_cycle_word(0, 0, 1 << 10);
    }

    #[test]
    fn render_uses_dots() {
        let (n, mates, trace, wires) = figure1b_setup(vec![false], 4);
        let report = evaluate(&mates, &trace, &wires);
        let picture = report.matrix.render(|w| n.net(w).name().to_owned());
        assert!(picture.contains('●'));
        assert!(picture.contains('○'));
        assert_eq!(picture.lines().count(), wires.len());
    }

    #[test]
    fn empty_mate_set_prunes_nothing() {
        let (_, _, trace, wires) = figure1b_setup(vec![true], 4);
        let report = evaluate(&MateSet::default(), &trace, &wires);
        assert_eq!(report.matrix.masked_points(), 0);
        assert_eq!(report.effective, 0);
        assert_eq!(report.avg_inputs, 0.0);
    }

    #[test]
    fn display_formats_percentage() {
        let m = PruneMatrix::new(&[NetId::from_index(0)], 4);
        assert!(format!("{m}").contains("0/4"));
    }
}
