//! The MATE datatype and cross-wire summarizing (step 3 of the paper).

use std::collections::HashMap;
use std::fmt;

use mate_netlist::{NetCube, NetId};

/// One fault-masking term: when [`Mate::cube`] evaluates to true in a cycle,
/// an SEU on any wire in [`Mate::masked`] during that cycle is benign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mate {
    /// The conjunction of border-wire literals.
    pub cube: NetCube,
    /// The faulty wires this term masks (sorted, deduplicated).
    pub masked: Vec<NetId>,
}

impl Mate {
    /// Creates a MATE masking a single wire.
    pub fn single(cube: NetCube, wire: NetId) -> Self {
        Self {
            cube,
            masked: vec![wire],
        }
    }

    /// Number of distinct input wires the FPGA implementation would read.
    pub fn num_inputs(&self) -> usize {
        self.cube.len()
    }
}

impl fmt::Display for Mate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} masks {} wire(s)", self.cube, self.masked.len())
    }
}

/// A collection of MATEs, deduplicated by cube.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MateSet {
    mates: Vec<Mate>,
}

impl MateSet {
    /// Wraps a list of already-deduplicated MATEs.
    pub fn from_mates(mates: Vec<Mate>) -> Self {
        Self { mates }
    }

    /// The MATEs.
    pub fn mates(&self) -> &[Mate] {
        &self.mates
    }

    /// Number of MATEs.
    pub fn len(&self) -> usize {
        self.mates.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.mates.is_empty()
    }

    /// Iterates over the MATEs.
    pub fn iter(&self) -> std::slice::Iter<'_, Mate> {
        self.mates.iter()
    }

    /// Mean and standard deviation of the per-MATE input counts — the
    /// paper's FPGA-cost indicator ("Avg. #inputs").
    pub fn input_stats(&self) -> (f64, f64) {
        if self.mates.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.mates.len() as f64;
        let mean = self
            .mates
            .iter()
            .map(|m| m.num_inputs() as f64)
            .sum::<f64>()
            / n;
        let var = self
            .mates
            .iter()
            .map(|m| (m.num_inputs() as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }

    /// A subset by indices (used by top-N selection).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn subset(&self, indices: &[usize]) -> MateSet {
        MateSet {
            mates: indices.iter().map(|&i| self.mates[i].clone()).collect(),
        }
    }
}

impl FromIterator<Mate> for MateSet {
    fn from_iter<T: IntoIterator<Item = Mate>>(iter: T) -> Self {
        summarize(iter)
    }
}

impl<'a> IntoIterator for &'a MateSet {
    type Item = &'a Mate;
    type IntoIter = std::slice::Iter<'a, Mate>;

    fn into_iter(self) -> Self::IntoIter {
        self.mates.iter()
    }
}

/// Merges per-wire MATEs into a deduplicated set: identical cubes found for
/// different faulty wires become one MATE masking all of them (the paper's
/// "one active MATE indicates the masking of more than one fault").
///
/// The result is sorted by descending number of masked wires, then by cube —
/// the processing order the selection heuristic expects.
pub fn summarize(mates: impl IntoIterator<Item = Mate>) -> MateSet {
    let mut by_cube: HashMap<NetCube, Vec<NetId>> = HashMap::new();
    for mate in mates {
        by_cube.entry(mate.cube).or_default().extend(mate.masked);
    }
    let mut merged: Vec<Mate> = by_cube
        .into_iter()
        .map(|(cube, mut masked)| {
            masked.sort();
            masked.dedup();
            Mate { cube, masked }
        })
        .collect();
    merged.sort_by(|a, b| {
        b.masked
            .len()
            .cmp(&a.masked.len())
            .then_with(|| a.cube.cmp(&b.cube))
    });
    MateSet { mates: merged }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(i: usize) -> NetId {
        NetId::from_index(i)
    }

    fn cube(lits: &[(usize, bool)]) -> NetCube {
        NetCube::from_literals(lits.iter().map(|&(n, p)| (net(n), p))).unwrap()
    }

    #[test]
    fn summarize_merges_identical_cubes() {
        let set = summarize([
            Mate::single(cube(&[(1, true)]), net(10)),
            Mate::single(cube(&[(1, true)]), net(11)),
            Mate::single(cube(&[(2, false)]), net(10)),
        ]);
        assert_eq!(set.len(), 2);
        let big = &set.mates()[0];
        assert_eq!(big.masked, vec![net(10), net(11)]);
        assert_eq!(big.cube, cube(&[(1, true)]));
    }

    #[test]
    fn summarize_orders_by_masked_count() {
        let set = summarize([
            Mate::single(cube(&[(5, true)]), net(1)),
            Mate {
                cube: cube(&[(6, true)]),
                masked: vec![net(1), net(2), net(3)],
            },
        ]);
        assert_eq!(set.mates()[0].masked.len(), 3);
        assert_eq!(set.mates()[1].masked.len(), 1);
    }

    #[test]
    fn summarize_dedups_masked_wires() {
        let set = summarize([
            Mate::single(cube(&[(1, true)]), net(7)),
            Mate::single(cube(&[(1, true)]), net(7)),
        ]);
        assert_eq!(set.mates()[0].masked, vec![net(7)]);
    }

    #[test]
    fn input_stats() {
        let set = MateSet::from_mates(vec![
            Mate::single(cube(&[(1, true)]), net(0)),
            Mate::single(cube(&[(1, true), (2, false), (3, true)]), net(1)),
        ]);
        let (mean, std) = set.input_stats();
        assert!((mean - 2.0).abs() < 1e-9);
        assert!((std - 1.0).abs() < 1e-9);
        assert_eq!(MateSet::default().input_stats(), (0.0, 0.0));
    }

    #[test]
    fn subset_selects_indices() {
        let set = summarize([
            Mate::single(cube(&[(1, true)]), net(0)),
            Mate::single(cube(&[(2, true)]), net(1)),
        ]);
        let sub = set.subset(&[1]);
        assert_eq!(sub.len(), 1);
    }

    #[test]
    fn display_mentions_width() {
        let m = Mate::single(cube(&[(1, false)]), net(3));
        assert!(format!("{m}").contains("masks 1 wire"));
    }
}
