//! The heuristic MATE search (step 2+3 of the paper, Section 4).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use mate_netlist::{CellId, FaultCone, NetCube, NetId, Netlist, SoaNetlist, Topology};

use crate::gmt::GmtCache;
use crate::mates::{summarize, Mate, MateSet};
use crate::paths::enumerate_paths;
use crate::propagate::{ConeSession, Mark, PropagationScratch};

/// Tuning knobs of the heuristic search.  The defaults are the paper's
/// evaluation parameters: depth 8, at most 4 gate-masking terms per MATE,
/// at most 100 000 candidates per faulty wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchConfig {
    /// How many gates deep to enumerate fault-propagation paths.
    pub depth: usize,
    /// Maximum number of gate-masking terms conjoined into one MATE.
    pub max_terms: usize,
    /// Candidate budget per faulty wire.
    pub max_candidates: usize,
    /// Path budget per faulty wire (exceeding it marks the wire
    /// unmaskable — conservative, the paper's prototype behaves likewise by
    /// aborting).
    pub max_paths: usize,
    /// Worker threads for [`search_design`]; `0` = one per CPU.
    pub threads: usize,
    /// How MATE candidates are constructed.
    pub strategy: SearchStrategy,
    /// Which trust-propagation engine verifies candidates.
    pub propagation: PropagationMode,
}

/// Candidate-construction strategies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// The paper's scheme: enumerate combinations of up to `max_terms`
    /// gate-masking cubes over the path gates, prefilter by path cover,
    /// verify by trust propagation.
    Exhaustive,
    /// Verifier-guided repair (this library's refinement): start from the
    /// empty cube, run trust propagation, and branch over masking cubes of
    /// the topologically earliest still-faulty gates until all endpoints are
    /// trusted.  Finds multi-cut MATEs that the blind combination search
    /// misses within the same budget.
    #[default]
    Repair,
}

/// Which trust-propagation engine decides candidate verdicts.
///
/// Both engines return bit-identical results (proptest-enforced by
/// `tests/search_equiv.rs`); the reference is kept as the executable
/// specification and as the baseline of `benches/search.rs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PropagationMode {
    /// Per-candidate from-scratch propagation: fresh bit set + hash map per
    /// candidate, free-assignment re-enumeration per gate.
    Reference,
    /// Reusable [`PropagationScratch`]: dense generation-stamped state,
    /// memoized gate outcomes, incremental re-propagation along repair
    /// branches.
    #[default]
    Optimized,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            depth: 8,
            max_terms: 4,
            max_candidates: 100_000,
            max_paths: 4096,
            threads: 0,
            strategy: SearchStrategy::Repair,
            propagation: PropagationMode::Optimized,
        }
    }
}

impl SearchConfig {
    /// The paper's exact evaluation parameters (Section 5.2): depth 8, at
    /// most 4 terms, 100 000 candidates per wire, combination search.
    pub fn paper() -> Self {
        Self {
            strategy: SearchStrategy::Exhaustive,
            ..Self::default()
        }
    }
}

/// Outcome of the search for one faulty wire.
#[derive(Clone, Debug)]
pub struct WireSearchResult {
    /// The faulty wire.
    pub wire: NetId,
    /// Gates in the fault cone (the paper's cone-size statistic).
    pub cone_gates: usize,
    /// Number of MATE candidates tried.
    pub candidates_tried: usize,
    /// `true` when no MATE can exist (a propagation path without masking
    /// gates, a directly observable wire, or a burst path budget).
    pub unmaskable: bool,
    /// The discovered MATEs (each masking exactly this wire; deduplicated
    /// and free of subsumed cubes).
    pub mates: Vec<Mate>,
    /// Wall-clock time spent on this wire (cone sizes vary wildly, so
    /// per-wire times expose scheduler load imbalance).
    pub search_time: Duration,
}

/// Aggregate search statistics — the rows of Table 1.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Number of faulty wires searched.
    pub faulty_wires: usize,
    /// Mean fault-cone size in gates.
    pub avg_cone: f64,
    /// Median fault-cone size in gates.
    pub median_cone: usize,
    /// Wires proven unmaskable.
    pub unmaskable: usize,
    /// Total candidates tried.
    pub candidates: u64,
    /// Total per-wire MATEs before cross-wire deduplication.
    pub num_mates: usize,
    /// Wall-clock search time.
    pub run_time: Duration,
    /// Memoized gate-masking-term entries in the shared [`GmtCache`].
    pub gmt_entries: usize,
    /// The slowest single wire — together with `total_wire_time` this makes
    /// scheduler load imbalance observable without re-profiling.
    pub max_wire_time: Duration,
    /// Sum of per-wire search times across all workers (≥ `run_time` when
    /// the parallel search scales).
    pub total_wire_time: Duration,
}

/// A whole-design search result: per-wire detail plus aggregates.
#[derive(Clone, Debug)]
pub struct DesignSearch {
    /// Per-wire results, in input order.
    pub results: Vec<WireSearchResult>,
    /// Aggregate statistics.
    pub stats: SearchStats,
}

impl DesignSearch {
    /// Summarizes all per-wire MATEs into a deduplicated [`MateSet`].
    pub fn into_mate_set(self) -> MateSet {
        summarize(self.results.into_iter().flat_map(|r| r.mates))
    }
}

/// Searches MATEs for one faulty wire.
///
/// Follows the paper: build the fault cone, enumerate propagation paths,
/// collect gate-masking cubes for the path gates (mistrusting every cone
/// wire), abort early if some path has no masking-capable gate, then try
/// conjunctions of up to `max_terms` cubes from distinct gates and keep
/// those that cut every path.
pub fn search_wire(
    netlist: &Netlist,
    topo: &Topology,
    wire: NetId,
    config: &SearchConfig,
) -> WireSearchResult {
    let cache = GmtCache::new();
    search_wire_cached(netlist, topo, wire, config, &cache)
}

/// Like [`search_wire`] but sharing a gate-masking-term cache (used by the
/// parallel whole-design search).
pub fn search_wire_cached(
    netlist: &Netlist,
    topo: &Topology,
    wire: NetId,
    config: &SearchConfig,
    cache: &GmtCache,
) -> WireSearchResult {
    let mut scratch = PropagationScratch::new();
    let soa = SoaNetlist::build(netlist, topo);
    search_wire_scratch(netlist, topo, &soa, wire, config, cache, &mut scratch)
}

/// Like [`search_wire_cached`] but additionally reusing a
/// [`PropagationScratch`] across wires, so steady-state candidate
/// verification allocates nothing.  Worker threads of [`search_design`]
/// each own one scratch for their whole share of the design; the
/// [`SoaNetlist`] arena is built once per design (`SoaNetlist::build`) and
/// shared read-only by every worker.
pub fn search_wire_scratch(
    netlist: &Netlist,
    topo: &Topology,
    soa: &SoaNetlist,
    wire: NetId,
    config: &SearchConfig,
    cache: &GmtCache,
    scratch: &mut PropagationScratch,
) -> WireSearchResult {
    let start = Instant::now();
    let cone = FaultCone::compute(netlist, topo, wire);
    let mut result = WireSearchResult {
        wire,
        cone_gates: cone.num_gates(),
        candidates_tried: 0,
        unmaskable: false,
        mates: Vec::new(),
        search_time: Duration::ZERO,
    };

    let paths = enumerate_paths(netlist, topo, &cone, config.depth, config.max_paths);
    if paths.hopeless() || paths.paths.is_empty() {
        // No paths at all means the fault dies by itself only if the cone
        // has no endpoints — which cannot happen for validated netlists, so
        // treat both cases as unmaskable (empty-path sets arise only for
        // dangling wires).
        result.unmaskable = paths.hopeless();
        result.search_time = start.elapsed();
        return result;
    }

    // Sound early abort (the paper's "path where no gate can mask"):
    // walking each path with its *local* direct faulty pins (the pins fed by
    // the path predecessor), a gate whose gate-masking terms are empty even
    // for this minimal faulty set can never cut the path — if a whole path
    // consists of such gates, the wire is unmaskable.
    for path in &paths.paths {
        let mut prev = wire;
        let mut cuttable = false;
        for &cell in path {
            let mut local = 0u8;
            for (pin, &net) in netlist.cell(cell).inputs().iter().enumerate() {
                if net == prev {
                    local |= 1 << pin;
                }
            }
            if cache.can_mask(netlist.library(), netlist.cell(cell).type_id(), local) {
                cuttable = true;
                break;
            }
            prev = netlist.cell(cell).output();
        }
        if !cuttable {
            result.unmaskable = true;
            result.search_time = start.elapsed();
            return result;
        }
    }

    let budget = config.max_candidates;
    let mut found: Vec<NetCube> = Vec::new();
    match config.strategy {
        SearchStrategy::Exhaustive => {
            // For candidate generation, each path gate is assigned its
            // *direct* faulty-pin set: the union over paths of the pins fed
            // by its predecessor (or the origin).  Whether a chosen cube
            // really stops the whole fault is decided by the
            // trust-propagation verifier, which accounts for reconvergence
            // through deeper logic.
            let mut direct_mask: std::collections::HashMap<CellId, u8> =
                std::collections::HashMap::new();
            let mut order: Vec<CellId> = Vec::new();
            for path in &paths.paths {
                let mut prev = wire;
                for &cell in path {
                    let mut mask = 0u8;
                    for (pin, &net) in netlist.cell(cell).inputs().iter().enumerate() {
                        if net == prev {
                            mask |= 1 << pin;
                        }
                    }
                    let entry = direct_mask.entry(cell).or_insert_with(|| {
                        order.push(cell);
                        0
                    });
                    *entry |= mask;
                    prev = netlist.cell(cell).output();
                }
            }

            // Collect per-gate masking cubes translated from pins to nets.
            let mut gates: Vec<CellId> = Vec::new();
            let mut gate_cubes: Vec<Vec<NetCube>> = Vec::new();
            let mut gate_slot: std::collections::HashMap<CellId, usize> =
                std::collections::HashMap::new();
            for &cell in &order {
                let faulty = direct_mask[&cell];
                let ty = netlist.cell(cell).type_id();
                let cubes = cache.cubes(netlist.library(), ty, faulty);
                let inputs = netlist.cell(cell).inputs();
                let net_cubes: Vec<NetCube> = cubes
                    .iter()
                    .filter_map(|pc| {
                        NetCube::from_literals(pc.literals().map(|(pin, pol)| (inputs[pin], pol)))
                    })
                    .collect();
                gate_slot.insert(cell, gates.len());
                gates.push(cell);
                gate_cubes.push(net_cubes);
            }

            // Bitmask of maskable gates per path; 128 maskable gates is far
            // beyond any depth-8 cone's useful set — gates beyond that are
            // ignored (conservative).
            let maskable: Vec<usize> = (0..gates.len())
                .filter(|&g| !gate_cubes[g].is_empty())
                .take(128)
                .collect();
            let bit_of: std::collections::HashMap<usize, u32> = maskable
                .iter()
                .enumerate()
                .map(|(bit, &g)| (g, bit as u32))
                .collect();
            let mut path_masks: Vec<u128> = Vec::with_capacity(paths.paths.len());
            let mut coverable = true;
            for path in &paths.paths {
                let mut mask = 0u128;
                for &cell in path {
                    if let Some(&bit) = bit_of.get(&gate_slot[&cell]) {
                        mask |= 1 << bit;
                    }
                }
                if mask == 0 {
                    // Under the union masks this path has no candidate cut
                    // point; the combination search cannot cover it.
                    coverable = false;
                    break;
                }
                path_masks.push(mask);
            }
            if coverable {
                path_masks.sort_unstable();
                path_masks.dedup();
                match config.propagation {
                    PropagationMode::Reference => {
                        let mut verifier = ReferenceCandidates {
                            netlist,
                            cone: &cone,
                            wire,
                        };
                        run_combos(
                            &maskable,
                            &gate_cubes,
                            &path_masks,
                            config.max_terms,
                            &mut found,
                            &mut result.candidates_tried,
                            budget,
                            &mut verifier,
                        );
                    }
                    PropagationMode::Optimized => {
                        let readers = cone.reader_index(netlist);
                        let session = scratch.session(netlist, soa, &cone, &readers, &[wire]);
                        let mut verifier = SessionVerifier::new(session);
                        run_combos(
                            &maskable,
                            &gate_cubes,
                            &path_masks,
                            config.max_terms,
                            &mut found,
                            &mut result.candidates_tried,
                            budget,
                            &mut verifier,
                        );
                    }
                }
            }
        }
        SearchStrategy::Repair => match config.propagation {
            PropagationMode::Reference => {
                let origins = [wire];
                let mut verifier = ReferenceVerifier::start(netlist, &cone, &origins);
                repair_all(
                    netlist,
                    cache,
                    config.max_terms,
                    budget,
                    &mut found,
                    &mut result.candidates_tried,
                    &mut verifier,
                );
            }
            PropagationMode::Optimized => {
                let readers = cone.reader_index(netlist);
                let session = scratch.session(netlist, soa, &cone, &readers, &[wire]);
                let mut verifier = SessionVerifier::new(session);
                repair_all(
                    netlist,
                    cache,
                    config.max_terms,
                    budget,
                    &mut found,
                    &mut result.candidates_tried,
                    &mut verifier,
                );
            }
        },
    }

    result.mates = minimize_cubes(found)
        .into_iter()
        .map(|cube| Mate::single(cube, wire))
        .collect();
    result.search_time = start.elapsed();
    result
}

/// How the exhaustive strategy judges complete candidate cubes.  `push` /
/// `pop` bracket each conjoined gate cube during expansion so an
/// incremental engine keeps its state warm; the reference implements them
/// as no-ops and propagates from scratch at the leaf.
trait CandidateVerifier {
    fn push(&mut self, next: &NetCube, prev: &NetCube) -> usize;
    fn pop(&mut self, mark: usize);
    fn masked_candidate(&mut self, candidate: &NetCube) -> bool;
}

/// From-scratch verification at the leaf only — the specification path.
struct ReferenceCandidates<'a> {
    netlist: &'a Netlist,
    cone: &'a FaultCone,
    wire: NetId,
}

impl CandidateVerifier for ReferenceCandidates<'_> {
    fn push(&mut self, _next: &NetCube, _prev: &NetCube) -> usize {
        0
    }

    fn pop(&mut self, _mark: usize) {}

    fn masked_candidate(&mut self, candidate: &NetCube) -> bool {
        cube_masks_wire(self.netlist, self.cone, self.wire, candidate)
    }
}

impl CandidateVerifier for SessionVerifier<'_> {
    fn push(&mut self, next: &NetCube, prev: &NetCube) -> usize {
        RepairVerifier::push(self, next, prev)
    }

    fn pop(&mut self, mark: usize) {
        RepairVerifier::pop(self, mark);
    }

    fn masked_candidate(&mut self, _candidate: &NetCube) -> bool {
        // The expansion already pushed every literal of the candidate; the
        // session holds its settled fixpoint.
        self.session.masked()
    }
}

/// Iterative deepening over combination size for the exhaustive strategy
/// (cheap, small MATEs first — the paper's preference for early masking).
#[allow(clippy::too_many_arguments)]
fn run_combos<V: CandidateVerifier>(
    maskable: &[usize],
    gate_cubes: &[Vec<NetCube>],
    path_masks: &[u128],
    max_terms: usize,
    found: &mut Vec<NetCube>,
    tried: &mut usize,
    budget: usize,
    verify: &mut V,
) {
    // Enumerate gate combinations of increasing size; for covering
    // combinations, expand the cube choices and keep the cubes the
    // trust-propagation check confirms.  Skip combinations that are
    // supersets of an already-successful one — their MATEs are subsumed.
    let mut covering: Vec<u128> = Vec::new();
    for size in 1..=max_terms.min(maskable.len()) {
        if *tried >= budget {
            break;
        }
        let mut combo: Vec<usize> = Vec::with_capacity(size);
        combo_rec(
            maskable,
            gate_cubes,
            path_masks,
            &mut covering,
            found,
            &mut combo,
            0,
            size,
            0u128,
            tried,
            budget,
            verify,
        );
    }
}

/// De-duplicates and drops subsumed cubes (keeps the most general ones).
///
/// A strictly-subsuming cube always has fewer literals, so after a stable
/// sort by literal count each cube only needs checking against the shorter
/// kept cubes — `O(n·k)` subsumption tests instead of the quadratic
/// all-pairs scan (equal-length distinct cubes can never subsume each
/// other, and duplicates are removed up front).
fn minimize_cubes(mut found: Vec<NetCube>) -> Vec<NetCube> {
    found.sort();
    found.dedup();
    found.sort_by_key(NetCube::len);
    let mut minimal: Vec<NetCube> = Vec::new();
    for cube in found {
        let dominated = minimal
            .iter()
            .take_while(|kept| kept.len() < cube.len())
            .any(|kept| kept.subsumes(&cube));
        if !dominated {
            minimal.push(cube);
        }
    }
    minimal.sort();
    minimal
}

/// Runs the goal-directed repair search over a joint fault cone with
/// several simultaneous origins (used by [`crate::multi::search_wire_set`]).
pub(crate) fn repair_multi(
    netlist: &Netlist,
    soa: &SoaNetlist,
    cone: &mate_netlist::FaultCone,
    origins: &[NetId],
    cache: &GmtCache,
    config: &SearchConfig,
    tried: &mut usize,
) -> Vec<NetCube> {
    let mut found = Vec::new();
    match config.propagation {
        PropagationMode::Reference => {
            let mut verifier = ReferenceVerifier::start(netlist, cone, origins);
            repair_all(
                netlist,
                cache,
                config.max_terms,
                config.max_candidates,
                &mut found,
                tried,
                &mut verifier,
            );
        }
        PropagationMode::Optimized => {
            let readers = cone.reader_index(netlist);
            let mut scratch = PropagationScratch::new();
            let session = scratch.session(netlist, soa, cone, &readers, origins);
            let mut verifier = SessionVerifier::new(session);
            repair_all(
                netlist,
                cache,
                config.max_terms,
                config.max_candidates,
                &mut found,
                tried,
                &mut verifier,
            );
        }
    }
    minimize_cubes(found)
}

/// Recursive gate-combination enumeration with cube expansion.
#[allow(clippy::too_many_arguments)]
fn combo_rec<V: CandidateVerifier>(
    maskable: &[usize],
    gate_cubes: &[Vec<NetCube>],
    path_masks: &[u128],
    covering: &mut Vec<u128>,
    found: &mut Vec<NetCube>,
    combo: &mut Vec<usize>,
    start: usize,
    size: usize,
    mask: u128,
    tried: &mut usize,
    budget: usize,
    verify: &mut V,
) {
    if *tried >= budget {
        return;
    }
    if combo.len() == size {
        // Every complete combination counts against the budget, covering or
        // not — otherwise large `max_terms` values explode the enumeration
        // on uncoverable path sets.
        *tried += 1;
        // Prefilter: every enumerated path must run through a chosen gate.
        let all = path_masks.iter().all(|&p| p & mask != 0);
        if !all {
            return;
        }
        // A superset of an already-successful combination only yields
        // subsumed cubes.
        if covering.iter().any(|&c| c & mask == c && c != mask) {
            return;
        }
        // Expand the cartesian product of cube choices.
        let before = found.len();
        expand_cubes(
            gate_cubes,
            combo,
            0,
            &NetCube::top(),
            found,
            tried,
            budget,
            verify,
        );
        if found.len() > before {
            covering.push(mask);
        }
        return;
    }
    let remaining = size - combo.len();
    for (i, &g) in maskable.iter().enumerate().skip(start) {
        if maskable.len() - i < remaining {
            break;
        }
        combo.push(g);
        combo_rec(
            maskable,
            gate_cubes,
            path_masks,
            covering,
            found,
            combo,
            i + 1,
            size,
            mask | (1 << (i as u32)),
            tried,
            budget,
            verify,
        );
        combo.pop();
        if *tried >= budget {
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn expand_cubes<V: CandidateVerifier>(
    gate_cubes: &[Vec<NetCube>],
    combo: &[usize],
    idx: usize,
    acc: &NetCube,
    found: &mut Vec<NetCube>,
    tried: &mut usize,
    budget: usize,
    verify: &mut V,
) {
    if *tried >= budget {
        return;
    }
    if idx == combo.len() {
        *tried += 1;
        if verify.masked_candidate(acc) {
            found.push(acc.clone());
        }
        return;
    }
    for cube in &gate_cubes[combo[idx]] {
        if *tried >= budget {
            return;
        }
        match acc.conjoin(cube) {
            Some(next) => {
                let mark = verify.push(&next, acc);
                expand_cubes(
                    gate_cubes,
                    combo,
                    idx + 1,
                    &next,
                    found,
                    tried,
                    budget,
                    verify,
                );
                verify.pop(mark);
            }
            None => {
                // Contradictory literals — an unsatisfiable candidate still
                // counts against the budget.
                *tried += 1;
            }
        }
    }
}

/// The trust-propagation verifier: decides whether fixing the cube's border
/// literals provably masks a fault on `wire` within one cycle.
///
/// Walks the fault cone in topological order maintaining the set of
/// *possibly-faulty* nets (initially the origin).  A gate output stays
/// trusted iff, for every assignment of its unconstrained trusted pins (and
/// the cube-fixed pins at their required values), the output is independent
/// of the possibly-faulty pins.  The fault is masked iff no cone endpoint
/// (flip-flop data pin or primary output) is possibly faulty.
///
/// This check is sound against reconvergence: a pin is treated as trusted
/// only if *no* route can deliver the fault to it given the cuts established
/// by topologically earlier gates.
pub fn cube_masks_wire(
    netlist: &Netlist,
    cone: &mate_netlist::FaultCone,
    wire: NetId,
    cube: &NetCube,
) -> bool {
    propagate_cube_reference(netlist, cone, &[wire], cube).masked
}

/// Result of one reference trust-propagation pass.
#[derive(Clone, Debug)]
pub struct PropagationOutcome {
    /// `true` iff no endpoint is possibly faulty under the cube.
    pub masked: bool,
    /// The set of possibly-faulty nets.
    pub possibly: mate_netlist::BitSet,
    /// The first (in endpoint order) still-faulty endpoint net, if any.
    pub first_faulty_endpoint: Option<NetId>,
}

/// The paper-faithful from-scratch trust propagation.
///
/// This is the executable specification of the optimized engine in
/// [`crate::propagate`]: it allocates a fresh possibly-faulty bit set and
/// known-constant map per call and re-enumerates every free pin assignment
/// of every cone gate.  Kept verbatim so equivalence tests and benches can
/// diff the fast path against it.
pub fn propagate_cube_reference(
    netlist: &Netlist,
    cone: &mate_netlist::FaultCone,
    origins: &[NetId],
    cube: &NetCube,
) -> PropagationOutcome {
    let mut possibly = mate_netlist::BitSet::new(netlist.num_nets());
    for &origin in origins {
        possibly.insert(origin.index());
    }
    // Known constant values: the cube's literals, extended by 3-valued
    // constant propagation through the cone (so `we = 0` is derived from
    // the state literals that force it, and one literal can disable a whole
    // bank of write muxes).
    let mut known: std::collections::HashMap<NetId, bool> = cube.literals().collect();
    for &cell in cone.cells() {
        let inputs = netlist.cell(cell).inputs();
        let out = netlist.cell(cell).output();
        let mut p_mask = 0u8;
        let mut fixed_mask = 0u8;
        let mut fixed_vals = 0u8;
        for (pin, &net) in inputs.iter().enumerate() {
            if possibly.contains(net.index()) {
                p_mask |= 1 << pin;
            } else if let Some(&v) = known.get(&net) {
                fixed_mask |= 1 << pin;
                if v {
                    fixed_vals |= 1 << pin;
                }
            }
        }
        let tt = netlist
            .cell_type_of(cell)
            .truth_table()
            .expect("cone cells are combinational");
        let all_pins = ((1u16 << tt.inputs()) - 1) as u8;
        // Enumerate the free (unknown-but-unfaulty) assignments once,
        // deciding both masking (output independent of the possibly-faulty
        // pins everywhere) and constant-ness (output identical everywhere).
        let free_mask = all_pins & !p_mask & !fixed_mask;
        let mut masked = true;
        let mut constant: Option<bool> = None;
        let mut constant_valid = true;
        let mut free = free_mask as usize;
        loop {
            let base = free | fixed_vals as usize;
            if p_mask != 0 && !tt.masks_fault(p_mask, base) {
                masked = false;
                break;
            }
            if constant_valid {
                // Output for this assignment (faulty pins at 0 — they do
                // not matter when masked; when unmasked we bail anyway).
                let v = tt.eval(base & !(p_mask as usize));
                match constant {
                    None => constant = Some(v),
                    Some(prev) if prev != v => constant_valid = false,
                    _ => {}
                }
            }
            if free == 0 {
                break;
            }
            free = (free - 1) & free_mask as usize;
        }
        if !masked {
            possibly.insert(out.index());
            continue;
        }
        if constant_valid {
            if let Some(v) = constant {
                known.insert(out, v);
            }
        }
    }
    let mut first_faulty_endpoint = None;
    for ep in cone.endpoints() {
        let net = match *ep {
            mate_netlist::ConeEndpoint::SeqPin { cell, pin } => netlist.cell(cell).inputs()[pin],
            mate_netlist::ConeEndpoint::Output(net) => net,
        };
        if possibly.contains(net.index()) {
            first_faulty_endpoint = Some(net);
            break;
        }
    }
    PropagationOutcome {
        masked: first_faulty_endpoint.is_none(),
        possibly,
        first_faulty_endpoint,
    }
}

/// Branch width of the repair search: how many cuttable still-faulty gates
/// are considered as the next cut point at each level.
const REPAIR_BRANCH_WIDTH: usize = 6;

/// How many gates the backward walk from a faulty endpoint may visit while
/// collecting cut candidates.
const REPAIR_BACKWALK_LIMIT: usize = 96;

/// The propagation engine the repair search runs against.  `push` extends
/// the current candidate by the literals of `next` that `prev` lacks and
/// re-propagates; `pop` restores the parent state.  Both implementations
/// answer queries about the *current* candidate's propagation fixpoint.
trait RepairVerifier {
    fn push(&mut self, next: &NetCube, prev: &NetCube) -> usize;
    fn pop(&mut self, mark: usize);
    fn masked(&self) -> bool;
    fn first_faulty_endpoint(&self) -> Option<NetId>;
    fn possibly(&self, net: NetId) -> bool;
}

/// From-scratch propagation per candidate (a stack of full
/// [`PropagationOutcome`]s) — the specification path.
struct ReferenceVerifier<'a> {
    netlist: &'a Netlist,
    cone: &'a FaultCone,
    origins: &'a [NetId],
    stack: Vec<PropagationOutcome>,
}

impl<'a> ReferenceVerifier<'a> {
    fn start(netlist: &'a Netlist, cone: &'a FaultCone, origins: &'a [NetId]) -> Self {
        let root = propagate_cube_reference(netlist, cone, origins, &NetCube::top());
        Self {
            netlist,
            cone,
            origins,
            stack: vec![root],
        }
    }
}

impl RepairVerifier for ReferenceVerifier<'_> {
    fn push(&mut self, next: &NetCube, _prev: &NetCube) -> usize {
        let mark = self.stack.len();
        self.stack.push(propagate_cube_reference(
            self.netlist,
            self.cone,
            self.origins,
            next,
        ));
        mark
    }

    fn pop(&mut self, mark: usize) {
        self.stack.truncate(mark);
    }

    fn masked(&self) -> bool {
        self.stack.last().expect("root outcome present").masked
    }

    fn first_faulty_endpoint(&self) -> Option<NetId> {
        self.stack
            .last()
            .expect("root outcome present")
            .first_faulty_endpoint
    }

    fn possibly(&self, net: NetId) -> bool {
        self.stack
            .last()
            .expect("root outcome present")
            .possibly
            .contains(net.index())
    }
}

/// Incremental propagation via a [`ConeSession`] — the fast path.
struct SessionVerifier<'a> {
    session: ConeSession<'a>,
    marks: Vec<Mark>,
}

impl<'a> SessionVerifier<'a> {
    fn new(session: ConeSession<'a>) -> Self {
        Self {
            session,
            marks: Vec::new(),
        }
    }
}

impl RepairVerifier for SessionVerifier<'_> {
    fn push(&mut self, next: &NetCube, prev: &NetCube) -> usize {
        let delta = next
            .literals()
            .filter(|&(net, _)| prev.polarity_of(net).is_none());
        let mark = self.session.assume(delta);
        self.marks.push(mark);
        self.marks.len() - 1
    }

    fn pop(&mut self, mark: usize) {
        let restore = self.marks[mark];
        self.session.undo(restore);
        self.marks.truncate(mark);
    }

    fn masked(&self) -> bool {
        self.session.masked()
    }

    fn first_faulty_endpoint(&self) -> Option<NetId> {
        self.session.first_faulty_endpoint()
    }

    fn possibly(&self, net: NetId) -> bool {
        self.session.possibly(net)
    }
}

/// Reusable buffers for the backward cut walk: a flat FIFO plus a
/// generation-stamped visited set, so each repair node allocates neither a
/// queue nor a hash set.  Also carries a dense per-search mirror of the
/// shared [`GmtCache`] — the walk queries masking cubes for every visited
/// cell, and a direct `(type, faulty-mask)` slot lookup beats hashing into
/// the `RwLock`-guarded table on every probe.
struct CutWalk {
    queue: Vec<CellId>,
    stamp: Vec<u32>,
    gen: u32,
    gmt: Vec<Option<std::sync::Arc<[mate_netlist::PinCube]>>>,
}

impl CutWalk {
    fn new(netlist: &Netlist) -> Self {
        Self {
            queue: Vec::new(),
            stamp: vec![0; netlist.num_cells()],
            gen: 0,
            // One slot per (cell type, 8-bit faulty-pin mask).
            gmt: vec![None; netlist.library().len() * 256],
        }
    }

    /// The masking cubes for `(ty, p_mask)`, memoized locally and filled
    /// from the shared cache on first use.
    fn cubes(
        &mut self,
        cache: &GmtCache,
        library: &mate_netlist::Library,
        ty: mate_netlist::CellTypeId,
        p_mask: u8,
    ) -> std::sync::Arc<[mate_netlist::PinCube]> {
        let slot = &mut self.gmt[ty.index() * 256 + p_mask as usize];
        match slot {
            Some(hit) => std::sync::Arc::clone(hit),
            None => std::sync::Arc::clone(slot.insert(cache.cubes(library, ty, p_mask))),
        }
    }

    fn begin(&mut self) {
        self.queue.clear();
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Marks a cell visited; `true` when it was not seen this walk.
    fn mark(&mut self, cell: CellId) -> bool {
        let slot = &mut self.stamp[cell.index()];
        if *slot == self.gen {
            false
        } else {
            *slot = self.gen;
            true
        }
    }
}

/// Collects cut candidates for the first still-faulty endpoint: a backward
/// breadth-first walk from the endpoint's driver over possibly-faulty nets,
/// keeping the gates whose current faulty-pin set has masking cubes.
/// Nearest-to-the-endpoint cuts come first — those are the choke points
/// where many fault routes have already merged.  The memoized cube slice is
/// returned alongside each cut so the branch ordering and expansion below
/// reuse it instead of re-querying the shared cache.
fn relevant_cuts<V: RepairVerifier>(
    netlist: &Netlist,
    verifier: &V,
    endpoint: NetId,
    cache: &GmtCache,
    walk: &mut CutWalk,
) -> Vec<(CellId, std::sync::Arc<[mate_netlist::PinCube]>)> {
    walk.begin();
    if let mate_netlist::NetDriver::Cell(driver) = netlist.net(endpoint).driver() {
        walk.mark(driver);
        walk.queue.push(driver);
    }
    let mut out = Vec::new();
    let mut visited = 0usize;
    let mut head = 0usize;
    while head < walk.queue.len() {
        let cell = walk.queue[head];
        head += 1;
        visited += 1;
        if visited > REPAIR_BACKWALK_LIMIT {
            break;
        }
        if netlist.is_seq_cell(cell) {
            continue;
        }
        let inputs = netlist.cell(cell).inputs();
        let mut p_mask = 0u8;
        for (pin, &net) in inputs.iter().enumerate() {
            if verifier.possibly(net) {
                p_mask |= 1 << pin;
            }
        }
        if p_mask != 0 {
            let cubes = walk.cubes(
                cache,
                netlist.library(),
                netlist.cell(cell).type_id(),
                p_mask,
            );
            if !cubes.is_empty() {
                out.push((cell, cubes));
                if out.len() >= 2 * REPAIR_BRANCH_WIDTH {
                    break;
                }
            }
        }
        for (pin, &net) in inputs.iter().enumerate() {
            if p_mask & (1 << pin) == 0 {
                continue;
            }
            if let mate_netlist::NetDriver::Cell(driver) = netlist.net(net).driver() {
                if walk.mark(driver) {
                    walk.queue.push(driver);
                }
            }
        }
    }
    out
}

/// Iterative deepening over the term limit: cheap single-cut MATEs are
/// found first across *all* branches before expensive multi-cut ones
/// consume budget — this both mirrors the paper's preference for early
/// masking and yields a diverse MATE set.
fn repair_all<V: RepairVerifier>(
    netlist: &Netlist,
    cache: &GmtCache,
    max_terms: usize,
    budget: usize,
    found: &mut Vec<NetCube>,
    tried: &mut usize,
    verifier: &mut V,
) {
    let mut walk = CutWalk::new(netlist);
    for limit in 1..=max_terms {
        if *tried >= budget {
            break;
        }
        repair_rec(
            netlist,
            cache,
            &NetCube::top(),
            limit,
            found,
            tried,
            budget,
            verifier,
            &mut walk,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn repair_rec<V: RepairVerifier>(
    netlist: &Netlist,
    cache: &GmtCache,
    candidate: &NetCube,
    terms_left: usize,
    found: &mut Vec<NetCube>,
    tried: &mut usize,
    budget: usize,
    verifier: &mut V,
    walk: &mut CutWalk,
) {
    if *tried >= budget {
        return;
    }
    *tried += 1;
    if verifier.masked() {
        found.push(candidate.clone());
        return;
    }
    if terms_left == 0 {
        return;
    }
    // A MATE extending an already-found cube is subsumed; skip such
    // branches early.
    if found.iter().any(|f| f.subsumes(candidate)) {
        return;
    }
    // Goal-directed branching: collect cuts that can sever the fault flow
    // into the first still-faulty endpoint, preferring cheap cubes (a mux
    // select or an enable is both more likely to verify and more likely to
    // trigger at run time than a multi-literal operand condition).
    let endpoint = verifier
        .first_faulty_endpoint()
        .expect("unmasked propagation names an endpoint");
    let mut cuttable = relevant_cuts(netlist, verifier, endpoint, cache, walk);
    cuttable.sort_by_key(|(_, cubes)| {
        cubes
            .first()
            .map_or(usize::MAX, mate_netlist::PinCube::num_literals)
    });
    cuttable.truncate(REPAIR_BRANCH_WIDTH);
    for (cell, cubes) in cuttable {
        let inputs = netlist.cell(cell).inputs();
        for pc in cubes.iter() {
            let Some(gate_cube) =
                NetCube::from_literals(pc.literals().map(|(pin, pol)| (inputs[pin], pol)))
            else {
                continue;
            };
            let Some(next) = candidate.conjoin(&gate_cube) else {
                *tried += 1;
                continue;
            };
            if next.len() == candidate.len() {
                // No new information (literals already present) — would
                // recurse forever.
                continue;
            }
            let mark = verifier.push(&next, candidate);
            repair_rec(
                netlist,
                cache,
                &next,
                terms_left - 1,
                found,
                tried,
                budget,
                verifier,
                walk,
            );
            verifier.pop(mark);
            if *tried >= budget {
                return;
            }
        }
    }
}

/// Runs the MATE search for every wire in `wires`, in parallel.
///
/// The per-wire searches are independent; the paper parallelizes over faulty
/// flip-flops the same way.  Fault-cone sizes vary by orders of magnitude,
/// so the workers self-schedule over a shared atomic wire index (work
/// stealing by competitive claiming) instead of static chunking — a thread
/// that drew cheap wires immediately claims more.  Results land in input
/// order and are bit-identical for every thread count.
pub fn search_design(
    netlist: &Netlist,
    topo: &Topology,
    wires: &[NetId],
    config: &SearchConfig,
) -> DesignSearch {
    let start = Instant::now();
    let cache = GmtCache::new();
    // One compile-once arena for the whole design: every worker's
    // propagation sessions gather cone geometry from its flat arrays.
    let soa = SoaNetlist::build(netlist, topo);
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.threads
    }
    .max(1)
    .min(wires.len().max(1));

    let mut results: Vec<Option<WireSearchResult>> = vec![None; wires.len()];
    if threads <= 1 || wires.len() < 2 {
        let mut scratch = PropagationScratch::new();
        for (slot, &wire) in results.iter_mut().zip(wires) {
            *slot = Some(search_wire_scratch(
                netlist,
                topo,
                &soa,
                wire,
                config,
                &cache,
                &mut scratch,
            ));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let cache = &cache;
                    let next = &next;
                    let soa = &soa;
                    scope.spawn(move || {
                        let mut scratch = PropagationScratch::new();
                        let mut claimed: Vec<(usize, WireSearchResult)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= wires.len() {
                                break;
                            }
                            claimed.push((
                                i,
                                search_wire_scratch(
                                    netlist,
                                    topo,
                                    soa,
                                    wires[i],
                                    config,
                                    cache,
                                    &mut scratch,
                                ),
                            ));
                        }
                        claimed
                    })
                })
                .collect();
            for worker in workers {
                for (i, r) in worker.join().expect("search worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
    }
    let results: Vec<WireSearchResult> = results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect();

    let mut cones: Vec<usize> = results.iter().map(|r| r.cone_gates).collect();
    cones.sort_unstable();
    let stats = SearchStats {
        faulty_wires: results.len(),
        avg_cone: if cones.is_empty() {
            0.0
        } else {
            cones.iter().sum::<usize>() as f64 / cones.len() as f64
        },
        median_cone: cones.get(cones.len() / 2).copied().unwrap_or(0),
        unmaskable: results.iter().filter(|r| r.unmaskable).count(),
        candidates: results.iter().map(|r| r.candidates_tried as u64).sum(),
        num_mates: results.iter().map(|r| r.mates.len()).sum(),
        run_time: start.elapsed(),
        gmt_entries: cache.len(),
        max_wire_time: results
            .iter()
            .map(|r| r.search_time)
            .max()
            .unwrap_or_default(),
        total_wire_time: results.iter().map(|r| r.search_time).sum(),
    };
    DesignSearch { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::{figure1, figure1b, tmr_register};

    fn find(netlist: &Netlist, name: &str) -> NetId {
        netlist.find_net(name).unwrap()
    }

    #[test]
    fn figure1_wire_d_yields_paper_mate() {
        let (n, topo) = figure1();
        let r = search_wire(&n, &topo, find(&n, "d"), &SearchConfig::default());
        assert!(!r.unmaskable);
        assert_eq!(r.cone_gates, 3);
        assert_eq!(r.mates.len(), 1);
        let cube = &r.mates[0].cube;
        assert_eq!(
            cube.literals().collect::<Vec<_>>(),
            vec![(find(&n, "f"), false), (find(&n, "h"), true)]
        );
    }

    #[test]
    fn figure1_wire_e_is_unmaskable() {
        let (n, topo) = figure1();
        let r = search_wire(&n, &topo, find(&n, "e"), &SearchConfig::default());
        assert!(r.unmaskable, "path through INV to output h cannot be cut");
        assert!(r.mates.is_empty());
    }

    #[test]
    fn figure1_wire_c_is_unmaskable_via_xor() {
        // c feeds XOR gate B: no masking capability, so the c fault reaches
        // D and E mistrusted; D and E can be cut — wait: the path c->B->D
        // can be cut at D, and c->B->E at E. So c *is* maskable like d.
        let (n, topo) = figure1();
        let r = search_wire(&n, &topo, find(&n, "c"), &SearchConfig::default());
        assert!(!r.unmaskable);
        assert_eq!(r.mates.len(), 1);
    }

    #[test]
    fn figure1b_state_bits_match_expectation() {
        let (n, topo) = figure1b();
        let cfg = SearchConfig::default();
        // a is masked by ¬b; b by ¬a.
        let ra = search_wire(&n, &topo, find(&n, "a"), &cfg);
        assert_eq!(ra.mates.len(), 1);
        assert_eq!(
            ra.mates[0].cube.literals().collect::<Vec<_>>(),
            vec![(find(&n, "b"), false)]
        );
        let rb = search_wire(&n, &topo, find(&n, "b"), &cfg);
        assert_eq!(
            rb.mates[0].cube.literals().collect::<Vec<_>>(),
            vec![(find(&n, "a"), false)]
        );
        // c feeds the OR gate: masked when the other OR input d is 1.
        let rc = search_wire(&n, &topo, find(&n, "c"), &cfg);
        assert_eq!(
            rc.mates[0].cube.literals().collect::<Vec<_>>(),
            vec![(find(&n, "d"), true)]
        );
        // d is a primary output and feeds an XOR: unmaskable.
        assert!(search_wire(&n, &topo, find(&n, "d"), &cfg).unmaskable);
        // e feeds an XOR and an inverter chain into ff_a: unmaskable.
        assert!(search_wire(&n, &topo, find(&n, "e"), &cfg).unmaskable);
    }

    #[test]
    fn tmr_replica_masked_when_voting() {
        let (n, topo) = tmr_register();
        let cfg = SearchConfig::default();
        let r0 = find(&n, "r0");
        let r = search_wire(&n, &topo, r0, &cfg);
        assert!(!r.unmaskable);
        // Masked when the other two replicas agree AND the vote output is
        // still... the MAJ3 gate masks r0 when r1 == r2; the vote net also
        // reaches the primary output, so cubes must cut the voter itself.
        assert!(!r.mates.is_empty());
        for mate in &r.mates {
            // All MATE inputs are border wires (not in r0's cone).
            let cone = FaultCone::compute(&n, &topo, r0);
            for (net, _) in mate.cube.literals() {
                assert!(!cone.contains_net(net));
            }
        }
    }

    #[test]
    fn candidate_budget_limits_work() {
        let (n, topo) = figure1();
        let cfg = SearchConfig {
            max_candidates: 1,
            ..SearchConfig::default()
        };
        let r = search_wire(&n, &topo, find(&n, "d"), &cfg);
        assert!(r.candidates_tried <= 1);
    }

    #[test]
    fn design_search_aggregates() {
        let (n, topo) = figure1b();
        let wires = crate::ff_wires(&n, &topo);
        let ds = search_design(&n, &topo, &wires, &SearchConfig::default());
        assert_eq!(ds.stats.faulty_wires, 5);
        assert_eq!(ds.stats.unmaskable, 2); // d (observable), e (XOR path)
        assert_eq!(ds.stats.num_mates, 3); // a, b, c each have one MATE
        assert!(ds.stats.gmt_entries > 0);
        assert!(ds.stats.total_wire_time >= ds.stats.max_wire_time);
        let set = ds.into_mate_set();
        assert!(!set.is_empty());
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (n, topo) = tmr_register();
        let wires = crate::ff_wires(&n, &topo);
        let serial = search_design(
            &n,
            &topo,
            &wires,
            &SearchConfig {
                threads: 1,
                ..SearchConfig::default()
            },
        );
        for threads in [2, 3, 8] {
            let parallel = search_design(
                &n,
                &topo,
                &wires,
                &SearchConfig {
                    threads,
                    ..SearchConfig::default()
                },
            );
            let a: Vec<_> = serial.results.iter().map(|r| r.mates.clone()).collect();
            let b: Vec<_> = parallel.results.iter().map(|r| r.mates.clone()).collect();
            assert_eq!(a, b, "{threads}-thread work stealing diverged");
        }
    }

    #[test]
    fn reference_and_optimized_agree_on_examples() {
        for strategy in [SearchStrategy::Repair, SearchStrategy::Exhaustive] {
            for (n, topo) in [figure1(), figure1b(), tmr_register()] {
                let wires = crate::ff_wires(&n, &topo);
                let reference = search_design(
                    &n,
                    &topo,
                    &wires,
                    &SearchConfig {
                        strategy,
                        propagation: PropagationMode::Reference,
                        threads: 1,
                        ..SearchConfig::default()
                    },
                );
                let optimized = search_design(
                    &n,
                    &topo,
                    &wires,
                    &SearchConfig {
                        strategy,
                        propagation: PropagationMode::Optimized,
                        threads: 1,
                        ..SearchConfig::default()
                    },
                );
                for (a, b) in reference.results.iter().zip(&optimized.results) {
                    assert_eq!(a.mates, b.mates, "{strategy:?} mates diverge");
                    assert_eq!(a.candidates_tried, b.candidates_tried);
                    assert_eq!(a.unmaskable, b.unmaskable);
                }
            }
        }
    }

    /// SplitMix-style stream for the seeded minimize workload.
    fn mix(seed: u64, tag: u64, index: u64) -> u64 {
        let mut x = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag << 32 | index);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// The pre-optimization all-pairs subsumption scan, kept as the
    /// specification for `minimize_cubes`.
    fn minimize_cubes_reference(mut found: Vec<NetCube>) -> Vec<NetCube> {
        found.sort();
        found.dedup();
        let mut minimal: Vec<NetCube> = Vec::new();
        for cube in &found {
            if !minimal
                .iter()
                .any(|kept| kept != cube && kept.subsumes(cube))
            {
                minimal.retain(|kept| !cube.subsumes(kept) || kept == cube);
                minimal.push(cube.clone());
            }
        }
        minimal
    }

    #[test]
    fn minimize_cubes_matches_reference_on_seeded_workload() {
        for seed in 0..32u64 {
            // Cubes over a small net universe with 1–4 literals so subsumed
            // pairs, duplicates, and unrelated cubes all occur.
            let cubes: Vec<NetCube> = (0..120)
                .filter_map(|i| {
                    let nlits = 1 + (mix(seed, 1, i) % 4) as usize;
                    NetCube::from_literals((0..nlits).map(|l| {
                        let r = mix(seed, 2 + i, l as u64);
                        (NetId::from_index((r % 10) as usize), r >> 32 & 1 == 1)
                    }))
                })
                .collect();
            assert_eq!(
                minimize_cubes(cubes.clone()),
                minimize_cubes_reference(cubes),
                "seed {seed}"
            );
        }
    }
}
