//! Fault-masking terms (MATEs) — the paper's contribution.
//!
//! A *MATE* for a faulty wire `w` is a small conjunction of border-wire
//! literals that, when true in a clock cycle, proves that a single-event
//! upset on `w` in that cycle is logically masked before it reaches any
//! flip-flop input or primary output — the fault is *benign within one
//! clock cycle* and can be pruned from a fault-injection campaign.
//!
//! The pipeline follows Section 4 of the paper:
//!
//! 1. [`gmt`] — per cell type and faulty-pin set, compute the prime
//!    *gate-masking cubes* (memoized over the whole library).
//! 2. [`paths`] — enumerate fault-propagation paths through the fault cone
//!    up to a configurable depth.
//! 3. [`search`] — combine up to `max_terms` gate-masking cubes into MATE
//!    candidates (bounded by `max_candidates`) and keep those that cut every
//!    propagation path; search runs in parallel over faulty wires.
//! 4. [`mates`] — deduplicate and summarize MATEs across wires (one MATE can
//!    mask many faults).
//! 5. [`eval`] — replay an execution trace and compute the pruned fault
//!    space ([`eval::PruneMatrix`]).
//! 6. [`select`] — greedily rate MATEs by additionally-masked fault-space
//!    points and pick the top-N for FPGA integration.
//!
//! # Example
//!
//! ```
//! use mate::prelude::*;
//! use mate_netlist::examples::figure1;
//!
//! let (netlist, topo) = figure1();
//! let d = netlist.find_net("d").unwrap();
//! let result = search_wire(&netlist, &topo, d, &SearchConfig::default());
//! // The paper's border MATE for wire d: ¬f ∧ h.
//! assert_eq!(result.mates.len(), 1);
//! let f = netlist.find_net("f").unwrap();
//! let h = netlist.find_net("h").unwrap();
//! assert_eq!(
//!     result.mates[0].cube.literals().collect::<Vec<_>>(),
//!     vec![(f, false), (h, true)]
//! );
//! ```

pub mod eval;
pub mod gmt;
pub mod io;
pub mod mates;
pub mod multi;
pub mod paths;
pub mod propagate;
pub mod search;
pub mod select;

pub use eval::{
    evaluate, evaluate_scalar, evaluate_transposed, evaluate_transposed_blocks, EvalReport,
    PruneMatrix,
};
pub use gmt::GmtCache;
pub use io::{read_mates, write_mates};
pub use mate_netlist::MateError;
pub use mates::{summarize, Mate, MateSet};
pub use multi::{search_wire_set, search_wire_sets, MultiMate, MultiSearchResult};
pub use paths::{enumerate_paths, PathSet};
pub use propagate::{ConeSession, Mark, PropagationScratch};
pub use search::{
    cube_masks_wire, propagate_cube_reference, search_design, search_wire, search_wire_cached,
    search_wire_scratch, PropagationMode, PropagationOutcome, SearchConfig, SearchStats,
    SearchStrategy, WireSearchResult,
};
pub use select::{
    rank, rank_eager, rank_transposed, rank_transposed_blocks, select_top_n, Ranking,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::eval::{evaluate, EvalReport, PruneMatrix};
    pub use crate::gmt::GmtCache;
    pub use crate::mates::{summarize, Mate, MateSet};
    pub use crate::paths::{enumerate_paths, PathSet};
    pub use crate::propagate::PropagationScratch;
    pub use crate::search::{
        search_design, search_wire, PropagationMode, SearchConfig, SearchStats, SearchStrategy,
        WireSearchResult,
    };
    pub use crate::select::{rank, select_top_n, Ranking};
    pub use crate::{ff_wires, ff_wires_filtered};
}

use mate_netlist::{NetId, Netlist, Topology};

/// The faulty-wire set of the paper's "FF" fault model: the output of every
/// flip-flop.
pub fn ff_wires(netlist: &Netlist, topo: &Topology) -> Vec<NetId> {
    topo.seq_cells()
        .iter()
        .map(|&ff| netlist.cell(ff).output())
        .collect()
}

/// Flip-flop outputs whose net name satisfies `keep` — used for the paper's
/// "FF w/o RF" set, which drops register-file flip-flops.
///
/// # Example
///
/// ```
/// use mate_netlist::examples::counter;
///
/// let (n, topo) = counter(4);
/// // Keep only the low two counter bits.
/// let wires = mate::ff_wires_filtered(&n, &topo, |name| name < "q2");
/// assert_eq!(wires.len(), 2);
/// ```
pub fn ff_wires_filtered(
    netlist: &Netlist,
    topo: &Topology,
    mut keep: impl FnMut(&str) -> bool,
) -> Vec<NetId> {
    ff_wires(netlist, topo)
        .into_iter()
        .filter(|&w| keep(netlist.net(w).name()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::{counter, figure1b};

    #[test]
    fn ff_wires_lists_all_flipflops() {
        let (n, topo) = counter(5);
        let wires = ff_wires(&n, &topo);
        assert_eq!(wires.len(), 5);
        for w in wires {
            assert!(n.net(w).name().starts_with('q'));
        }
    }

    #[test]
    fn ff_wires_filtered_by_name() {
        let (n, topo) = figure1b();
        let all = ff_wires(&n, &topo);
        assert_eq!(all.len(), 5);
        let no_ab = ff_wires_filtered(&n, &topo, |name| name != "a" && name != "b");
        assert_eq!(no_ab.len(), 3);
    }
}
