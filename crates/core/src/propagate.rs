//! Allocation-free trust propagation over fault cones.
//!
//! [`crate::search::propagate_cube_reference`] — the paper-faithful verifier
//! — allocates a fresh [`mate_netlist::BitSet`] and a `HashMap` per MATE
//! candidate and re-enumerates every free pin assignment of every cone gate.
//! For searches that try up to 100 000 candidates per wire this dominates
//! the offline phase.  This module removes all three costs while staying
//! bit-identical to the reference:
//!
//! * [`PropagationScratch`] — a dense, generation-stamped per-net state
//!   array (3-valued constant knowledge + possibly-faulty flag).  Bumping
//!   the generation invalidates the whole array in O(1); nothing is
//!   allocated per candidate after warm-up.
//! * A gate-outcome memo keyed on `(CellTypeId, p_mask, fixed_mask,
//!   fixed_vals)`: the free-assignment enumeration that decides whether a
//!   gate masks its faulty pins (and whether its output is a derived
//!   constant) runs once per distinct situation and is a table lookup ever
//!   after.
//! * [`ConeSession`] — incremental re-propagation.  The repair search
//!   conjoins a few literals per branch; instead of re-walking the whole
//!   cone, the session seeds the child from the parent's propagation state
//!   and re-evaluates only the topological fan-out of the changed nets via
//!   an event-driven worklist, with an undo trail to restore the parent
//!   state when the branch returns.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use mate_netlist::{ConeEndpoint, ConeReaders, FaultCone, NetId, Netlist, SoaNetlist, TruthTable};

/// Cube literal present on this net (assumption made by the candidate).
const CUBE: u8 = 1 << 0;
/// Value of the cube literal.
const CUBE_VAL: u8 = 1 << 1;
/// Derived constant (3-valued constant propagation through the cone).
const KNOWN: u8 = 1 << 2;
/// Value of the derived constant.
const KNOWN_VAL: u8 = 1 << 3;
/// The net is possibly faulty.
const POSSIBLY: u8 = 1 << 4;

/// Gate-outcome memo value: the gate masks its possibly-faulty pins.
const OUT_MASKED: u8 = 1 << 0;
/// The gate output is a derived constant under the fixed pins.
const OUT_CONST: u8 = 1 << 1;
/// Value of the derived constant output.
const OUT_CONST_VAL: u8 = 1 << 2;

/// Number of slots in the direct-mapped memo front cache (power of two).
const MEMO_CACHE_SLOTS: usize = 1 << 15;
/// Shift extracting the cache slot from the mixed key (64 - log2(slots)).
const MEMO_CACHE_SHIFT: u32 = 64 - 15;

/// Multiplicative hasher for the packed `u64` memo keys — the memo lookup
/// sits on the innermost propagation loop, where SipHash is measurable.
#[derive(Default)]
struct FxU64(u64);

impl Hasher for FxU64 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Reusable propagation state.  One scratch per worker thread serves every
/// wire search and every candidate; per-candidate work touches only the
/// nets that actually change.
#[derive(Default)]
pub struct PropagationScratch {
    /// Per-net packed `stamp << 8 | state`: the low byte is the state bits,
    /// valid iff the high bits equal `gen`.  One array (one cache line per
    /// net) instead of separate state/stamp arrays — `read` sits on the
    /// innermost propagation loop.
    packed: Vec<u64>,
    gen: u32,
    /// Gate-outcome memo: `(type, p_mask, fixed_mask, fixed_vals)` packed
    /// into a `u64` key, outcome bits as value.
    memo: HashMap<u64, u8, BuildHasherDefault<FxU64>>,
    /// Identity of the library the memo was filled against (cell-type ids
    /// are only meaningful per library).
    lib_tag: usize,
    /// Direct-mapped front cache for `memo`, indexed by a hash of the key.
    /// Slot sentinel is `u64::MAX` (never a real key).
    memo_cache: Vec<(u64, u8)>,
    /// Worklist bits, one per cone cell position.  Cone cells are
    /// topologically sorted and a gate's readers sit at strictly larger
    /// positions, so draining lowest-bit-first is an exact replacement for
    /// a min-heap — without the per-event sift cost.
    queued: Vec<u64>,
    /// Lowest `queued` word that may hold a set bit.
    dirty_lo: usize,
    /// Flattened per-position cone geometry, rebuilt per session so the
    /// inner loop never chases `Netlist` indirections or binary-searches
    /// the reader index: cell-type index, output net, input nets (CSR via
    /// `pos_pin_off`), and reader positions (CSR via `pos_reader_off`).
    pos_ty: Vec<u32>,
    pos_out: Vec<u32>,
    pos_pin_off: Vec<u32>,
    pos_pins: Vec<u32>,
    pos_reader_off: Vec<u32>,
    pos_readers: Vec<u32>,
    /// Undo trail: `(net index, previous state byte)`.
    trail: Vec<(u32, u8)>,
    /// How many endpoints of the current session's cone read each net
    /// (dense; reset per session via `ep_nets`).
    ep_weight: Vec<u32>,
    /// Net indices carrying endpoint weight, for O(endpoints) reset.
    ep_nets: Vec<u32>,
    /// Endpoint-weighted count of possibly-faulty nets, maintained on every
    /// state write so `masked()` is O(1) instead of an endpoint scan per
    /// candidate.
    faulty_weight: u64,
}

impl PropagationScratch {
    /// Creates an empty scratch; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized gate outcomes (for diagnostics).
    pub fn memo_entries(&self) -> usize {
        self.memo.len()
    }

    /// Starts a propagation session for `origins` over `cone`: runs the
    /// initial full propagation of the empty (always-true) cube, then
    /// serves incremental [`ConeSession::assume`] / [`ConeSession::undo`]
    /// calls.
    ///
    /// `soa` must be `SoaNetlist::build(netlist, topo)` for the same design
    /// — built once per design, it serves every wire search; the cone
    /// geometry is gathered from its flat arrays instead of walking `Cell`
    /// objects.  `readers` must be `cone.reader_index(netlist)` — passed in
    /// so the per-wire index is built once, not per session.
    ///
    /// # Panics
    ///
    /// Panics when `soa` does not describe `netlist`.
    pub fn session<'a>(
        &'a mut self,
        netlist: &'a Netlist,
        soa: &SoaNetlist,
        cone: &'a FaultCone,
        readers: &'a ConeReaders,
        origins: &[NetId],
    ) -> ConeSession<'a> {
        assert!(
            soa.num_nets() == netlist.num_nets() && soa.num_cells() == netlist.num_cells(),
            "arena incompatible with this netlist"
        );
        let lib_tag = Arc::as_ptr(netlist.library()) as usize;
        if self.memo_cache.is_empty() {
            self.memo_cache = vec![(u64::MAX, 0); MEMO_CACHE_SLOTS];
        }
        if self.lib_tag != lib_tag {
            self.memo.clear();
            self.memo_cache.fill((u64::MAX, 0));
            self.lib_tag = lib_tag;
        }
        let nets = netlist.num_nets();
        if self.packed.len() < nets {
            self.packed.resize(nets, 0);
            self.ep_weight.resize(nets, 0);
        }
        for &n in &self.ep_nets {
            self.ep_weight[n as usize] = 0;
        }
        self.ep_nets.clear();
        for ep in cone.endpoints() {
            let net = match *ep {
                ConeEndpoint::SeqPin { cell, pin } => netlist.cell(cell).inputs()[pin],
                ConeEndpoint::Output(net) => net,
            };
            self.ep_weight[net.index()] += 1;
            self.ep_nets.push(net.index() as u32);
        }
        self.faulty_weight = 0;
        if self.gen == u32::MAX {
            self.packed.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        let words = cone.cells().len().div_ceil(64);
        self.queued.clear();
        self.queued.resize(words, 0);
        self.dirty_lo = words;
        self.trail.clear();

        self.pos_ty.clear();
        self.pos_out.clear();
        self.pos_pins.clear();
        self.pos_readers.clear();
        self.pos_pin_off.clear();
        self.pos_reader_off.clear();
        self.pos_pin_off.push(0);
        self.pos_reader_off.push(0);
        for &cell in cone.cells() {
            // One indexed gather per cell from the arena's flat arrays —
            // no `Cell` pointer chasing on the session-setup path.
            let row = soa.comb_row_of(cell).expect("cone cells are combinational");
            self.pos_ty.push(soa.row_type(row));
            self.pos_out.push(soa.row_out(row));
            self.pos_pins.extend_from_slice(soa.row_pins(row));
            self.pos_pin_off.push(self.pos_pins.len() as u32);
            self.pos_readers
                .extend_from_slice(readers.of(NetId::from_index(soa.row_out(row) as usize)));
            self.pos_reader_off.push(self.pos_readers.len() as u32);
        }

        let mut session = ConeSession {
            scratch: self,
            netlist,
            cone,
            readers,
        };
        for &origin in origins {
            let old = session.read(origin.index());
            session.write_untrailed(origin.index(), old, POSSIBLY);
        }
        // Initial fixpoint: one in-order sweep over the whole cone, exactly
        // like the reference pass.  No trail — `undo` never unwinds past
        // session creation.
        for pos in 0..cone.cells().len() {
            session.recompute(pos, false);
        }
        // The sweep reached the fixpoint; drop the reader events it queued
        // so the first `assume` does not re-prove it.
        session.scratch.queued.fill(0);
        session.scratch.dirty_lo = words;
        session
    }
}

/// Undo point returned by [`ConeSession::assume`].
#[derive(Clone, Copy, Debug)]
pub struct Mark(usize);

/// An active propagation session: the scratch bound to one fault cone, with
/// the propagation state of the current candidate cube materialized.
pub struct ConeSession<'a> {
    scratch: &'a mut PropagationScratch,
    netlist: &'a Netlist,
    cone: &'a FaultCone,
    readers: &'a ConeReaders,
}

impl ConeSession<'_> {
    /// Current state byte of a net (0 when untouched this session).
    #[inline]
    fn read(&self, net: usize) -> u8 {
        let e = self.scratch.packed[net];
        if (e >> 8) as u32 == self.scratch.gen {
            e as u8
        } else {
            0
        }
    }

    /// Writes `state` to `net`; `old` must be the current `read(net)`.
    #[inline]
    fn write_untrailed(&mut self, net: usize, old: u8, state: u8) {
        if (old ^ state) & POSSIBLY != 0 {
            let w = u64::from(self.scratch.ep_weight[net]);
            if state & POSSIBLY != 0 {
                self.scratch.faulty_weight += w;
            } else {
                debug_assert!(self.scratch.faulty_weight >= w);
                self.scratch.faulty_weight -= w;
            }
        }
        self.scratch.packed[net] = (self.scratch.gen as u64) << 8 | state as u64;
    }

    #[inline]
    fn write_trailed(&mut self, net: usize, old: u8, state: u8) {
        self.scratch.trail.push((net as u32, old));
        self.write_untrailed(net, old, state);
    }

    #[inline]
    fn enqueue(&mut self, pos: u32) {
        let (word, bit) = (pos as usize / 64, pos as usize % 64);
        self.scratch.queued[word] |= 1 << bit;
        if word < self.scratch.dirty_lo {
            self.scratch.dirty_lo = word;
        }
    }

    /// Re-evaluates the cone gate at `pos` from its current input states
    /// and, if its output state changes, records the old state (when
    /// `trailed`) and enqueues the gate's cone readers.
    fn recompute(&mut self, pos: usize, trailed: bool) {
        let pin_lo = self.scratch.pos_pin_off[pos] as usize;
        let pin_hi = self.scratch.pos_pin_off[pos + 1] as usize;
        let mut p_mask = 0u8;
        let mut fixed_mask = 0u8;
        let mut fixed_vals = 0u8;
        for (pin, i) in (pin_lo..pin_hi).enumerate() {
            let net = self.scratch.pos_pins[i] as usize;
            let s = self.read(net);
            if s & POSSIBLY != 0 {
                p_mask |= 1 << pin;
            } else if s & KNOWN != 0 {
                fixed_mask |= 1 << pin;
                if s & KNOWN_VAL != 0 {
                    fixed_vals |= 1 << pin;
                }
            } else if s & CUBE != 0 {
                fixed_mask |= 1 << pin;
                if s & CUBE_VAL != 0 {
                    fixed_vals |= 1 << pin;
                }
            }
        }
        let key = (self.scratch.pos_ty[pos] as u64) << 24
            | (p_mask as u64) << 16
            | (fixed_mask as u64) << 8
            | fixed_vals as u64;
        let slot = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> MEMO_CACHE_SHIFT) as usize;
        let outcome = if self.scratch.memo_cache[slot].0 == key {
            self.scratch.memo_cache[slot].1
        } else {
            let o = match self.scratch.memo.get(&key) {
                Some(&o) => o,
                None => {
                    let cell = self.cone.cells()[pos];
                    let tt = self
                        .netlist
                        .cell_type_of(cell)
                        .truth_table()
                        .expect("cone cells are combinational");
                    let o = gate_outcome(tt, p_mask, fixed_mask, fixed_vals);
                    self.scratch.memo.insert(key, o);
                    o
                }
            };
            self.scratch.memo_cache[slot] = (key, o);
            o
        };
        let out = self.scratch.pos_out[pos] as usize;
        let old = self.read(out);
        let derived = if outcome & OUT_MASKED == 0 {
            POSSIBLY
        } else if outcome & OUT_CONST != 0 {
            KNOWN
                | if outcome & OUT_CONST_VAL != 0 {
                    KNOWN_VAL
                } else {
                    0
                }
        } else {
            0
        };
        let new = (old & (CUBE | CUBE_VAL)) | derived;
        if new != old {
            if trailed {
                self.write_trailed(out, old, new);
            } else {
                self.write_untrailed(out, old, new);
            }
            let rd_lo = self.scratch.pos_reader_off[pos] as usize;
            let rd_hi = self.scratch.pos_reader_off[pos + 1] as usize;
            for i in rd_lo..rd_hi {
                let r = self.scratch.pos_readers[i];
                debug_assert!(r as usize > pos, "cone cells are topologically sorted");
                self.enqueue(r);
            }
        }
    }

    /// Drains the worklist in topological-position order.  Recomputes only
    /// ever enqueue strictly larger positions, so one lowest-bit-first scan
    /// over the `queued` words visits events in exactly the order the old
    /// min-heap produced.
    fn settle(&mut self) {
        let words = self.scratch.queued.len();
        let mut w = self.scratch.dirty_lo;
        while w < words {
            let bits = self.scratch.queued[w];
            if bits == 0 {
                w += 1;
                continue;
            }
            let bit = bits.trailing_zeros() as usize;
            self.scratch.queued[w] = bits & (bits - 1);
            self.recompute(w * 64 + bit, true);
        }
        self.scratch.dirty_lo = words;
    }

    /// Conjoins additional cube literals onto the current candidate and
    /// incrementally re-propagates their fan-out.  Literals already assumed
    /// with the same polarity are no-ops; assuming the opposite polarity of
    /// an existing literal is a caller bug (the candidate cube would be
    /// unsatisfiable) and panics in debug builds.
    ///
    /// Returns a [`Mark`]; pass it to [`ConeSession::undo`] to restore the
    /// parent candidate's state.
    pub fn assume(&mut self, literals: impl Iterator<Item = (NetId, bool)>) -> Mark {
        let mark = Mark(self.scratch.trail.len());
        for (net, value) in literals {
            let old = self.read(net.index());
            let lit = CUBE | if value { CUBE_VAL } else { 0 };
            if old & (CUBE | CUBE_VAL) == lit {
                continue;
            }
            debug_assert!(old & CUBE == 0, "contradictory literal assumed");
            self.write_trailed(net.index(), old, old | lit);
            let readers = self.readers;
            for &r in readers.of(net) {
                self.enqueue(r);
            }
        }
        self.settle();
        Mark(mark.0)
    }

    /// Rolls the propagation state back to `mark` (the parent candidate).
    pub fn undo(&mut self, mark: Mark) {
        while self.scratch.trail.len() > mark.0 {
            let (net, old) = self.scratch.trail.pop().expect("trail length checked");
            let net = net as usize;
            // Trailed nets were written this session, so the stamp is
            // current and the raw state byte is live.
            let cur = self.scratch.packed[net] as u8;
            if (cur ^ old) & POSSIBLY != 0 {
                let w = u64::from(self.scratch.ep_weight[net]);
                if old & POSSIBLY != 0 {
                    self.scratch.faulty_weight += w;
                } else {
                    debug_assert!(self.scratch.faulty_weight >= w);
                    self.scratch.faulty_weight -= w;
                }
            }
            self.scratch.packed[net] = (self.scratch.gen as u64) << 8 | old as u64;
        }
    }

    /// `true` iff no cone endpoint is possibly faulty under the current
    /// candidate — the fault is masked within one cycle.  O(1): the
    /// endpoint-weighted possibly-faulty count is maintained on every state
    /// write instead of scanning the endpoint list per query.
    pub fn masked(&self) -> bool {
        self.scratch.faulty_weight == 0
    }

    /// The first (in endpoint order) still-faulty endpoint net, if any.
    pub fn first_faulty_endpoint(&self) -> Option<NetId> {
        for ep in self.cone.endpoints() {
            let net = match *ep {
                ConeEndpoint::SeqPin { cell, pin } => self.netlist.cell(cell).inputs()[pin],
                ConeEndpoint::Output(net) => net,
            };
            if self.read(net.index()) & POSSIBLY != 0 {
                return Some(net);
            }
        }
        None
    }

    /// Whether `net` is possibly faulty under the current candidate.
    pub fn possibly(&self, net: NetId) -> bool {
        self.read(net.index()) & POSSIBLY != 0
    }
}

/// The free-assignment enumeration of the reference verifier, run once per
/// distinct `(truth table, p_mask, fixed_mask, fixed_vals)` situation:
/// decides whether the gate masks its possibly-faulty pins everywhere and
/// whether its output is a constant under the fixed pins.
fn gate_outcome(tt: &TruthTable, p_mask: u8, fixed_mask: u8, fixed_vals: u8) -> u8 {
    let all_pins = ((1u16 << tt.inputs()) - 1) as u8;
    let free_mask = all_pins & !p_mask & !fixed_mask;
    let mut masked = true;
    let mut constant: Option<bool> = None;
    let mut constant_valid = true;
    let mut free = free_mask as usize;
    loop {
        let base = free | fixed_vals as usize;
        if p_mask != 0 && !tt.masks_fault(p_mask, base) {
            masked = false;
            break;
        }
        if constant_valid {
            let v = tt.eval(base & !(p_mask as usize));
            match constant {
                None => constant = Some(v),
                Some(prev) if prev != v => constant_valid = false,
                _ => {}
            }
        }
        if free == 0 {
            break;
        }
        free = (free - 1) & free_mask as usize;
    }
    let mut out = 0u8;
    if masked {
        out |= OUT_MASKED;
        if constant_valid {
            if let Some(v) = constant {
                out |= OUT_CONST;
                if v {
                    out |= OUT_CONST_VAL;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::propagate_cube_reference;
    use mate_netlist::examples::{figure1, figure1b, tmr_register};
    use mate_netlist::NetCube;

    fn check_equal(
        netlist: &Netlist,
        soa: &SoaNetlist,
        cone: &FaultCone,
        origins: &[NetId],
        cube: &NetCube,
    ) {
        let reference = propagate_cube_reference(netlist, cone, origins, cube);
        let mut scratch = PropagationScratch::new();
        let readers = cone.reader_index(netlist);
        let mut session = scratch.session(netlist, soa, cone, &readers, origins);
        session.assume(cube.literals());
        assert_eq!(session.masked(), reference.masked, "masked diverges");
        assert_eq!(
            session.first_faulty_endpoint(),
            reference.first_faulty_endpoint,
            "endpoint diverges"
        );
        for net in (0..netlist.num_nets()).map(NetId::from_index) {
            assert_eq!(
                session.possibly(net),
                reference.possibly.contains(net.index()),
                "possibly set diverges on {net:?}"
            );
        }
    }

    #[test]
    fn empty_cube_matches_reference_on_examples() {
        for (n, topo) in [figure1(), figure1b(), tmr_register()] {
            let soa = SoaNetlist::build(&n, &topo);
            for wire in crate::ff_wires(&n, &topo) {
                let cone = FaultCone::compute(&n, &topo, wire);
                check_equal(&n, &soa, &cone, &[wire], &NetCube::top());
            }
        }
    }

    #[test]
    fn figure1_paper_mate_masks_via_session() {
        let (n, topo) = figure1();
        let d = n.find_net("d").unwrap();
        let f = n.find_net("f").unwrap();
        let h = n.find_net("h").unwrap();
        let soa = SoaNetlist::build(&n, &topo);
        let cone = FaultCone::compute(&n, &topo, d);
        let cube = NetCube::from_literals([(f, false), (h, true)]).unwrap();
        check_equal(&n, &soa, &cone, &[d], &cube);

        let mut scratch = PropagationScratch::new();
        let readers = cone.reader_index(&n);
        let mut session = scratch.session(&n, &soa, &cone, &readers, &[d]);
        assert!(!session.masked());
        let mark = session.assume(cube.literals());
        assert!(session.masked());
        session.undo(mark);
        assert!(!session.masked(), "undo must restore the parent state");
    }

    #[test]
    fn incremental_pushes_match_from_scratch() {
        let (n, topo) = tmr_register();
        let r0 = n.find_net("r0").unwrap();
        let soa = SoaNetlist::build(&n, &topo);
        let cone = FaultCone::compute(&n, &topo, r0);
        let border = cone.border_nets(&n);
        let readers = cone.reader_index(&n);
        let mut scratch = PropagationScratch::new();
        let mut session = scratch.session(&n, &soa, &cone, &readers, &[r0]);
        // Push border literals one at a time; after each push the session
        // must equal a from-scratch propagation of the accumulated cube.
        let mut acc = NetCube::top();
        for (i, &net) in border.iter().enumerate() {
            let polarity = i % 2 == 0;
            let lit = NetCube::literal(net, polarity);
            let Some(next) = acc.conjoin(&lit) else {
                continue;
            };
            session.assume(lit.literals());
            acc = next;
            let reference = propagate_cube_reference(&n, &cone, &[r0], &acc);
            assert_eq!(session.masked(), reference.masked);
            for net in (0..n.num_nets()).map(NetId::from_index) {
                assert_eq!(
                    session.possibly(net),
                    reference.possibly.contains(net.index())
                );
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_cones() {
        let (n, topo) = figure1b();
        let soa = SoaNetlist::build(&n, &topo);
        let mut scratch = PropagationScratch::new();
        for wire in crate::ff_wires(&n, &topo) {
            let cone = FaultCone::compute(&n, &topo, wire);
            let readers = cone.reader_index(&n);
            let reference = propagate_cube_reference(&n, &cone, &[wire], &NetCube::top());
            let session = scratch.session(&n, &soa, &cone, &readers, &[wire]);
            assert_eq!(session.masked(), reference.masked);
        }
        assert!(scratch.memo_entries() > 0);
    }

    #[test]
    #[should_panic(expected = "arena incompatible")]
    fn mismatched_arena_panics() {
        let (n, topo) = figure1b();
        let (other, other_topo) = tmr_register();
        let soa = SoaNetlist::build(&other, &other_topo);
        let wire = crate::ff_wires(&n, &topo)[0];
        let cone = FaultCone::compute(&n, &topo, wire);
        let readers = cone.reader_index(&n);
        let mut scratch = PropagationScratch::new();
        let _ = scratch.session(&n, &soa, &cone, &readers, &[wire]);
    }
}
