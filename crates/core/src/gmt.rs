//! Memoized gate-masking terms (step 1 of the paper's heuristic).
//!
//! For every cell type of the library and every subset of faulty input pins,
//! the masking cubes are computed once (via
//! [`mate_netlist::masking_cubes`]) and shared by all wire searches.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use mate_netlist::{masking_cubes, CellFn, CellTypeId, Library, PinCube};

/// A thread-safe memo table of gate-masking cubes.
///
/// The table is read-mostly: after a short warm-up every lookup is a hit, so
/// entries live behind an [`RwLock`] and are returned as shared
/// `Arc<[PinCube]>` slices — concurrent wire searches neither clone the cube
/// vectors nor serialize on a mutex.
///
/// # Example
///
/// ```
/// use mate::GmtCache;
/// use mate_netlist::Library;
///
/// let lib = Library::open15();
/// let cache = GmtCache::new();
/// let mux = lib.find("MUX2").unwrap();
/// // Faulty select pin of a MUX2: masked when both data inputs agree.
/// let cubes = cache.cubes(&lib, mux, 0b001);
/// assert_eq!(cubes.len(), 2);
/// ```
/// Cache key: cell type plus the faulty-pin mask.
type GmtKey = (CellTypeId, u8);

#[derive(Debug, Default)]
pub struct GmtCache {
    table: RwLock<HashMap<GmtKey, Arc<[PinCube]>>>,
}

impl GmtCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The masking cubes for cell type `ty` with faulty pins `faulty_mask`.
    ///
    /// Returns an empty slice for flip-flops (a fault that reached a
    /// flip-flop data pin is latched, never masked) and for gates without
    /// masking capability for this faulty set (e.g. XOR).
    ///
    /// # Panics
    ///
    /// Panics if `faulty_mask` selects no pin of a combinational cell.
    pub fn cubes(&self, library: &Library, ty: CellTypeId, faulty_mask: u8) -> Arc<[PinCube]> {
        if let Some(hit) = self.table.read().unwrap().get(&(ty, faulty_mask)) {
            return Arc::clone(hit);
        }
        let cell = library.cell_type(ty);
        let cubes: Arc<[PinCube]> = match cell.func() {
            CellFn::Dff => Arc::from([]),
            CellFn::Comb(tt) => {
                if tt.inputs() == 0 {
                    Arc::from([])
                } else {
                    Arc::from(masking_cubes(tt, faulty_mask))
                }
            }
        };
        // Two threads may race to compute the same entry; both arrive at the
        // same value, so keep whichever got there first and share it.
        Arc::clone(
            self.table
                .write()
                .unwrap()
                .entry((ty, faulty_mask))
                .or_insert(cubes),
        )
    }

    /// Returns `true` if the cell can mask a fault on the given pins at all.
    pub fn can_mask(&self, library: &Library, ty: CellTypeId, faulty_mask: u8) -> bool {
        !self.cubes(library, ty, faulty_mask).is_empty()
    }

    /// Number of memoized entries (for diagnostics).
    pub fn len(&self) -> usize {
        self.table.read().unwrap().len()
    }

    /// Returns `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::Library;

    #[test]
    fn caches_and_repeats() {
        let lib = Library::open15();
        let cache = GmtCache::new();
        let and2 = lib.find("AND2").unwrap();
        assert!(cache.is_empty());
        let first = cache.cubes(&lib, and2, 0b01);
        let second = cache.cubes(&lib, and2, 0b01);
        assert_eq!(first, second);
        // Repeated lookups share one allocation instead of cloning.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn xor_cannot_mask() {
        let lib = Library::open15();
        let cache = GmtCache::new();
        let xor2 = lib.find("XOR2").unwrap();
        assert!(!cache.can_mask(&lib, xor2, 0b01));
        assert!(!cache.can_mask(&lib, xor2, 0b10));
    }

    #[test]
    fn dff_never_masks() {
        let lib = Library::open15();
        let cache = GmtCache::new();
        let dff = lib.find("DFF").unwrap();
        assert!(cache.cubes(&lib, dff, 0b1).is_empty());
    }

    #[test]
    fn distinct_faulty_sets_are_distinct_entries() {
        let lib = Library::open15();
        let cache = GmtCache::new();
        let mux = lib.find("MUX2").unwrap();
        let sel = cache.cubes(&lib, mux, 0b001);
        let a = cache.cubes(&lib, mux, 0b010);
        assert_ne!(sel, a);
        assert_eq!(cache.len(), 2);
    }
}
