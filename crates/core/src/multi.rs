//! Multi-bit fault-masking terms — the extension sketched in the paper's
//! Section 6.2 ("Conceptually, also 2-bit faults (or more) could be
//! considered in the construction of MATEs").
//!
//! A [`MultiMate`] proves that the *simultaneous* upset of a whole set of
//! flip-flops is masked within one cycle.  The construction reuses the
//! goal-directed repair search over the joint fault cone; the
//! trust-propagation verifier generalizes by seeding the possibly-faulty
//! set with every origin.

use mate_netlist::{FaultCone, NetCube, NetId, Netlist, SoaNetlist, Topology};

use crate::gmt::GmtCache;
use crate::paths::enumerate_paths;
use crate::search::{repair_multi, SearchConfig};

/// A fault-masking term for a simultaneous multi-bit fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiMate {
    /// The conjunction of border-wire literals.
    pub cube: NetCube,
    /// The simultaneously faulty wires this term masks.
    pub wires: Vec<NetId>,
}

/// Search result for one faulty-wire set.
#[derive(Clone, Debug)]
pub struct MultiSearchResult {
    /// The faulty wires.
    pub wires: Vec<NetId>,
    /// Gates in the joint fault cone.
    pub cone_gates: usize,
    /// Candidates tried.
    pub candidates_tried: usize,
    /// `true` when no MATE can exist for this set.
    pub unmaskable: bool,
    /// The discovered multi-bit MATEs.
    pub mates: Vec<MultiMate>,
}

/// Searches MATEs for a *simultaneous* fault on all `wires`.
///
/// Always uses the goal-directed repair strategy (the combination search
/// does not generalize to joint cones).  A returned term guarantees: if the
/// cube holds in cycle `t`, flipping **all** the wires in cycle `t` is
/// masked within one cycle.
///
/// # Panics
///
/// Panics if `wires` is empty.
///
/// # Example
///
/// ```
/// use mate::multi::search_wire_set;
/// use mate::SearchConfig;
/// use mate_netlist::examples::figure1b;
///
/// let (n, topo) = figure1b();
/// let a = n.find_net("a").unwrap();
/// let b = n.find_net("b").unwrap();
/// // A double fault on (a, b) can never be masked: the AND gate computing
/// // c' sees both inputs faulty.
/// let result = search_wire_set(&n, &topo, &[a, b], &SearchConfig::default());
/// assert!(result.mates.is_empty());
/// ```
pub fn search_wire_set(
    netlist: &Netlist,
    topo: &Topology,
    wires: &[NetId],
    config: &SearchConfig,
) -> MultiSearchResult {
    let soa = SoaNetlist::build(netlist, topo);
    let cache = GmtCache::new();
    search_wire_set_shared(netlist, topo, &soa, &cache, wires, config)
}

/// Searches MATEs for many simultaneous-fault wire sets, flattening the
/// netlist once: one [`SoaNetlist::build`] and one [`GmtCache`] are shared
/// across every set, so a sweep over adjacent flip-flop pairs (the
/// `multibit` workload) pays the arena cost once instead of per set.
/// Results come back in the order of `sets`, identical to calling
/// [`search_wire_set`] per set.
///
/// # Panics
///
/// Panics if any set is empty.
pub fn search_wire_sets(
    netlist: &Netlist,
    topo: &Topology,
    sets: &[Vec<NetId>],
    config: &SearchConfig,
) -> Vec<MultiSearchResult> {
    let soa = SoaNetlist::build(netlist, topo);
    let cache = GmtCache::new();
    sets.iter()
        .map(|wires| search_wire_set_shared(netlist, topo, &soa, &cache, wires, config))
        .collect()
}

/// The shared-arena body of [`search_wire_set`] / [`search_wire_sets`].
fn search_wire_set_shared(
    netlist: &Netlist,
    topo: &Topology,
    soa: &SoaNetlist,
    cache: &GmtCache,
    wires: &[NetId],
    config: &SearchConfig,
) -> MultiSearchResult {
    assert!(!wires.is_empty(), "need at least one faulty wire");
    let cone = FaultCone::compute_multi(netlist, topo, wires);
    let mut result = MultiSearchResult {
        wires: wires.to_vec(),
        cone_gates: cone.num_gates(),
        candidates_tried: 0,
        unmaskable: false,
        mates: Vec::new(),
    };

    // Per-origin path enumeration for the early-abort checks.
    for &wire in wires {
        let single_cone = FaultCone::compute(netlist, topo, wire);
        let paths = enumerate_paths(netlist, topo, &single_cone, config.depth, config.max_paths);
        if paths.hopeless() {
            result.unmaskable = true;
            return result;
        }
    }

    let found = repair_multi(
        netlist,
        soa,
        &cone,
        wires,
        cache,
        config,
        &mut result.candidates_tried,
    );
    result.mates = found
        .into_iter()
        .map(|cube| MultiMate {
            cube,
            wires: wires.to_vec(),
        })
        .collect();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::tmr_register;

    #[test]
    fn tmr_single_fault_maskable_double_fault_not() {
        // The majority voter masks one faulty replica, never two.
        let (n, topo) = tmr_register();
        let r0 = n.find_net("r0").unwrap();
        let r1 = n.find_net("r1").unwrap();
        let cfg = SearchConfig::default();
        let single = search_wire_set(&n, &topo, &[r0], &cfg);
        assert!(!single.mates.is_empty());
        let double = search_wire_set(&n, &topo, &[r0, r1], &cfg);
        assert!(double.mates.is_empty(), "2-of-3 faulty replicas outvote");
    }

    #[test]
    fn independent_wires_mask_jointly() {
        // figure1b: a is masked by ¬b and b by ¬a — but jointly they meet
        // at the same AND gate, so the pair is unmaskable.  Pair (a, c)
        // lives in disjoint cones and is masked by ¬b ∧ d.
        use mate_netlist::examples::figure1b;
        let (n, topo) = figure1b();
        let a = n.find_net("a").unwrap();
        let c = n.find_net("c").unwrap();
        let cfg = SearchConfig::default();
        let result = search_wire_set(&n, &topo, &[a, c], &cfg);
        assert_eq!(result.mates.len(), 1);
        let lits: Vec<(String, bool)> = result.mates[0]
            .cube
            .literals()
            .map(|(net, pol)| (n.net(net).name().to_owned(), pol))
            .collect();
        assert_eq!(lits, vec![("b".to_owned(), false), ("d".to_owned(), true)]);
    }

    #[test]
    fn single_wire_set_matches_single_search() {
        let (n, topo) = tmr_register();
        let r2 = n.find_net("r2").unwrap();
        let cfg = SearchConfig::default();
        let multi = search_wire_set(&n, &topo, &[r2], &cfg);
        let single = crate::search_wire(&n, &topo, r2, &cfg);
        let mut a: Vec<_> = multi.mates.into_iter().map(|m| m.cube).collect();
        let mut b: Vec<_> = single.mates.into_iter().map(|m| m.cube).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn batched_sets_match_per_set_calls() {
        // The shared-arena sweep returns exactly what one call per set
        // returns, in order.
        let (n, topo) = tmr_register();
        let r0 = n.find_net("r0").unwrap();
        let r1 = n.find_net("r1").unwrap();
        let r2 = n.find_net("r2").unwrap();
        let cfg = SearchConfig::default();
        let sets = vec![vec![r0], vec![r0, r1], vec![r2], vec![r1, r2]];
        let batched = search_wire_sets(&n, &topo, &sets, &cfg);
        assert_eq!(batched.len(), sets.len());
        for (set, got) in sets.iter().zip(&batched) {
            let solo = search_wire_set(&n, &topo, set, &cfg);
            assert_eq!(got.wires, solo.wires);
            assert_eq!(got.unmaskable, solo.unmaskable);
            assert_eq!(got.mates, solo.mates, "set {set:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_wire_set_panics() {
        let (n, topo) = tmr_register();
        search_wire_set(&n, &topo, &[], &SearchConfig::default());
    }
}
