//! Greedy top-N MATE selection (step 3 of Section 4).
//!
//! Replaying an exemplary trace, each cycle processes the triggered MATEs in
//! order of decreasing masked-fault count; a MATE's *hit counter* grows by
//! the number of fault-space points it masks that no earlier MATE of the
//! same cycle already covered.  The top-N MATEs by hit count form the subset
//! synthesized into the HAFI platform.

use std::collections::HashMap;

use mate_netlist::NetId;
use mate_sim::WaveTrace;

use crate::mates::MateSet;

/// The outcome of rating a MATE set against a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ranking {
    /// MATE indices ordered by descending hit count (ties by index).
    pub order: Vec<usize>,
    /// Hit counter per MATE (indexed like the input set).
    pub hits: Vec<usize>,
}

impl Ranking {
    /// The indices of the `n` highest-rated MATEs.
    pub fn top(&self, n: usize) -> &[usize] {
        &self.order[..n.min(self.order.len())]
    }
}

/// Rates every MATE by its marginal fault-space contribution on `trace`.
pub fn rank(mates: &MateSet, trace: &WaveTrace, wires: &[NetId]) -> Ranking {
    let wire_index: HashMap<NetId, usize> =
        wires.iter().enumerate().map(|(i, &w)| (w, i)).collect();
    let masked_indices: Vec<Vec<usize>> = mates
        .iter()
        .map(|m| {
            m.masked
                .iter()
                .filter_map(|w| wire_index.get(w).copied())
                .collect()
        })
        .collect();

    // Process order within a cycle: by masked-fault count descending.  The
    // summarized MateSet is already sorted that way, but we do not rely on
    // it.
    let mut process_order: Vec<usize> = (0..mates.len()).collect();
    process_order.sort_by_key(|&i| std::cmp::Reverse(masked_indices[i].len()));

    let mut hits = vec![0usize; mates.len()];
    let mut cycle_mask = vec![usize::MAX; wires.len()]; // last cycle a wire was masked
    for cycle in 0..trace.num_cycles() {
        let read = trace.cycle_reader(cycle);
        for &i in &process_order {
            if masked_indices[i].is_empty() {
                continue;
            }
            if !mates.mates()[i].cube.eval(&read) {
                continue;
            }
            for &w in &masked_indices[i] {
                if cycle_mask[w] != cycle {
                    cycle_mask[w] = cycle;
                    hits[i] += 1;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..mates.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(hits[i]), i));
    Ranking { order, hits }
}

/// Selects the top-`n` MATEs for `trace` (the paper's "selected for fib()" /
/// "selected for conv()" subsets).
pub fn select_top_n(mates: &MateSet, trace: &WaveTrace, wires: &[NetId], n: usize) -> MateSet {
    let ranking = rank(mates, trace, wires);
    mates.subset(ranking.top(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::mates::{summarize, Mate};
    use mate_netlist::NetCube;

    fn net(i: usize) -> NetId {
        NetId::from_index(i)
    }

    /// Builds a trace over 3 nets with the given per-cycle values.
    fn trace_of(rows: &[[bool; 3]]) -> WaveTrace {
        let mut t = WaveTrace::new(3);
        for row in rows {
            t.push_cycle(row);
        }
        t
    }

    #[test]
    fn hits_count_marginal_coverage() {
        // Two MATEs masking the same wire 2; MATE A triggers on net0, MATE B
        // on net1.  When both trigger, only the bigger one scores.
        let big = Mate {
            cube: NetCube::literal(net(0), true),
            masked: vec![net(2), net(1)],
        };
        let small = Mate {
            cube: NetCube::literal(net(1), true),
            masked: vec![net(2)],
        };
        let mates = summarize([big, small]);
        let wires = [net(1), net(2)];
        // cycle 0: both trigger; cycle 1: only small's net1=1.
        let trace = trace_of(&[[true, true, false], [false, true, false]]);
        let ranking = rank(&mates, &trace, &wires);
        // Mate 0 (big, sorted first by summarize) masks net1+net2 in cycle 0
        // → 2 hits.  Small masks net2 in cycle 1 only → 1 hit.
        assert_eq!(ranking.hits, vec![2, 1]);
        assert_eq!(ranking.order, vec![0, 1]);
    }

    #[test]
    fn top_n_subsets() {
        let a = Mate::single(NetCube::literal(net(0), true), net(2));
        let b = Mate::single(NetCube::literal(net(1), true), net(2));
        let mates = summarize([a, b]);
        let trace = trace_of(&[[false, true, false], [false, true, false]]);
        let wires = [net(2)];
        let top1 = select_top_n(&mates, &trace, &wires, 1);
        assert_eq!(top1.len(), 1);
        // The selected MATE is the net1 one (it triggered twice).
        assert_eq!(
            top1.mates()[0].cube.literals().collect::<Vec<_>>(),
            vec![(net(1), true)]
        );
        // Selecting more than available just returns everything.
        assert_eq!(select_top_n(&mates, &trace, &wires, 99).len(), 2);
    }

    #[test]
    fn top_n_fraction_is_monotone() {
        // More selected MATEs can never prune less.
        let mates = summarize([
            Mate::single(NetCube::literal(net(0), true), net(2)),
            Mate::single(NetCube::literal(net(1), true), net(2)),
            Mate::single(NetCube::literal(net(0), false), net(1)),
        ]);
        let trace = trace_of(&[
            [true, false, false],
            [false, true, false],
            [true, true, false],
            [false, false, false],
        ]);
        let wires = [net(1), net(2)];
        let mut last = 0.0;
        for n in 1..=3 {
            let sel = select_top_n(&mates, &trace, &wires, n);
            let frac = evaluate(&sel, &trace, &wires).masked_fraction();
            assert!(frac >= last, "top-{n}: {frac} < {last}");
            last = frac;
        }
    }

    #[test]
    fn full_set_equals_topn_with_all() {
        let mates = summarize([
            Mate::single(NetCube::literal(net(0), true), net(2)),
            Mate::single(NetCube::literal(net(1), false), net(1)),
        ]);
        let trace = trace_of(&[[true, false, false], [false, true, true]]);
        let wires = [net(1), net(2)];
        let full = evaluate(&mates, &trace, &wires).masked_fraction();
        let all = select_top_n(&mates, &trace, &wires, mates.len());
        let sel = evaluate(&all, &trace, &wires).masked_fraction();
        assert_eq!(full, sel);
    }
}
