//! Greedy top-N MATE selection (step 3 of Section 4).
//!
//! Each MATE covers a set of fault-space points on the exemplary trace: the
//! `(wire, cycle)` pairs where the wire is in its masked list and its cube
//! is true.  Selection is greedy maximum coverage: repeatedly pick the MATE
//! with the largest *marginal* gain — the points it covers that no earlier
//! pick already covers — until no MATE adds anything.  The top-N MATEs by
//! pick order form the subset synthesized into the HAFI platform.
//!
//! The production path ([`rank`]) runs lazy-greedy (CELF): coverage lives in
//! packed lane blocks of cycles (popcount gains, AND-NOT marginals — 256
//! cycles per block via [`B256`], any [`LaneBlock`] width via
//! [`rank_transposed_blocks`]) and a max-heap keeps *stale* gains,
//! re-evaluating only the top candidate — marginal gains never grow as the
//! covered set grows (submodularity), so a stale bound that still tops the
//! heap after refresh is exact.  This removes the O(|MATEs|² · points)
//! rescan of eager greedy while staying bit-identical to the eager scalar
//! reference ([`rank_eager`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use mate_netlist::{LaneBlock, NetId, B256};
use mate_sim::{TransposedTrace, WaveTrace};

use crate::mates::MateSet;

/// The outcome of rating a MATE set against a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ranking {
    /// MATE indices in greedy pick order: descending marginal hit count,
    /// ties by ascending index; zero-gain MATEs trail in index order.
    pub order: Vec<usize>,
    /// Marginal hit count per MATE at the moment it was picked (indexed
    /// like the input set).
    pub hits: Vec<usize>,
}

impl Ranking {
    /// The indices of the `n` highest-rated MATEs (clamped to the ranked
    /// length, so `n > len` returns everything instead of panicking).
    pub fn top(&self, n: usize) -> &[usize] {
        &self.order[..n.min(self.order.len())]
    }
}

/// Per-mate wire indices restricted to the fault space.
fn masked_indices(mates: &MateSet, wires: &[NetId]) -> Vec<Vec<usize>> {
    let wire_index: HashMap<NetId, usize> =
        wires.iter().enumerate().map(|(i, &w)| (w, i)).collect();
    mates
        .iter()
        .map(|m| {
            m.masked
                .iter()
                .filter_map(|w| wire_index.get(w).copied())
                .collect()
        })
        .collect()
}

/// Appends the never-picked MATEs (zero marginal gain) in index order.
fn drain_zero_gain(order: &mut Vec<usize>, picked: &[bool]) {
    order.extend((0..picked.len()).filter(|&i| !picked[i]));
}

/// Rates every MATE by its marginal fault-space contribution on `trace`
/// (lazy-greedy over packed coverage blocks, 256 cycles per popcount;
/// transposes the trace once).
pub fn rank(mates: &MateSet, trace: &WaveTrace, wires: &[NetId]) -> Ranking {
    rank_transposed_blocks::<B256>(mates, &TransposedTrace::from_trace(trace), wires)
}

/// Lazy-greedy (CELF) ranking over an already-transposed trace with 64-lane
/// coverage words — the historical engine, kept as the baseline
/// `BENCH_evalrank.json` compares the wide blocks against.
pub fn rank_transposed(mates: &MateSet, trace: &TransposedTrace, wires: &[NetId]) -> Ranking {
    rank_transposed_blocks::<u64>(mates, trace, wires)
}

/// Lazy-greedy (CELF) ranking over an already-transposed trace, generic in
/// the coverage lane block.
///
/// A mate's coverage factorizes: it covers `masked wires × trigger cycles`,
/// so one `B::WIDTH`-cycle trigger block per mate plus one covered-block row
/// per wire is the whole state.  Marginal gain = Σ over the mate's wires of
/// `popcount(trigger & !covered[wire])` — a pure popcount sum, so every lane
/// width picks the identical order.
pub fn rank_transposed_blocks<B: LaneBlock>(
    mates: &MateSet,
    trace: &TransposedTrace,
    wires: &[NetId],
) -> Ranking {
    let indices = masked_indices(mates, wires);
    let num_blocks = trace.num_blocks::<B>();

    // Trigger bit-planes, only for mates that can cover anything.
    let triggers: Vec<Option<Vec<B>>> = mates
        .iter()
        .zip(&indices)
        .map(|(m, idx)| {
            if idx.is_empty() {
                return None;
            }
            let blocks: Vec<B> = (0..num_blocks)
                .map(|b| trace.cube_block(&m.cube, b))
                .collect();
            blocks.iter().any(|b| !b.is_zero()).then_some(blocks)
        })
        .collect();

    let mut covered = vec![B::ZERO; wires.len() * num_blocks];
    let gain_of = |i: usize, covered: &[B]| -> usize {
        let trig = triggers[i].as_ref().expect("gain of coverless mate");
        indices[i]
            .iter()
            .map(|&w| {
                trig.iter()
                    .zip(&covered[w * num_blocks..(w + 1) * num_blocks])
                    .map(|(&t, &c)| (t & !c).count_ones() as usize)
                    .sum::<usize>()
            })
            .sum()
    };

    // CELF heap: (stale gain, index ascending on ties, commit-count stamp).
    // An entry is fresh iff its stamp equals the current number of commits —
    // nothing changed the covered set since the gain was computed.
    let mut heap: BinaryHeap<(usize, Reverse<usize>, usize)> = (0..mates.len())
        .filter(|&i| triggers[i].is_some())
        .map(|i| (gain_of(i, &covered), Reverse(i), 0))
        .filter(|&(g, _, _)| g > 0)
        .collect();

    let mut hits = vec![0usize; mates.len()];
    let mut order = Vec::with_capacity(mates.len());
    let mut picked = vec![false; mates.len()];
    let mut commits = 0usize;

    while let Some((gain, Reverse(i), stamp)) = heap.pop() {
        if stamp != commits {
            // Stale: refresh and re-queue.  Submodularity guarantees the
            // fresh gain is ≤ the stale one, so the heap order stays sound.
            let fresh = gain_of(i, &covered);
            debug_assert!(fresh <= gain);
            if fresh > 0 {
                heap.push((fresh, Reverse(i), commits));
            }
            continue;
        }
        if gain == 0 {
            break;
        }
        // Fresh maximum: commit the pick.
        let trig = triggers[i].as_ref().expect("picked coverless mate");
        for &w in &indices[i] {
            for (c, &t) in covered[w * num_blocks..(w + 1) * num_blocks]
                .iter_mut()
                .zip(trig)
            {
                *c |= t;
            }
        }
        hits[i] = gain;
        order.push(i);
        picked[i] = true;
        commits += 1;
    }

    drain_zero_gain(&mut order, &picked);
    Ranking { order, hits }
}

/// Eager greedy scalar reference for [`rank`]: per-cycle cube evaluation,
/// boolean point set, and a full rescan of all candidates on every pick —
/// the O(|MATEs|² · points) baseline of `BENCH_evalrank.json`.  Kept to
/// prove the lazy path exact; both produce identical [`Ranking`]s.
pub fn rank_eager(mates: &MateSet, trace: &WaveTrace, wires: &[NetId]) -> Ranking {
    let indices = masked_indices(mates, wires);
    let cycles = trace.num_cycles();

    // Per-mate triggered cycles, per-cycle scalar evaluation.
    let triggered: Vec<Vec<usize>> = mates
        .iter()
        .zip(&indices)
        .map(|(m, idx)| {
            if idx.is_empty() {
                return Vec::new();
            }
            (0..cycles)
                .filter(|&c| m.cube.eval(trace.cycle_reader(c)))
                .collect()
        })
        .collect();

    let mut covered = vec![false; wires.len() * cycles];
    let gain_of = |i: usize, covered: &[bool]| -> usize {
        indices[i]
            .iter()
            .map(|&w| {
                triggered[i]
                    .iter()
                    .filter(|&&c| !covered[w * cycles + c])
                    .count()
            })
            .sum()
    };

    let mut hits = vec![0usize; mates.len()];
    let mut order = Vec::with_capacity(mates.len());
    let mut picked = vec![false; mates.len()];

    loop {
        // Full rescan: recompute every unpicked candidate's marginal gain.
        let mut best = 0usize;
        let mut best_i = None;
        for (i, &done) in picked.iter().enumerate() {
            if done {
                continue;
            }
            let g = gain_of(i, &covered);
            if g > best {
                best = g;
                best_i = Some(i);
            }
        }
        let Some(i) = best_i else { break };
        for &w in &indices[i] {
            for &c in &triggered[i] {
                covered[w * cycles + c] = true;
            }
        }
        hits[i] = best;
        order.push(i);
        picked[i] = true;
    }

    drain_zero_gain(&mut order, &picked);
    Ranking { order, hits }
}

/// Selects the top-`n` MATEs for `trace` (the paper's "selected for fib()" /
/// "selected for conv()" subsets).
pub fn select_top_n(mates: &MateSet, trace: &WaveTrace, wires: &[NetId], n: usize) -> MateSet {
    let ranking = rank(mates, trace, wires);
    mates.subset(ranking.top(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::mates::{summarize, Mate};
    use mate_netlist::NetCube;

    fn net(i: usize) -> NetId {
        NetId::from_index(i)
    }

    /// Builds a trace over 3 nets with the given per-cycle values.
    fn trace_of(rows: &[[bool; 3]]) -> WaveTrace {
        let mut t = WaveTrace::new(3);
        for row in rows {
            t.push_cycle(row);
        }
        t
    }

    #[test]
    fn hits_count_marginal_coverage() {
        // Two MATEs masking the same wire 2; MATE A triggers on net0, MATE B
        // on net1.  When both trigger, only the bigger one scores.
        let big = Mate {
            cube: NetCube::literal(net(0), true),
            masked: vec![net(2), net(1)],
        };
        let small = Mate {
            cube: NetCube::literal(net(1), true),
            masked: vec![net(2)],
        };
        let mates = summarize([big, small]);
        let wires = [net(1), net(2)];
        // cycle 0: both trigger; cycle 1: only small's net1=1.
        let trace = trace_of(&[[true, true, false], [false, true, false]]);
        let ranking = rank(&mates, &trace, &wires);
        // Mate 0 (big, sorted first by summarize) masks net1+net2 in cycle 0
        // → 2 hits.  Small masks net2 in cycle 1 only → 1 hit.
        assert_eq!(ranking.hits, vec![2, 1]);
        assert_eq!(ranking.order, vec![0, 1]);
    }

    #[test]
    fn lazy_and_eager_agree() {
        // Overlapping coverage forces real marginal updates in the heap.
        let mates = summarize([
            Mate {
                cube: NetCube::literal(net(0), true),
                masked: vec![net(1), net(2)],
            },
            Mate {
                cube: NetCube::literal(net(1), true),
                masked: vec![net(2)],
            },
            Mate {
                cube: NetCube::literal(net(0), false),
                masked: vec![net(1)],
            },
            Mate {
                cube: NetCube::from_literals([(net(0), true), (net(1), false)]).unwrap(),
                masked: vec![net(2), net(1)],
            },
        ]);
        let wires = [net(1), net(2)];
        let trace = trace_of(&[
            [true, true, false],
            [false, true, false],
            [true, false, true],
            [false, false, false],
            [true, true, true],
        ]);
        assert_eq!(
            rank(&mates, &trace, &wires),
            rank_eager(&mates, &trace, &wires)
        );
    }

    #[test]
    fn all_lane_widths_pick_identical_rankings() {
        use mate_netlist::{B256, B512};
        // Overlapping coverage over a horizon straddling the 64-cycle word
        // boundary, so multi-word (and partial-block) popcounts matter.
        let mates = summarize([
            Mate {
                cube: NetCube::literal(net(0), true),
                masked: vec![net(1), net(2)],
            },
            Mate {
                cube: NetCube::literal(net(1), true),
                masked: vec![net(2)],
            },
            Mate {
                cube: NetCube::from_literals([(net(0), true), (net(1), false)]).unwrap(),
                masked: vec![net(2), net(1)],
            },
        ]);
        let wires = [net(1), net(2)];
        let rows: Vec<[bool; 3]> = (0..70)
            .map(|c| [c % 2 == 0, c % 3 == 0, c % 5 == 0])
            .collect();
        let trace = trace_of(&rows);
        let transposed = TransposedTrace::from_trace(&trace);
        let eager = rank_eager(&mates, &trace, &wires);
        assert_eq!(rank_transposed(&mates, &transposed, &wires), eager);
        assert_eq!(
            rank_transposed_blocks::<B256>(&mates, &transposed, &wires),
            eager
        );
        assert_eq!(
            rank_transposed_blocks::<B512>(&mates, &transposed, &wires),
            eager
        );
    }

    #[test]
    fn zero_gain_mates_trail_in_index_order() {
        let mates = summarize([
            Mate::single(NetCube::literal(net(0), true), net(2)), // never triggers
            Mate::single(NetCube::literal(net(1), true), net(2)),
            Mate::single(NetCube::literal(net(2), true), net(0)), // net0 not a wire
        ]);
        let trace = trace_of(&[[false, true, true]]);
        let wires = [net(1), net(2)];
        let ranking = rank(&mates, &trace, &wires);
        assert_eq!(ranking, rank_eager(&mates, &trace, &wires));
        // Exactly one pick; the other two drain by ascending index.
        assert_eq!(ranking.hits.iter().filter(|&&h| h > 0).count(), 1);
        assert_eq!(ranking.order.len(), 3);
        let picked = ranking.order[0];
        let mut rest: Vec<usize> = (0..3).filter(|&i| i != picked).collect();
        rest.sort_unstable();
        assert_eq!(&ranking.order[1..], &rest[..]);
    }

    #[test]
    fn top_clamps_to_ranked_length() {
        let ranking = Ranking {
            order: vec![2, 0, 1],
            hits: vec![1, 0, 3],
        };
        assert_eq!(ranking.top(2), &[2, 0]);
        assert_eq!(ranking.top(3), &[2, 0, 1]);
        // Beyond the ranked length: clamped, not a panic.
        assert_eq!(ranking.top(99), &[2, 0, 1]);
        assert_eq!(ranking.top(0), &[] as &[usize]);
        let empty = Ranking {
            order: vec![],
            hits: vec![],
        };
        assert_eq!(empty.top(5), &[] as &[usize]);
    }

    #[test]
    fn top_n_subsets() {
        let a = Mate::single(NetCube::literal(net(0), true), net(2));
        let b = Mate::single(NetCube::literal(net(1), true), net(2));
        let mates = summarize([a, b]);
        let trace = trace_of(&[[false, true, false], [false, true, false]]);
        let wires = [net(2)];
        let top1 = select_top_n(&mates, &trace, &wires, 1);
        assert_eq!(top1.len(), 1);
        // The selected MATE is the net1 one (it triggered twice).
        assert_eq!(
            top1.mates()[0].cube.literals().collect::<Vec<_>>(),
            vec![(net(1), true)]
        );
        // Selecting more than available just returns everything.
        assert_eq!(select_top_n(&mates, &trace, &wires, 99).len(), 2);
    }

    #[test]
    fn top_n_fraction_is_monotone() {
        // More selected MATEs can never prune less.
        let mates = summarize([
            Mate::single(NetCube::literal(net(0), true), net(2)),
            Mate::single(NetCube::literal(net(1), true), net(2)),
            Mate::single(NetCube::literal(net(0), false), net(1)),
        ]);
        let trace = trace_of(&[
            [true, false, false],
            [false, true, false],
            [true, true, false],
            [false, false, false],
        ]);
        let wires = [net(1), net(2)];
        let mut last = 0.0;
        for n in 1..=3 {
            let sel = select_top_n(&mates, &trace, &wires, n);
            let frac = evaluate(&sel, &trace, &wires).masked_fraction();
            assert!(frac >= last, "top-{n}: {frac} < {last}");
            last = frac;
        }
    }

    #[test]
    fn full_set_equals_topn_with_all() {
        let mates = summarize([
            Mate::single(NetCube::literal(net(0), true), net(2)),
            Mate::single(NetCube::literal(net(1), false), net(1)),
        ]);
        let trace = trace_of(&[[true, false, false], [false, true, true]]);
        let wires = [net(1), net(2)];
        let full = evaluate(&mates, &trace, &wires).masked_fraction();
        let all = select_top_n(&mates, &trace, &wires, mates.len());
        let sel = evaluate(&all, &trace, &wires).masked_fraction();
        assert_eq!(full, sel);
    }
}
