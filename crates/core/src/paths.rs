//! Fault-propagation path enumeration (step 2 of the paper's heuristic).

use mate_netlist::{CellId, FaultCone, NetDriver, NetId, Netlist, Topology};

/// All fault-propagation paths of one faulty wire, enumerated up to a depth
/// limit.
///
/// A *path* is the sequence of combinational gates a faulty value passes
/// through.  A path terminates when the fault reaches an endpoint (flip-flop
/// data pin or primary output) or when the depth limit cuts it off; in both
/// cases a MATE must stop the fault **within** the recorded gates, so
/// truncated paths keep the analysis conservative (sound).
#[derive(Clone, Debug)]
pub struct PathSet {
    /// The enumerated paths (each a gate sequence from the origin outwards).
    pub paths: Vec<Vec<CellId>>,
    /// `true` if the origin itself is an endpoint (a primary output or a
    /// direct flip-flop input) — such faults can never be masked.
    pub origin_is_endpoint: bool,
    /// `true` if enumeration hit the `max_paths` budget and gave up; the
    /// wire is then conservatively treated as unmaskable.
    pub truncated: bool,
}

impl PathSet {
    /// Returns `true` when a MATE search is pointless for this wire: the
    /// origin reaches an endpoint un-maskably or the path budget burst.
    pub fn hopeless(&self) -> bool {
        self.origin_is_endpoint || self.truncated || self.paths.iter().any(Vec::is_empty)
    }
}

/// Enumerates fault-propagation paths from `origin` through its cone.
///
/// `depth` bounds the number of gates per path (the paper uses 8);
/// `max_paths` bounds the total number of enumerated paths — when exceeded,
/// the result is flagged [`PathSet::truncated`] and the caller treats the
/// wire as unmaskable (which only loses MATEs, never soundness).
pub fn enumerate_paths(
    netlist: &Netlist,
    topo: &Topology,
    cone: &FaultCone,
    depth: usize,
    max_paths: usize,
) -> PathSet {
    let origin = cone.origin();
    let mut set = PathSet {
        paths: Vec::new(),
        origin_is_endpoint: false,
        truncated: false,
    };
    // A fault on a wire that is itself observable is never maskable.
    if netlist.outputs().contains(&origin) {
        set.origin_is_endpoint = true;
        return set;
    }
    for &(cell, _) in topo.fanout(origin) {
        if netlist.is_seq_cell(cell) {
            set.origin_is_endpoint = true;
            return set;
        }
    }

    // Depth-first enumeration; `trail` holds the gates of the current path.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        netlist: &Netlist,
        topo: &Topology,
        origin_net: NetId,
        net: NetId,
        depth_left: usize,
        trail: &mut Vec<CellId>,
        set: &mut PathSet,
        max_paths: usize,
    ) {
        if set.paths.len() >= max_paths {
            set.truncated = true;
            return;
        }
        // The current net may itself be observable (primary output) — the
        // path so far must already be cut.
        if net != origin_net && netlist.outputs().contains(&net) {
            set.paths.push(trail.clone());
        }
        for &(cell, _) in topo.fanout(net) {
            if set.truncated {
                return;
            }
            if netlist.is_seq_cell(cell) {
                // Fault would be latched here.
                set.paths.push(trail.clone());
                continue;
            }
            if depth_left == 0 {
                // Truncated path: must be cut within the recorded prefix.
                set.paths.push(trail.clone());
                continue;
            }
            trail.push(cell);
            dfs(
                netlist,
                topo,
                origin_net,
                netlist.cell(cell).output(),
                depth_left - 1,
                trail,
                set,
                max_paths,
            );
            trail.pop();
        }
    }

    let mut trail = Vec::new();
    dfs(
        netlist, topo, origin, origin, depth, &mut trail, &mut set, max_paths,
    );

    // Sanity: every gate on every path is combinational and inside the cone.
    debug_assert!(set.paths.iter().flatten().all(|&c| {
        let out = netlist.cell(c).output();
        cone.contains_net(out) && matches!(netlist.net(out).driver(), NetDriver::Cell(_))
    }));
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::{figure1, figure1b};
    use mate_netlist::FaultCone;

    fn paths_for(name: &str) -> (Netlist, PathSet) {
        let (n, topo) = figure1();
        let w = n.find_net(name).unwrap();
        let cone = FaultCone::compute(&n, &topo, w);
        let set = enumerate_paths(&n, &topo, &cone, 8, 1024);
        (n, set)
    }

    fn gate_names(n: &Netlist, path: &[CellId]) -> Vec<String> {
        path.iter().map(|&c| n.cell(c).name().to_owned()).collect()
    }

    #[test]
    fn figure1_wire_d_has_two_paths() {
        let (n, set) = paths_for("d");
        assert!(!set.origin_is_endpoint);
        assert!(!set.truncated);
        let mut names: Vec<Vec<String>> = set.paths.iter().map(|p| gate_names(&n, p)).collect();
        names.sort();
        assert_eq!(names, vec![vec!["B", "D"], vec!["B", "E"]]);
    }

    #[test]
    fn figure1_wire_e_path_ends_at_output_h() {
        // e -> C -> h; h is a primary output, so one path is just [C], plus
        // the continuation [C, E] to output l.
        let (n, set) = paths_for("e");
        let mut names: Vec<Vec<String>> = set.paths.iter().map(|p| gate_names(&n, p)).collect();
        names.sort();
        assert_eq!(names, vec![vec!["C"], vec!["C", "E"]]);
    }

    #[test]
    fn depth_limit_truncates_paths() {
        let (n, topo) = figure1();
        let d = n.find_net("d").unwrap();
        let cone = FaultCone::compute(&n, &topo, d);
        let set = enumerate_paths(&n, &topo, &cone, 1, 1024);
        // With depth 1 both paths stop after gate B.
        assert!(set.paths.iter().all(|p| p.len() == 1));
        assert_eq!(set.paths.len(), 2);
    }

    #[test]
    fn path_budget_flags_truncation() {
        let (n, topo) = figure1();
        let d = n.find_net("d").unwrap();
        let cone = FaultCone::compute(&n, &topo, d);
        let set = enumerate_paths(&n, &topo, &cone, 8, 1);
        assert!(set.truncated);
        assert!(set.hopeless());
    }

    #[test]
    fn direct_output_wire_is_endpoint() {
        let (n, topo) = figure1b();
        // State bit `d` is a primary output → any fault is visible.
        let c = n.find_net("d").unwrap();
        let cone = FaultCone::compute(&n, &topo, c);
        let set = enumerate_paths(&n, &topo, &cone, 8, 1024);
        assert!(set.origin_is_endpoint);
        assert!(set.hopeless());
    }

    #[test]
    fn seq_fed_wire_terminates_at_ff() {
        let (n, topo) = figure1b();
        // State bit `a` feeds the AND gate, whose output goes to ff_c.
        let a = n.find_net("a").unwrap();
        let cone = FaultCone::compute(&n, &topo, a);
        let set = enumerate_paths(&n, &topo, &cone, 8, 1024);
        assert!(!set.origin_is_endpoint);
        assert_eq!(set.paths.len(), 1);
        assert_eq!(gate_names(&n, &set.paths[0]), vec!["g_ab"]);
    }
}
