//! Property test: the `mate-set v1` text format round-trips — writing a
//! searched MATE set and reading it back yields an identical set, for
//! arbitrary random circuits.

use std::io::BufReader;

use proptest::prelude::*;

use mate::{ff_wires, read_mates, search_design, write_mates, SearchConfig};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mate_set_text_format_roundtrips(
        seed in 0u64..10_000,
        inputs in 2usize..5,
        ffs in 4usize..10,
        gates in 20usize..40,
    ) {
        let cfg = RandomCircuitConfig {
            inputs,
            ffs,
            gates,
            outputs: 2,
        };
        let (n, topo) = random_circuit(cfg, seed);
        let wires = ff_wires(&n, &topo);
        let config = SearchConfig {
            max_candidates: 2_000,
            ..SearchConfig::default()
        };
        let mates = search_design(&n, &topo, &wires, &config).into_mate_set();

        let mut buf = Vec::new();
        write_mates(&n, &mates, &mut buf).unwrap();
        let back = read_mates(&n, BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(&back, &mates, "seed {}: round-trip changed the set", seed);

        // Idempotence: a second trip through the format is bit-identical.
        let mut buf2 = Vec::new();
        write_mates(&n, &back, &mut buf2).unwrap();
        prop_assert_eq!(buf2, buf, "seed {}: second encode differs", seed);
    }
}
