//! Property tests on the MATE search itself.

use proptest::prelude::*;

use mate::search::cube_masks_wire;
use mate::{ff_wires, search_design, search_wire, summarize, SearchConfig, SearchStrategy};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};
use mate_netlist::FaultCone;

fn cfg() -> RandomCircuitConfig {
    RandomCircuitConfig {
        inputs: 4,
        ffs: 8,
        gates: 28,
        outputs: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every MATE either strategy produces must pass the trust-propagation
    /// verifier (the internal consistency of search and checker).
    #[test]
    fn found_mates_verify(seed in 0u64..5_000, repair in any::<bool>()) {
        let (n, topo) = random_circuit(cfg(), seed);
        let config = SearchConfig {
            max_candidates: 2_000,
            strategy: if repair {
                SearchStrategy::Repair
            } else {
                SearchStrategy::Exhaustive
            },
            ..SearchConfig::default()
        };
        for &ff in topo.seq_cells() {
            let wire = n.cell(ff).output();
            let result = search_wire(&n, &topo, wire, &config);
            let cone = FaultCone::compute(&n, &topo, wire);
            for mate in &result.mates {
                prop_assert!(
                    cube_masks_wire(&n, &cone, wire, &mate.cube),
                    "seed {seed} wire {wire}: {:?} fails verification",
                    mate.cube
                );
            }
        }
    }

    /// Unmaskable wires never yield MATEs, and unmaskable status does not
    /// depend on the strategy.
    #[test]
    fn unmaskable_is_strategy_independent(seed in 0u64..5_000) {
        let (n, topo) = random_circuit(cfg(), seed);
        let wires = ff_wires(&n, &topo);
        let repair = search_design(&n, &topo, &wires, &SearchConfig::default());
        let exhaustive = search_design(&n, &topo, &wires, &SearchConfig::paper());
        for (a, b) in repair.results.iter().zip(&exhaustive.results) {
            prop_assert_eq!(a.unmaskable, b.unmaskable, "wire {}", a.wire);
            if a.unmaskable {
                prop_assert!(a.mates.is_empty());
                prop_assert!(b.mates.is_empty());
            }
        }
    }

    /// MATE cubes contain no possibly-faulty literals: every literal net
    /// lies outside the wire's fault cone or is rendered trustworthy — in
    /// particular, never the faulty wire itself.
    #[test]
    fn mate_literals_exclude_the_faulty_wire(seed in 0u64..5_000) {
        let (n, topo) = random_circuit(cfg(), seed);
        let wires = ff_wires(&n, &topo);
        let ds = search_design(&n, &topo, &wires, &SearchConfig::default());
        for result in &ds.results {
            for mate in &result.mates {
                prop_assert!(mate.cube.polarity_of(result.wire).is_none());
                prop_assert!(!mate.cube.is_empty() || result.mates.len() == 1);
            }
        }
    }

    /// No per-wire MATE subsumes another (minimality after dedup).
    #[test]
    fn per_wire_mates_are_minimal(seed in 0u64..5_000) {
        let (n, topo) = random_circuit(cfg(), seed);
        let wires = ff_wires(&n, &topo);
        let ds = search_design(&n, &topo, &wires, &SearchConfig::default());
        for result in &ds.results {
            for (i, a) in result.mates.iter().enumerate() {
                for (j, b) in result.mates.iter().enumerate() {
                    if i != j {
                        prop_assert!(
                            !a.cube.subsumes(&b.cube),
                            "wire {}: {:?} subsumes {:?}",
                            result.wire,
                            a.cube,
                            b.cube
                        );
                    }
                }
            }
        }
    }

    /// Summarize is idempotent and preserves the (cube → wires) relation.
    #[test]
    fn summarize_roundtrip(seed in 0u64..5_000) {
        let (n, topo) = random_circuit(cfg(), seed);
        let wires = ff_wires(&n, &topo);
        let ds = search_design(&n, &topo, &wires, &SearchConfig::default());
        let set = ds.into_mate_set();
        let again = summarize(set.iter().cloned());
        prop_assert_eq!(&set, &again);
        // Every (cube, wire) pair survives.
        let total_pairs: usize = set.iter().map(|m| m.masked.len()).sum();
        let again_pairs: usize = again.iter().map(|m| m.masked.len()).sum();
        prop_assert_eq!(total_pairs, again_pairs);
    }
}
