//! The lane-parallel fast paths must be pure performance changes: the
//! transposed-trace `evaluate` (at every lane-block width), the lazy-greedy
//! (CELF) `rank`, and the thread-sharded `run_campaign_wide` each have to
//! be bit-identical to their scalar/eager/single-threaded references on
//! arbitrary circuits, stimuli, and MATE sets.

use proptest::prelude::*;

use mate::eval::{evaluate, evaluate_scalar, evaluate_transposed_blocks};
use mate::mates::{summarize, Mate, MateSet};
use mate::select::{rank, rank_eager, rank_transposed_blocks};
use mate_hafi::{
    run_campaign_wide, CampaignConfig, DesignHarness, FaultSpace, LaneWidth, StimulusHarness,
};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};
use mate_netlist::{NetCube, NetId, Netlist, Topology, B256, B512};
use mate_sim::{InputWave, Testbench, TransposedTrace, WaveTrace};

/// SplitMix-style deterministic stream: one value per (seed, tag, index).
fn mix(seed: u64, tag: u64, index: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tag << 32 | index);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn random_trace(netlist: &Netlist, topo: &Topology, seed: u64, cycles: usize) -> WaveTrace {
    let inputs = netlist.inputs().to_vec();
    let mut tb = Testbench::new(netlist, topo);
    for (i, input) in inputs.into_iter().enumerate() {
        let values: Vec<bool> = (0..cycles)
            .map(|c| mix(seed, 1 + i as u64, c as u64) & 1 == 1)
            .collect();
        tb.drive(input, InputWave::from_vec(values));
    }
    tb.run(cycles)
}

/// Synthetic MATE set: random 1–3-literal cubes over arbitrary nets, each
/// masking a random handful of fault wires.  Evaluation and ranking are
/// agnostic to whether a cube came from the real search, so synthetic sets
/// exercise the kernels on far more shapes (contradictions, overlaps,
/// never-triggering cubes, foreign masked wires).
fn random_mates(seed: u64, num_nets: usize, wires: &[NetId], count: usize) -> MateSet {
    let mates = (0..count).filter_map(|m| {
        let m = m as u64;
        let nlits = 1 + (mix(seed, 100 + m, 0) % 3) as usize;
        let cube = NetCube::from_literals((0..nlits).map(|l| {
            let r = mix(seed, 200 + m, l as u64);
            (
                NetId::from_index((r % num_nets as u64) as usize),
                r >> 32 & 1 == 1,
            )
        }))?;
        let nmask = 1 + (mix(seed, 300 + m, 0) % 4) as usize;
        let masked: Vec<NetId> = (0..nmask)
            .map(|k| wires[(mix(seed, 400 + m, k as u64) % wires.len() as u64) as usize])
            .collect();
        Some(Mate { cube, masked })
    });
    summarize(mates)
}

fn setup(seed: u64, cycles: usize) -> (WaveTrace, MateSet, Vec<NetId>) {
    let cfg = RandomCircuitConfig {
        inputs: 4,
        ffs: 12,
        gates: 40,
        outputs: 3,
    };
    let (netlist, topo) = random_circuit(cfg, seed);
    let wires = mate::ff_wires(&netlist, &topo);
    let trace = random_trace(&netlist, &topo, seed, cycles);
    let mates = random_mates(seed, netlist.num_nets(), &wires, 24);
    (trace, mates, wires)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Word-parallel evaluate == per-cycle scalar evaluate, including the
    /// trigger counts and the derived statistics.
    #[test]
    fn word_parallel_evaluate_matches_scalar(seed in 0u64..10_000, cycles in 1usize..150) {
        let (trace, mates, wires) = setup(seed, cycles);
        let word = evaluate(&mates, &trace, &wires);
        let scalar = evaluate_scalar(&mates, &trace, &wires);
        prop_assert_eq!(word.matrix, scalar.matrix);
        prop_assert_eq!(word.triggers, scalar.triggers);
        prop_assert_eq!(word.effective, scalar.effective);
        prop_assert_eq!(word.avg_inputs, scalar.avg_inputs);
        prop_assert_eq!(word.std_inputs, scalar.std_inputs);
    }

    /// Every lane-block width of the evaluate kernel — 64-lane words, 256-
    /// and 512-lane blocks — produces the scalar reference bit for bit.
    #[test]
    fn block_evaluate_matches_scalar_at_every_width(seed in 0u64..10_000, cycles in 1usize..600) {
        let (trace, mates, wires) = setup(seed, cycles);
        let scalar = evaluate_scalar(&mates, &trace, &wires);
        let transposed = TransposedTrace::from_trace(&trace);
        let word = evaluate_transposed_blocks::<u64>(&mates, &transposed, &wires);
        let b256 = evaluate_transposed_blocks::<B256>(&mates, &transposed, &wires);
        let b512 = evaluate_transposed_blocks::<B512>(&mates, &transposed, &wires);
        for wide in [&word, &b256, &b512] {
            prop_assert_eq!(&wide.matrix, &scalar.matrix);
            prop_assert_eq!(&wide.triggers, &scalar.triggers);
            prop_assert_eq!(wide.effective, scalar.effective);
        }
    }

    /// Lazy-greedy (CELF) rank == eager greedy rank: same pick order, same
    /// marginal hit counts — at every coverage lane width.
    #[test]
    fn lazy_rank_matches_eager(seed in 0u64..10_000, cycles in 1usize..150) {
        let (trace, mates, wires) = setup(seed, cycles);
        let eager = rank_eager(&mates, &trace, &wires);
        prop_assert_eq!(&rank(&mates, &trace, &wires), &eager);
        let transposed = TransposedTrace::from_trace(&trace);
        prop_assert_eq!(&rank_transposed_blocks::<u64>(&mates, &transposed, &wires), &eager);
        prop_assert_eq!(&rank_transposed_blocks::<B256>(&mates, &transposed, &wires), &eager);
        prop_assert_eq!(&rank_transposed_blocks::<B512>(&mates, &transposed, &wires), &eager);
    }

    /// Thread sharding and the campaign lane width are invisible in the
    /// records: any `(threads, lanes)` combination gives the 64-lane
    /// single-threaded campaign, record for record.
    #[test]
    fn sharded_campaign_matches_single_thread(seed in 0u64..5_000, threads in 2usize..6) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 6, gates: 20, outputs: 2 };
        let cycles = 8;
        let (netlist, topo) = random_circuit(cfg, seed);
        let inputs = netlist.inputs().to_vec();
        let mut harness = StimulusHarness::new(netlist, topo);
        for (i, input) in inputs.into_iter().enumerate() {
            let values: Vec<bool> = (0..cycles + 1)
                .map(|c| mix(seed, 500 + i as u64, c as u64) & 1 == 1)
                .collect();
            harness = harness.drive(input, values);
        }
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let base = CampaignConfig { cycles, sample: Some(30), seed, threads: 1, lanes: LaneWidth::W64, ..CampaignConfig::default() };
        let single = run_campaign_wide(&harness, &space, &base).unwrap();
        for lanes in LaneWidth::all() {
            let sharded = run_campaign_wide(
                &harness,
                &space,
                &CampaignConfig { threads, lanes, ..base },
            ).unwrap();
            prop_assert_eq!(&single.records, &sharded.records, "{} lanes", lanes);
        }
    }
}
