//! The optimized trust-propagation engine must be a pure performance
//! change: the scratch/memoized one-shot propagation, the incremental
//! re-propagation along repair paths, and the work-stealing whole-design
//! scheduler each have to be bit-identical to the from-scratch reference
//! on arbitrary circuits, cubes, and thread counts.

use proptest::prelude::*;

use mate::propagate::PropagationScratch;
use mate::search::{
    propagate_cube_reference, search_design, PropagationMode, SearchConfig, SearchStrategy,
};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};
use mate_netlist::{FaultCone, NetCube, NetId, Netlist, SoaNetlist, Topology};

/// SplitMix-style deterministic stream: one value per (seed, tag, index).
fn mix(seed: u64, tag: u64, index: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tag << 32 | index);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn circuit(seed: u64) -> (Netlist, Topology) {
    let cfg = RandomCircuitConfig {
        inputs: 4,
        ffs: 8,
        gates: 36,
        outputs: 3,
    };
    random_circuit(cfg, seed)
}

/// A random cube over the whole net universe (border wires, cone-internal
/// wires, even the origin — the reference accepts any of them, so the
/// optimized engine must too).
fn random_cube(seed: u64, tag: u64, num_nets: usize) -> Option<NetCube> {
    let nlits = 1 + (mix(seed, tag, 0) % 4) as usize;
    NetCube::from_literals((0..nlits).map(|l| {
        let r = mix(seed, tag.wrapping_add(1), l as u64);
        (
            NetId::from_index((r % num_nets as u64) as usize),
            r >> 32 & 1 == 1,
        )
    }))
}

/// Compares a session's fixpoint against the from-scratch reference for one
/// accumulated cube: masked verdict, first faulty endpoint, and the full
/// possibly-faulty set.
fn assert_matches_reference(
    session: &mate::propagate::ConeSession<'_>,
    netlist: &Netlist,
    cone: &FaultCone,
    origins: &[NetId],
    cube: &NetCube,
) -> Result<(), TestCaseError> {
    let reference = propagate_cube_reference(netlist, cone, origins, cube);
    prop_assert_eq!(session.masked(), reference.masked);
    prop_assert_eq!(
        session.first_faulty_endpoint(),
        reference.first_faulty_endpoint
    );
    for net in 0..netlist.num_nets() {
        let id = NetId::from_index(net);
        prop_assert_eq!(
            session.possibly(id),
            reference.possibly.contains(net),
            "possibly({}) diverges under {:?}",
            net,
            cube
        );
    }
    Ok(())
}

fn small_config(
    strategy: SearchStrategy,
    propagation: PropagationMode,
    threads: usize,
) -> SearchConfig {
    SearchConfig {
        depth: 5,
        max_terms: 3,
        max_candidates: 300,
        max_paths: 256,
        threads,
        strategy,
        propagation,
    }
}

/// Strips the timing field so results compare bit-exactly.
fn comparable(
    ds: &mate::search::DesignSearch,
) -> Vec<(NetId, usize, usize, bool, Vec<mate::Mate>)> {
    ds.results
        .iter()
        .map(|r| {
            (
                r.wire,
                r.cone_gates,
                r.candidates_tried,
                r.unmaskable,
                r.mates.clone(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) One-shot scratch/memoized propagation == the reference, for many
    /// cubes over one reused scratch (generation stamping must isolate
    /// candidates from each other).
    #[test]
    fn session_propagation_matches_reference(seed in 0u64..10_000) {
        let (netlist, topo) = circuit(seed);
        let soa = SoaNetlist::build(&netlist, &topo);
        let mut scratch = PropagationScratch::new();
        for (w, &wire) in mate::ff_wires(&netlist, &topo).iter().enumerate().take(4) {
            let cone = FaultCone::compute(&netlist, &topo, wire);
            let readers = cone.reader_index(&netlist);
            let origins = [wire];
            let mut session = scratch.session(&netlist, &soa, &cone, &readers, &origins);
            assert_matches_reference(&session, &netlist, &cone, &origins, &NetCube::top())?;
            for c in 0..6u64 {
                let Some(cube) = random_cube(seed, 10 + 100 * w as u64 + 2 * c, netlist.num_nets())
                else {
                    continue;
                };
                let mark = session.assume(cube.literals());
                assert_matches_reference(&session, &netlist, &cone, &origins, &cube)?;
                session.undo(mark);
                assert_matches_reference(&session, &netlist, &cone, &origins, &NetCube::top())?;
            }
        }
    }

    /// (b) Incremental re-propagation along random repair paths — literals
    /// conjoined one push at a time with interleaved undos — always equals
    /// propagating the accumulated cube from scratch.
    #[test]
    fn incremental_repropagation_matches_from_scratch(seed in 0u64..10_000) {
        let (netlist, topo) = circuit(seed);
        let wires = mate::ff_wires(&netlist, &topo);
        let wire = wires[(mix(seed, 1, 0) % wires.len() as u64) as usize];
        let soa = SoaNetlist::build(&netlist, &topo);
        let cone = FaultCone::compute(&netlist, &topo, wire);
        let readers = cone.reader_index(&netlist);
        let origins = [wire];
        let mut scratch = PropagationScratch::new();
        let mut session = scratch.session(&netlist, &soa, &cone, &readers, &origins);
        // Stack of (accumulated cube, undo mark) mirroring repair_rec.
        let mut stack: Vec<(NetCube, mate::propagate::Mark)> = Vec::new();
        let mut current = NetCube::top();
        for step in 0..24u64 {
            let r = mix(seed, 2, step);
            if r.is_multiple_of(3) && !stack.is_empty() {
                // Roll back to the cube as it was before the popped push.
                let (parent, mark) = stack.pop().unwrap();
                session.undo(mark);
                current = parent;
            } else {
                let lit_net = NetId::from_index((mix(seed, 3, step) % netlist.num_nets() as u64) as usize);
                let lit = NetCube::literal(lit_net, mix(seed, 4, step) & 1 == 1);
                let Some(next) = current.conjoin(&lit) else { continue };
                if next.len() == current.len() {
                    continue;
                }
                let delta = next
                    .literals()
                    .filter(|&(n, _)| current.polarity_of(n).is_none());
                let mark = session.assume(delta);
                stack.push((current.clone(), mark));
                current = next;
            }
            assert_matches_reference(&session, &netlist, &cone, &origins, &current)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (c) The work-stealing `search_design` is scheduling-invisible and the
    /// propagation engine is verdict-invisible: every thread count and both
    /// engines give identical per-wire results for both strategies.
    #[test]
    fn design_search_invariant_under_threads_and_engine(seed in 0u64..10_000) {
        let (netlist, topo) = circuit(seed);
        let wires = mate::ff_wires(&netlist, &topo);
        for strategy in [SearchStrategy::Repair, SearchStrategy::Exhaustive] {
            let baseline = search_design(
                &netlist,
                &topo,
                &wires,
                &small_config(strategy, PropagationMode::Reference, 1),
            );
            let expected = comparable(&baseline);
            for threads in [1, 2, 8] {
                let optimized = search_design(
                    &netlist,
                    &topo,
                    &wires,
                    &small_config(strategy, PropagationMode::Optimized, threads),
                );
                prop_assert_eq!(
                    &comparable(&optimized),
                    &expected,
                    "{:?} with {} threads diverges from 1-thread reference",
                    strategy,
                    threads
                );
            }
        }
    }
}
