//! Static verification layer for the MATE pipeline.
//!
//! Two independent layers, both designed to *distrust* the code they check:
//!
//! * [`lint`] — structural netlist lint passes ([`lint::LintPass`]) with
//!   deterministic, renderer-agnostic [`diag::Diagnostic`]s: combinational
//!   loops, undriven and multiply-driven nets, dangling flip-flops,
//!   unreachable logic, fault-cone statistics, and gate-masking-table
//!   coverage gaps.
//! * [`verify`] — a MATE soundness verifier that re-proves *MATE ⇒
//!   single-cycle masking* by exhaustive enumeration over fault-cone border
//!   assignments, built directly on [`mate_netlist::TruthTable`]
//!   cofactoring and sharing zero code with the search-side propagation
//!   engines.  Verdicts are [`verify::Verdict::Proved`],
//!   [`verify::Verdict::Bounded`] (cap reached), or
//!   [`verify::Verdict::Refuted`] with a concrete counterexample.
//!
//! # Example
//!
//! ```
//! use mate_netlist::examples::figure1;
//! use mate::prelude::*;
//! use mate_analyze::{run_lints, verify_mate_wire, Severity, Verdict, VerifyConfig};
//!
//! let (netlist, topo) = figure1();
//! let diags = run_lints(&netlist);
//! assert!(diags.iter().all(|d| d.severity != Severity::Error));
//!
//! let d = netlist.find_net("d").unwrap();
//! let result = search_wire(&netlist, &topo, d, &SearchConfig::default());
//! let verdict = verify_mate_wire(&netlist, &topo, d, &result.mates[0].cube,
//!                                &VerifyConfig::default());
//! assert!(matches!(verdict, Verdict::Proved { .. }));
//! ```

pub mod diag;
pub mod lint;
pub mod verify;

pub use diag::{
    count_denied, render_json, render_text, sort_diagnostics, Diagnostic, Locus, Severity,
};
pub use lint::{default_passes, run_lints, run_passes, LintContext, LintPass};
pub use verify::{
    count_verdicts, render_verdicts_json, render_verdicts_text, verify_mate_wire, verify_mates,
    Counterexample, MateVerdict, Verdict, VerdictCounts, VerifyConfig,
};
