//! Static verification layer for the MATE pipeline.
//!
//! Two independent layers, both designed to *distrust* the code they check:
//!
//! * [`lint`] — structural netlist lint passes ([`lint::LintPass`]) with
//!   deterministic, renderer-agnostic [`diag::Diagnostic`]s: combinational
//!   loops, undriven and multiply-driven nets, dangling flip-flops,
//!   unreachable logic, fault-cone statistics, and gate-masking-table
//!   coverage gaps.
//! * [`verify`] — a MATE soundness verifier that re-proves *MATE ⇒
//!   single-cycle masking*, sharing zero code with the search-side
//!   propagation engines.  Two backends: the default
//!   [`verify::ProofBackend::Sat`] compiles the fault cone to CNF
//!   ([`encode`]) and decides the masking condition exactly with a
//!   dependency-free CDCL solver ([`sat`]) whose UNSAT answers are
//!   resolution-replay-checked and whose models are re-simulated;
//!   [`verify::ProofBackend::Enumeration`] brute-forces border assignments
//!   via [`mate_netlist::TruthTable`] cofactoring up to a cap.  Verdicts
//!   are [`verify::Verdict::Proved`], [`verify::Verdict::Bounded`] (cap or
//!   conflict budget reached), or [`verify::Verdict::Refuted`] with a
//!   concrete counterexample.  [`complete`] reuses the solver for the dual
//!   question — per-wire proofs that the selected MATE set covers every
//!   benign fault point.
//!
//! # Example
//!
//! ```
//! use mate_netlist::examples::figure1;
//! use mate::prelude::*;
//! use mate_analyze::{run_lints, verify_mate_wire, Severity, Verdict, VerifyConfig};
//!
//! let (netlist, topo) = figure1();
//! let diags = run_lints(&netlist);
//! assert!(diags.iter().all(|d| d.severity != Severity::Error));
//!
//! let d = netlist.find_net("d").unwrap();
//! let result = search_wire(&netlist, &topo, d, &SearchConfig::default());
//! let verdict = verify_mate_wire(&netlist, &topo, d, &result.mates[0].cube,
//!                                &VerifyConfig::default());
//! assert!(matches!(verdict, Verdict::Proved { .. }));
//! ```

pub mod complete;
pub mod diag;
pub mod encode;
pub mod lint;
pub mod sat;
pub mod verify;

pub use complete::{
    count_coverage, coverage_diagnostics, prove_wire_coverage, render_coverage_json,
    render_coverage_text, CoverageCounts, WireCoverage,
};
pub use diag::{
    count_denied, render_json, render_text, sort_diagnostics, Diagnostic, Locus, Severity,
};
pub use encode::{CoverageProof, FaultConeCnf, MateProof};
pub use lint::{default_passes, run_lints, run_passes, LintContext, LintPass};
pub use sat::{Lit, SatOutcome, SolveStats, Solver};
pub use verify::{
    count_verdicts, render_verdicts_json, render_verdicts_text, verify_mate_wire,
    verify_mate_wire_enum, verify_mate_wire_sat, verify_mates, Counterexample, MateVerdict,
    ProofBackend, Verdict, VerdictCounts, VerifyConfig,
};
