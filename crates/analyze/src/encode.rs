//! Tseitin compilation of fault cones into CNF for the SAT proof backend.
//!
//! [`FaultConeCnf`] gathers the fault cone of one wire from the
//! structure-of-arrays arena ([`SoaNetlist::cone_rows`] /
//! [`SoaNetlist::cone_support`] — deliberately *not* the graph-side
//! [`mate_netlist::FaultCone`] the enumeration verifier uses, so the two
//! backends share no cone-extraction code) and compiles two copies of the
//! cone into clauses over shared border variables:
//!
//! * copy 0 pins the origin wire to `0`, copy 1 pins it to `1` — the two
//!   fault-free circuits whose endpoint disagreement is exactly "a
//!   single-event upset on the origin propagates to state";
//! * every cone gate becomes its truth-table Tseitin clauses (one clause
//!   per input row, at most `2^6` rows per gate) in each copy;
//! * border wires are shared free variables, optionally pinned to
//!   constants by a MATE cube.
//!
//! Two queries are built on this skeleton:
//!
//! * [`FaultConeCnf::prove_mate`] — the *soundness* query: "the cube holds
//!   (for at least one origin polarity) AND some endpoint differs between
//!   the copies".  UNSAT is a proof the MATE masks every assignment; a
//!   model decodes into a [`Counterexample`] which is then re-simulated
//!   scalar-style through the cone before being trusted.
//! * [`FaultConeCnf::prove_coverage`] — the *completeness* query for a
//!   wire and its selected MATE set: "every endpoint agrees between the
//!   copies (the fault point is benign) AND no selected cube matches the
//!   fault-free circuit".  UNSAT certifies the selected MATEs cover every
//!   benign point on the wire.
//!
//! Cube literals are lifted exactly as the enumeration verifier treats
//! them, with one deliberate asymmetry for literals on wires outside the
//! cone and its border: the soundness query *drops* them (widening the
//! assignment set we demand masking for — sound, and required for verdict
//! equivalence with `verify_mate_wire`), while the completeness query
//! gives them *fresh free variables* (dropping them there would shrink the
//! cube and could mark a gap "covered" by a literal the circuit might
//! falsify — anti-conservative).

use mate_netlist::{NetCube, NetId, Netlist, SoaNetlist};

use crate::sat::{BudgetExhausted, Lit, SatOutcome, SolveStats, Solver};
use crate::verify::Counterexample;

/// Outcome of the per-MATE soundness query.
#[derive(Clone, Debug)]
pub enum MateProof {
    /// UNSAT: the cube masks every consistent assignment.  The answer
    /// passed the solver's resolution replay check.
    Masked {
        /// Free border wires (the proved space is `2^free`).
        free: usize,
        /// Solver counters.
        stats: SolveStats,
    },
    /// SAT: a consistent assignment propagates the fault.  The witness has
    /// been re-simulated through the cone independently of the CNF.
    Escape {
        /// The decoded, replay-checked witness.
        counterexample: Counterexample,
        /// Solver counters.
        stats: SolveStats,
    },
    /// The conflict budget fired before a verdict.
    Undecided {
        /// Solver counters at the moment the budget fired.
        stats: SolveStats,
    },
}

/// Outcome of the per-wire completeness query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverageProof {
    /// UNSAT: every benign fault point on the wire is matched by a
    /// selected cube.  The answer passed the resolution replay check.
    Complete {
        /// Solver counters.
        stats: SolveStats,
    },
    /// SAT: a benign border assignment no selected cube matches.
    Gap {
        /// Fault-free origin value of the uncovered point.
        origin_value: bool,
        /// Border (and cube out-of-scope) wire values, sorted by net id.
        assignment: Vec<(NetId, bool)>,
        /// Solver counters.
        stats: SolveStats,
    },
    /// The conflict budget fired before a verdict.
    Undecided {
        /// Solver counters at the moment the budget fired.
        stats: SolveStats,
    },
}

/// The compiled fault cone of one wire (see the module docs).
pub struct FaultConeCnf<'a> {
    soa: &'a SoaNetlist,
    origin: NetId,
    /// Cone rows in ascending (levelized, hence topological) order.
    rows: Vec<u32>,
    /// Border nets: support minus the cone, sorted.
    border: Vec<NetId>,
    /// Cone net indices (origin plus every cone-row output), sorted.
    cone_nets: Vec<u32>,
    /// Endpoint nets (flip-flop D inputs and primary outputs inside the
    /// cone), sorted and deduplicated — always cone nets.
    endpoints: Vec<NetId>,
}

/// How a cube literal participates in a query.
enum Lifted {
    /// On a border wire: pins / reads the shared variable.
    Border(NetId),
    /// On a cone wire: reads the copy-specific variable.
    Cone(NetId),
    /// Outside the cone and its border.
    OutOfScope(NetId),
}

impl<'a> FaultConeCnf<'a> {
    /// Extracts and indexes the fault cone of `wire` from the arena.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is out of range for the arena.
    pub fn new(netlist: &Netlist, soa: &'a SoaNetlist, wire: NetId) -> Self {
        let origin = wire.index() as u32;
        let rows = soa.cone_rows(&[origin]);
        let support = soa.cone_support(&[origin]);

        let mut cone_nets: Vec<u32> = rows.iter().map(|&r| soa.row_out(r as usize)).collect();
        cone_nets.push(origin);
        cone_nets.sort_unstable();
        cone_nets.dedup();

        let border: Vec<NetId> = support
            .support
            .iter()
            .filter(|n| cone_nets.binary_search(n).is_err())
            .map(|&n| NetId::from_index(n as usize))
            .collect();

        // Endpoints: flip-flop D nets the cone reaches, plus primary
        // outputs inside the cone — the same net set the enumeration
        // verifier derives from the graph-side cone.
        let mut endpoints: Vec<NetId> = support
            .endpoints
            .iter()
            .map(|&(_, d_net)| NetId::from_index(d_net as usize))
            .collect();
        endpoints.extend(
            netlist
                .outputs()
                .iter()
                .copied()
                .filter(|n| cone_nets.binary_search(&(n.index() as u32)).is_ok()),
        );
        endpoints.sort_unstable();
        endpoints.dedup();

        Self {
            soa,
            origin: wire,
            rows,
            border,
            cone_nets,
            endpoints,
        }
    }

    /// The border wires (sorted).
    pub fn border(&self) -> &[NetId] {
        &self.border
    }

    /// The endpoint nets (sorted).
    pub fn endpoints(&self) -> &[NetId] {
        &self.endpoints
    }

    /// Number of border wires a cube leaves free.
    pub fn free_border(&self, cube: &NetCube) -> usize {
        self.border
            .iter()
            .filter(|&&n| cube.polarity_of(n).is_none())
            .count()
    }

    fn lift(&self, net: NetId) -> Lifted {
        if self.border.binary_search(&net).is_ok() {
            Lifted::Border(net)
        } else if self.cone_nets.binary_search(&(net.index() as u32)).is_ok() {
            Lifted::Cone(net)
        } else {
            Lifted::OutOfScope(net)
        }
    }

    /// Variable of a border net (shared between the copies).
    fn border_var(&self, net: NetId) -> usize {
        self.border.binary_search(&net).expect("border nets only")
    }

    /// Variable of a cone net in copy `copy`.
    fn cone_var(&self, net: NetId, copy: usize) -> usize {
        let i = self
            .cone_nets
            .binary_search(&(net.index() as u32))
            .expect("cone nets only");
        self.border.len() + 2 * i + copy
    }

    /// First variable index free for query-specific auxiliaries.
    fn aux_base(&self) -> usize {
        self.border.len() + 2 * self.cone_nets.len()
    }

    /// Variable of `net` as read by a cone gate pin in copy `copy`.
    fn pin_var(&self, net: NetId, copy: usize) -> usize {
        match self.lift(net) {
            Lifted::Border(n) => self.border_var(n),
            Lifted::Cone(n) => self.cone_var(n, copy),
            Lifted::OutOfScope(n) => {
                unreachable!("cone gate pin {n:?} is neither border nor cone")
            }
        }
    }

    /// Adds the Tseitin clauses of every cone gate in both copies, and the
    /// origin-pinning units (`origin = copy`).
    fn encode_cone(&self, solver: &mut Solver) {
        solver.add_clause(&[Lit::neg(self.cone_var(self.origin, 0))]);
        solver.add_clause(&[Lit::pos(self.cone_var(self.origin, 1))]);
        let mut clause: Vec<Lit> = Vec::with_capacity(7);
        for &row in &self.rows {
            let row = row as usize;
            let tt = *self.soa.row_tt(row);
            let pins = self.soa.row_pins(row);
            let out = NetId::from_index(self.soa.row_out(row) as usize);
            for copy in 0..2 {
                let pin_vars: Vec<usize> = pins
                    .iter()
                    .map(|&p| self.pin_var(NetId::from_index(p as usize), copy))
                    .collect();
                let out_var = self.cone_var(out, copy);
                for a in 0..1usize << pins.len() {
                    clause.clear();
                    for (i, &pv) in pin_vars.iter().enumerate() {
                        // pin_i ≠ a_i escapes this row's obligation.
                        clause.push(Lit::with_value(pv, (a >> i) & 1 == 0));
                    }
                    clause.push(Lit::with_value(out_var, tt.eval(a)));
                    solver.add_clause(&clause);
                }
            }
        }
    }

    /// The soundness query for one MATE cube (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if a SAT model fails the independent cone re-simulation —
    /// that indicates an encoder or solver defect, never an input
    /// property.
    pub fn prove_mate(&self, cube: &NetCube, conflict_budget: u64) -> MateProof {
        // Split the cube exactly as the enumeration verifier does.
        let mut pinned: Vec<(NetId, bool)> = Vec::new();
        let mut checked: Vec<(NetId, bool)> = Vec::new();
        for (net, polarity) in cube.literals() {
            match self.lift(net) {
                Lifted::Border(n) => pinned.push((n, polarity)),
                Lifted::Cone(n) => checked.push((n, polarity)),
                Lifted::OutOfScope(_) => {} // dropped: widens the space
            }
        }
        let free = self.border.len() - pinned.len();

        // Variables: border ∪ cone×2, then c0, c1, then one diff var per
        // endpoint.
        let c_base = self.aux_base();
        let d_base = c_base + 2;
        let num_vars = d_base + self.endpoints.len();
        let mut solver = Solver::new(num_vars);
        self.encode_cone(&mut solver);
        for &(net, value) in &pinned {
            solver.add_clause(&[Lit::with_value(self.border_var(net), value)]);
        }
        // c_o → every checked literal holds in copy o; require c0 ∨ c1.
        for copy in 0..2 {
            for &(net, polarity) in &checked {
                solver.add_clause(&[
                    Lit::neg(c_base + copy),
                    Lit::with_value(self.cone_var(net, copy), polarity),
                ]);
            }
        }
        solver.add_clause(&[Lit::pos(c_base), Lit::pos(c_base + 1)]);
        // d_e → endpoint e differs between the copies; require some d_e.
        // (An empty endpoint list yields the empty clause: no state to
        // corrupt, trivially UNSAT, trivially masked.)
        for (e, &net) in self.endpoints.iter().enumerate() {
            let (v0, v1) = (self.cone_var(net, 0), self.cone_var(net, 1));
            solver.add_clause(&[Lit::neg(d_base + e), Lit::pos(v0), Lit::pos(v1)]);
            solver.add_clause(&[Lit::neg(d_base + e), Lit::neg(v0), Lit::neg(v1)]);
        }
        let any_diff: Vec<Lit> = (0..self.endpoints.len())
            .map(|e| Lit::pos(d_base + e))
            .collect();
        solver.add_clause(&any_diff);

        match solver.solve(conflict_budget) {
            Err(BudgetExhausted { .. }) => MateProof::Undecided {
                stats: solver.stats(),
            },
            Ok(SatOutcome::Unsat) => MateProof::Masked {
                free,
                stats: solver.stats(),
            },
            Ok(SatOutcome::Sat) => {
                let assignment: Vec<(NetId, bool)> = self
                    .border
                    .iter()
                    .map(|&n| (n, solver.model_value(self.border_var(n))))
                    .collect();
                // Re-simulate the cone from the witness, independently of
                // the CNF, and derive origin/endpoint the same way the
                // enumeration verifier does: prefer origin = 1 when the
                // cube holds there, and report the lowest differing
                // endpoint.
                let values = [
                    self.replay(&assignment, false),
                    self.replay(&assignment, true),
                ];
                let holds = |copy: usize| {
                    checked
                        .iter()
                        .all(|&(net, pol)| values[copy][net.index()] == pol)
                };
                assert!(
                    holds(0) || holds(1),
                    "SAT witness replay: cube holds in neither copy"
                );
                let origin_value = holds(1);
                let endpoint = self
                    .endpoints
                    .iter()
                    .copied()
                    .find(|&e| values[0][e.index()] != values[1][e.index()])
                    .expect("SAT witness replay: no endpoint differs");
                MateProof::Escape {
                    counterexample: Counterexample {
                        origin_value,
                        assignment,
                        endpoint,
                    },
                    stats: solver.stats(),
                }
            }
        }
    }

    /// The completeness query: do `cubes` (the selected MATEs of this
    /// wire) cover every benign fault point?  See the module docs.
    ///
    /// # Panics
    ///
    /// Panics if a SAT model fails the independent cone re-simulation.
    pub fn prove_coverage(&self, cubes: &[&NetCube], conflict_budget: u64) -> CoverageProof {
        // Fresh shared variables for cube literals outside the cone and
        // border (see the module docs for why they must not be dropped).
        let mut extras: Vec<NetId> = cubes
            .iter()
            .flat_map(|c| c.literals().map(|(n, _)| n))
            .filter(|&n| matches!(self.lift(n), Lifted::OutOfScope(_)))
            .collect();
        extras.sort_unstable();
        extras.dedup();

        let extra_base = self.aux_base();
        let origin_var = extra_base + extras.len();
        let c_base = origin_var + 1;
        let num_vars = c_base + 2 * cubes.len();
        let mut solver = Solver::new(num_vars);
        self.encode_cone(&mut solver);

        // Benign: every endpoint agrees between the copies.
        for &net in &self.endpoints {
            let (v0, v1) = (self.cone_var(net, 0), self.cone_var(net, 1));
            solver.add_clause(&[Lit::neg(v0), Lit::pos(v1)]);
            solver.add_clause(&[Lit::pos(v0), Lit::neg(v1)]);
        }

        let lit_var = |net: NetId, copy: usize| -> usize {
            match self.lift(net) {
                Lifted::Border(n) => self.border_var(n),
                Lifted::Cone(n) => self.cone_var(n, copy),
                Lifted::OutOfScope(n) => {
                    extra_base + extras.binary_search(&n).expect("collected above")
                }
            }
        };
        // Unmatched: for each cube m and each copy o, c_mo is implied by
        // the cube holding in copy o, and the fault-free copy (selected by
        // the origin variable) must have c_mo false.
        for (m, cube) in cubes.iter().enumerate() {
            for copy in 0..2 {
                let c_m = c_base + 2 * m + copy;
                let mut implies: Vec<Lit> = cube
                    .literals()
                    .map(|(net, pol)| Lit::with_value(lit_var(net, copy), !pol))
                    .collect();
                implies.push(Lit::pos(c_m));
                solver.add_clause(&implies);
            }
            solver.add_clause(&[Lit::pos(origin_var), Lit::neg(c_base + 2 * m)]);
            solver.add_clause(&[Lit::neg(origin_var), Lit::neg(c_base + 2 * m + 1)]);
        }

        match solver.solve(conflict_budget) {
            Err(BudgetExhausted { .. }) => CoverageProof::Undecided {
                stats: solver.stats(),
            },
            Ok(SatOutcome::Unsat) => CoverageProof::Complete {
                stats: solver.stats(),
            },
            Ok(SatOutcome::Sat) => {
                let origin_value = solver.model_value(origin_var);
                let mut assignment: Vec<(NetId, bool)> = self
                    .border
                    .iter()
                    .map(|&n| (n, solver.model_value(self.border_var(n))))
                    .collect();
                for (i, &n) in extras.iter().enumerate() {
                    assignment.push((n, solver.model_value(extra_base + i)));
                }
                assignment.sort_unstable();
                // Replay: the point must be benign, and no cube may match
                // the fault-free circuit under the witness.
                let border_only: Vec<(NetId, bool)> = assignment
                    .iter()
                    .copied()
                    .filter(|&(n, _)| self.border.binary_search(&n).is_ok())
                    .collect();
                let values = [
                    self.replay(&border_only, false),
                    self.replay(&border_only, true),
                ];
                assert!(
                    self.endpoints
                        .iter()
                        .all(|&e| values[0][e.index()] == values[1][e.index()]),
                    "coverage witness replay: point is not benign"
                );
                let fault_free = &values[usize::from(origin_value)];
                for cube in cubes {
                    let matched = cube.eval(|net| match self.lift(net) {
                        Lifted::Border(_) | Lifted::OutOfScope(_) => {
                            let i = assignment
                                .binary_search_by_key(&net, |&(n, _)| n)
                                .expect("witness covers every cube wire");
                            assignment[i].1
                        }
                        Lifted::Cone(n) => fault_free[n.index()],
                    });
                    assert!(
                        !matched,
                        "coverage witness replay: a cube matches the point"
                    );
                }
                CoverageProof::Gap {
                    origin_value,
                    assignment,
                    stats: solver.stats(),
                }
            }
        }
    }

    /// Scalar re-simulation of the cone: returns per-net values with the
    /// border set from `assignment`, the origin forced to `origin_value`,
    /// and every cone row evaluated in levelized order.  Only cone and
    /// border net slots are meaningful.
    fn replay(&self, assignment: &[(NetId, bool)], origin_value: bool) -> Vec<bool> {
        let mut values = vec![false; self.soa.num_nets()];
        for &(net, value) in assignment {
            values[net.index()] = value;
        }
        values[self.origin.index()] = origin_value;
        for &row in &self.rows {
            let row = row as usize;
            let tt = self.soa.row_tt(row);
            let mut a = 0usize;
            for (i, &p) in self.soa.row_pins(row).iter().enumerate() {
                a |= usize::from(values[p as usize]) << i;
            }
            values[self.soa.row_out(row) as usize] = tt.eval(a);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate::prelude::*;
    use mate_netlist::examples::figure1;
    use mate_netlist::Topology;

    fn searched_figure1() -> (Netlist, Topology, SoaNetlist, NetId, NetCube) {
        let (netlist, topo) = figure1();
        let soa = SoaNetlist::build(&netlist, &topo);
        let d = netlist.find_net("d").unwrap();
        let result = search_wire(&netlist, &topo, d, &SearchConfig::default());
        let cube = result.mates[0].cube.clone();
        (netlist, topo, soa, d, cube)
    }

    #[test]
    fn figure1_mate_is_proved_by_sat() {
        let (netlist, _topo, soa, d, cube) = searched_figure1();
        let cnf = FaultConeCnf::new(&netlist, &soa, d);
        match cnf.prove_mate(&cube, u64::MAX) {
            MateProof::Masked { free, .. } => assert_eq!(free, cnf.free_border(&cube)),
            other => panic!("expected Masked, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_figure1_mate_is_refuted_with_replayable_witness() {
        let (netlist, _topo, soa, d, cube) = searched_figure1();
        // Flip one literal: the cube now *selects* a propagating cycle.
        let corrupted = NetCube::from_literals(
            cube.literals()
                .map(|(n, pol)| (n, !pol))
                .take(1)
                .chain(cube.literals().skip(1)),
        )
        .unwrap();
        let cnf = FaultConeCnf::new(&netlist, &soa, d);
        match cnf.prove_mate(&corrupted, u64::MAX) {
            MateProof::Escape { counterexample, .. } => {
                // The witness covers every border wire.
                assert_eq!(counterexample.assignment.len(), cnf.border().len());
            }
            other => panic!("expected Escape, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_undecided() {
        let (netlist, _topo, soa, d, cube) = searched_figure1();
        let cnf = FaultConeCnf::new(&netlist, &soa, d);
        // Corrupt the cube so the query is SAT (needs at least a few
        // conflicts or decisions); a zero budget cannot conclude unless
        // the instance propagates to an answer outright.  Use the sound
        // cube, whose UNSAT proof needs conflicts on figure1's cone.
        match cnf.prove_mate(&cube, 0) {
            MateProof::Undecided { .. } | MateProof::Masked { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
