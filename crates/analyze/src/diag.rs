//! Diagnostics: severity, locus, deterministic ordering, and renderers.
//!
//! Every lint pass reports [`Diagnostic`]s; [`sort_diagnostics`] establishes
//! the canonical order (severity, code, locus, message) so that text and
//! JSON artifacts are byte-stable regardless of pass execution order or
//! thread count.

use std::fmt;

use mate_netlist::{CellId, NetId, Netlist};

/// How bad a finding is.  `Error` sorts first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The netlist violates a structural invariant the MATE pipeline relies
    /// on; downstream results are not trustworthy.
    Error,
    /// Suspicious but not fatal — the pipeline produces defined results.
    Warning,
    /// Statistics and coverage notes.
    Info,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a diagnostic points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Locus {
    /// A specific net.
    Net(NetId),
    /// A specific cell instance.
    Cell(CellId),
    /// The design as a whole (aggregate statistics).
    Design,
}

impl Locus {
    /// Sort rank: nets before cells before design-wide notes.
    fn rank(self) -> (u8, usize) {
        match self {
            Locus::Net(n) => (0, n.index()),
            Locus::Cell(c) => (1, c.index()),
            Locus::Design => (2, 0),
        }
    }

    /// Human-readable locus name, resolved against `netlist`.
    pub fn name(self, netlist: &Netlist) -> String {
        match self {
            Locus::Net(n) => netlist.net(n).name().to_owned(),
            Locus::Cell(c) => netlist.cell(c).name().to_owned(),
            Locus::Design => "<design>".to_owned(),
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable pass identifier, e.g. `"comb-loop"`.
    pub code: &'static str,
    /// What it points at.
    pub locus: Locus,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Canonical ordering key: (severity, code, locus kind, locus index,
    /// message).  Total and deterministic, so sorted output is byte-stable.
    fn sort_key(&self) -> (Severity, &'static str, (u8, usize), &str) {
        (self.severity, self.code, self.locus.rank(), &self.message)
    }
}

/// Sorts diagnostics into the canonical deterministic order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// Renders diagnostics as one line each:
/// `severity[code] locus: message`.
pub fn render_text(netlist: &Netlist, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}[{}] {}: {}\n",
            d.severity,
            d.code,
            d.locus.name(netlist),
            d.message
        ));
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON array (hand-rolled — the workspace has no
/// serde).  Output is byte-stable for canonically sorted input.
pub fn render_json(netlist: &Netlist, diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        let kind = match d.locus {
            Locus::Net(_) => "net",
            Locus::Cell(_) => "cell",
            Locus::Design => "design",
        };
        out.push_str(&format!(
            "  {{\"severity\":\"{}\",\"code\":\"{}\",\"locus_kind\":\"{}\",\"locus\":\"{}\",\"message\":\"{}\"}}{}\n",
            d.severity,
            json_escape(d.code),
            kind,
            json_escape(&d.locus.name(netlist)),
            json_escape(&d.message),
            if i + 1 == diags.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// The number of diagnostics at or above `deny` severity (severities sort
/// `Error < Warning < Info`, so "at or above" means `<= deny`).
pub fn count_denied(diags: &[Diagnostic], deny: Severity) -> usize {
    diags.iter().filter(|d| d.severity <= deny).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Info);
    }

    #[test]
    fn sort_is_deterministic_and_total() {
        let mk = |sev, code, locus, msg: &str| Diagnostic {
            severity: sev,
            code,
            locus,
            message: msg.to_owned(),
        };
        let a = mk(Severity::Info, "b", Locus::Design, "z");
        let b = mk(Severity::Error, "a", Locus::Net(NetId::from_index(3)), "y");
        let c = mk(Severity::Error, "a", Locus::Net(NetId::from_index(1)), "y");
        let d = mk(
            Severity::Error,
            "a",
            Locus::Cell(CellId::from_index(0)),
            "y",
        );
        let mut v = vec![a.clone(), b.clone(), c.clone(), d.clone()];
        sort_diagnostics(&mut v);
        assert_eq!(v, vec![c, b, d, a]);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
