//! Netlist lint passes.
//!
//! Each pass implements [`LintPass`] and reports structural problems the
//! MATE pipeline either rejects at [`Netlist::validate`] time (surfaced here
//! with a precise locus instead of a single error) or silently tolerates
//! (dangling flip-flops, unreachable logic, gate types the gate-masking-table
//! computation cannot produce cubes for).
//!
//! Passes run over a [`LintContext`]; the topology is optional because several
//! passes exist precisely to explain *why* `validate()` failed.

use mate_netlist::{masking_cubes, CellId, FaultCone, NetDriver, NetId, Netlist, Topology};

use crate::diag::{sort_diagnostics, Diagnostic, Locus, Severity};

/// Shared input of every lint pass.
pub struct LintContext<'a> {
    /// The netlist under analysis.
    pub netlist: &'a Netlist,
    /// Levelization — absent when the netlist does not validate (undriven
    /// nets, combinational loops).  Passes that need it skip gracefully.
    pub topology: Option<&'a Topology>,
}

/// A single lint pass.
pub trait LintPass {
    /// Stable diagnostic code, e.g. `"undriven-net"`.
    fn code(&self) -> &'static str;

    /// Appends findings to `out`.  Must not panic on any netlist
    /// [`Netlist`] can represent, including invalid ones.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The full shipped pass list, in registration order (output order is
/// canonicalized afterwards, so registration order is irrelevant to users).
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(UndrivenNet),
        Box::new(MultiDrivenNet),
        Box::new(CombLoop),
        Box::new(DanglingFf),
        Box::new(UnreachableCell),
        Box::new(ConeStats),
        Box::new(GmtGap),
    ]
}

/// Runs `passes` over `cx` and returns canonically sorted diagnostics.
pub fn run_passes(passes: &[Box<dyn LintPass>], cx: &LintContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pass in passes {
        pass.run(cx, &mut out);
    }
    sort_diagnostics(&mut out);
    out
}

/// Runs the default pass list over `netlist`, building the topology when the
/// netlist validates.
pub fn run_lints(netlist: &Netlist) -> Vec<Diagnostic> {
    let topo = netlist.validate().ok();
    let cx = LintContext {
        netlist,
        topology: topo.as_ref(),
    };
    run_passes(&default_passes(), &cx)
}

/// Counts how many cells list `net` among their outputs, plus one if the net
/// is a primary input.  [`NetDriver`] only records the *first* driver, so the
/// multi-driver lint recounts from scratch.
fn count_drivers(netlist: &Netlist, net: NetId) -> usize {
    let from_cells = netlist.cells().iter().filter(|c| c.output() == net).count();
    let from_input = usize::from(netlist.net(net).driver() == NetDriver::Input);
    from_cells + from_input
}

/// Nets with no driver at all: no cell output, not a primary input.
pub struct UndrivenNet;

impl LintPass for UndrivenNet {
    fn code(&self) -> &'static str {
        "undriven-net"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, net) in cx.netlist.nets().iter().enumerate() {
            if net.driver() == NetDriver::None {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    code: self.code(),
                    locus: Locus::Net(NetId::from_index(i)),
                    message: "net has no driver (no cell output, not a primary input)".to_owned(),
                });
            }
        }
    }
}

/// Nets driven by more than one source.  Such netlists cannot be built
/// through the checked API but can arrive from foreign Verilog or
/// [`Netlist::add_cell_unchecked`].
pub struct MultiDrivenNet;

impl LintPass for MultiDrivenNet {
    fn code(&self) -> &'static str {
        "multi-driven-net"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.netlist.num_nets() {
            let id = NetId::from_index(i);
            let drivers = count_drivers(cx.netlist, id);
            if drivers > 1 {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    code: self.code(),
                    locus: Locus::Net(id),
                    message: format!("net has {drivers} drivers; simulation is undefined"),
                });
            }
        }
    }
}

/// Combinational loops: strongly connected components of the combinational
/// gate graph (iterative Tarjan), reported once per SCC at the smallest
/// member output net.
pub struct CombLoop;

impl LintPass for CombLoop {
    fn code(&self) -> &'static str {
        "comb-loop"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.netlist;
        let num = n.num_cells();
        // Successor edges between combinational cells: gate -> readers of its
        // output.  Sequential cells break the cycle by construction.
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n.num_nets()];
        for (i, cell) in n.cells().iter().enumerate() {
            if n.is_seq_cell(CellId::from_index(i)) {
                continue;
            }
            for &inp in cell.inputs() {
                readers[inp.index()].push(i as u32);
            }
        }
        // Successors of a combinational cell = combinational readers of its
        // output net, precomputed per cell so the traversal is index-only.
        let succ: Vec<&[u32]> = (0..num)
            .map(|i| {
                let out_net = n.cell(CellId::from_index(i)).output();
                readers[out_net.index()].as_slice()
            })
            .collect();

        // Iterative Tarjan with an explicit frame stack: (node, next edge).
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; num];
        let mut lowlink = vec![0u32; num];
        let mut on_stack = vec![false; num];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<u32>> = Vec::new();

        for root in 0..num {
            if index[root] != UNVISITED || n.is_seq_cell(CellId::from_index(root)) {
                continue;
            }
            let mut frames: Vec<(u32, usize)> = vec![(root as u32, 0)];
            while let Some(&(v, edge)) = frames.last() {
                let vi = v as usize;
                if edge == 0 {
                    index[vi] = next_index;
                    lowlink[vi] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[vi] = true;
                }
                if let Some(&w) = succ[vi].get(edge) {
                    // Invariant: the loop condition just proved frames is
                    // non-empty, and nothing popped it since.
                    frames
                        .last_mut()
                        .expect("frame stack is non-empty inside the loop")
                        .1 += 1;
                    let wi = w as usize;
                    if index[wi] == UNVISITED {
                        frames.push((w, 0));
                    } else if on_stack[wi] {
                        lowlink[vi] = lowlink[vi].min(index[wi]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        let pi = p as usize;
                        lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                    }
                    if lowlink[vi] == index[vi] {
                        let mut scc = Vec::new();
                        loop {
                            // Invariant: v was pushed onto the Tarjan stack
                            // when its frame was first expanded and is still
                            // on it (it is its own SCC root), so the pop
                            // terminates at v before emptying the stack.
                            let w = stack.pop().expect("Tarjan stack holds the SCC root");
                            on_stack[w as usize] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(scc);
                    }
                }
            }
        }

        for scc in sccs {
            let cyclic = scc.len() > 1 || {
                // A singleton is a loop only if the gate reads its own output.
                let c = scc[0] as usize;
                let out_net = n.cell(CellId::from_index(c)).output();
                n.cell(CellId::from_index(c)).inputs().contains(&out_net)
            };
            if !cyclic {
                continue;
            }
            let locus_net = scc
                .iter()
                .map(|&c| n.cell(CellId::from_index(c as usize)).output())
                .min()
                .expect("SCC is non-empty");
            out.push(Diagnostic {
                severity: Severity::Error,
                code: self.code(),
                locus: Locus::Net(locus_net),
                message: format!(
                    "combinational loop through {} gate{}",
                    scc.len(),
                    if scc.len() == 1 { "" } else { "s" }
                ),
            });
        }
    }
}

/// Flip-flop outputs that nothing reads: no cell input, not a primary
/// output.  Harmless but usually a sign of an incomplete design dump.
pub struct DanglingFf;

impl LintPass for DanglingFf {
    fn code(&self) -> &'static str {
        "dangling-ff"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.netlist;
        let mut read = vec![false; n.num_nets()];
        for cell in n.cells() {
            for &inp in cell.inputs() {
                read[inp.index()] = true;
            }
        }
        for &o in n.outputs() {
            read[o.index()] = true;
        }
        for (i, cell) in n.cells().iter().enumerate() {
            let id = CellId::from_index(i);
            if n.is_seq_cell(id) && !read[cell.output().index()] {
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: self.code(),
                    locus: Locus::Net(cell.output()),
                    message: format!("flip-flop {} output is never read", cell.name()),
                });
            }
        }
    }
}

/// Cells from which no primary output is reachable (backward traversal over
/// driver edges, through flip-flops).  Dead logic inflates the fault space
/// without affecting program outcomes.
pub struct UnreachableCell;

impl LintPass for UnreachableCell {
    fn code(&self) -> &'static str {
        "unreachable-cell"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.netlist;
        // All drivers per net, not just the first recorded one, so every
        // driver of a multiply-driven net counts as reachable.
        let mut drivers: Vec<Vec<u32>> = vec![Vec::new(); n.num_nets()];
        for (i, cell) in n.cells().iter().enumerate() {
            drivers[cell.output().index()].push(i as u32);
        }
        let mut cell_reached = vec![false; n.num_cells()];
        let mut net_seen = vec![false; n.num_nets()];
        let mut work: Vec<NetId> = n.outputs().to_vec();
        for &o in n.outputs() {
            net_seen[o.index()] = true;
        }
        while let Some(net) = work.pop() {
            for &c in &drivers[net.index()] {
                let ci = c as usize;
                if !cell_reached[ci] {
                    cell_reached[ci] = true;
                    for &inp in n.cell(CellId::from_index(ci)).inputs() {
                        if !net_seen[inp.index()] {
                            net_seen[inp.index()] = true;
                            work.push(inp);
                        }
                    }
                }
            }
        }
        for (i, cell) in n.cells().iter().enumerate() {
            if !cell_reached[i] {
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: self.code(),
                    locus: Locus::Cell(CellId::from_index(i)),
                    message: format!("no primary output is reachable from cell {}", cell.name()),
                });
            }
        }
    }
}

/// Aggregate fault-cone statistics over all flip-flop output wires: gate
/// count and border width drive both MATE search cost and verifier
/// enumeration cost, so surface them before running either.
pub struct ConeStats;

impl LintPass for ConeStats {
    fn code(&self) -> &'static str {
        "cone-stats"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(topo) = cx.topology else {
            return; // needs a validated netlist
        };
        let n = cx.netlist;
        if topo.seq_cells().is_empty() {
            return;
        }
        let mut max_gates = 0usize;
        let mut sum_gates = 0usize;
        let mut max_border = 0usize;
        let mut sum_border = 0usize;
        let count = topo.seq_cells().len();
        for &ff in topo.seq_cells() {
            let cone = FaultCone::compute(n, topo, n.cell(ff).output());
            let border = cone.border_nets(n).len();
            max_gates = max_gates.max(cone.num_gates());
            sum_gates += cone.num_gates();
            max_border = max_border.max(border);
            sum_border += border;
        }
        out.push(Diagnostic {
            severity: Severity::Info,
            code: self.code(),
            locus: Locus::Design,
            message: format!(
                "{} FF fault cones: gates mean {:.1} max {}, border wires mean {:.1} max {}",
                count,
                sum_gates as f64 / count as f64,
                max_gates,
                sum_border as f64 / count as f64,
                max_border
            ),
        });
    }
}

/// Combinational cell types in use whose gate-masking table is empty for
/// *every* single faulty pin — a fault on any input of such a gate can never
/// be masked by the gate itself (XOR-like and single-input cells), so MATE
/// search cannot cut propagation paths there.
pub struct GmtGap;

impl LintPass for GmtGap {
    fn code(&self) -> &'static str {
        "gmt-gap"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.netlist;
        let lib = n.library();
        let mut first_instance: Vec<Option<(CellId, usize)>> = Vec::new();
        for (i, cell) in n.cells().iter().enumerate() {
            let t = cell.type_id().index();
            if first_instance.len() <= t {
                first_instance.resize(t + 1, None);
            }
            let entry = &mut first_instance[t];
            match entry {
                Some((_, count)) => *count += 1,
                None => *entry = Some((CellId::from_index(i), 1)),
            }
        }
        for (t, entry) in first_instance.iter().enumerate() {
            let Some((first, count)) = entry else {
                continue;
            };
            let ty = lib.cell_type(mate_netlist::CellTypeId::from_index(t));
            let Some(tt) = ty.truth_table() else {
                continue; // flip-flops are handled by sequential masking
            };
            if tt.inputs() == 0 {
                continue; // constant TIE cells have no pins to fault
            }
            let coverable = (0..tt.inputs()).any(|pin| !masking_cubes(tt, 1 << pin).is_empty());
            if !coverable {
                out.push(Diagnostic {
                    severity: Severity::Info,
                    code: self.code(),
                    locus: Locus::Cell(*first),
                    message: format!(
                        "cell type {} ({} instance{}) has no masking-capable pin: \
                         faults on its inputs always propagate through the gate",
                        ty.name(),
                        count,
                        if *count == 1 { "" } else { "s" }
                    ),
                });
            }
        }
    }
}
