//! Independent MATE soundness verifier.
//!
//! A MATE for wire `w` claims: *whenever the MATE cube holds in a clock
//! cycle, a single-event upset on `w` in that cycle is masked before it
//! reaches any flip-flop input or primary output*.  This module re-proves
//! that claim with one of two engines, both sharing **zero** code with the
//! propagation engines that produced the MATE (`mate::search` /
//! `mate::propagate`):
//!
//! * [`ProofBackend::Sat`] (the default): compile the fault cone to CNF
//!   ([`crate::encode`]) and decide the masking condition exactly with the
//!   CDCL solver in [`crate::sat`] — every verdict is a certificate
//!   ([`Verdict::Proved`] carries a replay-checked UNSAT answer,
//!   [`Verdict::Refuted`] a re-simulated model) unless the conflict budget
//!   fires.
//! * [`ProofBackend::Enumeration`]: brute force, as follows.
//!
//! 1. Rebuild the fault cone of `w` and its border wires.
//! 2. Specialize every cone gate by [`TruthTable::cofactor`]-ing out the
//!    border pins the cube pins to constants.
//! 3. Enumerate all remaining free border-wire assignments (up to a
//!    configurable cap, 64 assignments per word via
//!    [`TruthTable::eval_wide`]); for each assignment consistent with the
//!    cube, require every cone endpoint to take the same value for both
//!    origin polarities.
//!
//! The proof obligation is checked against the *fault-free* circuit
//! semantics: for origin value `o` and border assignment `B`, the cube must
//! be re-checked on the cone values implied by `(o, B)` (a cube may contain
//! literals on cone-internal wires, not just border wires).  Literals on
//! wires outside the cone and its border are ignored, which only *widens*
//! the set of assignments we demand masking for — a refutation under the
//! widened cube is reported as [`Verdict::Refuted`], and a proof is still a
//! proof of the original claim.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mate::{Mate, MateSet};
use mate_netlist::{
    ConeEndpoint, FaultCone, NetCube, NetId, Netlist, SoaNetlist, Topology, TruthTable,
};

use crate::encode::{FaultConeCnf, MateProof};
use crate::sat::SolveStats;

/// Which engine decides the masking condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofBackend {
    /// Exhaustive enumeration of free border assignments, up to
    /// [`VerifyConfig::max_assignments`].  Spaces beyond the cap come back
    /// [`Verdict::Bounded`] — a sample, not a certificate.
    Enumeration,
    /// The CDCL SAT backend ([`crate::sat`] + [`crate::encode`]): decides
    /// the full space exactly, so every verdict is [`Verdict::Proved`] or
    /// [`Verdict::Refuted`] unless the conflict budget fires
    /// ([`Verdict::Bounded`] then records the spent conflicts in the
    /// verdict's [`MateVerdict::stats`]).
    Sat,
}

impl ProofBackend {
    /// Lower-case label used by the CLI, artifacts, and fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            ProofBackend::Enumeration => "enum",
            ProofBackend::Sat => "sat",
        }
    }
}

/// Engine selection and limits for [`verify_mate_wire`] / [`verify_mates`].
#[derive(Clone, Copy, Debug)]
pub struct VerifyConfig {
    /// Maximum number of border assignments enumerated per (MATE, wire)
    /// pair under [`ProofBackend::Enumeration`].  Cones whose free border
    /// exceeds `log2(max_assignments)` wires come back
    /// [`Verdict::Bounded`].
    pub max_assignments: u64,
    /// Worker threads for [`verify_mates`]; `0` means all available cores.
    pub threads: usize,
    /// The proof engine.
    pub backend: ProofBackend,
    /// Conflict budget per solver call under [`ProofBackend::Sat`].
    pub conflict_budget: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self {
            max_assignments: 1 << 20,
            threads: 0,
            backend: ProofBackend::Sat,
            conflict_budget: 1_000_000,
        }
    }
}

/// A concrete assignment demonstrating that a MATE does not mask a fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The fault-free value of the faulty wire in the violating cycle.
    pub origin_value: bool,
    /// The full border-wire assignment (cube-pinned and free wires alike),
    /// sorted by net id.
    pub assignment: Vec<(NetId, bool)>,
    /// The endpoint net that takes different values with and without the
    /// fault.
    pub endpoint: NetId,
}

/// Outcome of verifying one (MATE, wire) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every border assignment consistent with the cube masks the fault.
    Proved {
        /// Number of assignments enumerated (the full space).
        checked: u64,
    },
    /// No violation found, but the space was not decided: the enumeration
    /// cap truncated it, or the SAT backend's conflict budget fired (then
    /// `checked` is 0 and [`MateVerdict::stats`] records the effort).
    Bounded {
        /// Number of assignments enumerated.
        checked: u64,
    },
    /// The MATE is unsound: a consistent assignment propagates the fault.
    Refuted {
        /// The violating assignment.
        counterexample: Counterexample,
    },
}

impl Verdict {
    /// Lower-case label used by renderers and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Proved { .. } => "proved",
            Verdict::Bounded { .. } => "bounded",
            Verdict::Refuted { .. } => "refuted",
        }
    }
}

/// One verified (MATE, wire) pair inside a [`MateSet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MateVerdict {
    /// Index of the MATE in the verified set.
    pub mate_index: usize,
    /// The faulty wire the MATE claims to mask.
    pub wire: NetId,
    /// The verification outcome.
    pub verdict: Verdict,
    /// Solver counters under [`ProofBackend::Sat`]; `None` under
    /// enumeration.  Deterministic (no wall time), so verdict lists stay
    /// bit-identical across runs and thread counts.
    pub stats: Option<SolveStats>,
}

/// Proved / Bounded / Refuted counts over a verdict list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Pairs proved over the full assignment space.
    pub proved: usize,
    /// Pairs clean up to the cap.
    pub bounded: usize,
    /// Unsound pairs.
    pub refuted: usize,
}

/// Tallies verdicts.
pub fn count_verdicts(verdicts: &[MateVerdict]) -> VerdictCounts {
    let mut c = VerdictCounts::default();
    for v in verdicts {
        match v.verdict {
            Verdict::Proved { .. } => c.proved += 1,
            Verdict::Bounded { .. } => c.bounded += 1,
            Verdict::Refuted { .. } => c.refuted += 1,
        }
    }
    c
}

/// A cone gate with its cube-pinned border pins cofactored away.
struct SpecGate {
    /// Truth table over the remaining (free) pins.
    tt: TruthTable,
    /// Source net per remaining pin, in pin order.
    srcs: Vec<NetId>,
    /// Output net.
    out: NetId,
}

/// The 64-lane enumeration constants: lane `l` of word `j` holds bit `j` of
/// the lane index, so the six words together enumerate all 64 assignments of
/// six free wires in one pass.
const LANE_WORDS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Verifies that `cube` masks a fault on `wire` within one clock cycle,
/// dispatching on [`VerifyConfig::backend`].
///
/// Under [`ProofBackend::Sat`] this builds a fresh [`SoaNetlist`] per call;
/// batch callers should prefer [`verify_mates`], which builds the arena
/// once.
pub fn verify_mate_wire(
    netlist: &Netlist,
    topo: &Topology,
    wire: NetId,
    cube: &NetCube,
    config: &VerifyConfig,
) -> Verdict {
    match config.backend {
        ProofBackend::Enumeration => verify_mate_wire_enum(netlist, topo, wire, cube, config),
        ProofBackend::Sat => {
            let soa = SoaNetlist::build(netlist, topo);
            verify_mate_wire_sat(netlist, &soa, wire, cube, config.conflict_budget).0
        }
    }
}

/// The SAT proof path for one (MATE, wire) pair: compiles the fault cone
/// to CNF ([`FaultConeCnf`]) and decides the masking condition exactly,
/// returning the verdict together with the solver counters.
///
/// * UNSAT (replay-checked) ⇒ [`Verdict::Proved`] over the full
///   `2^free`-assignment space.
/// * SAT ⇒ [`Verdict::Refuted`] with a counterexample that has been
///   re-simulated through the cone independently of the CNF.
/// * Budget exhausted ⇒ [`Verdict::Bounded`] with `checked = 0` (nothing
///   was exhaustively covered; the counters record the effort).
pub fn verify_mate_wire_sat(
    netlist: &Netlist,
    soa: &SoaNetlist,
    wire: NetId,
    cube: &NetCube,
    conflict_budget: u64,
) -> (Verdict, SolveStats) {
    let cnf = FaultConeCnf::new(netlist, soa, wire);
    match cnf.prove_mate(cube, conflict_budget) {
        MateProof::Masked { free, stats } => {
            let checked = if free >= 63 { u64::MAX } else { 1u64 << free };
            (Verdict::Proved { checked }, stats)
        }
        MateProof::Escape {
            counterexample,
            stats,
        } => (Verdict::Refuted { counterexample }, stats),
        MateProof::Undecided { stats } => (Verdict::Bounded { checked: 0 }, stats),
    }
}

/// Verifies that `cube` masks a fault on `wire` within one clock cycle, by
/// exhaustive enumeration over the fault cone's border assignments.
pub fn verify_mate_wire_enum(
    netlist: &Netlist,
    topo: &Topology,
    wire: NetId,
    cube: &NetCube,
    config: &VerifyConfig,
) -> Verdict {
    let cone = FaultCone::compute(netlist, topo, wire);
    let border = cone.border_nets(netlist);

    // Split the cube: border literals pin wires during enumeration,
    // cone-net literals become satisfaction checks on computed values,
    // anything else is dropped (see module docs for why that is sound).
    let mut pinned: Vec<(NetId, bool)> = Vec::new();
    let mut checked_literals: Vec<(NetId, bool)> = Vec::new();
    for (net, polarity) in cube.literals() {
        if border.binary_search(&net).is_ok() {
            pinned.push((net, polarity));
        } else if cone.contains_net(net) {
            checked_literals.push((net, polarity));
        }
    }
    let free: Vec<NetId> = border
        .iter()
        .copied()
        .filter(|n| cube.polarity_of(*n).is_none())
        .collect();

    // Specialize each cone gate: cofactor pinned border pins out, highest
    // pin first so lower pin indices stay stable while cofactoring.
    let gates: Vec<SpecGate> = cone
        .cells()
        .iter()
        .map(|&c| {
            let cell = netlist.cell(c);
            let mut tt = *netlist
                .cell_type_of(c)
                .truth_table()
                .expect("fault cones contain only combinational cells");
            let mut srcs: Vec<NetId> = cell.inputs().to_vec();
            for pin in (0..srcs.len()).rev() {
                if let Some(value) = cube.polarity_of(srcs[pin]) {
                    if !cone.contains_net(srcs[pin]) {
                        tt = tt.cofactor(pin, value);
                        srcs.remove(pin);
                    }
                }
            }
            SpecGate {
                tt,
                srcs,
                out: cell.output(),
            }
        })
        .collect();

    // Endpoint nets, deduplicated: FF data-input nets and primary outputs.
    let mut endpoint_nets: Vec<NetId> = cone
        .endpoints()
        .iter()
        .map(|e| match *e {
            ConeEndpoint::SeqPin { cell, pin } => netlist.cell(cell).inputs()[pin],
            ConeEndpoint::Output(net) => net,
        })
        .collect();
    endpoint_nets.sort_unstable();
    endpoint_nets.dedup();

    // Assignment space: `free.len()` wires, capped.
    let cap = config.max_assignments.max(1);
    let total: u64 = if free.len() >= 63 {
        u64::MAX
    } else {
        1u64 << free.len()
    };
    let limit = total.min(cap);
    let blocks = limit.div_ceil(64);

    let mut values: Vec<u64> = vec![0; netlist.num_nets()];
    for &(net, value) in &pinned {
        values[net.index()] = if value { !0 } else { 0 };
    }
    let mut endpoint_words: [Vec<u64>; 2] =
        [vec![0; endpoint_nets.len()], vec![0; endpoint_nets.len()]];
    let mut rows: Vec<u64> = Vec::with_capacity(6);

    for block in 0..blocks {
        // Free wires: the low six index bits vary within the word, the rest
        // come from the block number.
        for (j, &net) in free.iter().enumerate() {
            values[net.index()] = if j < 6 {
                LANE_WORDS[j]
            } else {
                let bit = j - 6;
                // Free counts beyond 63+6 cannot be reached by any block the
                // cap admits; those high bits are always zero.
                let set = bit < 63 && (block >> bit) & 1 == 1;
                if set {
                    !0
                } else {
                    0
                }
            };
        }
        // Lanes past the enumeration limit are ignored.
        let base = block * 64;
        let lanes_left = limit - base;
        let lane_valid: u64 = if lanes_left >= 64 {
            !0
        } else {
            (1u64 << lanes_left) - 1
        };

        let mut cube_ok = [0u64; 2];
        for (o, origin_value) in [(0usize, 0u64), (1, !0u64)] {
            values[cone.origin().index()] = origin_value;
            for gate in &gates {
                rows.clear();
                rows.extend(gate.srcs.iter().map(|s| values[s.index()]));
                values[gate.out.index()] = if rows.is_empty() {
                    // Fully pinned gate: a constant.
                    if gate.tt.eval(0) {
                        !0
                    } else {
                        0
                    }
                } else {
                    gate.tt.eval_wide(&rows)
                };
            }
            let mut ok = !0u64;
            for &(net, polarity) in &checked_literals {
                let v = values[net.index()];
                ok &= if polarity { v } else { !v };
            }
            cube_ok[o] = ok;
            for (slot, &net) in endpoint_words[o].iter_mut().zip(&endpoint_nets) {
                *slot = values[net.index()];
            }
        }

        // A lane violates the MATE claim if the cube holds for either origin
        // polarity there and some endpoint differs between the polarities.
        let consistent = (cube_ok[0] | cube_ok[1]) & lane_valid;
        for (e, &endpoint) in endpoint_nets.iter().enumerate() {
            let bad = (endpoint_words[0][e] ^ endpoint_words[1][e]) & consistent;
            if bad != 0 {
                let lane = bad.trailing_zeros() as u64;
                let origin_value = cube_ok[1] >> lane & 1 == 1;
                let mut assignment: Vec<(NetId, bool)> = pinned.clone();
                for (j, &net) in free.iter().enumerate() {
                    let bit = if j < 6 {
                        lane >> j & 1 == 1
                    } else {
                        let b = j - 6;
                        b < 63 && (block >> b) & 1 == 1
                    };
                    assignment.push((net, bit));
                }
                assignment.sort_unstable();
                return Verdict::Refuted {
                    counterexample: Counterexample {
                        origin_value,
                        assignment,
                        endpoint,
                    },
                };
            }
        }
    }

    if limit == total {
        Verdict::Proved { checked: total }
    } else {
        Verdict::Bounded { checked: limit }
    }
}

/// Verifies every (MATE, masked wire) pair in `mates`, in parallel, returning
/// verdicts sorted by (mate index, wire) — byte-stable for any thread count.
pub fn verify_mates(
    netlist: &Netlist,
    topo: &Topology,
    mates: &MateSet,
    config: &VerifyConfig,
) -> Vec<MateVerdict> {
    let tasks: Vec<(usize, NetId, &Mate)> = mates
        .iter()
        .enumerate()
        .flat_map(|(i, m)| m.masked.iter().map(move |&w| (i, w, m)))
        .collect();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.threads
    }
    .min(tasks.len().max(1));

    // The SAT backend reads the cone out of the arena; build it once and
    // share it read-only across the workers.
    let soa = match config.backend {
        ProofBackend::Sat => Some(SoaNetlist::build(netlist, topo)),
        ProofBackend::Enumeration => None,
    };

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<MateVerdict>> = Mutex::new(Vec::with_capacity(tasks.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(mate_index, wire, mate)) = tasks.get(i) else {
                        break;
                    };
                    let (verdict, stats) = match &soa {
                        Some(soa) => {
                            let (v, s) = verify_mate_wire_sat(
                                netlist,
                                soa,
                                wire,
                                &mate.cube,
                                config.conflict_budget,
                            );
                            (v, Some(s))
                        }
                        None => (
                            verify_mate_wire_enum(netlist, topo, wire, &mate.cube, config),
                            None,
                        ),
                    };
                    local.push(MateVerdict {
                        mate_index,
                        wire,
                        verdict,
                        stats,
                    });
                }
                results
                    .lock()
                    .expect("verifier workers do not panic while holding the lock")
                    .extend(local);
            });
        }
    });
    let mut verdicts = results
        .into_inner()
        .expect("all workers joined before the scope ended");
    verdicts.sort_by_key(|v| (v.mate_index, v.wire));
    verdicts
}

/// Renders verdicts as one line each.
pub fn render_verdicts_text(netlist: &Netlist, verdicts: &[MateVerdict]) -> String {
    let mut out = String::new();
    for v in verdicts {
        let wire = netlist.net(v.wire).name();
        match &v.verdict {
            Verdict::Proved { checked } => {
                out.push_str(&format!(
                    "proved  mate {} wire {wire}: {checked} assignments\n",
                    v.mate_index
                ));
            }
            Verdict::Bounded { checked } => {
                if let Some(stats) = &v.stats {
                    out.push_str(&format!(
                        "bounded mate {} wire {wire}: undecided after {} conflicts\n",
                        v.mate_index, stats.conflicts
                    ));
                } else {
                    out.push_str(&format!(
                        "bounded mate {} wire {wire}: clean up to {checked} assignments\n",
                        v.mate_index
                    ));
                }
            }
            Verdict::Refuted { counterexample } => {
                let assign = counterexample
                    .assignment
                    .iter()
                    .map(|&(n, b)| format!("{}={}", netlist.net(n).name(), u8::from(b)))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push_str(&format!(
                    "REFUTED mate {} wire {wire}: origin={} endpoint {} differs under {}\n",
                    v.mate_index,
                    u8::from(counterexample.origin_value),
                    netlist.net(counterexample.endpoint).name(),
                    assign
                ));
            }
        }
    }
    out
}

/// Renders verdicts as a JSON array (hand-rolled, byte-stable for sorted
/// input).
pub fn render_verdicts_json(netlist: &Netlist, verdicts: &[MateVerdict]) -> String {
    use crate::diag::json_escape;
    let mut out = String::from("[\n");
    for (i, v) in verdicts.iter().enumerate() {
        let wire = json_escape(netlist.net(v.wire).name());
        let body = match &v.verdict {
            Verdict::Proved { checked } | Verdict::Bounded { checked } => {
                format!("\"checked\":{checked}")
            }
            Verdict::Refuted { counterexample } => {
                let assign = counterexample
                    .assignment
                    .iter()
                    .map(|&(n, b)| {
                        format!(
                            "{{\"net\":\"{}\",\"value\":{}}}",
                            json_escape(netlist.net(n).name()),
                            u8::from(b)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "\"origin_value\":{},\"endpoint\":\"{}\",\"assignment\":[{}]",
                    u8::from(counterexample.origin_value),
                    json_escape(netlist.net(counterexample.endpoint).name()),
                    assign
                )
            }
        };
        let stats = v.stats.map_or(String::new(), |s| {
            format!(
                ",\"solver\":{{\"conflicts\":{},\"decisions\":{},\"propagations\":{},\
                 \"learned\":{},\"restarts\":{}}}",
                s.conflicts, s.decisions, s.propagations, s.learned, s.restarts
            )
        });
        out.push_str(&format!(
            "  {{\"mate\":{},\"wire\":\"{}\",\"verdict\":\"{}\",{}{}}}{}\n",
            v.mate_index,
            wire,
            v.verdict.label(),
            body,
            stats,
            if i + 1 == verdicts.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
