//! Per-wire MATE-set *completeness* proofs.
//!
//! Soundness ([`crate::verify`]) asks "does every selected MATE really
//! mask?".  This pass asks the dual question, per wire: *does the selected
//! MATE set match **every** benign fault point on the wire?*  A point the
//! set misses is not a correctness bug — MATEs only ever prune fault
//! points they match, so an uncovered benign point merely stays in the
//! injection campaign — but it is lost pruning the paper's cross-layer
//! argument says we could have had.  The pass therefore reports gaps as
//! [`Severity::Warning`] diagnostics under the `mate-coverage` code, and
//! wires whose coverage is proved get a per-wire certificate (an UNSAT
//! answer that passed the solver's resolution replay check).
//!
//! The query, built by [`crate::encode::FaultConeCnf::prove_coverage`]:
//! "some border assignment and fault-free origin value make every cone
//! endpoint agree between the two origin copies (the flip is benign) while
//! no selected cube matches the fault-free circuit".  UNSAT = complete.
//! A model is a *possible* gap: cube literals outside the cone get free
//! variables, so a witness may rely on an out-of-scope wire value the
//! surrounding logic cannot actually produce — exact for the cone, over-
//! approximate beyond it, which is the right direction for a coverage
//! audit (no real gap is ever hidden).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mate::MateSet;
use mate_netlist::{NetCube, NetId, Netlist, SoaNetlist, Topology};

use crate::diag::{Diagnostic, Locus, Severity};
use crate::encode::{CoverageProof, FaultConeCnf};
use crate::verify::VerifyConfig;

/// The coverage verdict for one wire with at least one selected MATE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireCoverage {
    /// The wire whose benign fault points are audited.
    pub wire: NetId,
    /// Number of selected MATEs whose masked set contains the wire.
    pub mates: usize,
    /// The proof outcome (complete / gap / undecided).
    pub proof: CoverageProof,
}

/// Complete / gap / undecided tallies over a coverage list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverageCounts {
    /// Wires whose selected MATEs provably match every benign point.
    pub complete: usize,
    /// Wires with a (possible) uncovered benign point.
    pub gaps: usize,
    /// Wires whose query hit the conflict budget.
    pub undecided: usize,
}

/// Tallies coverage outcomes.
pub fn count_coverage(coverage: &[WireCoverage]) -> CoverageCounts {
    let mut c = CoverageCounts::default();
    for w in coverage {
        match w.proof {
            CoverageProof::Complete { .. } => c.complete += 1,
            CoverageProof::Gap { .. } => c.gaps += 1,
            CoverageProof::Undecided { .. } => c.undecided += 1,
        }
    }
    c
}

/// Proves (or refutes) per-wire completeness of the selected MATE set, in
/// parallel, returning one [`WireCoverage`] per wire that appears in some
/// MATE's masked set — sorted by wire, bit-identical for any thread count.
pub fn prove_wire_coverage(
    netlist: &Netlist,
    topo: &Topology,
    mates: &MateSet,
    config: &VerifyConfig,
) -> Vec<WireCoverage> {
    let mut wires: Vec<NetId> = mates
        .iter()
        .flat_map(|m| m.masked.iter().copied())
        .collect();
    wires.sort_unstable();
    wires.dedup();
    if wires.is_empty() {
        return Vec::new();
    }

    let soa = SoaNetlist::build(netlist, topo);
    let cubes_of = |wire: NetId| -> Vec<&NetCube> {
        mates
            .iter()
            .filter(|m| m.masked.contains(&wire))
            .map(|m| &m.cube)
            .collect()
    };

    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.threads
    }
    .min(wires.len());

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<WireCoverage>> = Mutex::new(Vec::with_capacity(wires.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&wire) = wires.get(i) else { break };
                    let cubes = cubes_of(wire);
                    let cnf = FaultConeCnf::new(netlist, &soa, wire);
                    let proof = cnf.prove_coverage(&cubes, config.conflict_budget);
                    local.push(WireCoverage {
                        wire,
                        mates: cubes.len(),
                        proof,
                    });
                }
                results
                    .lock()
                    .expect("coverage workers do not panic while holding the lock")
                    .extend(local);
            });
        }
    });
    let mut coverage = results
        .into_inner()
        .expect("all workers joined before the scope ended");
    coverage.sort_by_key(|c| c.wire);
    coverage
}

/// Turns coverage gaps and undecided wires into `mate-coverage` warnings
/// (proved-complete wires produce no diagnostic — their certificate lives
/// in the coverage list itself).
pub fn coverage_diagnostics(netlist: &Netlist, coverage: &[WireCoverage]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for c in coverage {
        match &c.proof {
            CoverageProof::Complete { .. } => {}
            CoverageProof::Gap {
                origin_value,
                assignment,
                ..
            } => {
                let witness = assignment
                    .iter()
                    .map(|&(n, b)| format!("{}={}", netlist.net(n).name(), u8::from(b)))
                    .collect::<Vec<_>>()
                    .join(" ");
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "mate-coverage",
                    locus: Locus::Net(c.wire),
                    message: format!(
                        "benign fault point not matched by any of {} selected MATE(s): \
                         origin={} {witness}",
                        c.mates,
                        u8::from(*origin_value)
                    ),
                });
            }
            CoverageProof::Undecided { stats } => {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "mate-coverage",
                    locus: Locus::Net(c.wire),
                    message: format!(
                        "coverage proof undecided after {} conflicts (raise --budget)",
                        stats.conflicts
                    ),
                });
            }
        }
    }
    diags
}

/// Renders coverage as one line per wire.
pub fn render_coverage_text(netlist: &Netlist, coverage: &[WireCoverage]) -> String {
    let mut out = String::new();
    for c in coverage {
        let wire = netlist.net(c.wire).name();
        match &c.proof {
            CoverageProof::Complete { stats } => {
                out.push_str(&format!(
                    "complete  wire {wire}: {} mate(s) cover every benign point \
                     ({} conflicts)\n",
                    c.mates, stats.conflicts
                ));
            }
            CoverageProof::Gap {
                origin_value,
                assignment,
                ..
            } => {
                let witness = assignment
                    .iter()
                    .map(|&(n, b)| format!("{}={}", netlist.net(n).name(), u8::from(b)))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push_str(&format!(
                    "GAP       wire {wire}: uncovered benign point origin={} {witness}\n",
                    u8::from(*origin_value)
                ));
            }
            CoverageProof::Undecided { stats } => {
                out.push_str(&format!(
                    "undecided wire {wire}: budget fired after {} conflicts\n",
                    stats.conflicts
                ));
            }
        }
    }
    out
}

/// Renders coverage as a JSON array (hand-rolled, byte-stable for sorted
/// input).
pub fn render_coverage_json(netlist: &Netlist, coverage: &[WireCoverage]) -> String {
    use crate::diag::json_escape;
    let mut out = String::from("[\n");
    for (i, c) in coverage.iter().enumerate() {
        let wire = json_escape(netlist.net(c.wire).name());
        let (status, body, stats) = match &c.proof {
            CoverageProof::Complete { stats } => ("complete", String::new(), Some(stats)),
            CoverageProof::Gap {
                origin_value,
                assignment,
                stats,
            } => {
                let witness = assignment
                    .iter()
                    .map(|&(n, b)| {
                        format!(
                            "{{\"net\":\"{}\",\"value\":{}}}",
                            json_escape(netlist.net(n).name()),
                            u8::from(b)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                (
                    "gap",
                    format!(
                        ",\"origin_value\":{},\"witness\":[{witness}]",
                        u8::from(*origin_value)
                    ),
                    Some(stats),
                )
            }
            CoverageProof::Undecided { stats } => ("undecided", String::new(), Some(stats)),
        };
        let solver = stats.map_or(String::new(), |s| {
            format!(
                ",\"solver\":{{\"conflicts\":{},\"decisions\":{},\"propagations\":{},\
                 \"learned\":{},\"restarts\":{}}}",
                s.conflicts, s.decisions, s.propagations, s.learned, s.restarts
            )
        });
        out.push_str(&format!(
            "  {{\"wire\":\"{wire}\",\"mates\":{},\"status\":\"{status}\"{body}{solver}}}{}\n",
            c.mates,
            if i + 1 == coverage.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate::prelude::*;
    use mate_netlist::examples::figure1;

    #[test]
    fn figure1_selected_mates_have_deterministic_coverage() {
        let (netlist, topo) = figure1();
        let d = netlist.find_net("d").unwrap();
        let result = search_wire(&netlist, &topo, d, &SearchConfig::default());
        let set = MateSet::from_mates(result.mates);
        let config = VerifyConfig::default();
        let one = prove_wire_coverage(&netlist, &topo, &set, &config);
        assert_eq!(one.len(), 1, "one audited wire");
        assert_eq!(one[0].wire, d);
        // Bit-identical across thread counts.
        for threads in [1, 2, 7] {
            let cfg = VerifyConfig { threads, ..config };
            assert_eq!(prove_wire_coverage(&netlist, &topo, &set, &cfg), one);
        }
        // Gap/undecided wires surface as mate-coverage warnings; complete
        // wires stay silent.
        let diags = coverage_diagnostics(&netlist, &one);
        match &one[0].proof {
            CoverageProof::Complete { .. } => assert!(diags.is_empty()),
            _ => {
                assert_eq!(diags.len(), 1);
                assert_eq!(diags[0].code, "mate-coverage");
                assert_eq!(diags[0].severity, Severity::Warning);
            }
        }
    }
}
