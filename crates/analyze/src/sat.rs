//! A dependency-free CDCL SAT solver for the proof backend.
//!
//! The solver is deliberately small but implements the full modern core:
//! two-watched-literal propagation, VSIDS-style variable activity with a
//! binary max-heap, first-UIP conflict-clause learning, Luby-sequence
//! restarts, and phase saving.  Everything is deterministic — no clocks, no
//! randomness — so verdicts, models, and statistics are bit-identical
//! across runs and thread counts (a standing invariant of this workspace).
//!
//! Trust is layered the same way the rest of `mate-analyze` is:
//!
//! * A **SAT** answer carries a model, and [`Solver::solve`] re-checks that
//!   model against every original clause before returning it.
//! * An **UNSAT** answer is replay-checked: the solver logs every learned
//!   clause in derivation order, and [`check_unsat_replay`] — a separate,
//!   naive unit-propagation checker sharing none of the solver's watched /
//!   heap machinery — verifies each logged clause is a reverse-unit-
//!   propagation (RUP) consequence of the clauses before it, and that the
//!   final database propagates to a contradiction.  This is the same
//!   argument a DRUP proof checker makes, without shipping bytes to an
//!   external toolchain.
//!
//! # Example
//!
//! ```
//! use mate_analyze::sat::{Lit, SatOutcome, Solver};
//!
//! let mut s = Solver::new(2);
//! s.add_clause(&[Lit::pos(0), Lit::pos(1)]);
//! s.add_clause(&[Lit::neg(0)]);
//! match s.solve(u64::MAX) {
//!     Ok(SatOutcome::Sat) => {
//!         assert!(!s.model_value(0) && s.model_value(1));
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

use std::fmt;

/// A literal: variable index plus polarity, packed as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: usize) -> Self {
        Self((var as u32) << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: usize) -> Self {
        Self((var as u32) << 1 | 1)
    }

    /// A literal of `var` requiring value `value`.
    #[inline]
    pub fn with_value(var: usize, value: bool) -> Self {
        if value {
            Self::pos(var)
        } else {
            Self::neg(var)
        }
    }

    /// The variable index.
    #[inline]
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// `true` for a negative literal.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 != 0
    }

    /// The complementary literal.
    #[inline]
    #[must_use]
    pub fn negate(self) -> Self {
        Self(self.0 ^ 1)
    }

    /// The packed code (`var << 1 | negated`), used as a watch-list index.
    #[inline]
    fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Result of a [`Solver::solve`] call that stayed within the conflict
/// budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    /// A satisfying assignment was found (read it with
    /// [`Solver::model_value`]); the model has been re-checked against
    /// every original clause.
    Sat,
    /// The formula is unsatisfiable; the learned-clause log has been
    /// replay-checked by [`check_unsat_replay`].
    Unsat,
}

/// The conflict budget was exhausted before a verdict was reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Number of conflicts at the time the budget fired.
    pub conflicts: u64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SAT conflict budget exhausted after {} conflicts",
            self.conflicts
        )
    }
}

/// Deterministic solver counters, accumulated over one [`Solver::solve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
}

impl SolveStats {
    /// Element-wise sum (used to aggregate per-MATE stats per target).
    #[must_use]
    pub fn merge(self, other: SolveStats) -> SolveStats {
        SolveStats {
            conflicts: self.conflicts + other.conflicts,
            decisions: self.decisions + other.decisions,
            propagations: self.propagations + other.propagations,
            learned: self.learned + other.learned,
            restarts: self.restarts + other.restarts,
        }
    }
}

/// Value of a variable in the current (partial) assignment.
const UNASSIGNED: u8 = 2;

/// A clause: literal storage plus the learned flag.
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
}

/// The CDCL solver.  Build it with [`Solver::new`], add clauses, call
/// [`Solver::solve`].
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// Per literal code: indices of clauses watching that literal.
    watches: Vec<Vec<u32>>,
    /// Per variable: current value (0, 1, or [`UNASSIGNED`]).
    assign: Vec<u8>,
    /// Per variable: decision level of the assignment.
    level: Vec<u32>,
    /// Per variable: the clause that implied it (`u32::MAX` for decisions).
    reason: Vec<u32>,
    /// Assignment order.
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Propagation queue head (index into `trail`).
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Binary max-heap of unassigned variables, ordered by activity.
    heap: Vec<u32>,
    /// Position of each variable in `heap` (`u32::MAX` when absent).
    heap_pos: Vec<u32>,
    /// Saved phase per variable (initially `false`: deterministic).
    phase: Vec<bool>,
    /// Top-level contradiction detected while adding clauses.
    unsat_on_input: bool,
    /// Learned clauses in derivation order, for the UNSAT replay check.
    learned_log: Vec<Vec<Lit>>,
    /// Number of clauses that came from [`Solver::add_clause`] (the
    /// original formula; the rest are learned).
    num_original: usize,
    /// Counters for the current solve.
    stats: SolveStats,
}

impl Solver {
    /// A solver over `num_vars` variables (indices `0..num_vars`).
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![UNASSIGNED; num_vars],
            level: vec![0; num_vars],
            reason: vec![u32::MAX; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            heap: Vec::new(),
            heap_pos: vec![u32::MAX; num_vars],
            phase: vec![false; num_vars],
            unsat_on_input: false,
            learned_log: Vec::new(),
            num_original: 0,
            stats: SolveStats::default(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Statistics of the last [`Solver::solve`] call.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Adds a clause of the original formula.  Duplicate literals are
    /// merged, tautologies dropped, and empty clauses flag the instance
    /// unsatisfiable on input.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable outside the solver, or if
    /// called after [`Solver::solve`].
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert!(
            self.trail_lim.is_empty() && self.stats == SolveStats::default(),
            "clauses must be added before solving"
        );
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        for pair in lits.windows(2) {
            if pair[0].var() == pair[1].var() {
                return; // x ∨ ¬x: tautology.
            }
        }
        for &l in &lits {
            assert!(l.var() < self.num_vars, "literal out of range");
        }
        if lits.is_empty() {
            self.unsat_on_input = true;
            return;
        }
        self.attach(lits, false);
        self.num_original += 1;
    }

    /// Stores a clause and registers watches (first two literals).
    fn attach(&mut self, lits: Vec<Lit>, learned: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        if lits.len() >= 2 {
            self.watches[lits[0].negate().code()].push(idx);
            self.watches[lits[1].negate().code()].push(idx);
        }
        self.clauses.push(Clause { lits, learned });
        idx
    }

    #[inline]
    fn value_of(&self, lit: Lit) -> u8 {
        let v = self.assign[lit.var()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else {
            v ^ u8::from(lit.is_neg())
        }
    }

    /// The model value of `var` after a `Sat` outcome.
    ///
    /// # Panics
    ///
    /// Panics if the variable is unassigned (no model available).
    pub fn model_value(&self, var: usize) -> bool {
        let v = self.assign[var];
        assert!(v != UNASSIGNED, "no model: variable {var} unassigned");
        v == 1
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Enqueues `lit` as true with `reason` (`u32::MAX` = decision).
    fn enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert_eq!(self.value_of(lit), UNASSIGNED);
        self.assign[lit.var()] = u8::from(!lit.is_neg());
        self.level[lit.var()] = self.decision_level();
        self.reason[lit.var()] = reason;
        self.phase[lit.var()] = !lit.is_neg();
        self.trail.push(lit);
    }

    /// Unit propagation; returns the index of a conflicting clause.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬lit must find a new watch or propagate.
            let mut ws = std::mem::take(&mut self.watches[lit.code()]);
            let mut keep = 0usize;
            let mut conflict: Option<u32> = None;
            'clauses: for wi in 0..ws.len() {
                let ci = ws[wi];
                let clause = &mut self.clauses[ci as usize];
                // Normalize: the falsified watch sits at position 1.
                if clause.lits[0] == lit.negate() {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], lit.negate());
                let first = clause.lits[0];
                if self.assign[first.var()] != UNASSIGNED
                    && self.assign[first.var()] ^ u8::from(first.is_neg()) == 1
                {
                    // Clause already satisfied by the other watch.
                    ws[keep] = ci;
                    keep += 1;
                    continue;
                }
                for k in 2..clause.lits.len() {
                    let cand = clause.lits[k];
                    let v = self.assign[cand.var()];
                    if v == UNASSIGNED || v ^ u8::from(cand.is_neg()) == 1 {
                        // New watch found: move it into slot 1.
                        clause.lits.swap(1, k);
                        self.watches[cand.negate().code()].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement: clause is unit or conflicting.
                ws[keep] = ci;
                keep += 1;
                match self.value_of(first) {
                    UNASSIGNED => self.enqueue(first, ci),
                    0 => {
                        // Conflict: keep the remaining watchers untouched.
                        ws.copy_within(wi + 1.., keep);
                        keep += ws.len() - (wi + 1);
                        conflict = Some(ci);
                        break 'clauses;
                    }
                    _ => {}
                }
            }
            ws.truncate(keep);
            debug_assert!(self.watches[lit.code()].is_empty());
            self.watches[lit.code()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[var] != u32::MAX {
            self.sift_up(self.heap_pos[var] as usize);
        }
    }

    /// `a` orders strictly before `b` in the heap (higher activity first,
    /// lower index breaking ties — fully deterministic).
    #[inline]
    #[allow(clippy::float_cmp)] // exact equality IS the deterministic tie-break
    fn heap_before(&self, a: u32, b: u32) -> bool {
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_before(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                self.heap_pos[self.heap[i] as usize] = i as u32;
                self.heap_pos[self.heap[parent] as usize] = parent as u32;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.heap_before(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_before(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap.swap(i, best);
            self.heap_pos[self.heap[i] as usize] = i as u32;
            self.heap_pos[self.heap[best] as usize] = best as u32;
            i = best;
        }
    }

    fn heap_insert(&mut self, var: u32) {
        if self.heap_pos[var as usize] != u32::MAX {
            return;
        }
        self.heap_pos[var as usize] = self.heap.len() as u32;
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = u32::MAX;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Undoes assignments above `target_level`.
    fn backtrack(&mut self, target_level: u32) {
        while self.decision_level() > target_level {
            let start = self.trail_lim.pop().expect("level > 0 has a limit");
            while self.trail.len() > start {
                let lit = self.trail.pop().expect("trail reaches the limit");
                self.assign[lit.var()] = UNASSIGNED;
                self.reason[lit.var()] = u32::MAX;
                self.heap_insert(lit.var() as u32);
            }
        }
        self.qhead = self.trail.len();
    }

    /// First-UIP conflict analysis: returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize; // current-level literals still to resolve
        let mut lit: Option<Lit> = None;
        let mut reason_idx = conflict;
        let mut trail_i = self.trail.len();
        let current = self.decision_level();

        loop {
            let clause = &self.clauses[reason_idx as usize];
            let skip = usize::from(lit.is_some());
            // For a reason clause, lits[0] is the implied literal — skip it.
            let lits: Vec<Lit> = clause.lits[skip..].to_vec();
            for q in lits {
                if seen[q.var()] || self.level[q.var()] == 0 {
                    continue;
                }
                seen[q.var()] = true;
                self.bump_var(q.var());
                if self.level[q.var()] == current {
                    counter += 1;
                } else {
                    learned.push(q);
                }
            }
            // Walk the trail backwards to the next seen current-level var.
            loop {
                trail_i -= 1;
                if seen[self.trail[trail_i].var()] {
                    break;
                }
            }
            let p = self.trail[trail_i];
            seen[p.var()] = false;
            counter -= 1;
            if counter == 0 {
                lit = Some(p);
                break;
            }
            lit = Some(p);
            reason_idx = self.reason[p.var()];
            debug_assert_ne!(reason_idx, u32::MAX, "non-UIP literal has a reason");
        }

        let uip = lit.expect("conflict analysis reaches the first UIP");
        let mut out = vec![uip.negate()];
        out.extend(learned);
        // Backtrack level: highest level among the non-asserting literals.
        let bt = out[1..]
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        // Put one literal of the backtrack level second (watch invariant).
        if out.len() > 1 {
            let pos = 1 + out[1..]
                .iter()
                .position(|l| self.level[l.var()] == bt)
                .expect("bt level comes from these literals");
            out.swap(1, pos);
        }
        (out, bt)
    }

    /// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-indexed.
    fn luby(mut x: u64) -> u64 {
        let (mut size, mut seq) = (1u64, 0u64);
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1 << seq
    }

    /// Solves the formula within `conflict_budget` conflicts.
    ///
    /// On [`SatOutcome::Sat`] the model is available via
    /// [`Solver::model_value`] and has been checked against every original
    /// clause; on [`SatOutcome::Unsat`] the learned-clause log has passed
    /// the [`check_unsat_replay`] RUP check.
    ///
    /// # Errors
    ///
    /// [`BudgetExhausted`] when the conflict budget fires first.
    ///
    /// # Panics
    ///
    /// Panics if a model or an UNSAT replay fails its self-check — either
    /// indicates a solver defect, never an input property.
    pub fn solve(&mut self, conflict_budget: u64) -> Result<SatOutcome, BudgetExhausted> {
        self.stats = SolveStats::default();
        if self.unsat_on_input {
            return Ok(SatOutcome::Unsat);
        }
        // Top-level units from the input.
        for ci in 0..self.clauses.len() as u32 {
            if self.clauses[ci as usize].lits.len() == 1 {
                let l = self.clauses[ci as usize].lits[0];
                match self.value_of(l) {
                    UNASSIGNED => self.enqueue(l, ci),
                    0 => return Ok(self.conclude_unsat()),
                    _ => {}
                }
            }
        }
        if self.propagate().is_some() {
            return Ok(self.conclude_unsat());
        }
        for v in 0..self.num_vars as u32 {
            if self.assign[v as usize] == UNASSIGNED {
                self.heap_insert(v);
            }
        }

        let mut restart_round = 0u64;
        let mut restart_limit = 128 * Self::luby(restart_round);
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return Ok(self.conclude_unsat());
                }
                if self.stats.conflicts > conflict_budget {
                    return Err(BudgetExhausted {
                        conflicts: self.stats.conflicts,
                    });
                }
                let (learned, bt) = self.analyze(conflict);
                self.learned_log.push(learned.clone());
                self.stats.learned += 1;
                self.backtrack(bt);
                let assert_lit = learned[0];
                if learned.len() == 1 {
                    debug_assert_eq!(bt, 0);
                    let ci = self.attach(learned, true);
                    self.enqueue(assert_lit, ci);
                } else {
                    let ci = self.attach(learned, true);
                    self.enqueue(assert_lit, ci);
                }
                self.var_inc /= 0.95;
            } else if conflicts_since_restart >= restart_limit && self.decision_level() > 0 {
                self.stats.restarts += 1;
                restart_round += 1;
                restart_limit = 128 * Self::luby(restart_round);
                conflicts_since_restart = 0;
                self.backtrack(0);
            } else {
                // Decide.
                let var = loop {
                    match self.heap_pop() {
                        Some(v) if self.assign[v as usize] == UNASSIGNED => break Some(v),
                        Some(_) => {}
                        None => break None,
                    }
                };
                let Some(var) = var else {
                    self.check_model();
                    return Ok(SatOutcome::Sat);
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = Lit::with_value(var as usize, self.phase[var as usize]);
                self.enqueue(lit, u32::MAX);
            }
        }
    }

    /// Replay-checks the learned-clause log and returns `Unsat`.
    fn conclude_unsat(&mut self) -> SatOutcome {
        let original: Vec<&[Lit]> = self
            .clauses
            .iter()
            .filter(|c| !c.learned)
            .map(|c| c.lits.as_slice())
            .collect();
        let learned: Vec<&[Lit]> = self.learned_log.iter().map(Vec::as_slice).collect();
        assert!(
            check_unsat_replay(self.num_vars, self.unsat_on_input, &original, &learned),
            "UNSAT replay check failed: the solver derived a clause that is \
             not a RUP consequence of its predecessors"
        );
        SatOutcome::Unsat
    }

    /// Asserts the current total assignment satisfies every original
    /// clause.
    fn check_model(&self) {
        for clause in self.clauses.iter().filter(|c| !c.learned) {
            assert!(
                clause.lits.iter().any(|&l| self.value_of(l) == 1),
                "model check failed on clause {:?}",
                clause.lits
            );
        }
    }
}

/// Independent RUP replay check of an UNSAT answer.
///
/// Accepts the original clauses and the learned clauses in derivation
/// order.  Each learned clause `C` must be a reverse-unit-propagation
/// consequence of the database so far: assuming `¬C` and unit-propagating
/// must yield a contradiction.  After all learned clauses are admitted,
/// the full database must propagate to a contradiction from the empty
/// assumption (the solver's top-level conflict).  `unsat_on_input` marks
/// instances that contained an explicit empty clause, which are vacuously
/// unsatisfiable.
///
/// The checker is an independent implementation sharing none of
/// [`Solver`]'s code or state — its own clause copies, its own watch
/// scheme, its own trail — which is what makes the replay a check rather
/// than a re-statement.
pub fn check_unsat_replay(
    num_vars: usize,
    unsat_on_input: bool,
    original: &[&[Lit]],
    learned: &[&[Lit]],
) -> bool {
    if unsat_on_input {
        return true;
    }
    let mut checker = RupChecker::new(num_vars);
    for &c in original {
        checker.add_clause(c);
    }
    for &c in learned {
        if !checker.rup_check(c) {
            return false;
        }
        checker.add_clause(c);
    }
    // The solver reported a top-level conflict: the final database must
    // propagate to a contradiction with no assumptions.
    checker.propagates_to_conflict(&[])
}

/// The independent unit-propagation engine behind [`check_unsat_replay`].
///
/// Two pieces keep a full replay linear-ish instead of quadratic in the
/// database:
///
/// * The *assumption-free* propagation fixpoint of the current database is
///   maintained incrementally as clauses are added — unit propagation is
///   monotone and confluent, so a RUP check can start from that fixpoint
///   and only propagate the consequences of the negated clause, reaching
///   exactly the same closure as a from-scratch run.
/// * Propagation uses the checker's own two-watched-literal scheme (built
///   independently of [`Solver`]'s), so each newly falsified literal
///   visits only the clauses watching it.  Per-check assignments are
///   undone through a trail; watch positions stay valid across checks
///   because the invariant is trivial on unassigned literals.
struct RupChecker {
    /// Clause literal arrays; positions 0 and 1 are the watched literals.
    clauses: Vec<Vec<Lit>>,
    /// Per literal code: indices of clauses watching that literal.
    watches: Vec<Vec<u32>>,
    /// Per variable: current value (0, 1, or [`UNASSIGNED`]).
    value: Vec<u8>,
    /// Assigned literals in order; entries below `root_len` are the
    /// permanent assumption-free fixpoint.
    trail: Vec<Lit>,
    /// Trail prefix owned by the root fixpoint (never undone).
    root_len: usize,
    /// Next trail position to propagate.
    qhead: usize,
    /// `true` once the database propagates to a contradiction on its own.
    root_conflict: bool,
}

impl RupChecker {
    fn new(num_vars: usize) -> Self {
        Self {
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            value: vec![UNASSIGNED; num_vars],
            trail: Vec::new(),
            root_len: 0,
            qhead: 0,
            root_conflict: false,
        }
    }

    /// Truth value of `lit` under the current assignment: 0, 1, or
    /// [`UNASSIGNED`].
    fn lit_value(&self, lit: Lit) -> u8 {
        match self.value[lit.var()] {
            UNASSIGNED => UNASSIGNED,
            v => v ^ u8::from(lit.is_neg()),
        }
    }

    /// Assigns `lit` true and queues it; `false` on contradiction.
    fn assign(&mut self, lit: Lit) -> bool {
        match self.lit_value(lit) {
            1 => true,
            UNASSIGNED => {
                self.value[lit.var()] = u8::from(!lit.is_neg());
                self.trail.push(lit);
                true
            }
            _ => false,
        }
    }

    /// Adds a clause and folds it into the root fixpoint.
    fn add_clause(&mut self, lits: &[Lit]) {
        if self.root_conflict {
            // Everything is already refuted; later checks return true
            // immediately, so the clause does not need watches.
            return;
        }
        let ci = self.clauses.len() as u32;
        let mut c: Vec<Lit> = lits.to_vec();
        // Move two non-false literals (under the root fixpoint) to the
        // watch positions.  Root assignments are never undone, so a clause
        // without two such literals is unit, satisfied-forever, or false
        // right now — none of which needs watching.
        let mut w = 0usize;
        for k in 0..c.len() {
            if self.lit_value(c[k]) != 0 {
                c.swap(w, k);
                w += 1;
                if w == 2 {
                    break;
                }
            }
        }
        match w {
            0 => {
                self.root_conflict = true;
                return;
            }
            1 => {
                // Unit under the root (or already satisfied by it).
                let l = c[0];
                self.clauses.push(c);
                if self.lit_value(l) == 1 {
                    return;
                }
                if !self.assign(l) || self.propagate() {
                    self.root_conflict = true;
                }
                self.root_len = self.trail.len();
                return;
            }
            _ => {}
        }
        self.watches[c[0].code()].push(ci);
        self.watches[c[1].code()].push(ci);
        self.clauses.push(c);
    }

    /// Two-watched-literal propagation from `qhead`; `true` on conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let false_lit = self.trail[self.qhead].negate();
            self.qhead += 1;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0usize;
            while i < ws.len() {
                let ci = ws[i] as usize;
                // Normalize: the falsified watch sits at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                let other = self.clauses[ci][0];
                if self.lit_value(other) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch beyond the watch positions.
                let replacement =
                    (2..self.clauses[ci].len()).find(|&k| self.lit_value(self.clauses[ci][k]) != 0);
                if let Some(k) = replacement {
                    self.clauses[ci].swap(1, k);
                    let new_watch = self.clauses[ci][1];
                    self.watches[new_watch.code()].push(ci as u32);
                    ws.swap_remove(i);
                    continue;
                }
                // No replacement: `other` is unit or the clause is false.
                if self.lit_value(other) == 0 || !self.assign(other) {
                    self.watches[false_lit.code()] = ws;
                    return true;
                }
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        false
    }

    /// `true` when assuming every literal of `assumptions` true and
    /// unit-propagating the database derives a contradiction.  The
    /// assignment is rewound to the root fixpoint afterwards.
    fn propagates_to_conflict(&mut self, assumptions: &[Lit]) -> bool {
        if self.root_conflict {
            return true;
        }
        let mark = self.trail.len();
        let mut conflict = false;
        for &a in assumptions {
            if !self.assign(a) {
                conflict = true;
                break;
            }
        }
        let conflict = conflict || self.propagate();
        for k in mark..self.trail.len() {
            self.value[self.trail[k].var()] = UNASSIGNED;
        }
        self.trail.truncate(mark);
        self.qhead = mark;
        conflict
    }

    /// RUP check: `¬lits` propagates to a contradiction.
    fn rup_check(&mut self, lits: &[Lit]) -> bool {
        let assumptions: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
        self.propagates_to_conflict(&assumptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: usize) -> Lit {
        Lit::pos(v)
    }
    fn n(v: usize) -> Lit {
        Lit::neg(v)
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new(3);
        s.add_clause(&[p(0), p(1)]);
        s.add_clause(&[n(0)]);
        s.add_clause(&[n(1), p(2)]);
        assert_eq!(s.solve(u64::MAX), Ok(SatOutcome::Sat));
        assert!(!s.model_value(0));
        assert!(s.model_value(1));
        assert!(s.model_value(2));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new(1);
        s.add_clause(&[p(0)]);
        s.add_clause(&[n(0)]);
        assert_eq!(s.solve(u64::MAX), Ok(SatOutcome::Unsat));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new(1);
        s.add_clause(&[]);
        assert_eq!(s.solve(u64::MAX), Ok(SatOutcome::Unsat));
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new(4);
        assert_eq!(s.solve(u64::MAX), Ok(SatOutcome::Sat));
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new(2);
        s.add_clause(&[p(0), n(0)]);
        s.add_clause(&[p(1)]);
        assert_eq!(s.solve(u64::MAX), Ok(SatOutcome::Sat));
        assert!(s.model_value(1));
    }

    /// Pigeonhole PHP(4,3): 4 pigeons, 3 holes — classic UNSAT instance
    /// that requires real conflict analysis (no unit refutation exists).
    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        let holes = 3;
        let pigeons = 4;
        let var = |pigeon: usize, hole: usize| pigeon * holes + hole;
        let mut s = Solver::new(pigeons * holes);
        for pigeon in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| p(var(pigeon, h))).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for a in 0..pigeons {
                for b in a + 1..pigeons {
                    s.add_clause(&[n(var(a, h)), n(var(b, h))]);
                }
            }
        }
        assert_eq!(s.solve(u64::MAX), Ok(SatOutcome::Unsat));
        assert!(s.stats().conflicts > 0, "PHP needs learning");
    }

    /// XOR chain parity contradiction: x0 ⊕ x1, x1 ⊕ x2, ..., plus a unit
    /// forcing odd parity both ways.
    #[test]
    fn xor_chain_unsat() {
        let k = 12usize;
        let mut s = Solver::new(k + 1);
        for i in 0..k {
            // x_i ⊕ x_{i+1} = 1
            s.add_clause(&[p(i), p(i + 1)]);
            s.add_clause(&[n(i), n(i + 1)]);
        }
        s.add_clause(&[p(0)]);
        // Chain of 12 xors flips parity 12 times: x12 must equal x0.
        s.add_clause(&[p(k)]);
        // x0=1 forces x12 = 1 ⊕ (k mod 2) = 1 for even k, consistent;
        // make it inconsistent explicitly:
        s.add_clause(&[n(k)]);
        assert_eq!(s.solve(u64::MAX), Ok(SatOutcome::Unsat));
    }

    #[test]
    fn budget_exhaustion_reports() {
        // PHP(7,6) with a budget of 1 conflict cannot finish.
        let holes = 6;
        let pigeons = 7;
        let var = |pigeon: usize, hole: usize| pigeon * holes + hole;
        let mut s = Solver::new(pigeons * holes);
        for pigeon in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| p(var(pigeon, h))).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for a in 0..pigeons {
                for b in a + 1..pigeons {
                    s.add_clause(&[n(var(a, h)), n(var(b, h))]);
                }
            }
        }
        let got = s.solve(1);
        assert!(matches!(got, Err(BudgetExhausted { .. })), "{got:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut s = Solver::new(9);
            // A mildly interesting mix of constraints.
            for i in 0..7usize {
                s.add_clause(&[p(i), n(i + 1), p(i + 2)]);
                s.add_clause(&[n(i), p(i + 1)]);
            }
            s.add_clause(&[n(8), n(0)]);
            s
        };
        let mut a = build();
        let mut b = build();
        assert_eq!(a.solve(u64::MAX), b.solve(u64::MAX));
        assert_eq!(a.stats(), b.stats());
        for v in 0..9 {
            assert_eq!(a.model_value(v), b.model_value(v));
        }
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic LCG-driven 3-SAT instances over 8 vars, checked
        // against 2^8 brute force.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _instance in 0..60 {
            let num_vars = 8usize;
            let num_clauses = 3 + (next() % 40) as usize;
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..num_clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() as usize) % num_vars;
                    let neg = next() % 2 == 0;
                    c.push(if neg { n(v) } else { p(v) });
                }
                clauses.push(c);
            }
            let mut brute_sat = false;
            'rows: for row in 0..1u32 << num_vars {
                for c in &clauses {
                    if !c
                        .iter()
                        .any(|l| (row >> l.var()) & 1 == u32::from(!l.is_neg()))
                    {
                        continue 'rows;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = Solver::new(num_vars);
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve(u64::MAX).expect("no budget");
            assert_eq!(
                got == SatOutcome::Sat,
                brute_sat,
                "instance disagrees with brute force: {clauses:?}"
            );
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(Solver::luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn replay_rejects_a_non_rup_learned_clause() {
        // (x0 ∨ x1) does not entail ¬x0: a forged derivation must fail.
        let original: Vec<Vec<Lit>> = vec![vec![p(0), p(1)]];
        let orig: Vec<&[Lit]> = original.iter().map(Vec::as_slice).collect();
        let forged: Vec<Vec<Lit>> = vec![vec![n(0)]];
        let learned: Vec<&[Lit]> = forged.iter().map(Vec::as_slice).collect();
        assert!(!check_unsat_replay(2, false, &orig, &learned));
    }

    #[test]
    fn replay_rejects_a_log_whose_database_never_conflicts() {
        // A satisfiable database with an empty learned log: the final
        // top-level-conflict requirement must fail the replay.
        let original: Vec<Vec<Lit>> = vec![vec![p(0), p(1)]];
        let orig: Vec<&[Lit]> = original.iter().map(Vec::as_slice).collect();
        assert!(!check_unsat_replay(2, false, &orig, &[]));
    }

    #[test]
    fn replay_accepts_a_unit_refutation_and_a_learned_chain() {
        // Unit refutation: x0, ¬x0∨x1, ¬x1 conflicts with no learning.
        let units: Vec<Vec<Lit>> = vec![vec![p(0)], vec![n(0), p(1)], vec![n(1)]];
        let orig: Vec<&[Lit]> = units.iter().map(Vec::as_slice).collect();
        assert!(check_unsat_replay(2, false, &orig, &[]));

        // Learned chain: from (x0∨x1)(x0∨¬x1)(¬x0∨x1)(¬x0∨¬x1), the
        // clause [x0] is RUP, and with it the database conflicts.
        let full: Vec<Vec<Lit>> = vec![
            vec![p(0), p(1)],
            vec![p(0), n(1)],
            vec![n(0), p(1)],
            vec![n(0), n(1)],
        ];
        let orig: Vec<&[Lit]> = full.iter().map(Vec::as_slice).collect();
        let chain: Vec<Vec<Lit>> = vec![vec![p(0)]];
        let learned: Vec<&[Lit]> = chain.iter().map(Vec::as_slice).collect();
        assert!(check_unsat_replay(2, false, &orig, &learned));
    }
}
