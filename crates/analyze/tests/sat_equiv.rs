//! Equivalence of the two proof backends on random seeded circuits: on
//! every cone with at most 16 free border wires, the CDCL verdict must
//! match exhaustive enumeration — UNSAT ⇔ no escaping assignment exists,
//! SAT ⇔ one does (and the decoded model escapes under enumeration too).
//! The SAT batch verifier must also stay bit-identical across thread
//! counts.

use proptest::prelude::*;

use mate::prelude::*;
use mate_analyze::{
    render_verdicts_json, verify_mate_wire_enum, verify_mate_wire_sat, verify_mates, FaultConeCnf,
    ProofBackend, Verdict, VerifyConfig,
};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};
use mate_netlist::{NetCube, SoaNetlist};

/// Free-border ceiling: `2^16` assignments keep the enum reference exact.
const MAX_FREE: usize = 16;

/// Flips the polarity of the first literal, producing a (usually) unsound
/// cube so the equivalence check exercises the SAT/Refuted side too.
fn corrupt(cube: &NetCube) -> NetCube {
    let (flip_net, _) = cube.literals().next().expect("cube has literals");
    NetCube::from_literals(cube.literals().map(|(net, pol)| {
        if net == flip_net {
            (net, !pol)
        } else {
            (net, pol)
        }
    }))
    .expect("flipping one literal keeps the cube consistent")
}

fn enum_config() -> VerifyConfig {
    VerifyConfig {
        max_assignments: 1 << MAX_FREE,
        threads: 1,
        backend: ProofBackend::Enumeration,
        ..VerifyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cdcl_verdicts_match_exhaustive_enumeration(
        seed in 0u64..1_000_000,
        inputs in 1usize..5,
        ffs in 1usize..8,
        gates in 1usize..40,
        outputs in 1usize..3,
    ) {
        let cfg = RandomCircuitConfig { inputs, ffs, gates, outputs };
        let (n, topo) = random_circuit(cfg, seed);
        let soa = SoaNetlist::build(&n, &topo);

        for &wire in &ff_wires(&n, &topo) {
            let cnf = FaultConeCnf::new(&n, &soa, wire);
            let result = search_wire(&n, &topo, wire, &SearchConfig::default());
            for mate in result.mates.iter().take(4) {
                for cube in [mate.cube.clone(), corrupt(&mate.cube)] {
                    if cnf.free_border(&cube) > MAX_FREE {
                        continue;
                    }
                    let enum_v = verify_mate_wire_enum(&n, &topo, wire, &cube, &enum_config());
                    let (sat_v, _) = verify_mate_wire_sat(&n, &soa, wire, &cube, 1_000_000);
                    match (&enum_v, &sat_v) {
                        // UNSAT ⇔ the whole space masks, same space size.
                        (Verdict::Proved { checked: a }, Verdict::Proved { checked: b }) => {
                            prop_assert_eq!(a, b, "certificate space sizes differ");
                        }
                        // SAT ⇔ an escape exists; the decoded model must
                        // itself escape when enumeration is pinned to it.
                        (
                            Verdict::Refuted { .. },
                            Verdict::Refuted { counterexample },
                        ) => {
                            let pinned = NetCube::from_literals(
                                cube.literals()
                                    .chain(counterexample.assignment.iter().copied()),
                            )
                            .expect("witness cannot contradict its cube");
                            let replay =
                                verify_mate_wire_enum(&n, &topo, wire, &pinned, &enum_config());
                            let Verdict::Refuted { counterexample: again } = replay else {
                                return Err(TestCaseError::Fail(format!(
                                    "SAT witness does not escape under enumeration: {replay:?}"
                                )));
                            };
                            prop_assert_eq!(&again, counterexample);
                        }
                        _ => {
                            return Err(TestCaseError::Fail(format!(
                                "backend disagreement on wire {wire:?}: \
                                 enum {enum_v:?} vs sat {sat_v:?}"
                            )));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sat_batch_verifier_is_thread_count_invariant(seed in 0u64..1_000_000) {
        let cfg = RandomCircuitConfig::default();
        let (n, topo) = random_circuit(cfg, seed);
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        if mates.is_empty() {
            return Ok(());
        }

        let single = verify_mates(
            &n,
            &topo,
            &mates,
            &VerifyConfig { threads: 1, ..VerifyConfig::default() },
        );
        for threads in [2, 5] {
            let multi = verify_mates(
                &n,
                &topo,
                &mates,
                &VerifyConfig { threads, ..VerifyConfig::default() },
            );
            prop_assert_eq!(&single, &multi);
            prop_assert_eq!(
                render_verdicts_json(&n, &single),
                render_verdicts_json(&n, &multi)
            );
        }
    }
}
