//! The enumeration verifier must prove the paper's MATEs, refute corrupted
//! ones with a concrete counterexample, respect the assignment cap, and
//! produce byte-stable output for any thread count.

use mate::prelude::*;
use mate_analyze::{
    count_verdicts, render_verdicts_json, verify_mate_wire, verify_mates, ProofBackend, Verdict,
    VerifyConfig,
};
use mate_netlist::examples::{figure1, figure1b};
use mate_netlist::NetCube;

#[test]
fn figure1_mate_is_proved_exhaustively() {
    let (n, topo) = figure1();
    let d = n.find_net("d").expect("figure1 has wire d");
    let result = search_wire(&n, &topo, d, &SearchConfig::default());
    assert_eq!(result.mates.len(), 1);

    let verdict = verify_mate_wire(
        &n,
        &topo,
        d,
        &result.mates[0].cube,
        &VerifyConfig::default(),
    );
    // Border {c, f, h}; the cube ¬f ∧ h pins two, leaving one free wire:
    // the full space is 2 assignments.
    assert_eq!(verdict, Verdict::Proved { checked: 2 });
}

#[test]
fn corrupted_mate_is_refuted_with_counterexample() {
    let (n, topo) = figure1();
    let d = n.find_net("d").expect("figure1 has wire d");
    let result = search_wire(&n, &topo, d, &SearchConfig::default());
    let good = &result.mates[0].cube;

    // Flip one cube literal: ¬f ∧ h becomes f ∧ h.
    let (flip_net, flip_pol) = good.literals().next().expect("cube has literals");
    let corrupted = NetCube::from_literals(good.literals().map(|(net, pol)| {
        if net == flip_net {
            (net, !pol)
        } else {
            (net, pol)
        }
    }))
    .expect("flipping one literal keeps the cube consistent");
    assert_ne!(&corrupted, good);
    let _ = flip_pol;

    let verdict = verify_mate_wire(&n, &topo, d, &corrupted, &VerifyConfig::default());
    let Verdict::Refuted { counterexample } = verdict else {
        panic!("corrupted MATE must be refuted, got {verdict:?}");
    };
    // The counterexample pins the full border, including the flipped
    // literal, and names a real endpoint net.
    assert_eq!(counterexample.assignment.len(), 3);
    assert_eq!(
        counterexample
            .assignment
            .iter()
            .find(|&&(net, _)| net == flip_net)
            .map(|&(_, v)| v),
        Some(!flip_pol)
    );
    assert!(counterexample.endpoint.index() < n.num_nets());
    // The assignment is sorted by net id (determinism contract).
    let mut sorted = counterexample.assignment.clone();
    sorted.sort_unstable();
    assert_eq!(counterexample.assignment, sorted);
}

#[test]
fn cap_below_space_size_yields_bounded() {
    let (n, topo) = figure1();
    let d = n.find_net("d").expect("figure1 has wire d");
    let result = search_wire(&n, &topo, d, &SearchConfig::default());

    let config = VerifyConfig {
        max_assignments: 1,
        threads: 1,
        backend: ProofBackend::Enumeration,
        ..VerifyConfig::default()
    };
    let verdict = verify_mate_wire(&n, &topo, d, &result.mates[0].cube, &config);
    // One free border wire -> 2 assignments total, capped at 1.
    assert_eq!(verdict, Verdict::Bounded { checked: 1 });
}

#[test]
fn searched_design_verifies_clean_any_thread_count() {
    let (n, topo) = figure1b();
    let wires = ff_wires(&n, &topo);
    let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
    assert!(!mates.is_empty(), "figure1b search finds MATEs");

    let single = verify_mates(
        &n,
        &topo,
        &mates,
        &VerifyConfig {
            threads: 1,
            ..VerifyConfig::default()
        },
    );
    let counts = count_verdicts(&single);
    assert_eq!(counts.refuted, 0, "search-produced MATEs must verify");
    assert!(counts.proved > 0);

    // Byte-stable across thread counts: the rendered JSON must be identical.
    for threads in [2, 4] {
        let multi = verify_mates(
            &n,
            &topo,
            &mates,
            &VerifyConfig {
                threads,
                ..VerifyConfig::default()
            },
        );
        assert_eq!(single, multi);
        assert_eq!(
            render_verdicts_json(&n, &single),
            render_verdicts_json(&n, &multi)
        );
    }
}
