//! Lint passes must never panic — and never report errors — on arbitrary
//! valid circuits from the seeded random generator.

use proptest::prelude::*;

use mate_analyze::{render_json, render_text, run_lints, Severity};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lints_never_panic_on_random_circuits(
        seed in 0u64..1_000_000,
        inputs in 1usize..6,
        ffs in 1usize..12,
        gates in 1usize..48,
        outputs in 1usize..4,
    ) {
        let cfg = RandomCircuitConfig { inputs, ffs, gates, outputs };
        let (n, _topo) = random_circuit(cfg, seed);
        let diags = run_lints(&n);
        // Random circuits are valid by construction: structural errors would
        // mean either the generator or a lint pass is wrong.
        prop_assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "unexpected error diagnostics: {diags:?}"
        );
        // Renderers must handle every diagnostic the passes emit.
        let _ = render_text(&n, &diags);
        let _ = render_json(&n, &diags);
    }

    #[test]
    fn lint_output_is_deterministic(seed in 0u64..1_000_000) {
        let cfg = RandomCircuitConfig::default();
        let (n, _topo) = random_circuit(cfg, seed);
        let a = run_lints(&n);
        let b = run_lints(&n);
        prop_assert_eq!(render_json(&n, &a), render_json(&n, &b));
    }
}
