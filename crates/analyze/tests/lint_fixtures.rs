//! Fixture netlists, each seeded with exactly one structural defect, must
//! each produce exactly one diagnostic at warning severity or worse — and
//! the right one.

use mate_analyze::{run_lints, Diagnostic, Locus, Severity};
use mate_netlist::{Library, Netlist};

fn actionable(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags
        .iter()
        .filter(|d| d.severity <= Severity::Warning)
        .collect()
}

#[test]
fn seeded_combinational_loop_is_diagnosed() {
    // Two cross-coupled inverters; the loop net is created first and driven
    // by the second gate.
    let lib = Library::open15();
    let mut n = Netlist::new("loop", lib);
    let a = n.add_net("a");
    let y = n.add_cell("INV", "g1", &[a]).expect("INV exists");
    n.add_cell_to("INV", "g2", &[y], a).expect("a was undriven");
    n.set_output(y);

    assert!(n.validate().is_err(), "fixture must not validate");
    let diags = run_lints(&n);
    let hits = actionable(&diags);
    assert_eq!(hits.len(), 1, "diagnostics: {diags:?}");
    assert_eq!(hits[0].code, "comb-loop");
    assert_eq!(hits[0].severity, Severity::Error);
    // The locus is the smaller of the two loop nets.
    assert_eq!(hits[0].locus, Locus::Net(a.min(y)));
}

#[test]
fn seeded_undriven_net_is_diagnosed() {
    let lib = Library::open15();
    let mut n = Netlist::new("undriven", lib);
    let u = n.add_net("u");
    let b = n.add_input("b");
    let y = n.add_cell("AND2", "g1", &[u, b]).expect("AND2 exists");
    n.set_output(y);

    assert!(n.validate().is_err(), "fixture must not validate");
    let diags = run_lints(&n);
    let hits = actionable(&diags);
    assert_eq!(hits.len(), 1, "diagnostics: {diags:?}");
    assert_eq!(hits[0].code, "undriven-net");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].locus, Locus::Net(u));
}

#[test]
fn seeded_multiply_driven_wire_is_diagnosed() {
    // The checked API rejects double drivers, so the second driver goes in
    // through `add_cell_unchecked`.
    let lib = Library::open15();
    let mut n = Netlist::new("multi", lib);
    let a = n.add_input("a");
    let b = n.add_input("b");
    let y = n.add_cell("AND2", "g1", &[a, b]).expect("AND2 exists");
    n.add_cell_unchecked("OR2", "g2", &[a, b], y)
        .expect("unchecked add accepts a second driver");
    n.set_output(y);

    let diags = run_lints(&n);
    let hits = actionable(&diags);
    assert_eq!(hits.len(), 1, "diagnostics: {diags:?}");
    assert_eq!(hits[0].code, "multi-driven-net");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].locus, Locus::Net(y));
    assert!(hits[0].message.contains("2 drivers"));
}

#[test]
fn dangling_ff_and_unreachable_cell_are_warnings() {
    let lib = Library::open15();
    let mut n = Netlist::new("dangling", lib);
    let a = n.add_input("a");
    let q = n.add_cell("DFF", "ff1", &[a]).expect("DFF exists");
    let y = n.add_cell("INV", "g1", &[a]).expect("INV exists");
    n.set_output(y);
    let _ = q; // never read, not an output

    let diags = run_lints(&n);
    let hits = actionable(&diags);
    // The dangling FF is also unreachable — both warnings, nothing worse.
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
    assert!(hits.iter().any(|d| d.code == "dangling-ff"));
    assert!(hits.iter().any(|d| d.code == "unreachable-cell"));
}

#[test]
fn clean_example_designs_lint_clean() {
    for (name, (n, _topo)) in [
        ("figure1", mate_netlist::examples::figure1()),
        ("figure1b", mate_netlist::examples::figure1b()),
        ("counter", mate_netlist::examples::counter(4)),
    ] {
        let diags = run_lints(&n);
        assert!(
            actionable(&diags).is_empty(),
            "{name} should lint clean, got {diags:?}"
        );
    }
}
