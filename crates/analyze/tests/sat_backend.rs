//! The SAT proof backend must agree with the exhaustive enumeration
//! verifier on every certificate it issues: proved MATEs carry the same
//! space size, refuted MATEs carry a counterexample that the enum path
//! reproduces exactly, and a hand-corrupted MATE is refuted by both
//! backends with matching witnesses.

use mate::prelude::*;
use mate_analyze::{
    verify_mate_wire_enum, verify_mate_wire_sat, Counterexample, ProofBackend, Verdict,
    VerifyConfig,
};
use mate_netlist::examples::{figure1, figure1b};
use mate_netlist::{NetCube, NetId, Netlist, SoaNetlist, Topology};

/// Flips the polarity of the first literal, producing an unsound cube.
fn corrupt(cube: &NetCube) -> NetCube {
    let (flip_net, _) = cube.literals().next().expect("cube has literals");
    NetCube::from_literals(cube.literals().map(|(net, pol)| {
        if net == flip_net {
            (net, !pol)
        } else {
            (net, pol)
        }
    }))
    .expect("flipping one literal keeps the cube consistent")
}

/// Enum config with a cap large enough that nothing in these fixtures is
/// ever `Bounded`.
fn enum_config() -> VerifyConfig {
    VerifyConfig {
        max_assignments: 1 << 20,
        threads: 1,
        backend: ProofBackend::Enumeration,
        ..VerifyConfig::default()
    }
}

/// Replays a SAT counterexample through the enumeration path: the cube
/// strengthened with the full witness assignment pins every border wire,
/// so the enum verifier enumerates exactly that one point — and must
/// refute it with the identical witness.
fn enum_reproduces(
    n: &Netlist,
    topo: &Topology,
    wire: NetId,
    cube: &NetCube,
    witness: &Counterexample,
) {
    let strengthened =
        NetCube::from_literals(cube.literals().chain(witness.assignment.iter().copied()))
            .expect("a satisfying witness cannot contradict its own cube");
    let verdict = verify_mate_wire_enum(n, topo, wire, &strengthened, &enum_config());
    let Verdict::Refuted { counterexample } = verdict else {
        panic!("SAT witness must escape under enumeration, got {verdict:?}");
    };
    assert_eq!(&counterexample, witness, "replayed witness must match");
}

#[test]
fn proved_certificates_cover_the_same_space_as_enumeration() {
    for (n, topo) in [figure1(), figure1b()] {
        let soa = SoaNetlist::build(&n, &topo);
        for &wire in &ff_wires(&n, &topo) {
            let result = search_wire(&n, &topo, wire, &SearchConfig::default());
            for mate in &result.mates {
                let enum_v = verify_mate_wire_enum(&n, &topo, wire, &mate.cube, &enum_config());
                let (sat_v, stats) = verify_mate_wire_sat(&n, &soa, wire, &mate.cube, 1_000_000);
                let Verdict::Proved { checked: want } = enum_v else {
                    panic!("searched MATE must verify exhaustively, got {enum_v:?}");
                };
                assert_eq!(
                    sat_v,
                    Verdict::Proved { checked: want },
                    "SAT certificate must cover the same {want}-assignment space"
                );
                // A proof over 2^free assignments may finish without a
                // single conflict, but propagation always runs.
                assert!(stats.propagations > 0 || want <= 1);
            }
        }
    }
}

#[test]
fn sat_refutations_replay_through_the_enum_path() {
    for (n, topo) in [figure1(), figure1b()] {
        let soa = SoaNetlist::build(&n, &topo);
        for &wire in &ff_wires(&n, &topo) {
            let result = search_wire(&n, &topo, wire, &SearchConfig::default());
            for mate in &result.mates {
                let bad = corrupt(&mate.cube);
                let (sat_v, _) = verify_mate_wire_sat(&n, &soa, wire, &bad, 1_000_000);
                // A flipped literal is not guaranteed to be unsound on
                // every fixture wire; the regression is about the Refuted
                // ones: each witness must reproduce under enumeration.
                if let Verdict::Refuted { counterexample } = sat_v {
                    enum_reproduces(&n, &topo, wire, &bad, &counterexample);
                }
            }
        }
    }
}

#[test]
fn corrupted_figure1_mate_refuted_by_both_backends_with_matching_witnesses() {
    let (n, topo) = figure1();
    let soa = SoaNetlist::build(&n, &topo);
    let d = n.find_net("d").expect("figure1 has wire d");
    let result = search_wire(&n, &topo, d, &SearchConfig::default());
    let bad = corrupt(&result.mates[0].cube);

    let enum_v = verify_mate_wire_enum(&n, &topo, d, &bad, &enum_config());
    let (sat_v, stats) = verify_mate_wire_sat(&n, &soa, d, &bad, 1_000_000);

    let Verdict::Refuted {
        counterexample: enum_cx,
    } = enum_v
    else {
        panic!("enumeration must refute the corrupted MATE, got {enum_v:?}");
    };
    let Verdict::Refuted {
        counterexample: sat_cx,
    } = sat_v
    else {
        panic!("SAT must refute the corrupted MATE, got {sat_v:?}");
    };

    // Both witnesses pin the full 3-wire border and escape; each one
    // reproduces through the enumeration path.
    assert_eq!(enum_cx.assignment.len(), 3);
    assert_eq!(sat_cx.assignment.len(), 3);
    enum_reproduces(&n, &topo, d, &bad, &sat_cx);
    enum_reproduces(&n, &topo, d, &bad, &enum_cx);
    // Deterministic solver, deterministic decode: the witnesses agree.
    assert_eq!(sat_cx, enum_cx);
    let _ = stats;
}
