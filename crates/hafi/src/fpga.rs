//! FPGA integration cost models (paper Sections 1.1 and 6.1).

use mate::{Mate, MateSet};

/// Estimates the LUT cost of synthesizing MATEs into an FPGA.
///
/// A boolean function of `n` inputs needs one `k`-input LUT when `n ≤ k`,
/// otherwise a LUT tree of `⌈(n−1)/(k−1)⌉` LUTs — the standard capacity
/// estimate.  The paper argues (Section 6.1) that MATEs average fewer than 6
/// inputs, so one or two LUTs each, negligible against fault-injection
/// controllers of 1500–6000 LUTs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LutCostModel {
    /// LUT input width (6 on the paper's Virtex-6 reference device).
    pub lut_inputs: usize,
}

impl Default for LutCostModel {
    fn default() -> Self {
        Self { lut_inputs: 6 }
    }
}

/// LUT budget of the FI controller alone on published HAFI platforms
/// (lower bound; paper Section 6.1, references 9 and 19).
pub const CONTROLLER_LUTS_MIN: usize = 1500;
/// Upper bound of the published FI-controller LUT budgets.
pub const CONTROLLER_LUTS_MAX: usize = 6000;
/// LUT capacity of the paper's mid-range reference FPGA (XC6VLX240T).
pub const MIDRANGE_FPGA_LUTS: usize = 150_000;

impl LutCostModel {
    /// Creates a model for `lut_inputs`-input LUTs.
    ///
    /// # Panics
    ///
    /// Panics if `lut_inputs < 2`.
    pub fn new(lut_inputs: usize) -> Self {
        assert!(lut_inputs >= 2, "LUTs need at least two inputs");
        Self { lut_inputs }
    }

    /// LUTs for one `n`-input AND (a MATE cube is a plain conjunction).
    pub fn luts_for_inputs(&self, n: usize) -> usize {
        if n <= 1 {
            // A constant or a bare wire costs no LUT.
            0
        } else if n <= self.lut_inputs {
            1
        } else {
            (n - 1).div_ceil(self.lut_inputs - 1)
        }
    }

    /// LUTs for one MATE.
    pub fn luts_for_mate(&self, mate: &Mate) -> usize {
        self.luts_for_inputs(mate.num_inputs())
    }

    /// Total LUTs for a MATE set, including the per-faulty-wire OR trees
    /// that combine MATEs masking the same wire into one "prune" signal.
    pub fn luts_for_set(&self, mates: &MateSet) -> usize {
        let mate_luts: usize = mates.iter().map(|m| self.luts_for_mate(m)).sum();
        // Count how many MATEs feed each wire's OR tree.
        let mut per_wire: std::collections::HashMap<mate_netlist::NetId, usize> =
            std::collections::HashMap::new();
        for mate in mates {
            for &w in &mate.masked {
                *per_wire.entry(w).or_insert(0) += 1;
            }
        }
        let or_luts: usize = per_wire
            .values()
            .map(|&fan_in| self.luts_for_inputs(fan_in))
            .sum();
        mate_luts + or_luts
    }

    /// The MATE set's LUT cost relative to the *smallest* published FI
    /// controller — the paper's "negligible overhead" argument.
    pub fn relative_overhead(&self, mates: &MateSet) -> f64 {
        self.luts_for_set(mates) as f64 / CONTROLLER_LUTS_MIN as f64
    }
}

/// Models the injection-command bandwidth argument of Section 1.1: with
/// online pruning, a campaign controller distributing work across FPGAs can
/// send coarse commands (`inject(cycle)`) instead of fine ones
/// (`inject(cycle, wire)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommandModel {
    /// Bits to address a cycle.
    pub cycle_bits: u32,
    /// Bits to address a wire.
    pub wire_bits: u32,
}

impl CommandModel {
    /// A model sized for a fault space of `cycles × wires`.
    pub fn for_space(cycles: usize, wires: usize) -> Self {
        Self {
            cycle_bits: usize::BITS - cycles.next_power_of_two().leading_zeros(),
            wire_bits: usize::BITS - wires.next_power_of_two().leading_zeros(),
        }
    }

    /// Command bits for a fine-grained `inject(cycle, wire)` campaign of
    /// `experiments` injections.
    pub fn fine_bits(&self, experiments: usize) -> u64 {
        (self.cycle_bits + self.wire_bits) as u64 * experiments as u64
    }

    /// Command bits for coarse `inject(cycle)` commands where the FPGA-side
    /// MATE logic picks the wires itself.
    pub fn coarse_bits(&self, experiments: usize) -> u64 {
        self.cycle_bits as u64 * experiments as u64
    }

    /// Bandwidth saved by coarse commands, as a fraction of the fine-grained
    /// bandwidth.
    pub fn savings(&self, experiments: usize) -> f64 {
        let fine = self.fine_bits(experiments);
        if fine == 0 {
            return 0.0;
        }
        1.0 - self.coarse_bits(experiments) as f64 / fine as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate::{summarize, Mate};
    use mate_netlist::{NetCube, NetId};

    fn net(i: usize) -> NetId {
        NetId::from_index(i)
    }

    fn mate_with_inputs(n: usize, wire: usize) -> Mate {
        let cube = NetCube::from_literals((0..n).map(|i| (net(i), true))).unwrap();
        Mate::single(cube, net(wire))
    }

    #[test]
    fn single_lut_up_to_k_inputs() {
        let model = LutCostModel::default();
        for n in 2..=6 {
            assert_eq!(model.luts_for_inputs(n), 1, "n={n}");
        }
        assert_eq!(model.luts_for_inputs(7), 2);
        assert_eq!(model.luts_for_inputs(11), 2);
        assert_eq!(model.luts_for_inputs(12), 3);
        assert_eq!(model.luts_for_inputs(1), 0);
        assert_eq!(model.luts_for_inputs(0), 0);
    }

    #[test]
    fn four_input_luts_cost_more() {
        let model = LutCostModel::new(4);
        assert_eq!(model.luts_for_inputs(6), 2);
        assert_eq!(model.luts_for_inputs(10), 3);
    }

    #[test]
    fn set_cost_includes_or_trees() {
        let model = LutCostModel::default();
        // Two 3-input MATEs masking the same wire: 2 LUTs + 1 OR LUT.
        let set = summarize([
            mate_with_inputs(3, 100),
            Mate::single(
                NetCube::from_literals([(net(5), false), (net(6), true), (net(7), true)]).unwrap(),
                net(100),
            ),
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(model.luts_for_set(&set), 3);
    }

    #[test]
    fn paper_claim_50_mates_negligible() {
        // 50 MATEs of ≤6 inputs each: well below 5% of the smallest
        // controller.
        let model = LutCostModel::default();
        let set = summarize((0..50).map(|i| mate_with_inputs(5, 200 + i)));
        let luts = model.luts_for_set(&set);
        assert!(luts <= 100);
        assert!(model.relative_overhead(&set) < 0.07);
        assert!(luts < MIDRANGE_FPGA_LUTS / 1000);
    }

    #[test]
    fn command_model_savings() {
        let m = CommandModel::for_space(8500, 383);
        assert!(m.cycle_bits >= 14);
        assert!(m.wire_bits >= 9);
        let savings = m.savings(1000);
        assert!(savings > 0.3, "coarse commands must save bandwidth");
        assert_eq!(m.coarse_bits(0), 0);
        assert_eq!(CommandModel::for_space(0, 0).savings(0), 0.0);
    }
}
