//! Ground-truth validation of MATE claims.
//!
//! The central soundness property of the whole approach: **whenever a MATE
//! for wire `w` evaluates true on the fault-free trace of cycle `t`, the
//! SEU `(w, t)` must be masked within one clock cycle.**  This module checks
//! the property by actually injecting every claimed point (or a seeded
//! sample) and comparing against the golden run.

use mate::{EvalReport, MateSet};
use mate_netlist::{MateError, NetId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::campaign::{classify_points_pruned, golden_run, CampaignEngine, FaultEffect, LaneWidth};
use crate::collapse::{CampaignPruning, PruningStats};
use crate::harness::DesignHarness;
use crate::space::{FaultPoint, FaultSpace};

/// The outcome of validating a MATE set against injection ground truth.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// Fault-space points the MATE set claimed benign.
    pub claimed: usize,
    /// Claimed points actually injected (≤ `claimed` when sampling).
    pub checked: usize,
    /// Claimed points confirmed masked within one cycle.
    pub confirmed: usize,
    /// Violations: claimed benign but observably *not* masked — must stay
    /// empty for a sound implementation.
    pub violations: Vec<(FaultPoint, FaultEffect)>,
    /// Fault-space collapsing accounting for the injection pass (claimed
    /// points are overwhelmingly masked-within-one-cycle, the class the
    /// collapsing layer decides with one probe per golden context).
    pub pruning: PruningStats,
}

impl ValidationReport {
    /// `true` when every checked claim held.
    pub fn sound(&self) -> bool {
        self.violations.is_empty() && self.confirmed == self.checked
    }
}

/// Validates that every fault-space point pruned by `mates` on the harness's
/// own golden trace is masked within one cycle.
///
/// `sample` bounds the number of injections (`None` = exhaustive over all
/// claimed points); sampling is deterministic in `seed`.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if `wires` contains nets that are not
/// flip-flop outputs, or an injection is invalid.
pub fn validate_mates(
    harness: &dyn DesignHarness,
    mates: &MateSet,
    wires: &[NetId],
    cycles: usize,
    sample: Option<usize>,
    seed: u64,
) -> Result<(EvalReport, ValidationReport), MateError> {
    // One extra golden cycle so claims in the final evaluated cycle can be
    // judged against a `t+1` state.
    let golden = golden_run(harness, cycles + 1);
    let eval_trace = golden.trace.truncated(cycles);
    let report = mate::eval::evaluate(mates, &eval_trace, wires);

    // Map wires back to their flip-flops.
    let space = FaultSpace::for_wires(harness.netlist(), harness.topology(), wires, cycles);
    let ff_of: std::collections::HashMap<NetId, _> =
        space.ffs().map(|(ff, wire)| (wire, ff)).collect();
    for &w in wires {
        if !ff_of.contains_key(&w) {
            return Err(MateError::campaign(format!(
                "wire {w} is not a flip-flop output"
            )));
        }
    }

    let mut claimed_points: Vec<FaultPoint> = Vec::new();
    for cycle in 0..cycles {
        for &wire in wires {
            if report.matrix.is_masked(wire, cycle) {
                claimed_points.push(FaultPoint {
                    ff: ff_of[&wire],
                    wire,
                    cycle,
                });
            }
        }
    }

    let mut validation = ValidationReport {
        claimed: claimed_points.len(),
        ..ValidationReport::default()
    };
    if let Some(limit) = sample {
        if claimed_points.len() > limit {
            let mut rng = StdRng::seed_from_u64(seed);
            claimed_points.shuffle(&mut rng);
            claimed_points.truncate(limit);
        }
    }
    // Batched classification with fault-space collapsing: up to a lane
    // block of claimed points share one run, and — on wide-capable
    // harnesses — temporally equivalent claims collapse onto one
    // representative probe each.  Almost every claimed point is masked
    // within one cycle, so whole equivalence classes die on their first
    // probe and validation work scales with the number of distinct golden
    // contexts rather than the number of claims.
    let (effects, pruning) = classify_points_pruned(
        harness,
        &golden,
        &claimed_points,
        LaneWidth::default(),
        CampaignEngine::default(),
        CampaignPruning::default(),
    )?;
    validation.pruning = pruning;
    for (point, effect) in claimed_points.into_iter().zip(effects) {
        validation.checked += 1;
        if effect.is_masked_one_cycle() {
            validation.confirmed += 1;
        } else {
            validation.violations.push((point, effect));
        }
    }
    Ok((report, validation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StimulusHarness;
    use mate::{ff_wires, search_design, SearchConfig};
    use mate_netlist::examples::{figure1b, tmr_register};

    #[test]
    fn figure1b_claims_are_sound() {
        let (n, topo) = figure1b();
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let input = n.find_net("in").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(input, vec![false, true, true, false, true, false, false]);
        let (report, validation) = validate_mates(&harness, &mates, &wires, 24, None, 0).unwrap();
        assert!(validation.claimed > 0, "MATEs must trigger on this trace");
        assert!(
            validation.sound(),
            "violations: {:?}",
            validation.violations
        );
        assert!(report.masked_fraction() > 0.0);
    }

    #[test]
    fn tmr_claims_are_sound_and_substantial() {
        let (n, topo) = tmr_register();
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false, false, true, false])
            .drive(din, vec![true, true, false]);
        let (report, validation) = validate_mates(&harness, &mates, &wires, 16, None, 0).unwrap();
        assert!(
            validation.sound(),
            "violations: {:?}",
            validation.violations
        );
        // TMR voting masks replica upsets in most cycles.
        assert!(report.masked_fraction() > 0.5);
    }

    #[test]
    fn sampling_limits_injections() {
        let (n, topo) = tmr_register();
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false])
            .drive(din, vec![true]);
        let (_, validation) = validate_mates(&harness, &mates, &wires, 20, Some(5), 3).unwrap();
        assert_eq!(validation.checked, 5);
        assert!(validation.claimed >= 5);
        assert!(validation.sound());
    }
}
