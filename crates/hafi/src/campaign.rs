//! Injection campaigns and outcome classification.

use std::collections::BTreeMap;
use std::fmt;

use mate_netlist::{LaneBlock, MateError, NetId, Netlist, Topology, B256, B512};
use mate_sim::{BlockSimulator, WaveTrace};

use crate::harness::DesignHarness;
use crate::space::{FaultPoint, FaultSpace};

/// The observable effect of one injected fault, judged against the golden
/// run over the campaign horizon.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultEffect {
    /// Outputs stayed golden during the injection cycle and the full state
    /// matched the golden state in the next cycle — the fault class MATEs
    /// prune.
    MaskedWithinOneCycle,
    /// Outputs never diverged and the state re-converged later (at the
    /// recorded cycle offset); benign, but beyond the single-cycle horizon.
    SilentRecovery {
        /// Cycles after injection until the state matched the golden run.
        after: usize,
    },
    /// Outputs never diverged within the horizon but the state never
    /// re-converged: the fault is still latent.
    Latent,
    /// A primary output diverged from the golden run.
    OutputFailure {
        /// Cycles after injection until the first wrong output.
        after: usize,
    },
}

impl FaultEffect {
    /// `true` for the two classes that produced no wrong output.
    pub fn is_silent(self) -> bool {
        !matches!(self, FaultEffect::OutputFailure { .. })
    }

    /// `true` iff the fault was masked within one clock cycle — the
    /// sufficient benign-ness criterion of the paper's Section 2.
    pub fn is_masked_one_cycle(self) -> bool {
        matches!(self, FaultEffect::MaskedWithinOneCycle)
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MaskedWithinOneCycle => write!(f, "masked within one cycle"),
            Self::SilentRecovery { after } => write!(f, "silent recovery after {after} cycles"),
            Self::Latent => write!(f, "latent state corruption"),
            Self::OutputFailure { after } => write!(f, "output failure after {after} cycles"),
        }
    }
}

/// Records the golden (fault-free) execution.
#[derive(Clone, Debug)]
pub struct GoldenRun {
    /// The fault-free trace.
    pub trace: WaveTrace,
    /// Flip-flop output nets (the architectural state vector).
    pub state_nets: Vec<NetId>,
    /// Primary output nets.
    pub output_nets: Vec<NetId>,
}

/// Runs the workload fault-free for `cycles` cycles.
pub fn golden_run(harness: &dyn DesignHarness, cycles: usize) -> GoldenRun {
    let trace = harness.testbench().run(cycles);
    GoldenRun {
        trace,
        state_nets: state_nets(harness.netlist(), harness.topology()),
        output_nets: harness.netlist().outputs().to_vec(),
    }
}

fn state_nets(netlist: &Netlist, topo: &Topology) -> Vec<NetId> {
    topo.seq_cells()
        .iter()
        .map(|&ff| netlist.cell(ff).output())
        .collect()
}

/// Injects a single SEU at `point` and classifies its effect against
/// `golden` over the remaining horizon.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if `point.cycle` lies beyond the golden
/// trace.
pub fn inject(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    point: FaultPoint,
) -> Result<FaultEffect, MateError> {
    let horizon = golden.trace.num_cycles();
    if point.cycle >= horizon {
        return Err(MateError::campaign(format!(
            "injection cycle {} beyond golden trace of {horizon} cycles",
            point.cycle
        )));
    }
    let mut tb = harness.testbench();

    // Advance fault-free to the injection cycle.
    for _ in 0..point.cycle {
        tb.step();
    }
    // Flip the victim flip-flop; its faulty value is live during this cycle.
    tb.sim_mut().flip_ff(point.ff);
    Ok(classify(&mut tb, golden, point.cycle))
}

/// Runs the remaining horizon and classifies the divergence from golden.
fn classify(
    tb: &mut mate_sim::Testbench<'_>,
    golden: &GoldenRun,
    injected_at: usize,
) -> FaultEffect {
    let horizon = golden.trace.num_cycles();
    let mut state_equal_at: Option<usize> = None;
    let mut diverged_again = false;
    for cycle in injected_at..horizon {
        let mut outputs_ok = true;
        let mut state_ok = true;
        tb.step_observed(|sim| {
            for &net in &golden.output_nets {
                if sim.value(net) != golden.trace.value(cycle, net) {
                    outputs_ok = false;
                    break;
                }
            }
            for &net in &golden.state_nets {
                if sim.value(net) != golden.trace.value(cycle, net) {
                    state_ok = false;
                    break;
                }
            }
        });
        if !outputs_ok {
            return FaultEffect::OutputFailure {
                after: cycle - injected_at,
            };
        }
        if cycle > injected_at {
            if state_ok {
                if state_equal_at.is_none() {
                    state_equal_at = Some(cycle - injected_at);
                }
            } else if state_equal_at.is_some() {
                // Re-diverged after apparent convergence (possible only via
                // diverged external device state, e.g. corrupted memory).
                diverged_again = true;
                state_equal_at = None;
            }
        }
    }
    match state_equal_at {
        Some(1) if !diverged_again => FaultEffect::MaskedWithinOneCycle,
        Some(after) => FaultEffect::SilentRecovery { after },
        None => FaultEffect::Latent,
    }
}

/// Lane width of the batched campaign engine: how many fault scenarios one
/// [`BlockSimulator`] pass carries.
///
/// Every width produces bit-identical [`FaultEffect`] classifications; the
/// choice only trades register pressure against scenarios per pass.  The
/// default is [`LaneWidth::W256`] (four words per net, the AVX2-register
/// shape).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LaneWidth {
    /// 64 scenarios per pass (one `u64` per net) — the baseline engine.
    W64,
    /// 256 scenarios per pass (a [`B256`] block per net).
    #[default]
    W256,
    /// 512 scenarios per pass (a [`B512`] block per net).
    W512,
}

impl LaneWidth {
    /// Number of fault scenarios per simulation pass.
    pub fn lanes(self) -> usize {
        match self {
            Self::W64 => 64,
            Self::W256 => 256,
            Self::W512 => 512,
        }
    }

    /// All supported widths, narrowest first (for equivalence sweeps).
    pub fn all() -> [Self; 3] {
        [Self::W64, Self::W256, Self::W512]
    }
}

impl fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lanes())
    }
}

/// Classifies a batch of fault points against `golden` with the default
/// lane width — see [`classify_points_with`].
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if any injection cycle lies beyond the
/// golden trace.
pub fn classify_points(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Result<Vec<FaultEffect>, MateError> {
    classify_points_with(harness, golden, points, LaneWidth::default())
}

/// Classifies a batch of fault points against `golden`, choosing the
/// fastest sound engine the harness supports:
///
/// 1. **Wide** — no external devices and pure stimuli: up to
///    [`LaneWidth::lanes`] fault points per injection cycle are packed into
///    the lanes of a [`BlockSimulator`] seeded directly from the golden
///    trace at the injection cycle, then classified in lock-step with
///    per-lane early retirement.
/// 2. **Checkpointed scalar** — all devices snapshotable and pure stimuli:
///    one incremental golden run captures a checkpoint at every injection
///    cycle; each faulty run is seeded by restore instead of replaying the
///    warm-up prefix.
/// 3. **Scalar fallback** — anything else: one [`inject`] per point.
///
/// All paths — every lane width included — produce bit-identical
/// [`FaultEffect`] classifications.  Results are returned in the order of
/// `points`.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if any injection cycle lies beyond the
/// golden trace.
pub fn classify_points_with(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
    lanes: LaneWidth,
) -> Result<Vec<FaultEffect>, MateError> {
    let horizon = golden.trace.num_cycles();
    if let Some(p) = points.iter().find(|p| p.cycle >= horizon) {
        return Err(MateError::campaign(format!(
            "injection cycle {} beyond golden trace of {horizon} cycles",
            p.cycle
        )));
    }
    let probe = harness.testbench();
    Ok(if probe.can_run_wide() {
        match lanes {
            LaneWidth::W64 => classify_points_block::<u64>(harness, golden, points),
            LaneWidth::W256 => classify_points_block::<B256>(harness, golden, points),
            LaneWidth::W512 => classify_points_block::<B512>(harness, golden, points),
        }
    } else if probe.can_checkpoint() {
        classify_points_checkpoint(harness, golden, points)
    } else {
        let mut effects = Vec::with_capacity(points.len());
        for &p in points {
            effects.push(inject(harness, golden, p)?);
        }
        effects
    })
}

/// The block-lane engine behind [`classify_points_with`]: groups points by
/// injection cycle, packs up to `B::WIDTH` of them into one lane-parallel
/// run seeded from the golden trace, and compares every lane against golden
/// with block XORs.
///
/// Early retirement is sound here because the wide path requires a harness
/// without devices: once a lane's full flip-flop state re-converges to the
/// golden state (inputs are golden by construction), *every* net of that
/// lane equals golden in all later cycles, so its classification is already
/// decided — `OutputFailure` can no longer occur and the recorded
/// convergence offset is final, exactly as the scalar classifier would
/// conclude after running out the horizon.
fn classify_points_block<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Vec<FaultEffect> {
    let horizon = golden.trace.num_cycles();
    // The testbench is used purely as a stimulus source; pure waves may be
    // sampled at arbitrary cycles.
    let mut stim = harness.testbench();
    let mut wide: BlockSimulator<'_, B> =
        BlockSimulator::new(harness.netlist(), harness.topology());

    let mut by_cycle: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, p) in points.iter().enumerate() {
        by_cycle.entry(p.cycle).or_default().push(idx);
    }

    let mut effects = vec![FaultEffect::Latent; points.len()];
    for (&cycle, indices) in &by_cycle {
        for chunk in indices.chunks(B::WIDTH) {
            wide.load_from_trace(&golden.trace, cycle);
            for (lane, &idx) in chunk.iter().enumerate() {
                wide.flip_ff(points[idx].ff, lane);
            }
            let mut active = B::low_lanes(chunk.len());
            for t in cycle..horizon {
                stim.apply_stimuli_block(&mut wide, t as u64);
                wide.settle();
                // Outputs first, mirroring the scalar classifier's priority.
                let mut out_diff = B::ZERO;
                for &net in &golden.output_nets {
                    out_diff |= wide.value_block(net) ^ B::splat(golden.trace.value(t, net));
                }
                let failed = out_diff & active;
                if !failed.is_zero() {
                    failed.for_each_lane(|lane| {
                        effects[chunk[lane]] = FaultEffect::OutputFailure { after: t - cycle };
                    });
                    active &= !failed;
                }
                if t > cycle && !active.is_zero() {
                    let mut state_diff = B::ZERO;
                    for &net in &golden.state_nets {
                        state_diff |= wide.value_block(net) ^ B::splat(golden.trace.value(t, net));
                    }
                    let converged = active & !state_diff;
                    if !converged.is_zero() {
                        let after = t - cycle;
                        converged.for_each_lane(|lane| {
                            effects[chunk[lane]] = if after == 1 {
                                FaultEffect::MaskedWithinOneCycle
                            } else {
                                FaultEffect::SilentRecovery { after }
                            };
                        });
                        active &= !converged;
                    }
                }
                if active.is_zero() {
                    break;
                }
                wide.tick();
            }
            // Lanes still active at the horizon never re-converged: Latent,
            // which `effects` was initialized with.
        }
    }
    effects
}

/// The checkpointed scalar engine behind [`classify_points`]: one
/// incremental golden run captures a [`mate_sim::TestbenchCheckpoint`] at
/// every distinct injection cycle, then each point restores its checkpoint
/// into a reusable work testbench instead of replaying cycles `0..c`.
fn classify_points_checkpoint(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Vec<FaultEffect> {
    let needed: std::collections::BTreeSet<usize> = points.iter().map(|p| p.cycle).collect();
    let mut checkpoints = BTreeMap::new();
    if let Some(&last) = needed.iter().next_back() {
        let mut gtb = harness.testbench();
        for c in 0..=last {
            if needed.contains(&c) {
                // State at the *start* of cycle `c`: captured before the
                // testbench steps through it.
                checkpoints.insert(c, gtb.checkpoint());
            }
            if c < last {
                gtb.step();
            }
        }
    }
    let mut work = harness.testbench();
    points
        .iter()
        .map(|&p| {
            work.restore(&checkpoints[&p.cycle]);
            work.sim_mut().flip_ff(p.ff);
            classify(&mut work, golden, p.cycle)
        })
        .collect()
}

/// Injects a *simultaneous* multi-bit SEU (all points in the same cycle)
/// and classifies it against `golden` — the fault model of the paper's
/// Section 6.2.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if the points lie in different cycles,
/// no point is given, or the cycle lies beyond the golden trace.
pub fn inject_multi(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Result<FaultEffect, MateError> {
    let Some(first) = points.first() else {
        return Err(MateError::campaign("need at least one fault point"));
    };
    let cycle = first.cycle;
    if points.iter().any(|p| p.cycle != cycle) {
        return Err(MateError::campaign(
            "multi-bit upsets are simultaneous: all points must share one cycle",
        ));
    }
    let horizon = golden.trace.num_cycles();
    if cycle >= horizon {
        return Err(MateError::campaign(format!(
            "injection cycle {cycle} beyond golden trace of {horizon} cycles"
        )));
    }
    let mut tb = harness.testbench();
    for _ in 0..cycle {
        tb.step();
    }
    for point in points {
        tb.sim_mut().flip_ff(point.ff);
    }
    Ok(classify(&mut tb, golden, cycle))
}

/// Injects an upset that *holds* for `hold_cycles` cycles: the flip-flop is
/// forced to the complement of its golden value at the start of every
/// affected cycle (an SEU "that holds more than one cycle", Section 6.2).
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if `hold_cycles` is zero or the affected
/// window leaves the golden trace.
pub fn inject_persistent(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    point: FaultPoint,
    hold_cycles: usize,
) -> Result<FaultEffect, MateError> {
    if hold_cycles == 0 {
        return Err(MateError::campaign(
            "upset must hold for at least one cycle",
        ));
    }
    let horizon = golden.trace.num_cycles();
    if point.cycle + hold_cycles > horizon {
        return Err(MateError::campaign(format!(
            "persistent upset (cycle {} + hold {hold_cycles}) leaves the golden trace of {horizon} cycles",
            point.cycle
        )));
    }
    let mut tb = harness.testbench();
    for _ in 0..point.cycle {
        tb.step();
    }
    let mut state_equal_at: Option<usize> = None;
    let mut diverged_again = false;
    for cycle in point.cycle..horizon {
        if cycle < point.cycle + hold_cycles {
            // Force the complement of the golden value for this cycle.
            let sim = tb.sim_mut();
            let want = !golden.trace.value(cycle, point.wire);
            if sim.value(point.wire) != want {
                sim.flip_ff(point.ff);
            }
        }
        let mut outputs_ok = true;
        let mut state_ok = true;
        tb.step_observed(|sim| {
            for &net in &golden.output_nets {
                if sim.value(net) != golden.trace.value(cycle, net) {
                    outputs_ok = false;
                    break;
                }
            }
            for &net in &golden.state_nets {
                if sim.value(net) != golden.trace.value(cycle, net) {
                    state_ok = false;
                    break;
                }
            }
        });
        if !outputs_ok {
            return Ok(FaultEffect::OutputFailure {
                after: cycle - point.cycle,
            });
        }
        if cycle > point.cycle {
            if state_ok {
                if state_equal_at.is_none() {
                    state_equal_at = Some(cycle - point.cycle);
                }
            } else if state_equal_at.is_some() && cycle >= point.cycle + hold_cycles {
                diverged_again = true;
                state_equal_at = None;
            } else if cycle < point.cycle + hold_cycles {
                state_equal_at = None;
            }
        }
    }
    Ok(match state_equal_at {
        Some(1) if !diverged_again => FaultEffect::MaskedWithinOneCycle,
        Some(after) => FaultEffect::SilentRecovery { after },
        None => FaultEffect::Latent,
    })
}

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of cycles to run (the golden trace length).
    pub cycles: usize,
    /// Inject only a sample of this many fault points (`None` = exhaustive).
    pub sample: Option<usize>,
    /// Seed for sampling.
    pub seed: u64,
    /// Worker threads for [`run_campaign_wide`]; `0` uses all available
    /// cores (the [`crate::SearchConfig`]-style convention).  Results are
    /// bit-identical for every thread count.
    pub threads: usize,
    /// Lane width of the batched engine (scenarios per simulation pass).
    /// Results are bit-identical for every width.
    pub lanes: LaneWidth,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            cycles: 64,
            sample: None,
            seed: 0,
            threads: 0,
            lanes: LaneWidth::default(),
        }
    }
}

/// The outcome of a whole campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    /// Every injected point with its classified effect.
    pub records: Vec<(FaultPoint, FaultEffect)>,
}

impl CampaignResult {
    /// Number of experiments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no experiment ran.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Histogram of effects (stable order).
    pub fn histogram(&self) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for (_, effect) in &self.records {
            let key = match effect {
                FaultEffect::MaskedWithinOneCycle => "masked-1-cycle",
                FaultEffect::SilentRecovery { .. } => "silent-recovery",
                FaultEffect::Latent => "latent",
                FaultEffect::OutputFailure { .. } => "output-failure",
            };
            *h.entry(key.to_owned()).or_insert(0) += 1;
        }
        h
    }

    /// Fraction of experiments masked within one cycle — the campaign-side
    /// ground truth the MATE prune fraction must stay below.
    pub fn masked_one_cycle_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|(_, e)| e.is_masked_one_cycle())
            .count() as f64
            / self.records.len() as f64
    }
}

/// Runs a full (or sampled) injection campaign over `space`.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] when an injection is invalid (cannot
/// happen for points drawn from `space` with an in-range cycle filter, but
/// propagated for API uniformity).
pub fn run_campaign(
    harness: &dyn DesignHarness,
    space: &FaultSpace,
    config: &CampaignConfig,
) -> Result<CampaignResult, MateError> {
    // One extra golden cycle so an injection at the last campaign cycle
    // still has a `t+1` state to be judged against.
    let golden = golden_run(harness, config.cycles + 1);
    let points: Vec<FaultPoint> = match config.sample {
        Some(count) => space.sample(count, config.seed),
        None => space.iter().collect(),
    };
    let mut result = CampaignResult::default();
    for point in points {
        if point.cycle >= config.cycles {
            continue;
        }
        let effect = inject(harness, &golden, point)?;
        result.records.push((point, effect));
    }
    Ok(result)
}

/// Resolves a `threads` setting (`0` = all cores) against the work size.
fn effective_threads(threads: usize, points: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    t.min(points).max(1)
}

/// Runs a full (or sampled) injection campaign over `space` on the batched
/// engine: identical records to [`run_campaign`], at up to
/// [`CampaignConfig::lanes`] fault scenarios per simulation via
/// [`classify_points_with`], sharded over [`CampaignConfig::threads`]
/// worker threads (threads × lanes concurrent fault scenarios).
///
/// Each thread classifies one contiguous chunk of the point list into its
/// slice of the result buffer, so the records come back in the original
/// point order and are bit-identical for every thread count — including the
/// single-threaded path, which skips thread spawning entirely.
/// # Errors
///
/// Returns [`MateError::Campaign`] when an injection is invalid.
pub fn run_campaign_wide(
    harness: &(dyn DesignHarness + Sync),
    space: &FaultSpace,
    config: &CampaignConfig,
) -> Result<CampaignResult, MateError> {
    let golden = golden_run(harness, config.cycles + 1);
    let points: Vec<FaultPoint> = match config.sample {
        Some(count) => space.sample(count, config.seed),
        None => space.iter().collect(),
    }
    .into_iter()
    .filter(|p| p.cycle < config.cycles)
    .collect();
    let threads = effective_threads(config.threads, points.len());
    let effects = if threads <= 1 {
        classify_points_with(harness, &golden, &points, config.lanes)?
    } else {
        let chunk = points.len().div_ceil(threads);
        let mut shards: Vec<Result<Vec<FaultEffect>, MateError>> =
            points.chunks(chunk).map(|_| Ok(Vec::new())).collect();
        let golden = &golden;
        let lanes = config.lanes;
        std::thread::scope(|scope| {
            for (pts, out) in points.chunks(chunk).zip(shards.iter_mut()) {
                scope.spawn(move || {
                    *out = classify_points_with(harness, golden, pts, lanes);
                });
            }
        });
        let mut effects = Vec::with_capacity(points.len());
        for shard in shards {
            effects.extend(shard?);
        }
        effects
    };
    Ok(CampaignResult {
        records: points.into_iter().zip(effects).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StimulusHarness;
    use crate::space::FaultSpace;
    use mate_netlist::examples::{counter, tmr_register};

    #[test]
    fn counter_bit_flip_is_persistent_but_silent_only_if_unobserved() {
        // Counter bits are primary outputs: every flip is an immediate
        // output failure.
        let (n, topo) = counter(3);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true]);
        let golden = golden_run(&harness, 10);
        let ff0 = harness.topology().seq_cells()[0];
        let wire = harness.netlist().cell(ff0).output();
        let effect = inject(
            &harness,
            &golden,
            FaultPoint {
                ff: ff0,
                wire,
                cycle: 3,
            },
        )
        .unwrap();
        assert_eq!(effect, FaultEffect::OutputFailure { after: 0 });
    }

    #[test]
    fn tmr_flip_is_masked_when_voting() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        // Load 1 in cycle 0, vote afterwards.
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false])
            .drive(din, vec![true]);
        let golden = golden_run(&harness, 8);
        let ff1 = harness.topology().seq_cells()[1];
        let wire = harness.netlist().cell(ff1).output();
        let effect = inject(
            &harness,
            &golden,
            FaultPoint {
                ff: ff1,
                wire,
                cycle: 3,
            },
        )
        .unwrap();
        assert_eq!(effect, FaultEffect::MaskedWithinOneCycle);
    }

    #[test]
    fn tmr_flip_during_load_is_also_masked() {
        // While load=1 every replica reloads from din, so a flipped replica
        // is overwritten; the vote output of 2-of-3 still reads golden.
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true])
            .drive(din, vec![true]);
        let golden = golden_run(&harness, 6);
        let ff2 = harness.topology().seq_cells()[2];
        let wire = harness.netlist().cell(ff2).output();
        let effect = inject(
            &harness,
            &golden,
            FaultPoint {
                ff: ff2,
                wire,
                cycle: 2,
            },
        )
        .unwrap();
        assert_eq!(effect, FaultEffect::MaskedWithinOneCycle);
    }

    #[test]
    fn campaign_histogram_counts_everything() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false])
            .drive(din, vec![true]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 6);
        let result = run_campaign(
            &harness,
            &space,
            &CampaignConfig {
                cycles: 6,
                sample: None,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.len(), space.len());
        let histogram = result.histogram();
        let total: usize = histogram.values().sum();
        assert_eq!(total, result.len());
        // TMR masks every single-replica fault.
        assert_eq!(result.masked_one_cycle_fraction(), 1.0);
    }

    #[test]
    fn sampled_campaign_is_subset() {
        let (n, topo) = counter(4);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 12);
        let result = run_campaign(
            &harness,
            &space,
            &CampaignConfig {
                cycles: 12,
                sample: Some(9),
                seed: 7,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.len(), 9);
    }

    #[test]
    fn threaded_campaign_matches_single_thread() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false, false, true])
            .drive(din, vec![true, false]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 10);
        let base = CampaignConfig {
            cycles: 10,
            sample: None,
            seed: 0,
            threads: 1,
            lanes: LaneWidth::W64,
        };
        let single = run_campaign_wide(&harness, &space, &base).unwrap();
        for threads in [0usize, 2, 4, 7, 1000] {
            for lanes in LaneWidth::all() {
                let sharded = run_campaign_wide(
                    &harness,
                    &space,
                    &CampaignConfig {
                        threads,
                        lanes,
                        ..base
                    },
                )
                .unwrap();
                assert_eq!(
                    single.records, sharded.records,
                    "{threads} threads, {lanes} lanes"
                );
            }
        }
    }

    #[test]
    fn lane_widths_match_scalar_reference() {
        // The block engines must classify bit-identically to the scalar
        // `inject` path, including partially filled tail blocks.
        let (n, topo) = counter(5);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true, true, false]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 20);
        let golden = golden_run(&harness, 21);
        let points: Vec<FaultPoint> = space.iter().collect();
        let scalar: Vec<FaultEffect> = points
            .iter()
            .map(|&p| inject(&harness, &golden, p).unwrap())
            .collect();
        for lanes in LaneWidth::all() {
            let block = classify_points_with(&harness, &golden, &points, lanes).unwrap();
            assert_eq!(scalar, block, "{lanes} lanes");
        }
    }

    #[test]
    fn effective_threads_clamps_to_work() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(4, 100), 4);
        assert_eq!(effective_threads(3, 0), 1);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn effect_display_and_predicates() {
        assert!(FaultEffect::MaskedWithinOneCycle.is_masked_one_cycle());
        assert!(FaultEffect::Latent.is_silent());
        assert!(!FaultEffect::OutputFailure { after: 2 }.is_silent());
        assert!(format!("{}", FaultEffect::SilentRecovery { after: 3 }).contains("3"));
    }
}
