//! Injection campaigns and outcome classification.
//!
//! Wide-capable workloads are served by two batched, bit-identical engines
//! selected through [`CampaignEngine`]: the full-settle [`BlockSimulator`]
//! reference and the default event-driven [`DeltaSimulator`], whose work
//! per cycle scales with fault-cone activity instead of netlist size.

use std::collections::BTreeMap;
use std::fmt;

use mate_netlist::{LaneBlock, MateError, NetId, Netlist, Topology, B256, B512};
use mate_sim::{BlockSimulator, DeltaSimulator, TransposedTrace, WaveTrace};

use crate::collapse::{CampaignPruning, PruningStats};
use crate::harness::DesignHarness;
use crate::space::{FaultPoint, FaultSpace};

/// The observable effect of one injected fault, judged against the golden
/// run over the campaign horizon.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultEffect {
    /// Outputs stayed golden during the injection cycle and the full state
    /// matched the golden state in the next cycle — the fault class MATEs
    /// prune.
    MaskedWithinOneCycle,
    /// Outputs never diverged and the state re-converged later (at the
    /// recorded cycle offset); benign, but beyond the single-cycle horizon.
    SilentRecovery {
        /// Cycles after injection until the state matched the golden run.
        after: usize,
    },
    /// Outputs never diverged within the horizon but the state never
    /// re-converged: the fault is still latent.
    Latent,
    /// A primary output diverged from the golden run.
    OutputFailure {
        /// Cycles after injection until the first wrong output.
        after: usize,
    },
}

impl FaultEffect {
    /// `true` for the two classes that produced no wrong output.
    pub fn is_silent(self) -> bool {
        !matches!(self, FaultEffect::OutputFailure { .. })
    }

    /// `true` iff the fault was masked within one clock cycle — the
    /// sufficient benign-ness criterion of the paper's Section 2.
    pub fn is_masked_one_cycle(self) -> bool {
        matches!(self, FaultEffect::MaskedWithinOneCycle)
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MaskedWithinOneCycle => write!(f, "masked within one cycle"),
            Self::SilentRecovery { after } => write!(f, "silent recovery after {after} cycles"),
            Self::Latent => write!(f, "latent state corruption"),
            Self::OutputFailure { after } => write!(f, "output failure after {after} cycles"),
        }
    }
}

/// Records the golden (fault-free) execution.
#[derive(Clone, Debug)]
pub struct GoldenRun {
    /// The fault-free trace.
    pub trace: WaveTrace,
    /// Flip-flop output nets (the architectural state vector).
    pub state_nets: Vec<NetId>,
    /// Primary output nets.
    pub output_nets: Vec<NetId>,
}

/// Runs the workload fault-free for `cycles` cycles.
pub fn golden_run(harness: &dyn DesignHarness, cycles: usize) -> GoldenRun {
    let trace = harness.testbench().run(cycles);
    GoldenRun {
        trace,
        state_nets: state_nets(harness.netlist(), harness.topology()),
        output_nets: harness.netlist().outputs().to_vec(),
    }
}

fn state_nets(netlist: &Netlist, topo: &Topology) -> Vec<NetId> {
    topo.seq_cells()
        .iter()
        .map(|&ff| netlist.cell(ff).output())
        .collect()
}

/// Injects a single SEU at `point` and classifies its effect against
/// `golden` over the remaining horizon.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if `point.cycle` lies beyond the golden
/// trace.
pub fn inject(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    point: FaultPoint,
) -> Result<FaultEffect, MateError> {
    let horizon = golden.trace.num_cycles();
    if point.cycle >= horizon {
        return Err(MateError::campaign(format!(
            "injection cycle {} beyond golden trace of {horizon} cycles",
            point.cycle
        )));
    }
    let mut tb = harness.testbench();

    // Advance fault-free to the injection cycle.
    for _ in 0..point.cycle {
        tb.step();
    }
    // Flip the victim flip-flop; its faulty value is live during this cycle.
    tb.sim_mut().flip_ff(point.ff);
    Ok(classify(&mut tb, golden, point.cycle))
}

/// Runs the remaining horizon and classifies the divergence from golden.
fn classify(
    tb: &mut mate_sim::Testbench<'_>,
    golden: &GoldenRun,
    injected_at: usize,
) -> FaultEffect {
    let horizon = golden.trace.num_cycles();
    let mut state_equal_at: Option<usize> = None;
    let mut diverged_again = false;
    for cycle in injected_at..horizon {
        let mut outputs_ok = true;
        let mut state_ok = true;
        tb.step_observed(|sim| {
            for &net in &golden.output_nets {
                if sim.value(net) != golden.trace.value(cycle, net) {
                    outputs_ok = false;
                    break;
                }
            }
            for &net in &golden.state_nets {
                if sim.value(net) != golden.trace.value(cycle, net) {
                    state_ok = false;
                    break;
                }
            }
        });
        if !outputs_ok {
            return FaultEffect::OutputFailure {
                after: cycle - injected_at,
            };
        }
        if cycle > injected_at {
            if state_ok {
                if state_equal_at.is_none() {
                    state_equal_at = Some(cycle - injected_at);
                }
            } else if state_equal_at.is_some() {
                // Re-diverged after apparent convergence (possible only via
                // diverged external device state, e.g. corrupted memory).
                diverged_again = true;
                state_equal_at = None;
            }
        }
    }
    match state_equal_at {
        Some(1) if !diverged_again => FaultEffect::MaskedWithinOneCycle,
        Some(after) => FaultEffect::SilentRecovery { after },
        None => FaultEffect::Latent,
    }
}

/// Lane width of the batched campaign engine: how many fault scenarios one
/// [`BlockSimulator`] pass carries.
///
/// Every width produces bit-identical [`FaultEffect`] classifications; the
/// choice only trades register pressure against scenarios per pass.  The
/// default is [`LaneWidth::W256`] (four words per net, the AVX2-register
/// shape).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LaneWidth {
    /// 64 scenarios per pass (one `u64` per net) — the baseline engine.
    W64,
    /// 256 scenarios per pass (a [`B256`] block per net).
    #[default]
    W256,
    /// 512 scenarios per pass (a [`B512`] block per net).
    W512,
}

impl LaneWidth {
    /// Number of fault scenarios per simulation pass.
    pub fn lanes(self) -> usize {
        match self {
            Self::W64 => 64,
            Self::W256 => 256,
            Self::W512 => 512,
        }
    }

    /// All supported widths, narrowest first (for equivalence sweeps).
    pub fn all() -> [Self; 3] {
        [Self::W64, Self::W256, Self::W512]
    }
}

impl fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lanes())
    }
}

/// Which batched engine classifies wide-capable workloads.
///
/// All choices produce bit-identical [`FaultEffect`] classifications for
/// every lane width and thread count (enforced by the campaign proptests);
/// the choice only trades work per cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CampaignEngine {
    /// The full-settle [`BlockSimulator`] engine: every combinational cell
    /// re-evaluated every cycle, convergence detected by XOR-scanning the
    /// observed nets.  Kept as the asserted-identical reference.
    FullSettle,
    /// The event-driven [`DeltaSimulator`] engine: lanes carry XOR-deltas
    /// against the golden trace, only the dirty fan-out frontier is
    /// re-evaluated, and convergence falls out of the frontier emptying.
    /// Work scales with fault-cone activity, not netlist size.
    Differential,
    /// Picks per design (the default): [`CampaignEngine::FullSettle`] for
    /// small combinational clouds, where the full sweep is a handful of
    /// dense runs and the differential engine's frontier bookkeeping costs
    /// more than it saves (the honest `figure1b` regression in
    /// `BENCH_campaign.json`), [`CampaignEngine::Differential`] everywhere
    /// else.  Trivially bit-identical: it only ever *selects* one of the
    /// two engines, never mixes them within a run.
    #[default]
    Auto,
}

/// [`CampaignEngine::Auto`] threshold: designs with fewer combinational
/// cells than this settle faster in full — below it the whole cloud fits a
/// few cache lines and dense sweeps beat frontier bookkeeping.
const AUTO_FULL_SETTLE_MAX_CELLS: usize = 128;

impl CampaignEngine {
    /// The two concrete engines, reference first (for equivalence sweeps).
    /// `Auto` is not listed: it always resolves to one of these.
    pub fn all() -> [Self; 2] {
        [Self::FullSettle, Self::Differential]
    }

    /// Resolves `Auto` against a design (concrete engines pass through):
    /// full-settle below [`AUTO_FULL_SETTLE_MAX_CELLS`] combinational
    /// cells, differential at or above.  Deterministic in the design alone,
    /// so every thread shard of one campaign resolves identically.
    pub fn resolve(self, topo: &Topology) -> Self {
        match self {
            Self::Auto if topo.comb_order().len() < AUTO_FULL_SETTLE_MAX_CELLS => Self::FullSettle,
            Self::Auto => Self::Differential,
            concrete => concrete,
        }
    }
}

impl fmt::Display for CampaignEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FullSettle => write!(f, "full-settle"),
            Self::Differential => write!(f, "differential"),
            Self::Auto => write!(f, "auto"),
        }
    }
}

/// Classifies a batch of fault points against `golden` with the default
/// lane width — see [`classify_points_with`].
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if any injection cycle lies beyond the
/// golden trace.
pub fn classify_points(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Result<Vec<FaultEffect>, MateError> {
    classify_points_with(harness, golden, points, LaneWidth::default())
}

/// Classifies a batch of fault points against `golden` with the default
/// engine — see [`classify_points_engine`].
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if any injection cycle lies beyond the
/// golden trace.
pub fn classify_points_with(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
    lanes: LaneWidth,
) -> Result<Vec<FaultEffect>, MateError> {
    classify_points_engine(harness, golden, points, lanes, CampaignEngine::default())
}

/// Classifies a batch of fault points against `golden`, choosing the
/// fastest sound path the harness supports:
///
/// 1. **Wide** — no external devices and pure stimuli: up to
///    [`LaneWidth::lanes`] fault points per injection cycle are packed into
///    the lanes of a batched engine seeded directly from the golden trace
///    at the injection cycle, then classified in lock-step with per-lane
///    early retirement.  `engine` picks between the event-driven
///    [`CampaignEngine::Differential`] default and the full-settle
///    [`CampaignEngine::FullSettle`] reference.
/// 2. **Checkpointed scalar** — all devices snapshotable and pure stimuli:
///    one incremental golden run captures a checkpoint at every injection
///    cycle; each faulty run is seeded by restore instead of replaying the
///    warm-up prefix.
/// 3. **Scalar fallback** — anything else: one [`inject`] per point.
///
/// All paths — every engine and lane width included — produce bit-identical
/// [`FaultEffect`] classifications.  Results are returned in the order of
/// `points`.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if any injection cycle lies beyond the
/// golden trace.
pub fn classify_points_engine(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
    lanes: LaneWidth,
    engine: CampaignEngine,
) -> Result<Vec<FaultEffect>, MateError> {
    let horizon = golden.trace.num_cycles();
    if let Some(p) = points.iter().find(|p| p.cycle >= horizon) {
        return Err(MateError::campaign(format!(
            "injection cycle {} beyond golden trace of {horizon} cycles",
            p.cycle
        )));
    }
    let engine = engine.resolve(harness.topology());
    let probe = harness.testbench();
    Ok(if probe.can_run_wide() {
        match lanes {
            LaneWidth::W64 => classify_points_wide_concrete::<u64>(harness, golden, points, engine),
            LaneWidth::W256 => {
                classify_points_wide_concrete::<B256>(harness, golden, points, engine)
            }
            LaneWidth::W512 => {
                classify_points_wide_concrete::<B512>(harness, golden, points, engine)
            }
        }
    } else if probe.can_checkpoint() {
        classify_points_checkpoint(harness, golden, points)
    } else {
        let mut effects = Vec::with_capacity(points.len());
        for &p in points {
            effects.push(inject(harness, golden, p)?);
        }
        effects
    })
}

/// Classifies a batch of fault points with optional fault-space collapsing
/// (see [`crate::collapse`]): the full-featured entry behind
/// [`run_campaign_wide`] and [`crate::validate_mates`].
///
/// With [`CampaignPruning::Collapse`] on a wide-capable harness, points are
/// first grouped into temporal equivalence classes over golden-trace
/// cone-support fingerprints and one representative per class is probed for
/// one cycle; only what the probe window cannot decide is simulated in
/// full.  The returned [`PruningStats`] account for the saved work.  Every
/// pruning mode, engine, lane width, and thread count produces bit-identical
/// [`FaultEffect`] classifications; checkpointed and scalar harnesses
/// cannot collapse (their per-point state is opaque to the delta prober)
/// and report unpruned stats.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if any injection cycle lies beyond the
/// golden trace.
pub fn classify_points_pruned(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
    lanes: LaneWidth,
    engine: CampaignEngine,
    pruning: CampaignPruning,
) -> Result<(Vec<FaultEffect>, PruningStats), MateError> {
    let horizon = golden.trace.num_cycles();
    if let Some(p) = points.iter().find(|p| p.cycle >= horizon) {
        return Err(MateError::campaign(format!(
            "injection cycle {} beyond golden trace of {horizon} cycles",
            p.cycle
        )));
    }
    if pruning == CampaignPruning::Collapse && harness.testbench().can_run_wide() {
        let engine = engine.resolve(harness.topology());
        Ok(crate::collapse::classify_points_collapse_width(
            harness, golden, points, lanes, engine,
        ))
    } else {
        let effects = classify_points_engine(harness, golden, points, lanes, engine)?;
        let stats = PruningStats::unpruned(points.len());
        Ok((effects, stats))
    }
}

/// The wide path at one concrete lane width: dispatches a *resolved*
/// engine ([`CampaignEngine::Auto`] defensively maps to differential).
/// Shared by [`classify_points_engine`] and the collapsing fallback.
pub(crate) fn classify_points_wide_concrete<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
    engine: CampaignEngine,
) -> Vec<FaultEffect> {
    match engine {
        CampaignEngine::FullSettle => classify_points_block::<B>(harness, golden, points),
        CampaignEngine::Differential | CampaignEngine::Auto => {
            classify_points_differential::<B>(harness, golden, points)
        }
    }
}

/// The wide multi-SEU path at one concrete lane width, shared by
/// [`classify_multi_points`] and the collapsing fallback.
pub(crate) fn classify_multi_wide_concrete<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    sets: &[Vec<FaultPoint>],
) -> Vec<FaultEffect> {
    classify_multi_differential::<B>(harness, golden, sets)
}

/// Per-net observation flags for the classification scans.  The bit
/// positions match the accumulator indices of
/// [`DeltaSimulator::scan_flagged`].
pub(crate) const OBS_OUTPUT: u8 = 1;
pub(crate) const OBS_STATE: u8 = 2;
/// Flip-flop D-input nets: a nonzero delta here persists into the next
/// cycle's state.  Used by the collapsing prober, not the retire loop.
pub(crate) const OBS_NEXT: u8 = 4;

pub(crate) fn observed_flags(num_nets: usize, golden: &GoldenRun) -> Vec<u8> {
    let mut flags = vec![0u8; num_nets];
    for &net in &golden.output_nets {
        flags[net.index()] |= OBS_OUTPUT;
    }
    for &net in &golden.state_nets {
        flags[net.index()] |= OBS_STATE;
    }
    flags
}

/// Per-cycle partition of the observed nets by their golden value, so the
/// block classification loops need neither a per-net [`LaneBlock::splat`]
/// nor a per-net golden bit probe: a lane diverges on a golden-one net iff
/// its value bit is 0 (`diff |= !v`), on a golden-zero net iff it is 1
/// (`diff |= v`).
struct GoldenPartition {
    out_ones: Vec<Vec<u32>>,
    out_zeros: Vec<Vec<u32>>,
    state_ones: Vec<Vec<u32>>,
    state_zeros: Vec<Vec<u32>>,
}

impl GoldenPartition {
    fn build(golden: &GoldenRun, transposed: &TransposedTrace) -> Self {
        let horizon = golden.trace.num_cycles();
        let mut p = Self {
            out_ones: vec![Vec::new(); horizon],
            out_zeros: vec![Vec::new(); horizon],
            state_ones: vec![Vec::new(); horizon],
            state_zeros: vec![Vec::new(); horizon],
        };
        for t in 0..horizon {
            let view = transposed.cycle_view(t);
            for &net in &golden.output_nets {
                let bucket = if view.value(net.index()) {
                    &mut p.out_ones[t]
                } else {
                    &mut p.out_zeros[t]
                };
                bucket.push(net.index() as u32);
            }
            for &net in &golden.state_nets {
                let bucket = if view.value(net.index()) {
                    &mut p.state_ones[t]
                } else {
                    &mut p.state_zeros[t]
                };
                bucket.push(net.index() as u32);
            }
        }
        p
    }
}

/// The block-lane engine behind [`classify_points_with`]: groups points by
/// injection cycle, packs up to `B::WIDTH` of them into one lane-parallel
/// run seeded from the golden trace, and compares every lane against golden
/// with block XORs.
///
/// Early retirement is sound here because the wide path requires a harness
/// without devices: once a lane's full flip-flop state re-converges to the
/// golden state (inputs are golden by construction), *every* net of that
/// lane equals golden in all later cycles, so its classification is already
/// decided — `OutputFailure` can no longer occur and the recorded
/// convergence offset is final, exactly as the scalar classifier would
/// conclude after running out the horizon.
fn classify_points_block<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Vec<FaultEffect> {
    let horizon = golden.trace.num_cycles();
    // The testbench is used purely as a stimulus source; pure waves may be
    // sampled at arbitrary cycles.
    let mut stim = harness.testbench();
    let mut wide: BlockSimulator<'_, B> =
        BlockSimulator::new(harness.netlist(), harness.topology());
    // Golden comparisons are precomputed per cycle: the observed nets are
    // partitioned by golden value once, outside the chunk loop, so the
    // per-chunk classification is pure block ops — no per-net splat, no
    // per-net trace probe.  (Splatting every observed net per cycle per
    // chunk was what made the 256/512-lane backends slower than 64.)
    let transposed = TransposedTrace::from_trace(&golden.trace);
    let part = GoldenPartition::build(golden, &transposed);

    let mut by_cycle: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, p) in points.iter().enumerate() {
        by_cycle.entry(p.cycle).or_default().push(idx);
    }

    let mut effects = vec![FaultEffect::Latent; points.len()];
    for (&cycle, indices) in &by_cycle {
        for chunk in indices.chunks(B::WIDTH) {
            wide.load_from_trace(&golden.trace, cycle);
            for (lane, &idx) in chunk.iter().enumerate() {
                wide.flip_ff(points[idx].ff, lane);
            }
            let mut active = B::low_lanes(chunk.len());
            for t in cycle..horizon {
                stim.apply_stimuli_block(&mut wide, t as u64);
                wide.settle();
                // Outputs first, mirroring the scalar classifier's priority.
                let mut out_diff = B::ZERO;
                for &net in &part.out_ones[t] {
                    out_diff |= !wide.value_block(NetId::from_index(net as usize));
                }
                for &net in &part.out_zeros[t] {
                    out_diff |= wide.value_block(NetId::from_index(net as usize));
                }
                let failed = out_diff & active;
                if !failed.is_zero() {
                    failed.for_each_lane(|lane| {
                        effects[chunk[lane]] = FaultEffect::OutputFailure { after: t - cycle };
                    });
                    active &= !failed;
                }
                if t > cycle && !active.is_zero() {
                    let mut state_diff = B::ZERO;
                    for &net in &part.state_ones[t] {
                        state_diff |= !wide.value_block(NetId::from_index(net as usize));
                    }
                    for &net in &part.state_zeros[t] {
                        state_diff |= wide.value_block(NetId::from_index(net as usize));
                    }
                    let converged = active & !state_diff;
                    if !converged.is_zero() {
                        let after = t - cycle;
                        converged.for_each_lane(|lane| {
                            effects[chunk[lane]] = if after == 1 {
                                FaultEffect::MaskedWithinOneCycle
                            } else {
                                FaultEffect::SilentRecovery { after }
                            };
                        });
                        active &= !converged;
                    }
                }
                if active.is_zero() {
                    break;
                }
                wide.tick();
            }
            // Lanes still active at the horizon never re-converged: Latent,
            // which `effects` was initialized with.
        }
    }
    effects
}

/// The event-driven engine behind [`classify_points_engine`]: like
/// [`classify_points_block`] in grouping and retirement, but the chunk runs
/// on a [`DeltaSimulator`] — campaign stimuli equal the golden stimuli by
/// construction, so input deltas are identically zero and only the dirty
/// fan-out frontier of each fault cone is ever re-evaluated.  The
/// classification scan walks the simulator's nonzero-delta set rather than
/// all observed nets: any net absent from it matches golden in every lane.
///
/// Early retirement is sound for the same reason as in the full-settle
/// engine; convergence here is simply the lane's bits vanishing from every
/// delta, which the frontier detects without a state scan.
fn classify_points_differential<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Vec<FaultEffect> {
    let horizon = golden.trace.num_cycles();
    let transposed = TransposedTrace::from_trace(&golden.trace);
    let flags = observed_flags(harness.netlist().num_nets(), golden);
    let mut delta: DeltaSimulator<'_, B> =
        DeltaSimulator::new(harness.netlist(), harness.topology());

    let mut by_cycle: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, p) in points.iter().enumerate() {
        by_cycle.entry(p.cycle).or_default().push(idx);
    }

    let mut effects = vec![FaultEffect::Latent; points.len()];
    for (&cycle, indices) in &by_cycle {
        for chunk in indices.chunks(B::WIDTH) {
            delta.begin(cycle);
            for (lane, &idx) in chunk.iter().enumerate() {
                delta.flip_ff(points[idx].ff, lane);
            }
            retire_chunk_differential(
                &mut delta,
                &transposed,
                &flags,
                cycle,
                horizon,
                B::low_lanes(chunk.len()),
                |lane, effect| effects[chunk[lane]] = effect,
            );
        }
    }
    effects
}

/// Runs one lane chunk of the differential engine from `cycle` to the
/// horizon, calling `retire(lane, effect)` as lanes classify.  Lanes still
/// active at the horizon are `Latent` and are *not* reported.
fn retire_chunk_differential<B: LaneBlock>(
    delta: &mut DeltaSimulator<'_, B>,
    transposed: &TransposedTrace,
    flags: &[u8],
    cycle: usize,
    horizon: usize,
    mut active: B,
    mut retire: impl FnMut(usize, FaultEffect),
) {
    for t in cycle..horizon {
        delta.settle(transposed);
        let before = active;
        // One scan of the (small) nonzero-delta set yields both divergence
        // masks; every other net equals golden in all lanes.
        let [out_diff, state_diff, _] = delta.scan_flagged(flags);
        // Outputs first, mirroring the scalar classifier's priority.
        let failed = out_diff & active;
        if !failed.is_zero() {
            failed.for_each_lane(|lane| {
                retire(lane, FaultEffect::OutputFailure { after: t - cycle });
            });
            active &= !failed;
        }
        if t > cycle && !active.is_zero() {
            let converged = active & !state_diff;
            if !converged.is_zero() {
                let after = t - cycle;
                converged.for_each_lane(|lane| {
                    retire(
                        lane,
                        if after == 1 {
                            FaultEffect::MaskedWithinOneCycle
                        } else {
                            FaultEffect::SilentRecovery { after }
                        },
                    );
                });
                active &= !converged;
            }
        }
        if active.is_zero() {
            break;
        }
        if active != before {
            // Retired lanes' deltas are dead weight (every classification
            // read is `& active`-masked): dropping them here shrinks the
            // dirty frontier to the cones of the undecided lanes, instead
            // of dragging the classified faults' cones to the horizon.
            delta.retain_lanes(active);
        }
        delta.tick();
    }
}

/// The checkpointed scalar engine behind [`classify_points`]: one
/// incremental golden run captures a [`mate_sim::TestbenchCheckpoint`] at
/// every distinct injection cycle, then each point restores its checkpoint
/// into a reusable work testbench instead of replaying cycles `0..c`.
fn classify_points_checkpoint(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Vec<FaultEffect> {
    let needed: std::collections::BTreeSet<usize> = points.iter().map(|p| p.cycle).collect();
    let mut checkpoints = BTreeMap::new();
    if let Some(&last) = needed.iter().next_back() {
        let mut gtb = harness.testbench();
        for c in 0..=last {
            if needed.contains(&c) {
                // State at the *start* of cycle `c`: captured before the
                // testbench steps through it.
                checkpoints.insert(c, gtb.checkpoint());
            }
            if c < last {
                gtb.step();
            }
        }
    }
    let mut work = harness.testbench();
    points
        .iter()
        .map(|&p| {
            work.restore(&checkpoints[&p.cycle]);
            work.sim_mut().flip_ff(p.ff);
            classify(&mut work, golden, p.cycle)
        })
        .collect()
}

/// Injects a *simultaneous* multi-bit SEU (all points in the same cycle)
/// and classifies it against `golden` — the fault model of the paper's
/// Section 6.2.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if the points lie in different cycles,
/// no point is given, or the cycle lies beyond the golden trace.
pub fn inject_multi(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
) -> Result<FaultEffect, MateError> {
    let Some(first) = points.first() else {
        return Err(MateError::campaign("need at least one fault point"));
    };
    let cycle = first.cycle;
    if points.iter().any(|p| p.cycle != cycle) {
        return Err(MateError::campaign(
            "multi-bit upsets are simultaneous: all points must share one cycle",
        ));
    }
    let horizon = golden.trace.num_cycles();
    if cycle >= horizon {
        return Err(MateError::campaign(format!(
            "injection cycle {cycle} beyond golden trace of {horizon} cycles"
        )));
    }
    let mut tb = harness.testbench();
    for _ in 0..cycle {
        tb.step();
    }
    for point in points {
        tb.sim_mut().flip_ff(point.ff);
    }
    Ok(classify(&mut tb, golden, cycle))
}

/// Classifies a batch of simultaneous multi-bit SEU *sets* — one set per
/// lane — against `golden`: the batched counterpart of [`inject_multi`]
/// for the multi-SEU search of `mate-core`.  Wide-capable harnesses run on
/// the differential engine (up to [`LaneWidth::lanes`] whole sets per
/// pass); anything else falls back to one scalar [`inject_multi`] per set.
/// Results are returned in the order of `sets` and are bit-identical to
/// the scalar path.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if any set is empty, mixes cycles, or
/// lies beyond the golden trace.
pub fn classify_multi_points(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    sets: &[Vec<FaultPoint>],
    lanes: LaneWidth,
) -> Result<Vec<FaultEffect>, MateError> {
    let horizon = golden.trace.num_cycles();
    for set in sets {
        let Some(first) = set.first() else {
            return Err(MateError::campaign("need at least one fault point"));
        };
        if set.iter().any(|p| p.cycle != first.cycle) {
            return Err(MateError::campaign(
                "multi-bit upsets are simultaneous: all points must share one cycle",
            ));
        }
        if first.cycle >= horizon {
            return Err(MateError::campaign(format!(
                "injection cycle {} beyond golden trace of {horizon} cycles",
                first.cycle
            )));
        }
    }
    if !harness.testbench().can_run_wide() {
        return sets
            .iter()
            .map(|set| inject_multi(harness, golden, set))
            .collect();
    }
    Ok(match lanes {
        LaneWidth::W64 => classify_multi_wide_concrete::<u64>(harness, golden, sets),
        LaneWidth::W256 => classify_multi_wide_concrete::<B256>(harness, golden, sets),
        LaneWidth::W512 => classify_multi_wide_concrete::<B512>(harness, golden, sets),
    })
}

/// Classifies simultaneous multi-SEU sets with optional fault-space
/// collapsing: the multi-bit counterpart of [`classify_points_pruned`].
/// Collapsing generalizes soundly — each set becomes one worklist item
/// carrying its odd-parity flip set, the cone support unions the members'
/// cones, and everything else is the single-SEU machinery unchanged.
/// Bit-identical to [`classify_multi_points`] in every mode.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if any set is empty, mixes cycles, or
/// lies beyond the golden trace.
pub fn classify_multi_points_pruned(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    sets: &[Vec<FaultPoint>],
    lanes: LaneWidth,
    pruning: CampaignPruning,
) -> Result<(Vec<FaultEffect>, PruningStats), MateError> {
    if pruning == CampaignPruning::Off || !harness.testbench().can_run_wide() {
        let effects = classify_multi_points(harness, golden, sets, lanes)?;
        return Ok((effects, PruningStats::unpruned(sets.len())));
    }
    // Re-run the set validation of the unpruned path before collapsing.
    let horizon = golden.trace.num_cycles();
    for set in sets {
        let Some(first) = set.first() else {
            return Err(MateError::campaign("need at least one fault point"));
        };
        if set.iter().any(|p| p.cycle != first.cycle) {
            return Err(MateError::campaign(
                "multi-bit upsets are simultaneous: all points must share one cycle",
            ));
        }
        if first.cycle >= horizon {
            return Err(MateError::campaign(format!(
                "injection cycle {} beyond golden trace of {horizon} cycles",
                first.cycle
            )));
        }
    }
    Ok(crate::collapse::classify_multi_collapse_width(
        harness, golden, sets, lanes,
    ))
}

/// The lane-parallel body of [`classify_multi_points`]: identical chunking
/// to [`classify_points_differential`], except each lane carries *all*
/// flips of its set.
fn classify_multi_differential<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    sets: &[Vec<FaultPoint>],
) -> Vec<FaultEffect> {
    let horizon = golden.trace.num_cycles();
    let transposed = TransposedTrace::from_trace(&golden.trace);
    let flags = observed_flags(harness.netlist().num_nets(), golden);
    let mut delta: DeltaSimulator<'_, B> =
        DeltaSimulator::new(harness.netlist(), harness.topology());

    let mut by_cycle: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, set) in sets.iter().enumerate() {
        by_cycle.entry(set[0].cycle).or_default().push(idx);
    }

    let mut effects = vec![FaultEffect::Latent; sets.len()];
    for (&cycle, indices) in &by_cycle {
        for chunk in indices.chunks(B::WIDTH) {
            delta.begin(cycle);
            for (lane, &idx) in chunk.iter().enumerate() {
                for point in &sets[idx] {
                    delta.flip_ff(point.ff, lane);
                }
            }
            retire_chunk_differential(
                &mut delta,
                &transposed,
                &flags,
                cycle,
                horizon,
                B::low_lanes(chunk.len()),
                |lane, effect| effects[chunk[lane]] = effect,
            );
        }
    }
    effects
}

/// Injects an upset that *holds* for `hold_cycles` cycles: the flip-flop is
/// forced to the complement of its golden value at the start of every
/// affected cycle (an SEU "that holds more than one cycle", Section 6.2).
///
/// # Errors
///
/// Returns [`MateError::Campaign`] if `hold_cycles` is zero or the affected
/// window leaves the golden trace.
pub fn inject_persistent(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    point: FaultPoint,
    hold_cycles: usize,
) -> Result<FaultEffect, MateError> {
    if hold_cycles == 0 {
        return Err(MateError::campaign(
            "upset must hold for at least one cycle",
        ));
    }
    let horizon = golden.trace.num_cycles();
    if point.cycle + hold_cycles > horizon {
        return Err(MateError::campaign(format!(
            "persistent upset (cycle {} + hold {hold_cycles}) leaves the golden trace of {horizon} cycles",
            point.cycle
        )));
    }
    let mut tb = harness.testbench();
    for _ in 0..point.cycle {
        tb.step();
    }
    let mut state_equal_at: Option<usize> = None;
    let mut diverged_again = false;
    for cycle in point.cycle..horizon {
        if cycle < point.cycle + hold_cycles {
            // Force the complement of the golden value for this cycle.
            let sim = tb.sim_mut();
            let want = !golden.trace.value(cycle, point.wire);
            if sim.value(point.wire) != want {
                sim.flip_ff(point.ff);
            }
        }
        let mut outputs_ok = true;
        let mut state_ok = true;
        tb.step_observed(|sim| {
            for &net in &golden.output_nets {
                if sim.value(net) != golden.trace.value(cycle, net) {
                    outputs_ok = false;
                    break;
                }
            }
            for &net in &golden.state_nets {
                if sim.value(net) != golden.trace.value(cycle, net) {
                    state_ok = false;
                    break;
                }
            }
        });
        if !outputs_ok {
            return Ok(FaultEffect::OutputFailure {
                after: cycle - point.cycle,
            });
        }
        if cycle > point.cycle {
            if state_ok {
                if state_equal_at.is_none() {
                    state_equal_at = Some(cycle - point.cycle);
                }
            } else if state_equal_at.is_some() && cycle >= point.cycle + hold_cycles {
                diverged_again = true;
                state_equal_at = None;
            } else if cycle < point.cycle + hold_cycles {
                state_equal_at = None;
            }
        }
    }
    Ok(match state_equal_at {
        Some(1) if !diverged_again => FaultEffect::MaskedWithinOneCycle,
        Some(after) => FaultEffect::SilentRecovery { after },
        None => FaultEffect::Latent,
    })
}

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of cycles to run (the golden trace length).
    pub cycles: usize,
    /// Inject only a sample of this many fault points (`None` = exhaustive).
    pub sample: Option<usize>,
    /// Seed for sampling.
    pub seed: u64,
    /// Worker threads for [`run_campaign_wide`]; `0` uses all available
    /// cores (the [`crate::SearchConfig`]-style convention).  Results are
    /// bit-identical for every thread count.
    pub threads: usize,
    /// Lane width of the batched engine (scenarios per simulation pass).
    /// Results are bit-identical for every width.
    pub lanes: LaneWidth,
    /// Which batched engine classifies wide-capable workloads.  Results
    /// are bit-identical for every choice.
    pub engine: CampaignEngine,
    /// Whether to collapse temporally equivalent fault points before
    /// simulating (see [`crate::collapse`]).  Results are bit-identical
    /// for both modes.
    pub pruning: CampaignPruning,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            cycles: 64,
            sample: None,
            seed: 0,
            threads: 0,
            lanes: LaneWidth::default(),
            engine: CampaignEngine::default(),
            pruning: CampaignPruning::default(),
        }
    }
}

/// The outcome of a whole campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    /// Every injected point with its classified effect.
    pub records: Vec<(FaultPoint, FaultEffect)>,
    /// Collapsing work accounting, summed over thread shards.  Diagnostic
    /// only — the records are bit-identical whatever it says — and
    /// therefore not part of any artifact encoding.
    pub pruning: PruningStats,
}

impl CampaignResult {
    /// Number of experiments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no experiment ran.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Histogram of effects (stable order).
    pub fn histogram(&self) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for (_, effect) in &self.records {
            let key = match effect {
                FaultEffect::MaskedWithinOneCycle => "masked-1-cycle",
                FaultEffect::SilentRecovery { .. } => "silent-recovery",
                FaultEffect::Latent => "latent",
                FaultEffect::OutputFailure { .. } => "output-failure",
            };
            *h.entry(key.to_owned()).or_insert(0) += 1;
        }
        h
    }

    /// Fraction of experiments masked within one cycle — the campaign-side
    /// ground truth the MATE prune fraction must stay below.
    pub fn masked_one_cycle_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|(_, e)| e.is_masked_one_cycle())
            .count() as f64
            / self.records.len() as f64
    }
}

/// Runs a full (or sampled) injection campaign over `space`.
///
/// # Errors
///
/// Returns [`MateError::Campaign`] when an injection is invalid (cannot
/// happen for points drawn from `space` with an in-range cycle filter, but
/// propagated for API uniformity).
pub fn run_campaign(
    harness: &dyn DesignHarness,
    space: &FaultSpace,
    config: &CampaignConfig,
) -> Result<CampaignResult, MateError> {
    // One extra golden cycle so an injection at the last campaign cycle
    // still has a `t+1` state to be judged against.
    let golden = golden_run(harness, config.cycles + 1);
    let points: Vec<FaultPoint> = match config.sample {
        Some(count) => space.sample(count, config.seed),
        None => space.iter().collect(),
    };
    let mut result = CampaignResult::default();
    for point in points {
        if point.cycle >= config.cycles {
            continue;
        }
        let effect = inject(harness, &golden, point)?;
        result.records.push((point, effect));
    }
    result.pruning = PruningStats::unpruned(result.records.len());
    Ok(result)
}

/// Resolves a `threads` setting (`0` = all cores) against the work size.
fn effective_threads(threads: usize, points: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    t.min(points).max(1)
}

/// Runs a full (or sampled) injection campaign over `space` on the batched
/// engine selected by [`CampaignConfig::engine`]: identical records to
/// [`run_campaign`], at up to [`CampaignConfig::lanes`] fault scenarios
/// per simulation via [`classify_points_engine`], sharded over
/// [`CampaignConfig::threads`] worker threads (threads × lanes concurrent
/// fault scenarios).
///
/// Each thread classifies one contiguous chunk of the point list into its
/// slice of the result buffer, so the records come back in the original
/// point order and are bit-identical for every thread count — including the
/// single-threaded path, which skips thread spawning entirely.
/// # Errors
///
/// Returns [`MateError::Campaign`] when an injection is invalid.
pub fn run_campaign_wide(
    harness: &(dyn DesignHarness + Sync),
    space: &FaultSpace,
    config: &CampaignConfig,
) -> Result<CampaignResult, MateError> {
    let golden = golden_run(harness, config.cycles + 1);
    let points: Vec<FaultPoint> = match config.sample {
        Some(count) => space.sample(count, config.seed),
        None => space.iter().collect(),
    }
    .into_iter()
    .filter(|p| p.cycle < config.cycles)
    .collect();
    let threads = effective_threads(config.threads, points.len());
    let (effects, pruning) = if threads <= 1 {
        classify_points_pruned(
            harness,
            &golden,
            &points,
            config.lanes,
            config.engine,
            config.pruning,
        )?
    } else {
        let chunk = points.len().div_ceil(threads);
        let mut shards: Vec<Result<(Vec<FaultEffect>, PruningStats), MateError>> = points
            .chunks(chunk)
            .map(|_| Ok(Default::default()))
            .collect();
        let golden = &golden;
        let lanes = config.lanes;
        let engine = config.engine;
        let mode = config.pruning;
        std::thread::scope(|scope| {
            for (pts, out) in points.chunks(chunk).zip(shards.iter_mut()) {
                scope.spawn(move || {
                    *out = classify_points_pruned(harness, golden, pts, lanes, engine, mode);
                });
            }
        });
        let mut effects = Vec::with_capacity(points.len());
        let mut pruning = PruningStats::default();
        for shard in shards {
            let (shard_effects, shard_stats) = shard?;
            effects.extend(shard_effects);
            pruning.absorb(&shard_stats);
        }
        (effects, pruning)
    };
    Ok(CampaignResult {
        records: points.into_iter().zip(effects).collect(),
        pruning,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StimulusHarness;
    use crate::space::FaultSpace;
    use mate_netlist::examples::{counter, tmr_register};

    #[test]
    fn counter_bit_flip_is_persistent_but_silent_only_if_unobserved() {
        // Counter bits are primary outputs: every flip is an immediate
        // output failure.
        let (n, topo) = counter(3);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true]);
        let golden = golden_run(&harness, 10);
        let ff0 = harness.topology().seq_cells()[0];
        let wire = harness.netlist().cell(ff0).output();
        let effect = inject(
            &harness,
            &golden,
            FaultPoint {
                ff: ff0,
                wire,
                cycle: 3,
            },
        )
        .unwrap();
        assert_eq!(effect, FaultEffect::OutputFailure { after: 0 });
    }

    #[test]
    fn tmr_flip_is_masked_when_voting() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        // Load 1 in cycle 0, vote afterwards.
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false])
            .drive(din, vec![true]);
        let golden = golden_run(&harness, 8);
        let ff1 = harness.topology().seq_cells()[1];
        let wire = harness.netlist().cell(ff1).output();
        let effect = inject(
            &harness,
            &golden,
            FaultPoint {
                ff: ff1,
                wire,
                cycle: 3,
            },
        )
        .unwrap();
        assert_eq!(effect, FaultEffect::MaskedWithinOneCycle);
    }

    #[test]
    fn tmr_flip_during_load_is_also_masked() {
        // While load=1 every replica reloads from din, so a flipped replica
        // is overwritten; the vote output of 2-of-3 still reads golden.
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true])
            .drive(din, vec![true]);
        let golden = golden_run(&harness, 6);
        let ff2 = harness.topology().seq_cells()[2];
        let wire = harness.netlist().cell(ff2).output();
        let effect = inject(
            &harness,
            &golden,
            FaultPoint {
                ff: ff2,
                wire,
                cycle: 2,
            },
        )
        .unwrap();
        assert_eq!(effect, FaultEffect::MaskedWithinOneCycle);
    }

    #[test]
    fn campaign_histogram_counts_everything() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false])
            .drive(din, vec![true]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 6);
        let result = run_campaign(
            &harness,
            &space,
            &CampaignConfig {
                cycles: 6,
                sample: None,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.len(), space.len());
        let histogram = result.histogram();
        let total: usize = histogram.values().sum();
        assert_eq!(total, result.len());
        // TMR masks every single-replica fault.
        assert_eq!(result.masked_one_cycle_fraction(), 1.0);
    }

    #[test]
    fn sampled_campaign_is_subset() {
        let (n, topo) = counter(4);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 12);
        let result = run_campaign(
            &harness,
            &space,
            &CampaignConfig {
                cycles: 12,
                sample: Some(9),
                seed: 7,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.len(), 9);
    }

    #[test]
    fn threaded_campaign_matches_single_thread() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false, false, true])
            .drive(din, vec![true, false]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 10);
        let base = CampaignConfig {
            cycles: 10,
            sample: None,
            seed: 0,
            threads: 1,
            lanes: LaneWidth::W64,
            engine: CampaignEngine::default(),
            pruning: CampaignPruning::default(),
        };
        let single = run_campaign_wide(&harness, &space, &base).unwrap();
        for threads in [0usize, 2, 4, 7, 1000] {
            for lanes in LaneWidth::all() {
                let sharded = run_campaign_wide(
                    &harness,
                    &space,
                    &CampaignConfig {
                        threads,
                        lanes,
                        ..base
                    },
                )
                .unwrap();
                assert_eq!(
                    single.records, sharded.records,
                    "{threads} threads, {lanes} lanes"
                );
            }
        }
    }

    #[test]
    fn lane_widths_match_scalar_reference() {
        // The block engines must classify bit-identically to the scalar
        // `inject` path, including partially filled tail blocks.
        let (n, topo) = counter(5);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true, true, false]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 20);
        let golden = golden_run(&harness, 21);
        let points: Vec<FaultPoint> = space.iter().collect();
        let scalar: Vec<FaultEffect> = points
            .iter()
            .map(|&p| inject(&harness, &golden, p).unwrap())
            .collect();
        for lanes in LaneWidth::all() {
            let block = classify_points_with(&harness, &golden, &points, lanes).unwrap();
            assert_eq!(scalar, block, "{lanes} lanes");
        }
    }

    #[test]
    fn engines_match_scalar_reference() {
        // Both batched engines classify bit-identically to the scalar
        // `inject` path across every lane width.
        let (n, topo) = counter(5);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true, true, false]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 20);
        let golden = golden_run(&harness, 21);
        let points: Vec<FaultPoint> = space.iter().collect();
        let scalar: Vec<FaultEffect> = points
            .iter()
            .map(|&p| inject(&harness, &golden, p).unwrap())
            .collect();
        for engine in CampaignEngine::all() {
            for lanes in LaneWidth::all() {
                let batched =
                    classify_points_engine(&harness, &golden, &points, lanes, engine).unwrap();
                assert_eq!(scalar, batched, "{engine} engine, {lanes} lanes");
            }
        }
    }

    #[test]
    fn engines_match_across_threads() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false, false, true])
            .drive(din, vec![true, false]);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), 10);
        let base = CampaignConfig {
            cycles: 10,
            threads: 1,
            lanes: LaneWidth::W64,
            engine: CampaignEngine::FullSettle,
            ..CampaignConfig::default()
        };
        let reference = run_campaign_wide(&harness, &space, &base).unwrap();
        for engine in CampaignEngine::all() {
            for threads in [1usize, 3] {
                let run = run_campaign_wide(
                    &harness,
                    &space,
                    &CampaignConfig {
                        engine,
                        threads,
                        ..base
                    },
                )
                .unwrap();
                assert_eq!(
                    reference.records, run.records,
                    "{engine} engine, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn multi_point_batch_matches_scalar_inject_multi() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo)
            .drive(load, vec![true, false])
            .drive(din, vec![true]);
        let golden = golden_run(&harness, 8);
        let ffs = harness.topology().seq_cells().to_vec();
        let point = |ff_i: usize, cycle: usize| {
            let ff = ffs[ff_i];
            FaultPoint {
                ff,
                wire: harness.netlist().cell(ff).output(),
                cycle,
            }
        };
        // Single, double, and triple flips: TMR masks one replica, loses to
        // two or three.
        let sets: Vec<Vec<FaultPoint>> = vec![
            vec![point(0, 3)],
            vec![point(0, 3), point(1, 3)],
            vec![point(0, 2), point(1, 2), point(2, 2)],
            vec![point(2, 4)],
        ];
        let scalar: Vec<FaultEffect> = sets
            .iter()
            .map(|s| inject_multi(&harness, &golden, s).unwrap())
            .collect();
        for lanes in LaneWidth::all() {
            let batched = classify_multi_points(&harness, &golden, &sets, lanes).unwrap();
            assert_eq!(scalar, batched, "{lanes} lanes");
        }
    }

    #[test]
    fn multi_point_batch_rejects_bad_sets() {
        let (n, topo) = counter(3);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true]);
        let golden = golden_run(&harness, 5);
        let ff = harness.topology().seq_cells()[0];
        let wire = harness.netlist().cell(ff).output();
        let p = |cycle| FaultPoint { ff, wire, cycle };
        let empty: Vec<Vec<FaultPoint>> = vec![vec![]];
        assert!(classify_multi_points(&harness, &golden, &empty, LaneWidth::W64).is_err());
        let mixed = vec![vec![p(1), p(2)]];
        assert!(classify_multi_points(&harness, &golden, &mixed, LaneWidth::W64).is_err());
        let beyond = vec![vec![p(99)]];
        assert!(classify_multi_points(&harness, &golden, &beyond, LaneWidth::W64).is_err());
    }

    #[test]
    fn engine_display_and_default() {
        assert_eq!(CampaignEngine::default(), CampaignEngine::Auto);
        assert_eq!(format!("{}", CampaignEngine::FullSettle), "full-settle");
        assert_eq!(format!("{}", CampaignEngine::Differential), "differential");
        assert_eq!(format!("{}", CampaignEngine::Auto), "auto");
        // `all()` lists only the concrete engines, reference first: Auto
        // always resolves to one of them.
        assert_eq!(CampaignEngine::all()[0], CampaignEngine::FullSettle);
        assert!(!CampaignEngine::all().contains(&CampaignEngine::Auto));
    }

    #[test]
    fn auto_engine_resolves_by_comb_cell_count() {
        // counter(3) is tiny: Auto picks the full-settle reference.
        let (n, topo) = counter(3);
        assert!(topo.comb_order().len() < 128);
        assert_eq!(
            CampaignEngine::Auto.resolve(&topo),
            CampaignEngine::FullSettle
        );
        // Concrete engines pass through untouched.
        assert_eq!(
            CampaignEngine::Differential.resolve(&topo),
            CampaignEngine::Differential
        );
        assert_eq!(
            CampaignEngine::FullSettle.resolve(&topo),
            CampaignEngine::FullSettle
        );
        // A large random netlist crosses the threshold: Auto goes
        // differential.
        use mate_netlist::random::{random_circuit, RandomCircuitConfig};
        let (_, big) = random_circuit(
            RandomCircuitConfig {
                inputs: 8,
                ffs: 64,
                gates: 300,
                outputs: 8,
            },
            1,
        );
        assert!(big.comb_order().len() >= 128);
        assert_eq!(
            CampaignEngine::Auto.resolve(&big),
            CampaignEngine::Differential
        );
        let _ = n;
    }

    #[test]
    fn effective_threads_clamps_to_work() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(4, 100), 4);
        assert_eq!(effective_threads(3, 0), 1);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn effect_display_and_predicates() {
        assert!(FaultEffect::MaskedWithinOneCycle.is_masked_one_cycle());
        assert!(FaultEffect::Latent.is_silent());
        assert!(!FaultEffect::OutputFailure { after: 2 }.is_silent());
        assert!(format!("{}", FaultEffect::SilentRecovery { after: 3 }).contains("3"));
    }
}
