//! The fault space: `flip-flops × cycles`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use mate_netlist::{CellId, NetId, Netlist, Topology};

/// One point of the fault space: a specific flip-flop upset in a specific
/// cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultPoint {
    /// The flip-flop cell hit by the SEU.
    pub ff: CellId,
    /// The flip-flop's output net (the "faulty wire" of the MATE analysis).
    pub wire: NetId,
    /// The cycle during which the flipped value is live.
    pub cycle: usize,
}

/// The set of injectable faults for a design and trace length.
///
/// # Example
///
/// ```
/// use mate_hafi::FaultSpace;
/// use mate_netlist::examples::counter;
///
/// let (n, topo) = counter(4);
/// let space = FaultSpace::all_ffs(&n, &topo, 100);
/// assert_eq!(space.len(), 4 * 100);
/// ```
#[derive(Clone, Debug)]
pub struct FaultSpace {
    ffs: Vec<(CellId, NetId)>,
    cycles: usize,
}

impl FaultSpace {
    /// The full `FF × cycles` space.
    pub fn all_ffs(netlist: &Netlist, topo: &Topology, cycles: usize) -> Self {
        let ffs = topo
            .seq_cells()
            .iter()
            .map(|&ff| (ff, netlist.cell(ff).output()))
            .collect();
        Self { ffs, cycles }
    }

    /// A space restricted to flip-flops whose output net is in `wires` —
    /// e.g. the paper's "FF w/o RF" subset.
    pub fn for_wires(netlist: &Netlist, topo: &Topology, wires: &[NetId], cycles: usize) -> Self {
        let ffs = topo
            .seq_cells()
            .iter()
            .map(|&ff| (ff, netlist.cell(ff).output()))
            .filter(|(_, w)| wires.contains(w))
            .collect();
        Self { ffs, cycles }
    }

    /// The flip-flops spanning the space.
    pub fn ffs(&self) -> impl Iterator<Item = (CellId, NetId)> + '_ {
        self.ffs.iter().copied()
    }

    /// Number of cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Total number of fault points.
    pub fn len(&self) -> usize {
        self.ffs.len() * self.cycles
    }

    /// Returns `true` for an empty space.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over every fault point (cycle-major order).
    pub fn iter(&self) -> impl Iterator<Item = FaultPoint> + '_ {
        (0..self.cycles).flat_map(move |cycle| {
            self.ffs
                .iter()
                .map(move |&(ff, wire)| FaultPoint { ff, wire, cycle })
        })
    }

    /// A deterministic random sample of `count` distinct fault points
    /// (everything, when `count >= len`).
    pub fn sample(&self, count: usize, seed: u64) -> Vec<FaultPoint> {
        let mut all: Vec<FaultPoint> = self.iter().collect();
        if count >= all.len() {
            return all;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        all.shuffle(&mut rng);
        all.truncate(count);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::{counter, figure1b};

    #[test]
    fn full_space_enumerates_everything() {
        let (n, topo) = counter(3);
        let space = FaultSpace::all_ffs(&n, &topo, 5);
        assert_eq!(space.len(), 15);
        let points: Vec<FaultPoint> = space.iter().collect();
        assert_eq!(points.len(), 15);
        assert_eq!(points[0].cycle, 0);
        assert_eq!(points.last().unwrap().cycle, 4);
    }

    #[test]
    fn restricted_space_filters_wires() {
        let (n, topo) = figure1b();
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        let space = FaultSpace::for_wires(&n, &topo, &[a, b], 10);
        assert_eq!(space.len(), 20);
        assert!(space.ffs().all(|(_, w)| w == a || w == b));
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let (n, topo) = counter(4);
        let space = FaultSpace::all_ffs(&n, &topo, 25);
        let s1 = space.sample(10, 42);
        let s2 = space.sample(10, 42);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 10);
        let unique: std::collections::HashSet<_> = s1.iter().collect();
        assert_eq!(unique.len(), 10);
        // Oversampling returns the full space.
        assert_eq!(space.sample(10_000, 1).len(), space.len());
    }
}
