//! Re-runnable design harnesses.
//!
//! Fault-injection campaigns run the same workload many times.  A
//! [`DesignHarness`] packages the netlist together with whatever stimuli and
//! external devices the workload needs, such that every call to
//! [`DesignHarness::testbench`] yields a *fresh, deterministic* run.

use mate_netlist::{NetId, Netlist, Topology};
use mate_sim::{InputWave, Testbench};

/// A deterministic, repeatable execution environment for a netlist.
pub trait DesignHarness {
    /// The netlist under test.
    fn netlist(&self) -> &Netlist;

    /// Its validated topology.
    fn topology(&self) -> &Topology;

    /// A fresh testbench; each call must produce an identical run.
    fn testbench(&self) -> Testbench<'_>;
}

/// A harness driving primary inputs from fixed per-cycle vectors (no
/// external devices).  Sufficient for combinational designs, counters, and
/// the random circuits used in soundness proofs.
///
/// # Example
///
/// ```
/// use mate_hafi::{DesignHarness, StimulusHarness};
/// use mate_netlist::examples::counter;
///
/// let (n, topo) = counter(3);
/// let en = n.find_net("en").unwrap();
/// let harness = StimulusHarness::new(n, topo).drive(en, vec![true]);
/// let mut tb = harness.testbench();
/// tb.run(4);
/// ```
#[derive(Debug)]
pub struct StimulusHarness {
    netlist: Netlist,
    topo: Topology,
    stimuli: Vec<(NetId, Vec<bool>)>,
}

impl StimulusHarness {
    /// Wraps a netlist; undriven inputs stay at `false`.
    pub fn new(netlist: Netlist, topo: Topology) -> Self {
        Self {
            netlist,
            topo,
            stimuli: Vec::new(),
        }
    }

    /// Adds a per-cycle stimulus vector for one input (the last value is
    /// held when the run outlives the vector).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn drive(mut self, input: NetId, values: Vec<bool>) -> Self {
        assert!(!values.is_empty(), "stimulus must not be empty");
        self.stimuli.push((input, values));
        self
    }
}

impl DesignHarness for StimulusHarness {
    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn testbench(&self) -> Testbench<'_> {
        let mut tb = Testbench::new(&self.netlist, &self.topo);
        for (net, values) in &self.stimuli {
            tb.drive(*net, InputWave::from_vec(values.clone()));
        }
        tb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::counter;

    #[test]
    fn repeated_testbenches_are_identical() {
        let (n, topo) = counter(4);
        let en = n.find_net("en").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(en, vec![true, false, true]);
        let t1 = harness.testbench().run(10);
        let t2 = harness.testbench().run(10);
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_stimulus_rejected() {
        let (n, topo) = counter(2);
        let en = n.find_net("en").unwrap();
        let _ = StimulusHarness::new(n, topo).drive(en, vec![]);
    }
}
