//! Hardware-assisted fault injection (HAFI), emulated in software.
//!
//! The paper integrates MATEs into FPGA-based fault-injection platforms;
//! this crate provides the functional equivalent of such a platform plus the
//! ground-truth machinery that *proves* the MATE analysis sound:
//!
//! * [`harness`] — the [`harness::DesignHarness`] abstraction: anything that
//!   can repeatedly re-run a design deterministically (stimuli, memories).
//! * [`space`] — the `flip-flops × cycles` fault space and seeded sampling.
//! * [`campaign`] — golden runs, SEU injection at a chosen `(flip-flop,
//!   cycle)` point, and outcome classification against the golden trace.
//! * [`collapse`] — fault-space collapsing: temporal equivalence classes
//!   over golden-trace cone-support fingerprints, probed one representative
//!   at a time, so most benign points are classified without a single
//!   dedicated simulation.
//! * [`validate`] — checks that every fault-space point a MATE set prunes is
//!   indeed masked within one clock cycle (exhaustively or sampled).
//! * [`fpga`] — FPGA resource estimation for MATE sets (LUT trees) and the
//!   injection-command bandwidth model from the paper's introduction.

pub mod campaign;
pub mod collapse;
pub mod fpga;
pub mod harness;
pub mod online;
pub mod space;
pub mod validate;

pub use campaign::{
    classify_multi_points, classify_multi_points_pruned, classify_points, classify_points_engine,
    classify_points_pruned, classify_points_with, golden_run, inject, inject_multi,
    inject_persistent, run_campaign, run_campaign_wide, CampaignConfig, CampaignEngine,
    CampaignResult, FaultEffect, LaneWidth,
};
pub use collapse::{CampaignPruning, PruningStats};
pub use fpga::{CommandModel, LutCostModel};
pub use harness::{DesignHarness, StimulusHarness};
pub use online::OnlinePruner;
pub use space::{FaultPoint, FaultSpace};
pub use validate::{validate_mates, ValidationReport};
