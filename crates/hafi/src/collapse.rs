//! Fault-space collapsing: temporal equivalence classes over golden-trace
//! cone-support fingerprints, probed one representative at a time.
//!
//! The paper's core argument is that most `(flip-flop, cycle)` fault points
//! are provably benign and should never be injected.  PRs 1–7 made each
//! injection fast; this layer makes most injections *unnecessary*:
//!
//! 1. **Support extraction** — for a set `S` of flipped flip-flops, the
//!    fault cone is everything combinationally reachable from their Q nets
//!    ([`SoaNetlist::cone_support`]).  Out-of-cone nets carry zero delta, so
//!    the one-cycle evolution of the injected delta — which outputs diverge,
//!    and which flip-flop D inputs latch a wrong bit — is a pure function of
//!    the golden values of the **support**: the Q nets of `S` plus the
//!    cone's border nets.  (Induction over the levelized schedule: every
//!    cone row reads either support nets or earlier cone nets whose value
//!    is itself a function of the support.)
//! 2. **Fingerprinting** — the golden support values in a cycle are packed
//!    into an exact bit key straight out of the [`TransposedTrace`] bit
//!    planes ([`TransposedTrace::support_key`]).  Two points with the same
//!    flip set and equal keys evolve *identically* for one cycle, so they
//!    form one temporal equivalence class.  The key is the exact bit
//!    vector, never a hash: a collision would silently misclassify a whole
//!    class, and the collapsed path must stay bit-identical to the
//!    unpruned reference.
//! 3. **Representative probing** — one [`DeltaSimulator`] settle per class
//!    (lane-batched, up to `B::WIDTH` classes per settle) decides the whole
//!    class: an output delta is an immediate `OutputFailure`; an empty
//!    next-state delta kills the class (the dominant case — the paper
//!    reports most benign faults mask within one cycle); a surviving delta
//!    yields the exact set `S'` of flip-flops latching a wrong bit, and the
//!    class continues as `(S', cycle + 1)` — the same machinery, one cycle
//!    later.  Verdicts are memoized on `(flip set, support key)`, so
//!    recurring golden contexts are never probed twice, across cycles and
//!    across recursion depths.
//! 4. **Fallback** — classes still alive after [`COLLAPSE_WINDOW`] probe
//!    cycles (long recoveries, latent corruptions), and sets whose cone
//!    support exceeds [`MAX_SUPPORT_NETS`] (contexts too wide to ever
//!    repeat), fall back to full per-point simulation on the configured
//!    engine.  `Latent` itself is
//!    *never* concluded class-wide: it depends on the remaining horizon
//!    length, which differs per member, so only per-member reasoning (or
//!    the fallback) may produce it.
//!
//! Soundness of the per-cycle verdicts (mirroring the scalar classifier's
//! priority): outputs are checked in the probe cycle `c` itself; state is
//! judged at `c + 1`.  A dead delta at `c + 1` is a settle fixed point
//! (inputs are golden by construction, zero stays zero), so the state
//! converges at `c + 1` and every later output matches golden — offset
//! `c + 1 - t0` is final, `MaskedWithinOneCycle` iff it is 1.  When
//! `c + 1` reaches the horizon the scalar loop never observes the
//! convergence, so the member is `Latent` regardless of the probe verdict.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use mate_netlist::{ConeSupport, LaneBlock, SoaNetlist, B256, B512};
use mate_sim::{DeltaSimulator, TransposedTrace};

use crate::campaign::{
    observed_flags, CampaignEngine, FaultEffect, GoldenRun, LaneWidth, OBS_NEXT,
};
use crate::harness::DesignHarness;
use crate::space::FaultPoint;

/// Whether the campaign collapses the fault space before simulating.
///
/// Both modes produce bit-identical [`FaultEffect`] classifications for
/// every engine, lane width, and thread count (enforced by the campaign
/// proptests and the CI equivalence gate); collapsing only removes
/// redundant work.  Only wide-capable harnesses (no external devices) can
/// collapse — checkpointed and scalar paths ignore the setting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CampaignPruning {
    /// Simulate every fault point individually — the asserted-identical
    /// reference path.
    Off,
    /// Collapse temporally equivalent points and probe one representative
    /// per class (the default).
    #[default]
    Collapse,
}

impl CampaignPruning {
    /// Both modes, reference first (for equivalence sweeps).
    pub fn all() -> [Self; 2] {
        [Self::Off, Self::Collapse]
    }
}

impl fmt::Display for CampaignPruning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Off => write!(f, "off"),
            Self::Collapse => write!(f, "collapse"),
        }
    }
}

/// Work accounting of the collapsing layer.  Purely diagnostic: the
/// classifications are bit-identical whatever these counters say, so the
/// stats are excluded from pipeline artifact fingerprints (like `threads`
/// and `engine`).  Under thread sharding each worker collapses its own
/// contiguous point range, so the counters depend on the thread count even
/// though the records do not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruningStats {
    /// Fault points (or multi-SEU sets) fed to the classifier.
    pub points: usize,
    /// Temporal equivalence classes among them (same flip set, same
    /// support fingerprint).
    pub classes: usize,
    /// One-cycle representative probes executed, over all recursion
    /// depths.
    pub probes: usize,
    /// Points classified entirely by the collapsing layer — never
    /// individually simulated.
    pub skipped: usize,
    /// Points that fell back to full per-point simulation.
    pub fallback: usize,
    /// Worklist items resolved from the probe memo without a new probe.
    pub memo_hits: usize,
}

impl PruningStats {
    /// Stats for an unpruned run: every point individually simulated.
    pub fn unpruned(points: usize) -> Self {
        Self {
            points,
            fallback: points,
            ..Self::default()
        }
    }

    /// Fraction of points classified without individual simulation.
    pub fn skip_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.skipped as f64 / self.points as f64
        }
    }

    /// Merges a worker shard's counters into this one.
    pub fn absorb(&mut self, other: &Self) {
        self.points += other.points;
        self.classes += other.classes;
        self.probes += other.probes;
        self.skipped += other.skipped;
        self.fallback += other.fallback;
        self.memo_hits += other.memo_hits;
    }
}

impl fmt::Display for PruningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} points, {} classes, {} probes, {:.1}% skipped, {} fallback, {} memo hits",
            self.points,
            self.classes,
            self.probes,
            100.0 * self.skip_rate(),
            self.fallback,
            self.memo_hits
        )
    }
}

/// Probe recursion depth bound: classes still alive after this many
/// one-cycle probes fall back to full per-point simulation.  Bounds the
/// collapsing overhead on latent-heavy workloads, where the worklist would
/// otherwise chase every class to the horizon one probe at a time.
pub(crate) const COLLAPSE_WINDOW: usize = 4;

/// Cone-support size cap: sets whose support exceeds this many nets are
/// routed straight to the per-point fallback without fingerprinting.  With
/// `2^support` possible golden contexts, a large support almost never
/// repeats within a trace, so fingerprinting it costs transposed-trace
/// gathers and hashing with no collapsing in return — the cap keeps the
/// layer near-free on unstructured netlists while leaving the protected
/// register files it targets (per-slice supports of a handful of nets)
/// fully collapsed.  At this bound a fingerprint is exactly one `u64`.
pub(crate) const MAX_SUPPORT_NETS: usize = 64;

/// One undecided fault point mid-collapse: the original point index and
/// injection cycle, the interned flip set currently carrying its delta,
/// and the cycle that set was latched into.
#[derive(Clone, Copy)]
struct Item {
    point: u32,
    t0: u32,
    set: u32,
    cycle: u32,
}

/// A memoized one-cycle probe verdict for `(flip set, support key)`.
/// Deliberately cycle-free: the delta evolution depends only on the set
/// and the golden support values, so one verdict serves every cycle (and
/// every recursion depth) presenting the same context.
#[derive(Clone, Copy)]
enum Verdict {
    /// A primary output diverges in the probe cycle.
    OutputNow,
    /// The delta reaches no flip-flop D input: the state re-converges one
    /// cycle after the probe cycle.
    DiesNext,
    /// The delta latches into exactly this interned flip set.
    Survives(u32),
}

/// Interned flip sets with lazily computed cone supports.
#[derive(Default)]
struct SetIntern {
    ids: HashMap<Vec<u32>, u32>,
    sets: Vec<Vec<u32>>,
    supports: Vec<Option<ConeSupport>>,
}

impl SetIntern {
    /// Interns a sorted, deduplicated flip-index set.
    fn intern(&mut self, ffs: Vec<u32>) -> u32 {
        debug_assert!(ffs.windows(2).all(|w| w[0] < w[1]), "sets must be sorted");
        if let Some(&id) = self.ids.get(&ffs) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.ids.insert(ffs.clone(), id);
        self.sets.push(ffs);
        self.supports.push(None);
        id
    }

    /// The cone support of a set, computed on first use.
    fn support(&mut self, id: u32, soa: &SoaNetlist) -> &ConeSupport {
        let i = id as usize;
        if self.supports[i].is_none() {
            let origins: Vec<u32> = self.sets[i]
                .iter()
                .map(|&ff| soa.ff_q()[ff as usize])
                .collect();
            self.supports[i] = Some(soa.cone_support(&origins));
        }
        self.supports[i].as_ref().expect("just computed")
    }
}

/// A temporal equivalence class: an interned flip set plus the packed
/// golden fingerprint of its support.  The support-size cap guarantees
/// every fingerprint fits one word, so class and memo keys are plain
/// `(set, u64)` — no per-item allocation.
type ClassKey = (u32, u64);

/// The collapsing core, generic over the initial flip sets: classifies
/// every `(flip set, cycle)` item by class-wide representative probing,
/// handing whatever the window could not decide to `fallback` (called once
/// with the sorted indices of the undecided items, returning their effects
/// in that order).
///
/// Single-SEU points are singleton sets; simultaneous multi-SEU sets ride
/// the same machinery unchanged — the probe flips the whole set into one
/// lane and [`SoaNetlist::cone_support`] unions the cones.
fn collapse_classify<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    initial: Vec<(Vec<u32>, usize)>,
    fallback: impl FnOnce(&[u32]) -> Vec<FaultEffect>,
) -> (Vec<FaultEffect>, PruningStats) {
    let netlist = harness.netlist();
    let topo = harness.topology();
    let soa = SoaNetlist::build(netlist, topo);
    let transposed = TransposedTrace::from_trace(&golden.trace);
    let horizon = golden.trace.num_cycles();
    let seq = topo.seq_cells();

    // Observation flags for the probe scan: primary outputs and flip-flop
    // D inputs (the next-state frontier).
    let mut flags = observed_flags(netlist.num_nets(), golden);
    for &d in soa.ff_d() {
        flags[d as usize] |= OBS_NEXT;
    }

    let mut delta: DeltaSimulator<'_, B> = DeltaSimulator::with_arena(netlist, &soa);
    let mut intern = SetIntern::default();
    let mut memo: HashMap<ClassKey, Verdict> = HashMap::new();

    let mut stats = PruningStats {
        points: initial.len(),
        ..PruningStats::default()
    };
    let mut effects = vec![FaultEffect::Latent; initial.len()];
    let mut items: Vec<Item> = initial
        .into_iter()
        .enumerate()
        .map(|(i, (ffs, cycle))| Item {
            point: i as u32,
            t0: cycle as u32,
            set: intern.intern(ffs),
            cycle: cycle as u32,
        })
        .collect();
    let mut fallback_points: Vec<u32> = Vec::new();
    let mut key_buf: Vec<u64> = Vec::new();

    for depth in 0..=COLLAPSE_WINDOW {
        if items.is_empty() {
            break;
        }
        if depth == COLLAPSE_WINDOW {
            fallback_points.extend(items.iter().map(|it| it.point));
            items.clear();
            break;
        }
        // Group this round's items by (flip set, support fingerprint);
        // memoized contexts resolve without joining any group.
        let mut next_items: Vec<Item> = Vec::new();
        let mut groups: HashMap<ClassKey, Vec<Item>> = HashMap::new();
        for item in items.drain(..) {
            let support = intern.support(item.set, &soa);
            if support.support.len() > MAX_SUPPORT_NETS {
                // A context this wide will not repeat; skip the
                // fingerprinting tax and simulate the point in full.
                fallback_points.push(item.point);
                continue;
            }
            transposed.support_key(&support.support, item.cycle as usize, &mut key_buf);
            let key = (item.set, key_buf.first().copied().unwrap_or(0));
            if let Some(&verdict) = memo.get(&key) {
                stats.memo_hits += 1;
                apply_verdict(verdict, item, horizon, &mut effects, &mut next_items);
            } else {
                groups.entry(key).or_default().push(item);
            }
        }
        if depth == 0 {
            stats.classes = groups.len();
        }
        // Probe one representative per group, lane-batching groups that
        // share their representative's cycle.  The verdict is a pure
        // function of (set, support values), so any member works as the
        // representative; we take the first.
        let mut by_cycle: BTreeMap<u32, Vec<(ClassKey, Vec<Item>)>> = BTreeMap::new();
        for (key, members) in groups {
            by_cycle
                .entry(members[0].cycle)
                .or_default()
                .push((key, members));
        }
        for (cycle, batch) in by_cycle {
            for chunk in batch.chunks(B::WIDTH) {
                delta.begin(cycle as usize);
                for (lane, (key, _)) in chunk.iter().enumerate() {
                    for &ff in &intern.sets[key.0 as usize] {
                        delta.flip_ff(seq[ff as usize], lane);
                    }
                }
                delta.settle(&transposed);
                stats.probes += chunk.len();
                let [out_diff, _, next_diff] = delta.scan_flagged(&flags);
                // Pass 1 (interner borrowed shared): raw per-lane verdicts.
                let raw: Vec<Option<Vec<u32>>> = chunk
                    .iter()
                    .enumerate()
                    .map(|(lane, (key, _))| {
                        if out_diff.lane(lane) || !next_diff.lane(lane) {
                            None
                        } else {
                            // The surviving set: endpoints whose D delta is
                            // dirty in this lane.  Endpoints are sorted by
                            // flip index, so the set comes out sorted.
                            Some(
                                intern.supports[key.0 as usize]
                                    .as_ref()
                                    .expect("support computed during grouping")
                                    .endpoints
                                    .iter()
                                    .filter(|&&(_, d)| delta.delta_raw(d as usize).lane(lane))
                                    .map(|&(ff, _)| ff)
                                    .collect(),
                            )
                        }
                    })
                    .collect();
                // Pass 2 (interner borrowed unique): intern survivors,
                // memoize, and apply to every member of the class.
                for (lane, ((key, members), survivors)) in chunk.iter().zip(raw).enumerate() {
                    let verdict = match survivors {
                        Some(ffs) => Verdict::Survives(intern.intern(ffs)),
                        None if out_diff.lane(lane) => Verdict::OutputNow,
                        None => Verdict::DiesNext,
                    };
                    memo.insert(*key, verdict);
                    for &item in members {
                        apply_verdict(verdict, item, horizon, &mut effects, &mut next_items);
                    }
                }
            }
        }
        items = next_items;
    }

    // Whatever the probe window could not decide is simulated in full, on
    // the original per-point path.
    fallback_points.sort_unstable();
    stats.fallback = fallback_points.len();
    stats.skipped = stats.points - stats.fallback;
    if !fallback_points.is_empty() {
        let fb = fallback(&fallback_points);
        debug_assert_eq!(fb.len(), fallback_points.len());
        for (&p, effect) in fallback_points.iter().zip(fb) {
            effects[p as usize] = effect;
        }
    }
    (effects, stats)
}

/// Applies a class verdict to one member, with the member's own injection
/// cycle and remaining horizon (see the module docs for the soundness
/// argument).
fn apply_verdict(
    verdict: Verdict,
    item: Item,
    horizon: usize,
    effects: &mut [FaultEffect],
    next_items: &mut Vec<Item>,
) {
    match verdict {
        Verdict::OutputNow => {
            effects[item.point as usize] = FaultEffect::OutputFailure {
                after: (item.cycle - item.t0) as usize,
            };
        }
        // Convergence (or survival) at `cycle + 1` is only *observed* while
        // the scalar classifier still runs; at the horizon the member stays
        // Latent either way.
        Verdict::DiesNext | Verdict::Survives(_) if (item.cycle + 1) as usize >= horizon => {
            effects[item.point as usize] = FaultEffect::Latent;
        }
        Verdict::DiesNext => {
            let after = (item.cycle + 1 - item.t0) as usize;
            effects[item.point as usize] = if after == 1 {
                FaultEffect::MaskedWithinOneCycle
            } else {
                FaultEffect::SilentRecovery { after }
            };
        }
        Verdict::Survives(set) => next_items.push(Item {
            set,
            cycle: item.cycle + 1,
            ..item
        }),
    }
}

/// Maps each point's flip-flop to its [`Topology::seq_cells`] index.
///
/// [`Topology::seq_cells`]: mate_netlist::Topology::seq_cells
fn ff_indices(harness: &dyn DesignHarness) -> HashMap<mate_netlist::CellId, u32> {
    harness
        .topology()
        .seq_cells()
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect()
}

/// Single-SEU collapsing entry: classifies `points` with class-wide
/// probing, falling back to the resolved `engine` for undecided points.
/// Bit-identical to [`classify_points_engine`] with pruning off.
///
/// [`classify_points_engine`]: crate::campaign::classify_points_engine
pub(crate) fn classify_points_collapse<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
    engine: CampaignEngine,
) -> (Vec<FaultEffect>, PruningStats) {
    let idx = ff_indices(harness);
    let initial: Vec<(Vec<u32>, usize)> =
        points.iter().map(|p| (vec![idx[&p.ff]], p.cycle)).collect();
    collapse_classify::<B>(harness, golden, initial, |undecided| {
        let fb: Vec<FaultPoint> = undecided.iter().map(|&i| points[i as usize]).collect();
        crate::campaign::classify_points_wide_concrete::<B>(harness, golden, &fb, engine)
    })
}

/// Multi-SEU collapsing entry: each set becomes one worklist item carrying
/// its odd-parity flip set (flipping a flip-flop twice cancels, exactly as
/// the scalar injector's sequential XOR flips do).  Bit-identical to
/// [`classify_multi_points`] with pruning off.
///
/// [`classify_multi_points`]: crate::campaign::classify_multi_points
pub(crate) fn classify_multi_collapse<B: LaneBlock>(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    sets: &[Vec<FaultPoint>],
) -> (Vec<FaultEffect>, PruningStats) {
    let idx = ff_indices(harness);
    let initial: Vec<(Vec<u32>, usize)> = sets
        .iter()
        .map(|set| {
            let mut ffs: Vec<u32> = set.iter().map(|p| idx[&p.ff]).collect();
            ffs.sort_unstable();
            // Keep odd-multiplicity flips only: XOR parity.
            let mut parity: Vec<u32> = Vec::with_capacity(ffs.len());
            let mut i = 0;
            while i < ffs.len() {
                let run = ffs[i..].iter().take_while(|&&f| f == ffs[i]).count();
                if run % 2 == 1 {
                    parity.push(ffs[i]);
                }
                i += run;
            }
            (parity, set[0].cycle)
        })
        .collect();
    collapse_classify::<B>(harness, golden, initial, |undecided| {
        let fb: Vec<Vec<FaultPoint>> = undecided
            .iter()
            .map(|&i| sets[i as usize].clone())
            .collect();
        crate::campaign::classify_multi_wide_concrete::<B>(harness, golden, &fb)
    })
}

/// Width-dispatched single-SEU collapsing (callers have already validated
/// cycles, resolved the engine, and checked `can_run_wide`).
pub(crate) fn classify_points_collapse_width(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    points: &[FaultPoint],
    lanes: LaneWidth,
    engine: CampaignEngine,
) -> (Vec<FaultEffect>, PruningStats) {
    match lanes {
        LaneWidth::W64 => classify_points_collapse::<u64>(harness, golden, points, engine),
        LaneWidth::W256 => classify_points_collapse::<B256>(harness, golden, points, engine),
        LaneWidth::W512 => classify_points_collapse::<B512>(harness, golden, points, engine),
    }
}

/// Width-dispatched multi-SEU collapsing (same caller contract).
pub(crate) fn classify_multi_collapse_width(
    harness: &dyn DesignHarness,
    golden: &GoldenRun,
    sets: &[Vec<FaultPoint>],
    lanes: LaneWidth,
) -> (Vec<FaultEffect>, PruningStats) {
    match lanes {
        LaneWidth::W64 => classify_multi_collapse::<u64>(harness, golden, sets),
        LaneWidth::W256 => classify_multi_collapse::<B256>(harness, golden, sets),
        LaneWidth::W512 => classify_multi_collapse::<B512>(harness, golden, sets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{classify_points_pruned, golden_run, inject};
    use crate::harness::StimulusHarness;
    use crate::space::FaultSpace;
    use mate_netlist::examples::{figure1b, tmr_register};

    #[test]
    fn pruning_display_default_and_order() {
        assert_eq!(CampaignPruning::default(), CampaignPruning::Collapse);
        assert_eq!(format!("{}", CampaignPruning::Off), "off");
        assert_eq!(format!("{}", CampaignPruning::Collapse), "collapse");
        assert_eq!(CampaignPruning::all()[0], CampaignPruning::Off);
    }

    #[test]
    fn stats_accounting_helpers() {
        let un = PruningStats::unpruned(10);
        assert_eq!(un.points, 10);
        assert_eq!(un.fallback, 10);
        assert_eq!(un.skip_rate(), 0.0);
        let mut total = PruningStats {
            points: 4,
            classes: 2,
            probes: 2,
            skipped: 4,
            fallback: 0,
            memo_hits: 1,
        };
        total.absorb(&un);
        assert_eq!(total.points, 14);
        assert_eq!(total.fallback, 10);
        assert!((total.skip_rate() - 4.0 / 14.0).abs() < 1e-12);
        assert_eq!(PruningStats::default().skip_rate(), 0.0);
        let text = format!("{total}");
        assert!(text.contains("14 points") && text.contains("2 classes"));
    }

    /// On a TMR register under periodic stimuli, whole columns of the fault
    /// space share one golden context: the collapsing layer classifies
    /// everything from a handful of representative probes, simulating no
    /// point individually.
    #[test]
    fn tmr_periodic_campaign_collapses_hard() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let cycles = 32;
        let harness = StimulusHarness::new(n, topo)
            .drive(load, (0..=cycles).map(|c| c % 4 == 0).collect::<Vec<_>>())
            .drive(din, (0..=cycles).map(|c| c % 8 < 4).collect::<Vec<_>>());
        let golden = golden_run(&harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points: Vec<FaultPoint> = space.iter().collect();

        let (effects, stats) = classify_points_pruned(
            &harness,
            &golden,
            &points,
            LaneWidth::W64,
            CampaignEngine::Differential,
            CampaignPruning::Collapse,
        )
        .unwrap();
        for (&p, &e) in points.iter().zip(&effects) {
            assert_eq!(e, inject(&harness, &golden, p).unwrap(), "{p:?}");
        }
        // Every TMR replica flip is voted away: probes die immediately, no
        // point reaches the fallback, and the periodic stimuli fold the 96
        // points onto a few golden contexts.
        assert_eq!(stats.points, points.len());
        assert_eq!(stats.fallback, 0);
        assert_eq!(stats.skipped, points.len());
        assert!(
            stats.classes <= points.len() / 4,
            "expected heavy collapsing, got {} classes for {} points",
            stats.classes,
            points.len()
        );
        assert_eq!(stats.probes, stats.classes);
    }

    /// The figure-1b example exercises every verdict arm (output failures,
    /// recoveries, latents near the horizon) and still collapses some
    /// classes while falling back for the rest — all bit-identical to
    /// scalar injection.
    #[test]
    fn figure1b_collapse_is_bit_identical_with_mixed_verdicts() {
        let (n, topo) = figure1b();
        let input = n.find_net("in").unwrap();
        let cycles = 24;
        let harness = StimulusHarness::new(n, topo)
            .drive(input, (0..=cycles).map(|c| c % 3 == 1).collect::<Vec<_>>());
        let golden = golden_run(&harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points: Vec<FaultPoint> = space.iter().collect();
        let scalar: Vec<FaultEffect> = points
            .iter()
            .map(|&p| inject(&harness, &golden, p).unwrap())
            .collect();
        for engine in CampaignEngine::all() {
            let (pruned, stats) = classify_points_pruned(
                &harness,
                &golden,
                &points,
                LaneWidth::W256,
                engine,
                CampaignPruning::Collapse,
            )
            .unwrap();
            assert_eq!(scalar, pruned, "{engine}");
            assert_eq!(stats.skipped + stats.fallback, stats.points);
        }
        // The trace exhibits more than one outcome class, so the test
        // really covers mixed verdicts.
        let classes: std::collections::HashSet<_> =
            scalar.iter().map(|e| std::mem::discriminant(e)).collect();
        assert!(classes.len() >= 2, "degenerate workload");
    }
}
