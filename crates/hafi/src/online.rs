//! Online fault-space pruning — the FPGA-side behaviour of a MATE-enriched
//! HAFI platform, emulated in software.
//!
//! The paper's Section 1.1 argues for *online* fault-list generation: the
//! MATEs are synthesized next to the design under test and evaluated on the
//! live wire values of every cycle, so no trace has to be recorded and the
//! platform continuously knows which faults are currently benign.
//! [`OnlinePruner`] does exactly that against the running simulator.
//!
//! Internally the pruner buffers the observed value rows and flushes every
//! 64 cycles through the same word-parallel column kernels as offline
//! evaluation ([`TransposedTrace::cube_word`] feeding
//! [`PruneMatrix::mark_cycle_word`]), so online pruning costs one AND/ANDN
//! per literal per 64 cycles instead of one cube probe per cycle.

use mate::eval::PruneMatrix;
use mate::MateSet;
use mate_netlist::{NetId, WORD_LANES};
use mate_sim::{Simulator, TransposedTrace};

use crate::harness::DesignHarness;

/// Cycles per flushed evaluation block (one packed trace word).
const BLOCK: usize = WORD_LANES;

/// Evaluates a MATE set against live simulator state, batched in 64-cycle
/// blocks.
///
/// # Example
///
/// ```
/// use mate::prelude::*;
/// use mate_hafi::{OnlinePruner, StimulusHarness, DesignHarness};
/// use mate_netlist::examples::tmr_register;
///
/// let (n, topo) = tmr_register();
/// let wires = ff_wires(&n, &topo);
/// let mates = search_design(&n, &topo, &wires, &SearchConfig::default())
///     .into_mate_set();
/// let din = n.find_net("din").unwrap();
/// let harness = StimulusHarness::new(n, topo).drive(din, vec![true]);
/// let matrix = OnlinePruner::run(&harness, &mates, &wires, 8);
/// assert!(matrix.masked_points() > 0);
/// ```
#[derive(Debug)]
pub struct OnlinePruner<'m> {
    mates: &'m MateSet,
    masked_indices: Vec<Vec<usize>>,
    matrix: PruneMatrix,
    cycle: usize,
    /// Row-major buffer of up to [`BLOCK`] pending cycles (sized lazily on
    /// the first observation).
    rows: Vec<u64>,
    words_per_cycle: usize,
    num_nets: usize,
    pending: usize,
    /// Matrix word index of the next flush (blocks are 64-aligned from
    /// cycle 0).
    flushed_words: usize,
    /// Scratch transposed block, refilled in place each flush so a long
    /// campaign transposes without per-block allocation.
    scratch: TransposedTrace,
}

impl<'m> OnlinePruner<'m> {
    /// Creates a pruner for a campaign horizon of `cycles` cycles.
    pub fn new(mates: &'m MateSet, wires: &[NetId], cycles: usize) -> Self {
        let matrix = PruneMatrix::new(wires, cycles);
        let masked_indices = mates
            .iter()
            .map(|m| {
                m.masked
                    .iter()
                    .filter_map(|w| wires.iter().position(|x| x == w))
                    .collect()
            })
            .collect();
        Self {
            mates,
            masked_indices,
            matrix,
            cycle: 0,
            rows: Vec::new(),
            words_per_cycle: 0,
            num_nets: 0,
            pending: 0,
            flushed_words: 0,
            scratch: TransposedTrace::new(0),
        }
    }

    /// Observes one settled cycle: records the live wire values into the
    /// pending block, flushing through the word-parallel cube kernels every
    /// 64 cycles.  Call once per cycle, right before the clock edge (e.g.
    /// from [`mate_sim::Testbench::step_observed`]).
    ///
    /// # Panics
    ///
    /// Panics when called more often than the horizon allows.
    pub fn observe(&mut self, sim: &mut Simulator<'_>) {
        assert!(self.cycle < self.matrix.cycles(), "horizon exceeded");
        if self.words_per_cycle == 0 {
            self.num_nets = sim.netlist().num_nets();
            self.words_per_cycle = self.num_nets.div_ceil(WORD_LANES).max(1);
            self.rows = vec![0u64; BLOCK * self.words_per_cycle];
        }
        let words = sim.values().as_words();
        let base = self.pending * self.words_per_cycle;
        self.rows[base..base + words.len()].copy_from_slice(words);
        self.pending += 1;
        self.cycle += 1;
        if self.pending == BLOCK {
            self.flush();
        }
    }

    /// Evaluates every MATE over the pending block with one AND/ANDN per
    /// literal and ORs the trigger words into the matrix.
    fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        self.scratch.refill_from_row_words(
            self.num_nets,
            self.pending,
            &self.rows[..self.pending * self.words_per_cycle],
            self.words_per_cycle,
        );
        let block = &self.scratch;
        for (i, mate) in self.mates.iter().enumerate() {
            if self.masked_indices[i].is_empty() {
                continue;
            }
            let hit = block.cube_word(&mate.cube, 0);
            if hit == 0 {
                continue;
            }
            for &w in &self.masked_indices[i] {
                self.matrix.mark_cycle_word(w, self.flushed_words, hit);
            }
        }
        self.rows[..self.pending * self.words_per_cycle].fill(0);
        self.pending = 0;
        self.flushed_words += 1;
    }

    /// Finishes the campaign (flushing any partial block) and returns the
    /// pruned fault space.
    pub fn into_matrix(mut self) -> PruneMatrix {
        self.flush();
        self.matrix
    }

    /// Convenience driver: runs `harness` for `cycles` cycles with online
    /// pruning attached and returns the matrix.
    pub fn run(
        harness: &dyn DesignHarness,
        mates: &MateSet,
        wires: &[NetId],
        cycles: usize,
    ) -> PruneMatrix {
        let mut pruner = OnlinePruner::new(mates, wires, cycles);
        let mut tb = harness.testbench();
        for _ in 0..cycles {
            tb.step_observed(|sim| pruner.observe(sim));
        }
        pruner.into_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StimulusHarness;
    use crate::DesignHarness;
    use mate::eval::evaluate;
    use mate::{ff_wires, search_design, SearchConfig};
    use mate_netlist::examples::{figure1b, tmr_register};

    /// Online (live) pruning must agree bit-for-bit with offline trace
    /// replay — the equivalence the paper relies on when moving the MATEs
    /// into the FPGA.
    #[test]
    fn online_equals_offline() {
        let (n, topo) = figure1b();
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let input = n.find_net("in").unwrap();
        let harness =
            StimulusHarness::new(n, topo).drive(input, vec![true, false, false, true, true]);

        let online = OnlinePruner::run(&harness, &mates, &wires, 20);
        let trace = harness.testbench().run(20);
        let offline = evaluate(&mates, &trace, &wires);
        assert_eq!(online, offline.matrix);
    }

    /// Horizons straddling the 64-cycle block size exercise both the full
    /// in-loop flush and the partial flush in `into_matrix`.
    #[test]
    fn online_equals_offline_across_block_boundaries() {
        let (n, topo) = figure1b();
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let input = n.find_net("in").unwrap();
        for cycles in [63usize, 64, 65, 130] {
            let harness = StimulusHarness::new(n.clone(), topo.clone())
                .drive(input, vec![true, false, true, true, false]);
            let online = OnlinePruner::run(&harness, &mates, &wires, cycles);
            let trace = harness.testbench().run(cycles);
            let offline = evaluate(&mates, &trace, &wires);
            assert_eq!(online, offline.matrix, "{cycles} cycles");
        }
    }

    #[test]
    fn online_pruner_on_tmr() {
        let (n, topo) = tmr_register();
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(din, vec![true, false]);
        let matrix = OnlinePruner::run(&harness, &mates, &wires, 12);
        // The voter masks every replica in every cycle on this stimulus.
        assert_eq!(matrix.masked_points(), matrix.total_points());
    }

    #[test]
    #[should_panic(expected = "horizon exceeded")]
    fn observing_past_horizon_panics() {
        let (n, topo) = tmr_register();
        let wires = ff_wires(&n, &topo);
        let mates = mate::MateSet::default();
        let harness = StimulusHarness::new(n, topo);
        let mut pruner = OnlinePruner::new(&mates, &wires, 1);
        let mut tb = harness.testbench();
        tb.step_observed(|sim| pruner.observe(sim));
        tb.step_observed(|sim| pruner.observe(sim));
    }
}
