//! Online fault-space pruning — the FPGA-side behaviour of a MATE-enriched
//! HAFI platform, emulated in software.
//!
//! The paper's Section 1.1 argues for *online* fault-list generation: the
//! MATEs are synthesized next to the design under test and evaluated on the
//! live wire values of every cycle, so no trace has to be recorded and the
//! platform continuously knows which faults are currently benign.
//! [`OnlinePruner`] does exactly that against the running simulator.

use mate::eval::PruneMatrix;
use mate::MateSet;
use mate_netlist::NetId;
use mate_sim::Simulator;

use crate::harness::DesignHarness;

/// Evaluates a MATE set cycle by cycle against live simulator state.
///
/// # Example
///
/// ```
/// use mate::prelude::*;
/// use mate_hafi::{OnlinePruner, StimulusHarness, DesignHarness};
/// use mate_netlist::examples::tmr_register;
///
/// let (n, topo) = tmr_register();
/// let wires = ff_wires(&n, &topo);
/// let mates = search_design(&n, &topo, &wires, &SearchConfig::default())
///     .into_mate_set();
/// let din = n.find_net("din").unwrap();
/// let harness = StimulusHarness::new(n, topo).drive(din, vec![true]);
/// let matrix = OnlinePruner::run(&harness, &mates, &wires, 8);
/// assert!(matrix.masked_points() > 0);
/// ```
#[derive(Debug)]
pub struct OnlinePruner<'m> {
    mates: &'m MateSet,
    masked_indices: Vec<Vec<usize>>,
    matrix: PruneMatrix,
    cycle: usize,
}

impl<'m> OnlinePruner<'m> {
    /// Creates a pruner for a campaign horizon of `cycles` cycles.
    pub fn new(mates: &'m MateSet, wires: &[NetId], cycles: usize) -> Self {
        let matrix = PruneMatrix::new(wires, cycles);
        let masked_indices = mates
            .iter()
            .map(|m| {
                m.masked
                    .iter()
                    .filter_map(|w| wires.iter().position(|x| x == w))
                    .collect()
            })
            .collect();
        Self {
            mates,
            masked_indices,
            matrix,
            cycle: 0,
        }
    }

    /// Observes one settled cycle: evaluates every MATE against the live
    /// wire values and records the pruned points.  Call once per cycle,
    /// right before the clock edge (e.g. from
    /// [`mate_sim::Testbench::step_observed`]).
    ///
    /// # Panics
    ///
    /// Panics when called more often than the horizon allows.
    pub fn observe(&mut self, sim: &mut Simulator<'_>) {
        assert!(self.cycle < self.matrix.cycles(), "horizon exceeded");
        for (i, mate) in self.mates.iter().enumerate() {
            if self.masked_indices[i].is_empty() {
                continue;
            }
            if mate.cube.eval(|net| sim.value(net)) {
                for &w in &self.masked_indices[i] {
                    self.matrix.mark_index(w, self.cycle);
                }
            }
        }
        self.cycle += 1;
    }

    /// Finishes the campaign and returns the pruned fault space.
    pub fn into_matrix(self) -> PruneMatrix {
        self.matrix
    }

    /// Convenience driver: runs `harness` for `cycles` cycles with online
    /// pruning attached and returns the matrix.
    pub fn run(
        harness: &dyn DesignHarness,
        mates: &MateSet,
        wires: &[NetId],
        cycles: usize,
    ) -> PruneMatrix {
        let mut pruner = OnlinePruner::new(mates, wires, cycles);
        let mut tb = harness.testbench();
        for _ in 0..cycles {
            tb.step_observed(|sim| pruner.observe(sim));
        }
        pruner.into_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StimulusHarness;
    use crate::DesignHarness;
    use mate::eval::evaluate;
    use mate::{ff_wires, search_design, SearchConfig};
    use mate_netlist::examples::{figure1b, tmr_register};

    /// Online (live) pruning must agree bit-for-bit with offline trace
    /// replay — the equivalence the paper relies on when moving the MATEs
    /// into the FPGA.
    #[test]
    fn online_equals_offline() {
        let (n, topo) = figure1b();
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let input = n.find_net("in").unwrap();
        let harness =
            StimulusHarness::new(n, topo).drive(input, vec![true, false, false, true, true]);

        let online = OnlinePruner::run(&harness, &mates, &wires, 20);
        let trace = harness.testbench().run(20);
        let offline = evaluate(&mates, &trace, &wires);
        assert_eq!(online, offline.matrix);
    }

    #[test]
    fn online_pruner_on_tmr() {
        let (n, topo) = tmr_register();
        let wires = ff_wires(&n, &topo);
        let mates = search_design(&n, &topo, &wires, &SearchConfig::default()).into_mate_set();
        let din = n.find_net("din").unwrap();
        let harness = StimulusHarness::new(n, topo).drive(din, vec![true, false]);
        let matrix = OnlinePruner::run(&harness, &mates, &wires, 12);
        // The voter masks every replica in every cycle on this stimulus.
        assert_eq!(matrix.masked_points(), matrix.total_points());
    }

    #[test]
    #[should_panic(expected = "horizon exceeded")]
    fn observing_past_horizon_panics() {
        let (n, topo) = tmr_register();
        let wires = ff_wires(&n, &topo);
        let mates = mate::MateSet::default();
        let harness = StimulusHarness::new(n, topo);
        let mut pruner = OnlinePruner::new(&mates, &wires, 1);
        let mut tb = harness.testbench();
        tb.step_observed(|sim| pruner.observe(sim));
        tb.step_observed(|sim| pruner.observe(sim));
    }
}
