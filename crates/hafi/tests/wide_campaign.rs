//! The batched campaign engines must be pure performance changes: every
//! path through [`classify_points_engine`] — differential, full-settle,
//! checkpointed scalar, and the scalar fallback — at every lane width and
//! thread count, has to produce classifications bit-identical to one
//! [`inject`] call per fault point.

use proptest::prelude::*;

use mate_hafi::{
    classify_multi_points, classify_multi_points_pruned, classify_points, classify_points_engine,
    classify_points_pruned, golden_run, inject, inject_multi, run_campaign, run_campaign_wide,
    CampaignConfig, CampaignEngine, CampaignPruning, DesignHarness, FaultPoint, FaultSpace,
    LaneWidth, StimulusHarness,
};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};

fn harness_for(seed: u64, cfg: RandomCircuitConfig, cycles: usize) -> StimulusHarness {
    let (netlist, topo) = random_circuit(cfg, seed);
    let inputs = netlist.inputs().to_vec();
    let mut harness = StimulusHarness::new(netlist, topo);
    for (i, input) in inputs.into_iter().enumerate() {
        let values: Vec<bool> = (0..cycles)
            .map(|c| {
                let x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i as u64) << 32 | c as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (x >> 37) & 1 == 1
            })
            .collect();
        harness = harness.drive(input, values);
    }
    harness
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive fault space on random circuits: the wide engine classifies
    /// every point exactly like the scalar `inject` path.
    #[test]
    fn wide_classifications_match_scalar_inject(seed in 0u64..5_000) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 7, gates: 24, outputs: 2 };
        let cycles = 14;
        let harness = harness_for(seed, cfg, cycles + 1);
        // A stimulus-only harness takes the wide path.
        prop_assert!(harness.testbench().can_run_wide());

        let golden = golden_run(&harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points: Vec<FaultPoint> = space.iter().collect();

        let batched = classify_points(&harness, &golden, &points).unwrap();
        for (&point, wide_effect) in points.iter().zip(&batched) {
            let scalar_effect = inject(&harness, &golden, point).unwrap();
            prop_assert_eq!(
                *wide_effect,
                scalar_effect,
                "seed {} ff {:?} cycle {}",
                seed, point.ff, point.cycle
            );
        }
    }

    /// The two campaign drivers agree record-for-record.
    #[test]
    fn wide_campaign_matches_scalar_campaign(seed in 0u64..5_000) {
        let cfg = RandomCircuitConfig { inputs: 4, ffs: 6, gates: 20, outputs: 2 };
        let cycles = 10;
        let harness = harness_for(seed.wrapping_add(13), cfg, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let config = CampaignConfig { cycles, sample: Some(40), seed, ..CampaignConfig::default() };
        let scalar = run_campaign(&harness, &space, &config).unwrap();
        let wide = run_campaign_wide(&harness, &space, &config).unwrap();
        prop_assert_eq!(scalar.records, wide.records);
    }

    /// The differential engine is bit-identical to the full-settle block
    /// engine AND the scalar classifier, across every lane width, on the
    /// exhaustive fault space of random circuits.
    #[test]
    fn differential_matches_full_settle_and_scalar(seed in 0u64..5_000) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 8, gates: 28, outputs: 2 };
        let cycles = 12;
        let harness = harness_for(seed.wrapping_add(101), cfg, cycles + 1);
        prop_assert!(harness.testbench().can_run_wide());

        let golden = golden_run(&harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points: Vec<FaultPoint> = space.iter().collect();
        let scalar: Vec<_> = points
            .iter()
            .map(|&p| inject(&harness, &golden, p).unwrap())
            .collect();
        for lanes in LaneWidth::all() {
            for engine in CampaignEngine::all() {
                let batched =
                    classify_points_engine(&harness, &golden, &points, lanes, engine).unwrap();
                prop_assert_eq!(
                    &scalar, &batched,
                    "seed {} {} engine {} lanes", seed, engine, lanes
                );
            }
        }
    }

    /// Thread sharding is invisible per engine: any thread count reproduces
    /// the single-threaded records of the same engine, and both engines
    /// produce the same records.
    #[test]
    fn engines_match_across_threads(seed in 0u64..5_000, threads in 2usize..5) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 6, gates: 22, outputs: 2 };
        let cycles = 10;
        let harness = harness_for(seed.wrapping_add(57), cfg, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let base = CampaignConfig {
            cycles,
            sample: Some(30),
            seed,
            threads: 1,
            lanes: LaneWidth::W64,
            engine: CampaignEngine::FullSettle,
            pruning: CampaignPruning::Off,
        };
        let reference = run_campaign_wide(&harness, &space, &base).unwrap();
        for engine in CampaignEngine::all() {
            for lanes in LaneWidth::all() {
                let sharded = run_campaign_wide(
                    &harness,
                    &space,
                    &CampaignConfig { threads, lanes, engine, ..base },
                ).unwrap();
                prop_assert_eq!(
                    &reference.records, &sharded.records,
                    "{} engine {} lanes {} threads", engine, lanes, threads
                );
            }
        }
    }

    /// Batched multi-SEU sets (one whole set per lane) classify exactly
    /// like one scalar `inject_multi` per set — the `core/src/multi.rs`
    /// fault model on the differential engine.
    #[test]
    fn multi_seu_sets_match_scalar_inject_multi(seed in 0u64..5_000) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 7, gates: 24, outputs: 2 };
        let cycles = 10;
        let harness = harness_for(seed.wrapping_add(23), cfg, cycles + 1);
        prop_assert!(harness.testbench().can_run_wide());

        let golden = golden_run(&harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points: Vec<FaultPoint> = space.iter().collect();
        // Pair up points within each cycle into 2- and 3-bit sets, plus the
        // singletons, mimicking the adjacent-FF sets of the multi-SEU
        // search.
        let mut sets: Vec<Vec<FaultPoint>> = Vec::new();
        for cycle in 0..cycles {
            let in_cycle: Vec<FaultPoint> =
                points.iter().copied().filter(|p| p.cycle == cycle).collect();
            for pair in in_cycle.windows(2) {
                sets.push(pair.to_vec());
            }
            for triple in in_cycle.windows(3).step_by(3) {
                sets.push(triple.to_vec());
            }
            if let Some(&first) = in_cycle.first() {
                sets.push(vec![first]);
            }
        }
        let scalar: Vec<_> = sets
            .iter()
            .map(|s| inject_multi(&harness, &golden, s).unwrap())
            .collect();
        for lanes in LaneWidth::all() {
            let batched = classify_multi_points(&harness, &golden, &sets, lanes).unwrap();
            prop_assert_eq!(&scalar, &batched, "seed {} {} lanes", seed, lanes);
        }
    }

    /// Fault-space collapsing is invisible in the records: the pruned
    /// classification is bit-identical to the unpruned one across engines ×
    /// lane widths on the exhaustive fault space, and the stats add up.
    #[test]
    fn pruned_classification_matches_unpruned(seed in 0u64..5_000) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 8, gates: 28, outputs: 2 };
        let cycles = 12;
        let harness = harness_for(seed.wrapping_add(211), cfg, cycles + 1);
        prop_assert!(harness.testbench().can_run_wide());

        let golden = golden_run(&harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points: Vec<FaultPoint> = space.iter().collect();
        let scalar: Vec<_> = points
            .iter()
            .map(|&p| inject(&harness, &golden, p).unwrap())
            .collect();
        for lanes in LaneWidth::all() {
            for engine in CampaignEngine::all() {
                let (unpruned, off_stats) = classify_points_pruned(
                    &harness, &golden, &points, lanes, engine, CampaignPruning::Off,
                ).unwrap();
                let (pruned, stats) = classify_points_pruned(
                    &harness, &golden, &points, lanes, engine, CampaignPruning::Collapse,
                ).unwrap();
                prop_assert_eq!(&scalar, &unpruned, "off: seed {seed} {engine} {lanes}");
                prop_assert_eq!(
                    &scalar, &pruned,
                    "collapse: seed {} {} engine {} lanes", seed, engine, lanes
                );
                prop_assert_eq!(off_stats.skipped, 0);
                prop_assert_eq!(off_stats.fallback, points.len());
                prop_assert_eq!(stats.points, points.len());
                prop_assert_eq!(stats.skipped + stats.fallback, stats.points);
                prop_assert!(stats.classes <= stats.points);
            }
        }
    }

    /// Collapsing under thread sharding: any thread count × pruning mode
    /// reproduces the single-threaded unpruned records.
    #[test]
    fn pruned_campaign_matches_across_threads(seed in 0u64..5_000, threads in 2usize..5) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 6, gates: 22, outputs: 2 };
        let cycles = 10;
        let harness = harness_for(seed.wrapping_add(307), cfg, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let base = CampaignConfig {
            cycles,
            sample: Some(30),
            seed,
            threads: 1,
            lanes: LaneWidth::W64,
            engine: CampaignEngine::FullSettle,
            pruning: CampaignPruning::Off,
        };
        let reference = run_campaign_wide(&harness, &space, &base).unwrap();
        for pruning in CampaignPruning::all() {
            for engine in CampaignEngine::all() {
                for t in [1, threads] {
                    let run = run_campaign_wide(
                        &harness,
                        &space,
                        &CampaignConfig { threads: t, engine, pruning, ..base },
                    ).unwrap();
                    prop_assert_eq!(
                        &reference.records, &run.records,
                        "{} pruning {} engine {} threads", pruning, engine, t
                    );
                    prop_assert_eq!(run.pruning.points, run.records.len());
                }
            }
        }
    }

    /// Multi-SEU collapsing generalizes soundly: pruned multi-set
    /// classification is bit-identical to scalar `inject_multi`, including
    /// duplicated points inside a set (whose flips cancel in pairs).
    #[test]
    fn pruned_multi_seu_sets_match_scalar(seed in 0u64..5_000) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 7, gates: 24, outputs: 2 };
        let cycles = 10;
        let harness = harness_for(seed.wrapping_add(409), cfg, cycles + 1);
        prop_assert!(harness.testbench().can_run_wide());

        let golden = golden_run(&harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points: Vec<FaultPoint> = space.iter().collect();
        let mut sets: Vec<Vec<FaultPoint>> = Vec::new();
        for cycle in 0..cycles {
            let in_cycle: Vec<FaultPoint> =
                points.iter().copied().filter(|p| p.cycle == cycle).collect();
            for pair in in_cycle.windows(2) {
                sets.push(pair.to_vec());
            }
            if let Some(&first) = in_cycle.first() {
                sets.push(vec![first]);
                // A double flip of one flip-flop cancels to a no-op set.
                sets.push(vec![first, first]);
            }
        }
        let scalar: Vec<_> = sets
            .iter()
            .map(|s| inject_multi(&harness, &golden, s).unwrap())
            .collect();
        for lanes in LaneWidth::all() {
            for pruning in CampaignPruning::all() {
                let (batched, stats) =
                    classify_multi_points_pruned(&harness, &golden, &sets, lanes, pruning)
                        .unwrap();
                prop_assert_eq!(
                    &scalar, &batched,
                    "seed {} {} lanes {} pruning", seed, lanes, pruning
                );
                prop_assert_eq!(stats.points, sets.len());
            }
        }
    }
}

mod checkpoint_path {
    use super::*;
    use mate_cores::avr::programs as avr_programs;
    use mate_cores::avr::system::AvrSystem;
    use mate_cores::msp430::programs as msp_programs;
    use mate_cores::msp430::system::Msp430System;
    use mate_cores::Termination;
    use mate_sim::Testbench;

    struct AvrHarness {
        sys: AvrSystem,
        program: Vec<u16>,
        dmem: Vec<u8>,
    }

    impl DesignHarness for AvrHarness {
        fn netlist(&self) -> &mate_netlist::Netlist {
            self.sys.netlist()
        }
        fn topology(&self) -> &mate_netlist::Topology {
            self.sys.topology()
        }
        fn testbench(&self) -> Testbench<'_> {
            self.sys.testbench(&self.program, &self.dmem).0
        }
    }

    struct MspHarness {
        sys: Msp430System,
        image: Vec<u16>,
    }

    impl DesignHarness for MspHarness {
        fn netlist(&self) -> &mate_netlist::Netlist {
            self.sys.netlist()
        }
        fn topology(&self) -> &mate_netlist::Topology {
            self.sys.topology()
        }
        fn testbench(&self) -> Testbench<'_> {
            self.sys.testbench(&self.image).0
        }
    }

    fn assert_checkpoint_matches_scalar(harness: &dyn DesignHarness, cycles: usize, sample: usize) {
        // The cores carry external memory devices, so the wide path is out —
        // but their memories snapshot, which selects the checkpoint engine.
        let probe = harness.testbench();
        assert!(!probe.can_run_wide(), "cores have devices");
        assert!(probe.can_checkpoint(), "core memories must snapshot");

        let golden = golden_run(harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points = space.sample(sample, 42);
        let batched = classify_points(harness, &golden, &points).unwrap();
        for (&point, checkpointed) in points.iter().zip(&batched) {
            let scalar = inject(harness, &golden, point).unwrap();
            assert_eq!(
                *checkpointed, scalar,
                "ff {:?} cycle {}",
                point.ff, point.cycle
            );
        }
    }

    #[test]
    fn avr_checkpoint_classifications_match_scalar_inject() {
        let harness = AvrHarness {
            sys: AvrSystem::new(),
            program: avr_programs::fib(Termination::Loop),
            dmem: Vec::new(),
        };
        assert_checkpoint_matches_scalar(&harness, 80, 48);
    }

    #[test]
    fn msp430_checkpoint_classifications_match_scalar_inject() {
        let harness = MspHarness {
            sys: Msp430System::new(),
            image: msp_programs::fib(Termination::Loop),
        };
        assert_checkpoint_matches_scalar(&harness, 80, 48);
    }
}
