//! The batched campaign engine must be a pure performance change: every
//! path through [`classify_points`] — wide, checkpointed scalar, and the
//! scalar fallback — has to produce classifications bit-identical to one
//! [`inject`] call per fault point.

use proptest::prelude::*;

use mate_hafi::{
    classify_points, golden_run, inject, run_campaign, run_campaign_wide, CampaignConfig,
    DesignHarness, FaultPoint, FaultSpace, StimulusHarness,
};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};

fn harness_for(seed: u64, cfg: RandomCircuitConfig, cycles: usize) -> StimulusHarness {
    let (netlist, topo) = random_circuit(cfg, seed);
    let inputs = netlist.inputs().to_vec();
    let mut harness = StimulusHarness::new(netlist, topo);
    for (i, input) in inputs.into_iter().enumerate() {
        let values: Vec<bool> = (0..cycles)
            .map(|c| {
                let x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i as u64) << 32 | c as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (x >> 37) & 1 == 1
            })
            .collect();
        harness = harness.drive(input, values);
    }
    harness
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive fault space on random circuits: the wide engine classifies
    /// every point exactly like the scalar `inject` path.
    #[test]
    fn wide_classifications_match_scalar_inject(seed in 0u64..5_000) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 7, gates: 24, outputs: 2 };
        let cycles = 14;
        let harness = harness_for(seed, cfg, cycles + 1);
        // A stimulus-only harness takes the wide path.
        prop_assert!(harness.testbench().can_run_wide());

        let golden = golden_run(&harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points: Vec<FaultPoint> = space.iter().collect();

        let batched = classify_points(&harness, &golden, &points).unwrap();
        for (&point, wide_effect) in points.iter().zip(&batched) {
            let scalar_effect = inject(&harness, &golden, point).unwrap();
            prop_assert_eq!(
                *wide_effect,
                scalar_effect,
                "seed {} ff {:?} cycle {}",
                seed, point.ff, point.cycle
            );
        }
    }

    /// The two campaign drivers agree record-for-record.
    #[test]
    fn wide_campaign_matches_scalar_campaign(seed in 0u64..5_000) {
        let cfg = RandomCircuitConfig { inputs: 4, ffs: 6, gates: 20, outputs: 2 };
        let cycles = 10;
        let harness = harness_for(seed.wrapping_add(13), cfg, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let config = CampaignConfig { cycles, sample: Some(40), seed, ..CampaignConfig::default() };
        let scalar = run_campaign(&harness, &space, &config).unwrap();
        let wide = run_campaign_wide(&harness, &space, &config).unwrap();
        prop_assert_eq!(scalar.records, wide.records);
    }
}

mod checkpoint_path {
    use super::*;
    use mate_cores::avr::programs as avr_programs;
    use mate_cores::avr::system::AvrSystem;
    use mate_cores::msp430::programs as msp_programs;
    use mate_cores::msp430::system::Msp430System;
    use mate_cores::Termination;
    use mate_sim::Testbench;

    struct AvrHarness {
        sys: AvrSystem,
        program: Vec<u16>,
        dmem: Vec<u8>,
    }

    impl DesignHarness for AvrHarness {
        fn netlist(&self) -> &mate_netlist::Netlist {
            self.sys.netlist()
        }
        fn topology(&self) -> &mate_netlist::Topology {
            self.sys.topology()
        }
        fn testbench(&self) -> Testbench<'_> {
            self.sys.testbench(&self.program, &self.dmem).0
        }
    }

    struct MspHarness {
        sys: Msp430System,
        image: Vec<u16>,
    }

    impl DesignHarness for MspHarness {
        fn netlist(&self) -> &mate_netlist::Netlist {
            self.sys.netlist()
        }
        fn topology(&self) -> &mate_netlist::Topology {
            self.sys.topology()
        }
        fn testbench(&self) -> Testbench<'_> {
            self.sys.testbench(&self.image).0
        }
    }

    fn assert_checkpoint_matches_scalar(harness: &dyn DesignHarness, cycles: usize, sample: usize) {
        // The cores carry external memory devices, so the wide path is out —
        // but their memories snapshot, which selects the checkpoint engine.
        let probe = harness.testbench();
        assert!(!probe.can_run_wide(), "cores have devices");
        assert!(probe.can_checkpoint(), "core memories must snapshot");

        let golden = golden_run(harness, cycles + 1);
        let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
        let points = space.sample(sample, 42);
        let batched = classify_points(harness, &golden, &points).unwrap();
        for (&point, checkpointed) in points.iter().zip(&batched) {
            let scalar = inject(harness, &golden, point).unwrap();
            assert_eq!(
                *checkpointed, scalar,
                "ff {:?} cycle {}",
                point.ff, point.cycle
            );
        }
    }

    #[test]
    fn avr_checkpoint_classifications_match_scalar_inject() {
        let harness = AvrHarness {
            sys: AvrSystem::new(),
            program: avr_programs::fib(Termination::Loop),
            dmem: Vec::new(),
        };
        assert_checkpoint_matches_scalar(&harness, 80, 48);
    }

    #[test]
    fn msp430_checkpoint_classifications_match_scalar_inject() {
        let harness = MspHarness {
            sys: Msp430System::new(),
            image: msp_programs::fib(Termination::Loop),
        };
        assert_checkpoint_matches_scalar(&harness, 80, 48);
    }
}
