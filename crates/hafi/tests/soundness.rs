//! The keystone property: every fault-space point the MATE analysis prunes
//! is provably masked within one clock cycle — checked by *exhaustive* fault
//! injection on randomly generated synchronous circuits and by sampled
//! injection on the CPU cores' workloads.

use proptest::prelude::*;

use mate::{ff_wires, search_design, SearchConfig};
use mate_hafi::{validate_mates, DesignHarness, StimulusHarness};
use mate_netlist::random::{random_circuit, RandomCircuitConfig};

fn harness_for(seed: u64, cfg: RandomCircuitConfig, cycles: usize) -> StimulusHarness {
    let (netlist, topo) = random_circuit(cfg, seed);
    let inputs = netlist.inputs().to_vec();
    let mut harness = StimulusHarness::new(netlist, topo);
    // Deterministic pseudo-random stimuli derived from the seed.
    for (i, input) in inputs.into_iter().enumerate() {
        let values: Vec<bool> = (0..cycles)
            .map(|c| {
                let x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i as u64) << 32 | c as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (x >> 37) & 1 == 1
            })
            .collect();
        harness = harness.drive(input, values);
    }
    harness
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive soundness on small random circuits: every claimed-benign
    /// point is injected and must be masked within one cycle.
    #[test]
    fn mate_claims_hold_under_exhaustive_injection(seed in 0u64..10_000) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 6, gates: 20, outputs: 2 };
        let cycles = 24;
        let harness = harness_for(seed, cfg, cycles + 1);
        let wires = ff_wires(harness.netlist(), harness.topology());
        let mates = search_design(
            harness.netlist(),
            harness.topology(),
            &wires,
            &SearchConfig::default(),
        )
        .into_mate_set();
        let (_, validation) = validate_mates(&harness, &mates, &wires, cycles, None, seed).unwrap();
        prop_assert!(
            validation.sound(),
            "seed {seed}: violations {:?}",
            validation.violations
        );
    }

    /// Same property on beefier circuits with MUX/AOI-rich logic, sampled.
    #[test]
    fn mate_claims_hold_on_larger_random_circuits(seed in 0u64..2_000) {
        let cfg = RandomCircuitConfig { inputs: 5, ffs: 12, gates: 60, outputs: 3 };
        let cycles = 16;
        let harness = harness_for(seed.wrapping_add(77), cfg, cycles + 1);
        let wires = ff_wires(harness.netlist(), harness.topology());
        let mates = search_design(
            harness.netlist(),
            harness.topology(),
            &wires,
            &SearchConfig::default(),
        )
        .into_mate_set();
        let (_, validation) =
            validate_mates(&harness, &mates, &wires, cycles, Some(64), seed).unwrap();
        prop_assert!(
            validation.sound(),
            "seed {seed}: violations {:?}",
            validation.violations
        );
    }
}

mod core_soundness {
    use super::*;
    use mate_cores::avr::programs as avr_programs;
    use mate_cores::avr::system::AvrSystem;
    use mate_cores::msp430::programs as msp_programs;
    use mate_cores::msp430::system::Msp430System;
    use mate_cores::Termination;
    use mate_sim::Testbench;

    struct AvrHarness {
        sys: AvrSystem,
        program: Vec<u16>,
        dmem: Vec<u8>,
    }

    impl DesignHarness for AvrHarness {
        fn netlist(&self) -> &mate_netlist::Netlist {
            self.sys.netlist()
        }
        fn topology(&self) -> &mate_netlist::Topology {
            self.sys.topology()
        }
        fn testbench(&self) -> Testbench<'_> {
            self.sys.testbench(&self.program, &self.dmem).0
        }
    }

    struct MspHarness {
        sys: Msp430System,
        image: Vec<u16>,
    }

    impl DesignHarness for MspHarness {
        fn netlist(&self) -> &mate_netlist::Netlist {
            self.sys.netlist()
        }
        fn topology(&self) -> &mate_netlist::Topology {
            self.sys.topology()
        }
        fn testbench(&self) -> Testbench<'_> {
            self.sys.testbench(&self.image).0
        }
    }

    /// A cheaper search configuration for in-test use; the full paper
    /// parameters run in the benches.
    fn test_config() -> SearchConfig {
        SearchConfig {
            depth: 5,
            max_terms: 3,
            max_candidates: 2_000,
            max_paths: 1024,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn avr_fib_claims_hold_under_sampled_injection() {
        let harness = AvrHarness {
            sys: AvrSystem::new(),
            program: avr_programs::fib(Termination::Loop),
            dmem: Vec::new(),
        };
        let wires = ff_wires(harness.netlist(), harness.topology());
        let mates = search_design(
            harness.netlist(),
            harness.topology(),
            &wires,
            &test_config(),
        )
        .into_mate_set();
        assert!(!mates.is_empty(), "AVR must yield MATEs");
        let (report, validation) =
            validate_mates(&harness, &mates, &wires, 160, Some(120), 1).unwrap();
        assert!(report.masked_fraction() > 0.0);
        assert!(
            validation.sound(),
            "violations: {:?}",
            validation.violations
        );
    }

    #[test]
    fn msp430_fib_claims_hold_under_sampled_injection() {
        let harness = MspHarness {
            sys: Msp430System::new(),
            image: msp_programs::fib(Termination::Loop),
        };
        let wires = ff_wires(harness.netlist(), harness.topology());
        let mates = search_design(
            harness.netlist(),
            harness.topology(),
            &wires,
            &test_config(),
        )
        .into_mate_set();
        assert!(!mates.is_empty(), "MSP430 must yield MATEs");
        let (report, validation) =
            validate_mates(&harness, &mates, &wires, 160, Some(120), 2).unwrap();
        assert!(report.masked_fraction() > 0.0);
        assert!(
            validation.sound(),
            "violations: {:?}",
            validation.violations
        );
    }
}

mod extensions {
    use super::*;
    use mate::multi::search_wire_set;
    use mate_hafi::{golden_run, inject_multi, inject_persistent, FaultPoint};

    /// Section 6.2 extension: multi-bit MATEs.  A 2-bit MATE claims the
    /// *simultaneous* flip of both wires is benign; verify by double
    /// injection on random circuits.
    #[test]
    fn two_bit_mates_hold_under_double_injection() {
        let cfg = RandomCircuitConfig {
            inputs: 3,
            ffs: 6,
            gates: 20,
            outputs: 2,
        };
        let cycles = 16;
        let mut checked = 0usize;
        for seed in 0..40u64 {
            let harness = harness_for(seed.wrapping_mul(31).wrapping_add(5), cfg, cycles + 1);
            let netlist = harness.netlist();
            let topo = harness.topology();
            let golden = golden_run(&harness, cycles + 1);
            let ffs: Vec<_> = topo
                .seq_cells()
                .iter()
                .map(|&ff| (ff, netlist.cell(ff).output()))
                .collect();
            for i in 0..ffs.len() {
                for j in (i + 1)..ffs.len() {
                    let wires = [ffs[i].1, ffs[j].1];
                    let result = search_wire_set(netlist, topo, &wires, &SearchConfig::default());
                    for mate in &result.mates {
                        for cycle in 0..cycles {
                            let triggered = mate.cube.eval(|net| golden.trace.value(cycle, net));
                            if !triggered {
                                continue;
                            }
                            let points = [
                                FaultPoint {
                                    ff: ffs[i].0,
                                    wire: ffs[i].1,
                                    cycle,
                                },
                                FaultPoint {
                                    ff: ffs[j].0,
                                    wire: ffs[j].1,
                                    cycle,
                                },
                            ];
                            let effect = inject_multi(&harness, &golden, &points).unwrap();
                            assert!(
                                effect.is_masked_one_cycle(),
                                "seed {seed} pair ({},{}) cycle {cycle}: {effect}",
                                netlist.net(wires[0]).name(),
                                netlist.net(wires[1]).name()
                            );
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 20, "only {checked} double-injections exercised");
    }

    /// Section 6.2 extension: upsets that hold several cycles are benign
    /// when the single-bit MATE triggers in every affected cycle.
    #[test]
    fn persistent_upsets_masked_when_mates_cover_every_cycle() {
        let cfg = RandomCircuitConfig {
            inputs: 3,
            ffs: 8,
            gates: 24,
            outputs: 2,
        };
        let cycles = 24;
        let hold = 3usize;
        let mut checked = 0usize;
        for seed in 0..60u64 {
            let harness = harness_for(seed.wrapping_mul(17).wrapping_add(3), cfg, cycles + 1);
            let netlist = harness.netlist();
            let topo = harness.topology();
            let wires = ff_wires(netlist, topo);
            let mates =
                search_design(netlist, topo, &wires, &SearchConfig::default()).into_mate_set();
            let golden = golden_run(&harness, cycles + 1);
            let report = mate::eval::evaluate(&mates, &golden.trace.truncated(cycles), &wires);
            let ff_of: std::collections::HashMap<_, _> = topo
                .seq_cells()
                .iter()
                .map(|&ff| (netlist.cell(ff).output(), ff))
                .collect();
            for &wire in &wires {
                for start in 0..cycles.saturating_sub(hold) {
                    let all_masked =
                        (start..start + hold).all(|c| report.matrix.is_masked(wire, c));
                    if !all_masked {
                        continue;
                    }
                    let effect = inject_persistent(
                        &harness,
                        &golden,
                        FaultPoint {
                            ff: ff_of[&wire],
                            wire,
                            cycle: start,
                        },
                        hold,
                    )
                    .unwrap();
                    assert!(
                        effect.is_silent(),
                        "seed {seed} wire {} start {start}: {effect}",
                        netlist.net(wire).name()
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "only {checked} persistent upsets exercised");
    }
}
