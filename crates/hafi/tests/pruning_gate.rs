//! CI equivalence gate for fault-space collapsing.
//!
//! The collapsing layer (`mate_hafi::collapse`) must be an invisible
//! optimization: for every harness, engine, and thread count, a campaign
//! with `CampaignPruning::Collapse` must produce **bit-identical records**
//! to the same campaign with `CampaignPruning::Off`.  This test is the
//! gate CI runs on both processor cores (AVR and MSP430) plus a
//! wide-capable netlist workload where collapsing actually engages.
//!
//! The cores carry external memory devices, so their campaigns take the
//! checkpoint path where collapsing is structurally impossible — the gate
//! then asserts the stats honestly report an unpruned run instead of
//! pretending to have skipped work.

use mate_cores::avr::programs as avr_programs;
use mate_cores::avr::system::AvrSystem;
use mate_cores::msp430::programs as msp_programs;
use mate_cores::msp430::system::Msp430System;
use mate_cores::Termination;
use mate_hafi::{
    run_campaign_wide, CampaignConfig, CampaignEngine, CampaignPruning, DesignHarness, FaultSpace,
    LaneWidth, StimulusHarness,
};
use mate_netlist::examples::tmr_register;
use mate_netlist::random::{random_circuit, RandomCircuitConfig};
use mate_sim::Testbench;

struct AvrHarness {
    sys: AvrSystem,
    program: Vec<u16>,
    dmem: Vec<u8>,
}

impl DesignHarness for AvrHarness {
    fn netlist(&self) -> &mate_netlist::Netlist {
        self.sys.netlist()
    }
    fn topology(&self) -> &mate_netlist::Topology {
        self.sys.topology()
    }
    fn testbench(&self) -> Testbench<'_> {
        self.sys.testbench(&self.program, &self.dmem).0
    }
}

struct MspHarness {
    sys: Msp430System,
    image: Vec<u16>,
}

impl DesignHarness for MspHarness {
    fn netlist(&self) -> &mate_netlist::Netlist {
        self.sys.netlist()
    }
    fn topology(&self) -> &mate_netlist::Topology {
        self.sys.topology()
    }
    fn testbench(&self) -> Testbench<'_> {
        self.sys.testbench(&self.image).0
    }
}

/// Runs the same sweep with pruning off and on and asserts the records and
/// the effect histogram are identical.  Returns the (off, on) results so
/// callers can make workload-specific assertions about the stats.
fn assert_pruning_equivalent(
    harness: &(dyn DesignHarness + Sync),
    cycles: usize,
    sample: Option<usize>,
) -> (mate_hafi::CampaignResult, mate_hafi::CampaignResult) {
    let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
    let run = |pruning: CampaignPruning| {
        let config = CampaignConfig {
            cycles,
            sample,
            seed: 42,
            threads: 1,
            lanes: LaneWidth::default(),
            engine: CampaignEngine::default(),
            pruning,
        };
        run_campaign_wide(harness, &space, &config).unwrap()
    };
    let off = run(CampaignPruning::Off);
    let on = run(CampaignPruning::Collapse);
    assert_eq!(
        off.records, on.records,
        "collapsing changed campaign records"
    );
    assert_eq!(
        off.histogram(),
        on.histogram(),
        "collapsing changed benign/error counts"
    );
    assert!(!off.records.is_empty(), "gate ran an empty campaign");
    (off, on)
}

#[test]
fn avr_core_sweep_identical_with_and_without_collapsing() {
    let harness = AvrHarness {
        sys: AvrSystem::new(),
        program: avr_programs::fib(Termination::Loop),
        dmem: Vec::new(),
    };
    assert!(
        !harness.testbench().can_run_wide(),
        "AVR core should carry devices"
    );
    let (_, on) = assert_pruning_equivalent(&harness, 80, Some(48));
    // Checkpoint path: collapsing cannot engage, and the stats say so.
    assert_eq!(on.pruning.points, on.records.len());
    assert_eq!(on.pruning.fallback, on.records.len());
    assert_eq!(on.pruning.skipped, 0);
    assert_eq!(on.pruning.classes, 0);
}

#[test]
fn msp430_core_sweep_identical_with_and_without_collapsing() {
    let harness = MspHarness {
        sys: Msp430System::new(),
        image: msp_programs::fib(Termination::Loop),
    };
    assert!(
        !harness.testbench().can_run_wide(),
        "MSP430 core should carry devices"
    );
    let (_, on) = assert_pruning_equivalent(&harness, 80, Some(48));
    assert_eq!(on.pruning.fallback, on.records.len());
    assert_eq!(on.pruning.skipped, 0);
}

#[test]
fn tmr_wide_sweep_identical_and_collapsing_engages() {
    let (n, topo) = tmr_register();
    let load = n.find_net("load").unwrap();
    let din = n.find_net("din").unwrap();
    let cycles = 48;
    let harness = StimulusHarness::new(n, topo)
        .drive(load, (0..=cycles).map(|c| c % 4 == 0).collect::<Vec<_>>())
        .drive(din, (0..=cycles).map(|c| c % 8 < 4).collect::<Vec<_>>());
    assert!(harness.testbench().can_run_wide());
    let (_, on) = assert_pruning_equivalent(&harness, cycles, None);
    // Periodic stimuli on a voted register: collapsing must actually prune.
    assert!(on.pruning.classes > 0, "no equivalence classes formed");
    assert!(on.pruning.skipped > 0, "no points were skipped");
    assert!(
        on.pruning.probes < on.pruning.points,
        "collapsing probed every point"
    );
}

#[test]
fn random_wide_sweep_identical_across_engines_and_threads() {
    let cfg = RandomCircuitConfig {
        inputs: 4,
        ffs: 48,
        gates: 180,
        outputs: 3,
    };
    let (n, topo) = random_circuit(cfg, 7);
    let inputs = n.inputs().to_vec();
    let cycles = 20;
    let mut harness = StimulusHarness::new(n, topo);
    for (i, input) in inputs.into_iter().enumerate() {
        let values: Vec<bool> = (0..=cycles).map(|c| (c + i) % 3 == 0).collect();
        harness = harness.drive(input, values);
    }
    let space = FaultSpace::all_ffs(harness.netlist(), harness.topology(), cycles);
    let reference = {
        let config = CampaignConfig {
            cycles,
            sample: None,
            seed: 0,
            threads: 1,
            lanes: LaneWidth::W64,
            engine: CampaignEngine::FullSettle,
            pruning: CampaignPruning::Off,
        };
        run_campaign_wide(&harness, &space, &config).unwrap()
    };
    for engine in [CampaignEngine::Auto, CampaignEngine::Differential] {
        for threads in [1, 3] {
            let config = CampaignConfig {
                cycles,
                sample: None,
                seed: 0,
                threads,
                lanes: LaneWidth::W256,
                engine,
                pruning: CampaignPruning::Collapse,
            };
            let run = run_campaign_wide(&harness, &space, &config).unwrap();
            assert_eq!(
                reference.records, run.records,
                "engine {engine} threads {threads}"
            );
            assert_eq!(run.pruning.points, run.records.len());
        }
    }
}
