//! Stimulus and device harness around the [`Simulator`].

use mate_netlist::prelude::*;

use crate::engine::{SimCheckpoint, Simulator};
use crate::trace::WaveTrace;
use crate::wide::{BlockSimulator, WideSimulator};

/// A per-cycle stimulus for one primary input.
pub struct InputWave {
    wave: Box<dyn FnMut(u64) -> bool>,
    /// `true` when the wave is a pure function of the cycle number, i.e. it
    /// may be sampled at an arbitrary cycle without replaying the prefix.
    pure: bool,
}

impl InputWave {
    /// A constant level.
    pub fn constant(value: bool) -> Self {
        Self {
            wave: Box::new(move |_| value),
            pure: true,
        }
    }

    /// High for the first `cycles` cycles, low afterwards (a reset pulse).
    pub fn pulse(cycles: u64) -> Self {
        Self {
            wave: Box::new(move |c| c < cycles),
            pure: true,
        }
    }

    /// Values from a vector; the last value is held once exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_vec(values: Vec<bool>) -> Self {
        assert!(!values.is_empty(), "stimulus vector must not be empty");
        Self {
            wave: Box::new(move |c| *values.get(c as usize).unwrap_or(values.last().unwrap())),
            pure: true,
        }
    }

    /// An arbitrary function of the cycle number.
    ///
    /// The closure may be stateful, so the wave is treated as *impure*:
    /// checkpoint-based and wide campaigns fall back to replaying from cycle
    /// 0.  Use [`InputWave::from_fn_pure`] for stateless closures.
    pub fn from_fn(f: impl FnMut(u64) -> bool + 'static) -> Self {
        Self {
            wave: Box::new(f),
            pure: false,
        }
    }

    /// A *pure* function of the cycle number.
    ///
    /// By constructing the wave this way the caller asserts the closure's
    /// result depends only on its argument; campaigns may then sample it at
    /// arbitrary cycles (out of order, repeatedly) when seeding runs from
    /// checkpoints.
    pub fn from_fn_pure(f: impl Fn(u64) -> bool + 'static) -> Self {
        Self {
            wave: Box::new(f),
            pure: true,
        }
    }

    /// `true` when the wave may be sampled at arbitrary cycles.
    pub fn is_pure(&self) -> bool {
        self.pure
    }

    fn sample(&mut self, cycle: u64) -> bool {
        (self.wave)(cycle)
    }
}

impl std::fmt::Debug for InputWave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InputWave")
    }
}

/// A reactive external device (memory, peripheral) hooked into the cycle
/// loop.
///
/// The device closure runs after the first combinational settle of each
/// cycle: it may read settled outputs (e.g. an address bus) and drive
/// primary inputs (e.g. a read-data bus).  The harness settles again before
/// capturing the trace and latching, so device responses behave like
/// asynchronous-read memories.
///
/// **Contract:** nets driven by a device must not combinationally influence
/// the outputs the device reads, otherwise a second settle round would be
/// required; CPU-style cores (address from registers, data into registers)
/// satisfy this naturally.
pub type Device<'n> = Box<dyn FnMut(&mut Simulator<'n>) + 'n>;

/// A device whose external state (memory contents, peripheral registers) can
/// be captured and restored.
///
/// Campaigns use this to checkpoint a golden run at each injection cycle and
/// seed faulty runs from there instead of replaying the warm-up prefix; a
/// testbench whose devices all implement this trait reports
/// [`Testbench::can_checkpoint`].
pub trait SnapshotDevice<'n> {
    /// Runs the device for the current cycle, like a plain [`Device`]
    /// closure: read settled outputs, drive primary inputs.
    fn on_cycle(&mut self, sim: &mut Simulator<'n>);

    /// Serializes every piece of state mutated by [`Self::on_cycle`].
    /// Read-only devices (ROMs) return an empty vector.
    fn state(&self) -> Vec<u64>;

    /// Restores state previously captured by [`Self::state`].
    ///
    /// # Panics
    ///
    /// Implementations panic when `state` has the wrong shape.
    fn load_state(&mut self, state: &[u64]);
}

/// A device slot: either an opaque closure or a snapshotable device.
enum DeviceSlot<'n> {
    Opaque(Device<'n>),
    Snapshot(Box<dyn SnapshotDevice<'n> + 'n>),
}

impl<'n> DeviceSlot<'n> {
    fn on_cycle(&mut self, sim: &mut Simulator<'n>) {
        match self {
            DeviceSlot::Opaque(f) => f(sim),
            DeviceSlot::Snapshot(d) => d.on_cycle(sim),
        }
    }
}

/// A full checkpoint of a testbench: simulator state plus the state of every
/// snapshotable device.  Captured by [`Testbench::checkpoint`].
#[derive(Clone, Debug)]
pub struct TestbenchCheckpoint {
    sim: SimCheckpoint,
    devices: Vec<Vec<u64>>,
}

impl TestbenchCheckpoint {
    /// The cycle counter at capture time.
    pub fn cycle(&self) -> u64 {
        self.sim.cycle()
    }
}

/// Drives a netlist cycle by cycle and records a [`WaveTrace`].
///
/// # Example
///
/// ```
/// use mate_netlist::examples::counter;
/// use mate_sim::{InputWave, Testbench};
///
/// let (n, topo) = counter(3);
/// let mut tb = Testbench::new(&n, &topo);
/// tb.drive(n.find_net("en").unwrap(), InputWave::constant(true));
/// let trace = tb.run(10);
/// assert_eq!(trace.num_cycles(), 10);
/// ```
pub struct Testbench<'n> {
    sim: Simulator<'n>,
    stimuli: Vec<(NetId, InputWave)>,
    devices: Vec<DeviceSlot<'n>>,
}

impl<'n> Testbench<'n> {
    /// Creates a testbench around a fresh simulator.
    pub fn new(netlist: &'n Netlist, topo: &'n Topology) -> Self {
        Self {
            sim: Simulator::new(netlist, topo),
            stimuli: Vec::new(),
            devices: Vec::new(),
        }
    }

    /// Attaches a stimulus to a primary input.
    ///
    /// # Panics
    ///
    /// Panics (at run time) if `net` is not a primary input.
    pub fn drive(&mut self, net: NetId, wave: InputWave) -> &mut Self {
        self.stimuli.push((net, wave));
        self
    }

    /// Attaches a reactive device as an opaque closure.  The testbench then
    /// cannot be checkpointed; prefer [`Testbench::attach_snapshot`] for
    /// devices that can serialize their state.
    pub fn attach(&mut self, device: Device<'n>) -> &mut Self {
        self.devices.push(DeviceSlot::Opaque(device));
        self
    }

    /// Attaches a snapshotable reactive device.
    pub fn attach_snapshot(&mut self, device: Box<dyn SnapshotDevice<'n> + 'n>) -> &mut Self {
        self.devices.push(DeviceSlot::Snapshot(device));
        self
    }

    /// `true` when at least one external device is attached.
    pub fn has_devices(&self) -> bool {
        !self.devices.is_empty()
    }

    /// `true` when every stimulus is a pure function of the cycle number.
    pub fn pure_stimuli(&self) -> bool {
        self.stimuli.iter().all(|(_, wave)| wave.is_pure())
    }

    /// `true` when the whole testbench can be checkpointed and restored:
    /// every stimulus is pure and every device is snapshotable.
    pub fn can_checkpoint(&self) -> bool {
        self.pure_stimuli()
            && self
                .devices
                .iter()
                .all(|slot| matches!(slot, DeviceSlot::Snapshot(_)))
    }

    /// `true` when the run can be re-created lane-parallel in a
    /// [`WideSimulator`]: pure stimuli and no external devices at all.
    pub fn can_run_wide(&self) -> bool {
        self.devices.is_empty() && self.pure_stimuli()
    }

    /// Captures a checkpoint of the simulator and all device state.
    ///
    /// # Panics
    ///
    /// Panics unless [`Testbench::can_checkpoint`] holds.
    pub fn checkpoint(&self) -> TestbenchCheckpoint {
        assert!(
            self.can_checkpoint(),
            "testbench has impure stimuli or opaque devices"
        );
        let devices = self
            .devices
            .iter()
            .map(|slot| match slot {
                DeviceSlot::Snapshot(d) => d.state(),
                DeviceSlot::Opaque(_) => unreachable!("checked by can_checkpoint"),
            })
            .collect();
        TestbenchCheckpoint {
            sim: self.sim.checkpoint(),
            devices,
        }
    }

    /// Restores a checkpoint captured by [`Testbench::checkpoint`] (possibly
    /// on a different testbench instance of the same design).
    ///
    /// # Panics
    ///
    /// Panics if the device count differs or the simulator is incompatible.
    pub fn restore(&mut self, checkpoint: &TestbenchCheckpoint) {
        assert_eq!(
            checkpoint.devices.len(),
            self.devices.len(),
            "checkpoint has a different device count"
        );
        self.sim.restore_checkpoint(&checkpoint.sim);
        for (slot, state) in self.devices.iter_mut().zip(&checkpoint.devices) {
            match slot {
                DeviceSlot::Snapshot(d) => d.load_state(state),
                DeviceSlot::Opaque(_) => panic!("cannot restore into an opaque device"),
            }
        }
    }

    /// Broadcasts this testbench's stimuli for `cycle` to all 64 lanes of a
    /// wide simulator.
    ///
    /// # Panics
    ///
    /// Panics unless [`Testbench::pure_stimuli`] holds — impure waves cannot
    /// be sampled at arbitrary cycles.
    pub fn apply_stimuli_wide(&mut self, wide: &mut WideSimulator<'n>, cycle: u64) {
        self.apply_stimuli_block(wide, cycle);
    }

    /// Broadcasts this testbench's stimuli for `cycle` to every lane of a
    /// block simulator of any lane width.
    ///
    /// # Panics
    ///
    /// Panics unless [`Testbench::pure_stimuli`] holds — impure waves cannot
    /// be sampled at arbitrary cycles.
    pub fn apply_stimuli_block<B: LaneBlock>(
        &mut self,
        wide: &mut BlockSimulator<'n, B>,
        cycle: u64,
    ) {
        assert!(self.pure_stimuli(), "wide stimuli require pure waves");
        for (net, wave) in &mut self.stimuli {
            wide.set_input(*net, wave.sample(cycle));
        }
    }

    /// Access to the underlying simulator (e.g. for fault injection).
    pub fn sim_mut(&mut self) -> &mut Simulator<'n> {
        &mut self.sim
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator<'n> {
        &self.sim
    }

    /// Runs one cycle: stimuli → settle → devices → settle → latch.
    /// Returns after the clock edge.
    pub fn step(&mut self) {
        self.step_observed(|_| {});
    }

    /// Runs one cycle like [`Testbench::step`], calling `observe` on the
    /// fully settled simulator right before the clock edge (the moment a
    /// trace cycle is captured).
    pub fn step_observed(&mut self, observe: impl FnOnce(&mut Simulator<'n>)) {
        let cycle = self.sim.cycle();
        for (net, wave) in &mut self.stimuli {
            let v = wave.sample(cycle);
            self.sim.set_input(*net, v);
        }
        self.sim.settle();
        for device in &mut self.devices {
            device.on_cycle(&mut self.sim);
        }
        self.sim.settle();
        observe(&mut self.sim);
        self.sim.tick();
    }

    /// Runs `cycles` cycles and records the settled wire values of each.
    pub fn run(&mut self, cycles: usize) -> WaveTrace {
        let mut trace = WaveTrace::new(self.sim.netlist().num_nets());
        for _ in 0..cycles {
            self.step_observed(|sim| trace.capture(sim));
        }
        trace
    }
}

impl std::fmt::Debug for Testbench<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Testbench({}, {} stimuli, {} devices)",
            self.sim.netlist().name(),
            self.stimuli.len(),
            self.devices.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::counter;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn constant_and_pulse_waves() {
        let mut c = InputWave::constant(true);
        assert!(c.sample(0));
        assert!(c.sample(99));
        let mut p = InputWave::pulse(2);
        assert!(p.sample(0));
        assert!(p.sample(1));
        assert!(!p.sample(2));
    }

    #[test]
    fn vec_wave_holds_last() {
        let mut w = InputWave::from_vec(vec![true, false]);
        assert!(w.sample(0));
        assert!(!w.sample(1));
        assert!(!w.sample(100));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_vec_wave_panics() {
        InputWave::from_vec(vec![]);
    }

    #[test]
    fn counter_with_gated_enable() {
        let (n, topo) = counter(4);
        let mut tb = Testbench::new(&n, &topo);
        // Enable only on even cycles.
        tb.drive(
            n.find_net("en").unwrap(),
            InputWave::from_fn(|c| c % 2 == 0),
        );
        let trace = tb.run(10);
        // 5 enabled cycles -> counter reaches 5.
        let value: usize = (0..4)
            .map(|i| {
                let q = n.find_net(&format!("q{i}")).unwrap();
                (trace.value(9, q) as usize) << i
            })
            .sum();
        assert_eq!(value, 5);
    }

    #[test]
    fn device_reacts_to_outputs() {
        // A device that mirrors q0 onto `en`, stopping the counter at 1:
        // once q0=1 the device drives en=0.
        let (n, topo) = counter(3);
        let en = n.find_net("en").unwrap();
        let q0 = n.find_net("q0").unwrap();
        let mut tb = Testbench::new(&n, &topo);
        tb.drive(en, InputWave::constant(true));
        let log: Rc<RefCell<Vec<bool>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        tb.attach(Box::new(move |sim| {
            let v = sim.value(q0);
            log2.borrow_mut().push(v);
            if v {
                sim.set_input(en, false);
            }
        }));
        tb.run(6);
        // Counter increments in cycle 0 (q0 becomes 1 in cycle 1), then the
        // device freezes it; q0 stays 1 forever after.
        assert_eq!(
            log.borrow().as_slice(),
            &[false, true, true, true, true, true]
        );
    }

    #[test]
    fn debug_formats() {
        let (n, topo) = counter(2);
        let tb = Testbench::new(&n, &topo);
        assert!(format!("{tb:?}").contains("counter"));
        assert!(format!("{:?}", InputWave::constant(false)).contains("InputWave"));
    }
}
