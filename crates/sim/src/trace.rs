//! Dense per-cycle wire traces.

use std::fmt;

use mate_netlist::prelude::*;

use crate::engine::Simulator;

/// A recorded execution trace: the value of every net in every cycle.
///
/// This is the in-memory analogue of the VCD files the paper's flow records
/// during netlist simulation; the MATE selection and fault-space evaluation
/// replay it cycle by cycle.
///
/// Storage is one bit per (cycle, net), packed in 64-bit words — an
/// 8500-cycle trace of a ~2000-net CPU costs about 2 MiB.
#[derive(Clone, PartialEq, Eq)]
pub struct WaveTrace {
    num_nets: usize,
    words_per_cycle: usize,
    cycles: usize,
    data: Vec<u64>,
}

impl WaveTrace {
    /// Creates an empty trace for circuits with `num_nets` nets.
    pub fn new(num_nets: usize) -> Self {
        Self {
            num_nets,
            words_per_cycle: num_nets.div_ceil(WORD_LANES).max(1),
            cycles: 0,
            data: Vec::new(),
        }
    }

    /// Number of nets per cycle.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of recorded cycles.
    pub fn num_cycles(&self) -> usize {
        self.cycles
    }

    /// Returns `true` when no cycle has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0
    }

    /// Records the settled values of the simulator as the next cycle.
    ///
    /// # Panics
    ///
    /// Panics if the simulator's netlist has a different net count.
    pub fn capture(&mut self, sim: &mut Simulator<'_>) {
        // Compare against the netlist's logical net count, not the value
        // bitmap's capacity: a bitmap rounded up to its word allocation
        // would spuriously fail (or spuriously pass) a capacity check.
        assert_eq!(
            sim.netlist().num_nets(),
            self.num_nets,
            "trace incompatible with simulator"
        );
        let words = sim.values().as_words();
        self.data.extend_from_slice(words);
        // BitSet stores exactly ceil(num_nets/64) words, except for the
        // degenerate zero-net case.
        self.data
            .resize((self.cycles + 1) * self.words_per_cycle, 0);
        self.cycles += 1;
    }

    /// Appends a cycle from an explicit bit vector (used by the VCD reader).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != num_nets`.
    pub fn push_cycle(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.num_nets);
        let base = self.data.len();
        self.data.resize(base + self.words_per_cycle, 0);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                self.data[base + i / WORD_LANES] |= 1u64 << (i % WORD_LANES);
            }
        }
        self.cycles += 1;
    }

    /// The value of `net` in `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` or `net` is out of range.
    #[inline]
    pub fn value(&self, cycle: usize, net: NetId) -> bool {
        assert!(cycle < self.cycles, "cycle {cycle} beyond trace");
        let i = net.index();
        assert!(i < self.num_nets, "net {net} beyond trace");
        let word = self.data[cycle * self.words_per_cycle + i / WORD_LANES];
        word & (1u64 << (i % WORD_LANES)) != 0
    }

    /// The packed value words of one cycle (bit `i % 64` of word `i / 64`
    /// is net `i`), as stored — the zero-copy input for broadcasting a
    /// golden cycle into a wide simulator.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range.
    pub fn cycle_words(&self, cycle: usize) -> &[u64] {
        assert!(cycle < self.cycles, "cycle {cycle} beyond trace");
        &self.data[cycle * self.words_per_cycle..(cycle + 1) * self.words_per_cycle]
    }

    /// A closure reading net values of one cycle (handy for
    /// [`NetCube::eval`]).
    pub fn cycle_reader(&self, cycle: usize) -> impl Fn(NetId) -> bool + '_ {
        move |net| self.value(cycle, net)
    }

    /// Words per stored cycle row (`>= num_nets.div_ceil(64)`), the stride
    /// of [`WaveTrace::raw_words`].
    pub fn words_per_cycle(&self) -> usize {
        self.words_per_cycle
    }

    /// The raw row-major storage: `num_cycles` consecutive rows of
    /// [`WaveTrace::words_per_cycle`] words each, in
    /// [`WaveTrace::cycle_words`] layout.  This is the zero-copy input for
    /// block-transposing into a [`crate::TransposedTrace`].
    pub fn raw_words(&self) -> &[u64] {
        &self.data
    }

    /// Gathers one net's bit-plane: bit `c % 64` of word `c / 64` is the
    /// net's value in cycle `c`.  This single strided walk backs both
    /// [`WaveTrace::net_history`] and [`WaveTrace::high_cycles`]; bits
    /// beyond the recorded cycles are zero.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn column_words(&self, net: NetId) -> Vec<u64> {
        let i = net.index();
        assert!(i < self.num_nets, "net {net} beyond trace");
        let (word, shift) = (i / WORD_LANES, i % WORD_LANES);
        let mut column = vec![0u64; self.cycles.div_ceil(WORD_LANES)];
        for c in 0..self.cycles {
            let bit = self.data[c * self.words_per_cycle + word] >> shift & 1;
            column[c / WORD_LANES] |= bit << (c % WORD_LANES);
        }
        column
    }

    /// Iterates over the values of one net across all cycles.
    pub fn net_history(&self, net: NetId) -> impl Iterator<Item = bool> + '_ {
        let column = self.column_words(net);
        (0..self.cycles).map(move |c| column[c / WORD_LANES] & (1u64 << (c % WORD_LANES)) != 0)
    }

    /// Counts the cycles in which a net is `true` (one popcount per 64
    /// cycles over the gathered column).
    pub fn high_cycles(&self, net: NetId) -> usize {
        self.column_words(net)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// A copy of the first `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` exceeds the recorded length.
    pub fn truncated(&self, cycles: usize) -> WaveTrace {
        assert!(cycles <= self.cycles, "cannot extend a trace");
        WaveTrace {
            num_nets: self.num_nets,
            words_per_cycle: self.words_per_cycle,
            cycles,
            data: self.data[..cycles * self.words_per_cycle].to_vec(),
        }
    }

    /// Reads a multi-bit bus as an integer in the given cycle (`nets[0]` is
    /// the LSB).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 nets are given or the cycle is out of range.
    pub fn bus_value(&self, cycle: usize, nets: &[NetId]) -> u64 {
        assert!(nets.len() <= WORD_LANES, "bus wider than 64 bits");
        let mut v = 0u64;
        for (i, &net) in nets.iter().enumerate() {
            v |= (self.value(cycle, net) as u64) << i;
        }
        v
    }
}

impl fmt::Debug for WaveTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WaveTrace({} nets x {} cycles, {} KiB)",
            self.num_nets,
            self.cycles,
            self.data.len() * 8 / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::counter;

    #[test]
    fn capture_records_counter_bits() {
        let (n, topo) = counter(3);
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(n.find_net("en").expect("counter exposes en"), true);
        let mut trace = WaveTrace::new(n.num_nets());
        for _ in 0..8 {
            trace.capture(&mut sim);
            sim.tick();
        }
        assert_eq!(trace.num_cycles(), 8);
        let q0 = n.find_net("q0").expect("counter exposes q0");
        let q1 = n.find_net("q1").expect("counter exposes q1");
        let q2 = n.find_net("q2").expect("counter exposes q2");
        let values: Vec<usize> = (0..8)
            .map(|c| {
                (trace.value(c, q0) as usize)
                    | (trace.value(c, q1) as usize) << 1
                    | (trace.value(c, q2) as usize) << 2
            })
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn push_cycle_and_value() {
        let mut t = WaveTrace::new(70);
        let mut bits = vec![false; 70];
        bits[0] = true;
        bits[69] = true;
        t.push_cycle(&bits);
        assert!(t.value(0, NetId::from_index(0)));
        assert!(t.value(0, NetId::from_index(69)));
        assert!(!t.value(0, NetId::from_index(35)));
    }

    #[test]
    fn net_history_and_high_cycles() {
        let mut t = WaveTrace::new(2);
        t.push_cycle(&[true, false]);
        t.push_cycle(&[false, false]);
        t.push_cycle(&[true, true]);
        let n0 = NetId::from_index(0);
        assert_eq!(
            t.net_history(n0).collect::<Vec<_>>(),
            vec![true, false, true]
        );
        assert_eq!(t.high_cycles(n0), 2);
        assert_eq!(t.high_cycles(NetId::from_index(1)), 1);
    }

    #[test]
    fn cycle_reader_closure() {
        let mut t = WaveTrace::new(3);
        t.push_cycle(&[false, true, false]);
        let read = t.cycle_reader(0);
        assert!(read(NetId::from_index(1)));
        assert!(!read(NetId::from_index(2)));
    }

    #[test]
    #[should_panic(expected = "trace incompatible")]
    fn capture_rejects_mismatched_net_count() {
        let (n, topo) = counter(3);
        let mut sim = Simulator::new(&n, &topo);
        // A trace sized for a different design must be rejected by net
        // count, regardless of how the value bitmap rounds its allocation.
        let mut trace = WaveTrace::new(n.num_nets() + 1);
        trace.capture(&mut sim);
    }

    #[test]
    fn capture_accepts_non_word_aligned_net_count() {
        // num_nets not a multiple of 64: a capacity-based check would
        // depend on the bitmap's internal rounding here.
        let (n, topo) = counter(5);
        assert_ne!(n.num_nets() % 64, 0);
        let mut sim = Simulator::new(&n, &topo);
        let mut trace = WaveTrace::new(n.num_nets());
        trace.capture(&mut sim);
        assert_eq!(trace.num_cycles(), 1);
    }

    #[test]
    fn column_words_match_per_cycle_values() {
        let mut t = WaveTrace::new(70);
        for c in 0..130usize {
            let bits: Vec<bool> = (0..70).map(|i| (c * 31 + i * 7) % 3 == 0).collect();
            t.push_cycle(&bits);
        }
        for i in [0usize, 35, 63, 64, 69] {
            let net = NetId::from_index(i);
            let column = t.column_words(net);
            assert_eq!(column.len(), 130usize.div_ceil(64));
            for c in 0..130 {
                assert_eq!(
                    column[c / 64] & (1u64 << (c % 64)) != 0,
                    t.value(c, net),
                    "net {i} cycle {c}"
                );
            }
            assert_eq!(
                t.high_cycles(net),
                (0..130).filter(|&c| t.value(c, net)).count()
            );
        }
    }

    #[test]
    #[should_panic(expected = "beyond trace")]
    fn out_of_range_cycle_panics() {
        let t = WaveTrace::new(1);
        t.value(0, NetId::from_index(0));
    }

    #[test]
    fn debug_mentions_dimensions() {
        let mut t = WaveTrace::new(10);
        t.push_cycle(&[false; 10]);
        assert!(format!("{t:?}").contains("10 nets x 1 cycles"));
    }
}
