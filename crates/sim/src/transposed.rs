//! Column-major bit-plane traces for word-parallel analysis.
//!
//! [`WaveTrace`] stores one row per *cycle* — the natural layout for capture,
//! where the simulator settles a full cycle at a time.  Every trace
//! *consumer* in the MATE pipeline, however, asks the opposite question:
//! "in which cycles does net `n` carry value `v`?"  Answering that on the
//! row-major layout costs one strided bit-probe per cycle.
//!
//! A [`TransposedTrace`] stores one bit-plane per *net*: word `w` of net
//! `n`'s column packs the net's values in cycles `64·w .. 64·w+63`.  A MATE
//! cube (a conjunction of net literals) then evaluates over 64 cycles at
//! once as a handful of AND/ANDN word operations ([`TransposedTrace::
//! cube_word`]) — the same transposition trick bit-parallel fault
//! simulators apply on the stimulus axis, applied to the analysis axis.

use mate_netlist::prelude::*;

use crate::engine::Simulator;
use crate::trace::WaveTrace;

/// A column-major (net-major) bit-plane view of an execution trace.
///
/// Bit `c % 64` of word `c / 64` in net `n`'s column is the value of `n` in
/// cycle `c`.  Bits beyond the recorded cycle count are always zero.
///
/// # Example
///
/// ```
/// use mate_sim::{TransposedTrace, WaveTrace};
/// use mate_netlist::NetId;
///
/// let mut rows = WaveTrace::new(2);
/// rows.push_cycle(&[true, false]);
/// rows.push_cycle(&[true, true]);
/// let cols = TransposedTrace::from_trace(&rows);
/// assert_eq!(cols.column(NetId::from_index(0)), &[0b11]);
/// assert_eq!(cols.column(NetId::from_index(1)), &[0b10]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransposedTrace {
    num_nets: usize,
    cycles: usize,
    /// Allocated words per column (`>= cycles.div_ceil(64)`).
    words_per_net: usize,
    /// Column-major storage: net `n` occupies words
    /// `n * words_per_net .. (n + 1) * words_per_net`.
    data: Vec<u64>,
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3): afterwards,
/// bit `r` of `a[k]` is the former bit `k` of `a[r]`.
fn transpose64(a: &mut [u64; 64]) {
    // Delta-swap block transpose (Hacker's Delight 7-3, adapted to
    // LSB-first bit numbering: bit `c` is column `c`).  Each stage swaps
    // the high-column half of the upper row block with the low-column half
    // of the lower row block.
    let mut j = 32usize;
    let mut m = 0xFFFF_FFFF_0000_0000u64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k | j] << j)) & m;
            a[k] ^= t;
            a[k | j] ^= t >> j;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m >> j;
    }
}

impl TransposedTrace {
    /// Creates an empty transposed trace for `num_nets` nets; cycles are
    /// appended with [`TransposedTrace::push_cycle_words`] or
    /// [`TransposedTrace::capture`].
    pub fn new(num_nets: usize) -> Self {
        Self {
            num_nets,
            cycles: 0,
            words_per_net: 0,
            data: Vec::new(),
        }
    }

    /// Transposes a recorded row-major trace in one pass of 64×64 block
    /// transposes.
    pub fn from_trace(trace: &WaveTrace) -> Self {
        Self::from_row_words(
            trace.num_nets(),
            trace.num_cycles(),
            trace.raw_words(),
            trace.words_per_cycle(),
        )
    }

    /// Builds the column-major planes from row-major cycle words: `rows`
    /// holds `cycles` consecutive rows of `words_per_cycle` words each, laid
    /// out like [`WaveTrace::cycle_words`] (bit `n % 64` of word `n / 64` is
    /// net `n`).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is shorter than `cycles * words_per_cycle` or
    /// `words_per_cycle` cannot hold `num_nets` bits.
    pub fn from_row_words(
        num_nets: usize,
        cycles: usize,
        rows: &[u64],
        words_per_cycle: usize,
    ) -> Self {
        assert!(
            rows.len() >= cycles * words_per_cycle,
            "row data shorter than the declared cycle count"
        );
        assert!(
            words_per_cycle >= num_nets.div_ceil(64),
            "cycle rows too narrow for {num_nets} nets"
        );
        let words_per_net = cycles.div_ceil(WORD_LANES);
        let mut data = vec![0u64; num_nets * words_per_net];
        Self::fill_columns(
            &mut data,
            num_nets,
            cycles,
            words_per_net,
            rows,
            words_per_cycle,
        );
        Self {
            num_nets,
            cycles,
            words_per_net,
            data,
        }
    }

    /// Transposes `rows` into `data` (pre-zeroed, `num_nets * words_per_net`
    /// words, tight column layout) — the shared core of
    /// [`TransposedTrace::from_row_words`] and
    /// [`TransposedTrace::refill_from_row_words`].
    fn fill_columns(
        data: &mut [u64],
        num_nets: usize,
        cycles: usize,
        words_per_net: usize,
        rows: &[u64],
        words_per_cycle: usize,
    ) {
        let mut block = [0u64; 64];
        for ci in 0..words_per_net {
            let c0 = ci * 64;
            let nrows = (cycles - c0).min(64);
            for nj in 0..num_nets.div_ceil(64) {
                for (r, slot) in block.iter_mut().enumerate().take(nrows) {
                    *slot = rows[(c0 + r) * words_per_cycle + nj];
                }
                block[nrows..].fill(0);
                transpose64(&mut block);
                // Row `k` of the transposed block is the column word of net
                // `64*nj + k` over cycles `c0 .. c0+64`.
                let nets_here = (num_nets - nj * 64).min(64);
                for (k, &word) in block.iter().enumerate().take(nets_here) {
                    if word != 0 {
                        data[(nj * 64 + k) * words_per_net + ci] = word;
                    }
                }
            }
        }
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of recorded cycles.
    pub fn num_cycles(&self) -> usize {
        self.cycles
    }

    /// Number of valid 64-cycle words per column.
    pub fn num_words(&self) -> usize {
        self.cycles.div_ceil(WORD_LANES)
    }

    /// All-ones over the cycles that exist in column word `word` (the last
    /// word of a non-multiple-of-64 trace has a partial mask).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    #[inline]
    pub fn valid_mask(&self, word: usize) -> u64 {
        assert!(word < self.num_words(), "column word {word} beyond trace");
        let tail = self.cycles - word * WORD_LANES;
        if tail >= WORD_LANES {
            u64::MAX
        } else {
            (1u64 << tail) - 1
        }
    }

    /// The bit-plane of one net: bit `c % 64` of word `c / 64` is the value
    /// in cycle `c`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn column(&self, net: NetId) -> &[u64] {
        let i = net.index();
        assert!(i < self.num_nets, "net {net} beyond trace");
        &self.data[i * self.words_per_net..i * self.words_per_net + self.num_words()]
    }

    /// One column word of a net *literal*: the cycles (within word `word`)
    /// in which the net carries `polarity`.  Negative literals are
    /// complemented and masked to the valid cycle range.
    ///
    /// # Panics
    ///
    /// Panics if `net` or `word` is out of range.
    #[inline]
    pub fn lit_word(&self, net: NetId, word: usize, polarity: bool) -> u64 {
        let w = self.column(net)[word];
        if polarity {
            w
        } else {
            !w & self.valid_mask(word)
        }
    }

    /// Evaluates a cube over 64 cycles at once: bit `c` of the result is
    /// the cube's value in cycle `64 * word + c`.  The empty cube yields the
    /// valid-cycle mask.  This is the word-parallel core of MATE evaluation:
    /// one AND (positive literal) or ANDN (negative literal) per literal.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or the cube mentions a net beyond
    /// the trace.
    #[inline]
    pub fn cube_word(&self, cube: &NetCube, word: usize) -> u64 {
        let mut acc = self.valid_mask(word);
        for (net, polarity) in cube.literals() {
            if acc == 0 {
                break;
            }
            let i = net.index();
            assert!(i < self.num_nets, "net {net} beyond trace");
            let w = self.data[i * self.words_per_net + word];
            acc &= if polarity { w } else { !w };
        }
        acc
    }

    /// Number of valid [`LaneBlock`]-width blocks per column: block `b`
    /// covers cycles `b * B::WIDTH .. (b + 1) * B::WIDTH`.
    pub fn num_blocks<B: LaneBlock>(&self) -> usize {
        self.cycles.div_ceil(B::WIDTH)
    }

    /// All-ones over the cycles that exist in column block `block` — the
    /// block-width generalization of [`TransposedTrace::valid_mask`].
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[inline]
    pub fn valid_block<B: LaneBlock>(&self, block: usize) -> B {
        assert!(
            block < self.num_blocks::<B>(),
            "column block {block} beyond trace"
        );
        B::low_lanes((self.cycles - block * B::WIDTH).min(B::WIDTH))
    }

    /// Gathers one [`LaneBlock`] of a net's column (lane `c` of the result
    /// is cycle `block * B::WIDTH + c`); cycles beyond the trace are zero.
    #[inline]
    fn column_block<B: LaneBlock>(&self, net_index: usize, block: usize) -> B {
        let base = net_index * self.words_per_net + block * B::WORDS;
        let avail = self
            .num_words()
            .saturating_sub(block * B::WORDS)
            .min(B::WORDS);
        let mut b = B::ZERO;
        for w in 0..avail {
            b.set_word(w, self.data[base + w]);
        }
        b
    }

    /// Evaluates a cube over [`LaneBlock::WIDTH`] cycles at once: lane `c`
    /// of the result is the cube's value in cycle `block * B::WIDTH + c`.
    /// The empty cube yields the valid-cycle mask.  This is the
    /// block-width generalization of [`TransposedTrace::cube_word`]: one
    /// AND (positive literal) or ANDN (negative literal) per literal, over
    /// `B::WORDS` words at a time.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or the cube mentions a net beyond
    /// the trace.
    #[inline]
    pub fn cube_block<B: LaneBlock>(&self, cube: &NetCube, block: usize) -> B {
        let mut acc: B = self.valid_block(block);
        for (net, polarity) in cube.literals() {
            if acc.is_zero() {
                break;
            }
            let i = net.index();
            assert!(i < self.num_nets, "net {net} beyond trace");
            let w = self.column_block::<B>(i, block);
            acc &= if polarity { w } else { !w };
        }
        acc
    }

    /// The value of `net` in `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` or `net` is out of range.
    pub fn value(&self, cycle: usize, net: NetId) -> bool {
        assert!(cycle < self.cycles, "cycle {cycle} beyond trace");
        self.column(net)[cycle / 64] & (1u64 << (cycle % 64)) != 0
    }

    /// A view of one cycle with the word offset and bit mask hoisted out, so
    /// per-net probes in a hot loop are one load-AND instead of the index
    /// arithmetic [`TransposedTrace::value`] repeats.  This is what the
    /// differential campaign engine uses to compare lane deltas against the
    /// golden run cell by cell.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range.
    #[inline]
    pub fn cycle_view(&self, cycle: usize) -> CycleView<'_> {
        assert!(cycle < self.cycles, "cycle {cycle} beyond trace");
        CycleView {
            trace: self,
            word: cycle / WORD_LANES,
            mask: 1u64 << (cycle % WORD_LANES),
        }
    }

    /// Packs the golden values of a net set in one cycle into an exact bit
    /// key: bit `i % 64` of word `i / 64` is the value of `nets[i]` in
    /// `cycle`.  `key` is cleared and refilled, so one buffer can be reused
    /// across calls without reallocating.
    ///
    /// This is the fingerprint primitive of the campaign's fault-space
    /// collapsing layer: two cycles with equal keys over a fault cone's
    /// support nets present *identical* golden values to the cone, so a
    /// delta injected in either evolves identically for one cycle.  The key
    /// is the exact bit vector, not a hash — equality must be sound, since
    /// a collision would silently misclassify a whole equivalence class.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` or any net index is out of range.
    pub fn support_key(&self, nets: &[u32], cycle: usize, key: &mut Vec<u64>) {
        assert!(cycle < self.cycles, "cycle {cycle} beyond trace");
        let word = cycle / WORD_LANES;
        let mask = 1u64 << (cycle % WORD_LANES);
        key.clear();
        key.resize(nets.len().div_ceil(WORD_LANES), 0);
        for (i, &net) in nets.iter().enumerate() {
            let n = net as usize;
            assert!(n < self.num_nets, "net {net} beyond trace");
            if self.data[n * self.words_per_net + word] & mask != 0 {
                key[i / WORD_LANES] |= 1u64 << (i % WORD_LANES);
            }
        }
    }

    /// Appends one cycle from row-packed value words (bit `n % 64` of word
    /// `n / 64` is net `n`, the layout of [`WaveTrace::cycle_words`] and
    /// [`mate_netlist::BitSet::as_words`]).  Columns grow geometrically, so
    /// incremental capture is amortized O(nets/64) words per cycle plus one
    /// bit-scatter.
    ///
    /// # Panics
    ///
    /// Panics if `words` cannot hold `num_nets` bits.
    pub fn push_cycle_words(&mut self, words: &[u64]) {
        assert!(
            words.len() >= self.num_nets.div_ceil(WORD_LANES),
            "cycle row too narrow for {} nets",
            self.num_nets
        );
        if self.cycles == self.words_per_net * WORD_LANES {
            self.grow();
        }
        let (wi, bit) = (self.cycles / WORD_LANES, self.cycles % WORD_LANES);
        for n in 0..self.num_nets {
            let v = words[n / WORD_LANES] >> (n % WORD_LANES) & 1;
            self.data[n * self.words_per_net + wi] |= v << bit;
        }
        self.cycles += 1;
    }

    /// Records the settled simulator values as the next cycle.
    ///
    /// # Panics
    ///
    /// Panics if the simulator's netlist has a different net count.
    pub fn capture(&mut self, sim: &mut Simulator<'_>) {
        assert_eq!(
            sim.netlist().num_nets(),
            self.num_nets,
            "transposed trace incompatible with simulator"
        );
        self.push_cycle_words(sim.values().as_words());
    }

    /// Doubles the per-column allocation, re-laying out existing columns.
    fn grow(&mut self) {
        let new_wpn = (self.words_per_net * 2).max(1);
        let mut data = vec![0u64; self.num_nets * new_wpn];
        for n in 0..self.num_nets {
            data[n * new_wpn..n * new_wpn + self.words_per_net]
                .copy_from_slice(&self.data[n * self.words_per_net..(n + 1) * self.words_per_net]);
        }
        self.words_per_net = new_wpn;
        self.data = data;
    }

    /// Drops all recorded cycles, keeping the allocation (for 64-cycle
    /// block reuse in online pruning).
    pub fn clear(&mut self) {
        self.cycles = 0;
        self.data.fill(0);
    }

    /// Refills this trace in place from row-major cycle words, reusing the
    /// allocation when it is already large enough — the scratch-buffer
    /// counterpart of [`TransposedTrace::from_row_words`] for per-block
    /// transposition in the online pruner.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`TransposedTrace::from_row_words`].
    pub fn refill_from_row_words(
        &mut self,
        num_nets: usize,
        cycles: usize,
        rows: &[u64],
        words_per_cycle: usize,
    ) {
        assert!(
            rows.len() >= cycles * words_per_cycle,
            "row data shorter than the declared cycle count"
        );
        assert!(
            words_per_cycle >= num_nets.div_ceil(64),
            "cycle rows too narrow for {num_nets} nets"
        );
        let words_per_net = cycles.div_ceil(WORD_LANES);
        let used = num_nets * words_per_net;
        if used > self.data.len() {
            self.data = vec![0u64; used];
        } else {
            self.data.fill(0);
        }
        self.num_nets = num_nets;
        self.cycles = cycles;
        self.words_per_net = words_per_net;
        Self::fill_columns(
            &mut self.data[..used],
            num_nets,
            cycles,
            words_per_net,
            rows,
            words_per_cycle,
        );
    }
}

/// A single-cycle probe into a [`TransposedTrace`] with the cycle's word
/// index and bit mask precomputed; see [`TransposedTrace::cycle_view`].
#[derive(Clone, Copy)]
pub struct CycleView<'t> {
    trace: &'t TransposedTrace,
    word: usize,
    mask: u64,
}

impl CycleView<'_> {
    /// The value of net index `net` in the viewed cycle.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[inline]
    pub fn value(&self, net: usize) -> bool {
        debug_assert!(net < self.trace.num_nets, "net {net} beyond trace");
        self.trace.data[net * self.trace.words_per_net + self.word] & self.mask != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::counter;
    use mate_netlist::NetCube;

    fn net(i: usize) -> NetId {
        NetId::from_index(i)
    }

    /// Pseudo-random trace over `nets` nets and `cycles` cycles.
    fn random_trace(nets: usize, cycles: usize, seed: u64) -> WaveTrace {
        let mut t = WaveTrace::new(nets);
        for c in 0..cycles {
            let bits: Vec<bool> = (0..nets)
                .map(|n| {
                    let x = seed
                        .wrapping_add(((c as u64) << 32) | n as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    (x >> 40) & 1 == 1
                })
                .collect();
            t.push_cycle(&bits);
        }
        t
    }

    #[test]
    fn support_key_packs_exact_values() {
        let trace = random_trace(100, 150, 77);
        let tt = TransposedTrace::from_trace(&trace);
        // A 70-net support spanning two key words, probed in cycles across
        // both column words.
        let nets: Vec<u32> = (0..70).map(|i| (i * 3 % 100) as u32).collect();
        let mut key = Vec::new();
        for cycle in [0, 1, 63, 64, 149] {
            tt.support_key(&nets, cycle, &mut key);
            assert_eq!(key.len(), 2);
            for (i, &n) in nets.iter().enumerate() {
                assert_eq!(
                    key[i / 64] >> (i % 64) & 1 != 0,
                    tt.value(cycle, net(n as usize)),
                    "net {n} cycle {cycle}"
                );
            }
        }
        // Two cycles with equal keys really do agree on every support net.
        tt.support_key(&nets, 5, &mut key);
        let k5 = key.clone();
        tt.support_key(&nets, 5, &mut key);
        assert_eq!(k5, key);
        // Empty support: empty key, reused buffer cleared.
        tt.support_key(&[], 0, &mut key);
        assert!(key.is_empty());
    }

    #[test]
    fn transpose64_is_a_transpose() {
        let mut a = [0u64; 64];
        for (r, word) in a.iter_mut().enumerate() {
            *word = (r as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ (1u64 << (r % 64));
        }
        let orig = a;
        transpose64(&mut a);
        for (r, &row) in orig.iter().enumerate() {
            for (k, &col) in a.iter().enumerate() {
                assert_eq!(col >> r & 1, row >> k & 1, "bit ({r},{k})");
            }
        }
    }

    #[test]
    fn from_trace_matches_row_major_values() {
        // Sizes straddling the 64-bit boundaries on both axes.
        for (nets, cycles) in [(1, 1), (3, 70), (64, 64), (65, 130), (130, 63)] {
            let rows = random_trace(nets, cycles, (nets * 1000 + cycles) as u64);
            let cols = TransposedTrace::from_trace(&rows);
            assert_eq!(cols.num_nets(), nets);
            assert_eq!(cols.num_cycles(), cycles);
            for c in 0..cycles {
                for n in 0..nets {
                    assert_eq!(
                        cols.value(c, net(n)),
                        rows.value(c, net(n)),
                        "({nets}x{cycles}) cycle {c} net {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_push_matches_from_trace() {
        let rows = random_trace(70, 200, 7);
        let built = TransposedTrace::from_trace(&rows);
        let mut incr = TransposedTrace::new(70);
        for c in 0..200 {
            incr.push_cycle_words(rows.cycle_words(c));
        }
        assert_eq!(incr.num_cycles(), built.num_cycles());
        for n in 0..70 {
            assert_eq!(incr.column(net(n)), built.column(net(n)), "net {n}");
        }
    }

    #[test]
    fn capture_from_simulator() {
        let (n, topo) = counter(3);
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(n.find_net("en").unwrap(), true);
        let mut rows = WaveTrace::new(n.num_nets());
        let mut cols = TransposedTrace::new(n.num_nets());
        for _ in 0..8 {
            rows.capture(&mut sim);
            cols.capture(&mut sim);
            sim.tick();
        }
        assert_eq!(cols, TransposedTrace::from_trace(&rows));
    }

    #[test]
    fn cube_word_is_and_over_literals() {
        let rows = random_trace(10, 100, 99);
        let cols = TransposedTrace::from_trace(&rows);
        let cube = NetCube::from_literals([(net(2), true), (net(7), false)]).unwrap();
        for wi in 0..cols.num_words() {
            let word = cols.cube_word(&cube, wi);
            for b in 0..64 {
                let c = wi * 64 + b;
                let expect = c < 100 && rows.value(c, net(2)) && !rows.value(c, net(7));
                assert_eq!(word >> b & 1 != 0, expect, "cycle {c}");
            }
        }
        // The empty cube is true exactly in the valid cycles.
        let last = cols.num_words() - 1;
        assert_eq!(cols.cube_word(&NetCube::top(), last), cols.valid_mask(last));
    }

    #[test]
    fn cube_block_matches_cube_word() {
        // Block-width cube evaluation agrees with the 64-lane reference,
        // including partial tail blocks and cubes with negative literals.
        fn check<B: LaneBlock>(cycles: usize) {
            let rows = random_trace(12, cycles, cycles as u64);
            let cols = TransposedTrace::from_trace(&rows);
            for cube in [
                NetCube::top(),
                NetCube::from_literals([(net(2), true), (net(7), false)]).unwrap(),
                NetCube::from_literals([(net(0), false), (net(5), false), (net(11), true)])
                    .unwrap(),
            ] {
                for blk in 0..cols.num_blocks::<B>() {
                    let block: B = cols.cube_block(&cube, blk);
                    for w in 0..B::WORDS {
                        let wi = blk * B::WORDS + w;
                        let expect = if wi < cols.num_words() {
                            cols.cube_word(&cube, wi)
                        } else {
                            0
                        };
                        assert_eq!(
                            block.word(w),
                            expect,
                            "cycles {cycles} block {blk} word {w}"
                        );
                    }
                }
            }
        }
        for cycles in [1, 63, 64, 65, 255, 256, 300, 511, 512, 700] {
            check::<B256>(cycles);
            check::<B512>(cycles);
            check::<u64>(cycles);
        }
    }

    #[test]
    fn valid_block_matches_valid_mask() {
        let rows = random_trace(3, 130, 5);
        let cols = TransposedTrace::from_trace(&rows);
        for blk in 0..cols.num_blocks::<B256>() {
            let vb: B256 = cols.valid_block(blk);
            for w in 0..B256::WORDS {
                let wi = blk * B256::WORDS + w;
                let expect = if wi < cols.num_words() {
                    cols.valid_mask(wi)
                } else {
                    0
                };
                assert_eq!(vb.word(w), expect, "block {blk} word {w}");
            }
        }
    }

    #[test]
    fn lit_word_masks_negative_tail() {
        let mut t = WaveTrace::new(1);
        t.push_cycle(&[false]);
        t.push_cycle(&[true]);
        t.push_cycle(&[false]);
        let cols = TransposedTrace::from_trace(&t);
        assert_eq!(cols.lit_word(net(0), 0, true), 0b010);
        // Negative literal: cycles 0 and 2 only — bits 3..63 stay clear.
        assert_eq!(cols.lit_word(net(0), 0, false), 0b101);
        assert_eq!(cols.valid_mask(0), 0b111);
    }

    #[test]
    fn clear_resets_for_block_reuse() {
        let mut t = TransposedTrace::new(5);
        t.push_cycle_words(&[0b10101]);
        t.push_cycle_words(&[0b00011]);
        assert_eq!(t.num_cycles(), 2);
        t.clear();
        assert_eq!(t.num_cycles(), 0);
        t.push_cycle_words(&[0b1]);
        assert!(t.value(0, net(0)));
        assert!(!t.value(0, net(4)));
    }

    #[test]
    fn cycle_view_matches_value() {
        let rows = random_trace(70, 130, 11);
        let cols = TransposedTrace::from_trace(&rows);
        for c in [0, 63, 64, 129] {
            let view = cols.cycle_view(c);
            for n in 0..70 {
                assert_eq!(view.value(n), cols.value(c, net(n)), "cycle {c} net {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond trace")]
    fn cycle_view_out_of_range_panics() {
        let cols = TransposedTrace::from_trace(&random_trace(3, 4, 1));
        cols.cycle_view(4);
    }

    #[test]
    fn refill_reuses_allocation_and_matches_from_row_words() {
        let big = random_trace(40, 200, 3);
        let mut t = TransposedTrace::from_trace(&big);
        // Refill with a smaller trace: same columns as a fresh build.
        let small = random_trace(40, 70, 4);
        t.refill_from_row_words(40, 70, small.raw_words(), small.words_per_cycle());
        assert_eq!(t.num_cycles(), 70);
        let fresh = TransposedTrace::from_trace(&small);
        for n in 0..40 {
            assert_eq!(t.column(net(n)), fresh.column(net(n)), "net {n}");
        }
        // Growing beyond the allocation also works.
        let bigger = random_trace(40, 300, 5);
        t.refill_from_row_words(40, 300, bigger.raw_words(), bigger.words_per_cycle());
        assert_eq!(t, TransposedTrace::from_trace(&bigger));
    }

    #[test]
    #[should_panic(expected = "beyond trace")]
    fn column_out_of_range_panics() {
        let t = TransposedTrace::from_trace(&random_trace(3, 4, 1));
        t.column(net(3));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn capture_rejects_wrong_net_count() {
        let (n, topo) = counter(3);
        let mut sim = Simulator::new(&n, &topo);
        TransposedTrace::new(1).capture(&mut sim);
    }
}
