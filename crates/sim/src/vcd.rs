//! Value-change-dump (VCD) export and import.
//!
//! The paper's flow records a VCD file per program/processor pair during
//! netlist simulation and replays it for MATE selection.  This module writes
//! IEEE-1364-style VCD for scalar wires and reads the same subset back into a
//! [`WaveTrace`].

use std::io::{BufRead, Write};

use mate_netlist::prelude::*;

use crate::trace::WaveTrace;

/// Builds the printable short identifier for a net index (the standard VCD
/// scheme over ASCII `!`..`~`).
fn id_code(mut index: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    s
}

/// Writes a trace as a VCD file.
///
/// One VCD timestep corresponds to one clock cycle; every net of the netlist
/// becomes a scalar wire.
///
/// # Errors
///
/// Propagates I/O errors from `out` as [`MateError::Io`].
pub fn write_vcd(netlist: &Netlist, trace: &WaveTrace, out: impl Write) -> Result<(), MateError> {
    write_vcd_io(netlist, trace, out).map_err(|e| MateError::io("vcd output", e))
}

fn write_vcd_io(netlist: &Netlist, trace: &WaveTrace, mut out: impl Write) -> std::io::Result<()> {
    writeln!(out, "$date replayed by mate-sim $end")?;
    writeln!(out, "$version mate-sim 0.1 $end")?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module {} $end", netlist.name())?;
    for (i, net) in netlist.nets().iter().enumerate() {
        writeln!(out, "$var wire 1 {} {} $end", id_code(i), net.name())?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;
    let mut last: Vec<Option<bool>> = vec![None; netlist.num_nets()];
    for cycle in 0..trace.num_cycles() {
        writeln!(out, "#{cycle}")?;
        if cycle == 0 {
            writeln!(out, "$dumpvars")?;
        }
        for (i, slot) in last.iter_mut().enumerate() {
            let v = trace.value(cycle, NetId::from_index(i));
            if *slot != Some(v) {
                writeln!(out, "{}{}", v as u8, id_code(i))?;
                *slot = Some(v);
            }
        }
        if cycle == 0 {
            writeln!(out, "$end")?;
        }
    }
    Ok(())
}

/// Reads a VCD file produced by [`write_vcd`] (or any scalar-wire VCD whose
/// wire names match the netlist) back into a [`WaveTrace`].
///
/// Timestamp gaps are filled by repeating the previous values, matching VCD
/// semantics.
///
/// # Errors
///
/// Returns [`MateError`] for I/O problems, syntax errors, unknown nets, and
/// vector (multi-bit) variables.
pub fn read_vcd(netlist: &Netlist, input: impl BufRead) -> Result<WaveTrace, MateError> {
    let mut trace = WaveTrace::new(netlist.num_nets());
    let mut id_to_net: std::collections::HashMap<String, NetId> = std::collections::HashMap::new();
    let mut current = vec![false; netlist.num_nets()];
    let mut in_header = true;
    let mut last_time: Option<u64> = None;

    for (line_no, line) in input.lines().enumerate() {
        let line = line.map_err(|e| MateError::io("vcd input", e))?;
        let line_no = line_no + 1;
        let parse_err = |message: &str| MateError::Vcd {
            line: line_no,
            message: message.to_owned(),
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if in_header {
            if trimmed.starts_with("$var") {
                let tokens: Vec<&str> = trimmed.split_whitespace().collect();
                // $var wire 1 <id> <name> $end
                if tokens.len() < 6 {
                    return Err(parse_err("malformed $var"));
                }
                if tokens[1] != "wire" && tokens[1] != "reg" {
                    return Err(MateError::Vcd {
                        line: line_no,
                        message: format!("unsupported variable kind `{}`", tokens[1]),
                    });
                }
                if tokens[2] != "1" {
                    return Err(MateError::Vcd {
                        line: line_no,
                        message: format!("unsupported vector variable of width {}", tokens[2]),
                    });
                }
                let id = tokens[3].to_owned();
                let name = tokens[4];
                let net = netlist
                    .find_net(name)
                    .ok_or_else(|| MateError::UnknownNet {
                        line: line_no,
                        name: name.to_owned(),
                    })?;
                id_to_net.insert(id, net);
            } else if trimmed.starts_with("$enddefinitions") {
                in_header = false;
            }
            continue;
        }
        if trimmed == "$dumpvars" || trimmed == "$end" {
            continue;
        }
        if let Some(ts) = trimmed.strip_prefix('#') {
            let t: u64 = ts.parse().map_err(|_| parse_err("invalid timestamp"))?;
            if let Some(prev) = last_time {
                if t <= prev {
                    return Err(parse_err("non-monotonic timestamp"));
                }
                // Commit the completed cycle(s) [prev, t).
                for _ in prev..t {
                    trace.push_cycle(&current);
                }
            }
            last_time = Some(t);
            continue;
        }
        let mut chars = trimmed.chars();
        let v = match chars.next() {
            Some('0') => false,
            Some('1') => true,
            Some('x' | 'X' | 'z' | 'Z') => return Err(parse_err("unsupported x/z values")),
            Some('b' | 'B' | 'r' | 'R') => {
                return Err(parse_err("unsupported vector value change"))
            }
            _ => return Err(parse_err("unrecognized value change")),
        };
        let id: String = chars.collect();
        let net = id_to_net
            .get(id.trim())
            .copied()
            .ok_or_else(|| MateError::UnknownNet {
                line: line_no,
                name: id.clone(),
            })?;
        current[net.index()] = v;
    }
    if last_time.is_some() {
        trace.push_cycle(&current);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use mate_netlist::examples::{counter, tmr_register};
    use std::io::BufReader;

    fn record(n: &Netlist, topo: &Topology, cycles: usize, drive: &[(&str, bool)]) -> WaveTrace {
        let mut sim = Simulator::new(n, topo);
        for (name, v) in drive {
            sim.set_input(n.find_net(name).unwrap(), *v);
        }
        let mut t = WaveTrace::new(n.num_nets());
        for _ in 0..cycles {
            t.capture(&mut sim);
            sim.tick();
        }
        t
    }

    #[test]
    fn id_codes_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let id = id_code(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "duplicate id for {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn vcd_roundtrip_counter() {
        let (n, topo) = counter(4);
        let trace = record(&n, &topo, 20, &[("en", true)]);
        let mut buf = Vec::new();
        write_vcd(&n, &trace, &mut buf).unwrap();
        let back = read_vcd(&n, BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.num_cycles(), trace.num_cycles());
        for c in 0..trace.num_cycles() {
            for i in 0..n.num_nets() {
                let net = NetId::from_index(i);
                assert_eq!(
                    back.value(c, net),
                    trace.value(c, net),
                    "cycle {c} net {net}"
                );
            }
        }
    }

    #[test]
    fn vcd_roundtrip_tmr() {
        let (n, topo) = tmr_register();
        let trace = record(&n, &topo, 6, &[("load", true), ("din", true)]);
        let mut buf = Vec::new();
        write_vcd(&n, &trace, &mut buf).unwrap();
        let back = read_vcd(&n, BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn header_contains_all_nets() {
        let (n, topo) = counter(2);
        let trace = record(&n, &topo, 1, &[("en", false)]);
        let mut buf = Vec::new();
        write_vcd(&n, &trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for net in n.nets() {
            assert!(text.contains(net.name()), "missing {}", net.name());
        }
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn unknown_net_rejected() {
        let (n, _) = counter(2);
        let vcd = "$var wire 1 ! bogus $end\n$enddefinitions $end\n#0\n1!\n";
        let err = read_vcd(&n, BufReader::new(vcd.as_bytes())).unwrap_err();
        assert!(matches!(err, MateError::UnknownNet { .. }), "{err}");
    }

    #[test]
    fn vector_vars_unsupported() {
        let (n, _) = counter(2);
        let vcd = "$var wire 8 ! q0 $end\n$enddefinitions $end\n";
        let err = read_vcd(&n, BufReader::new(vcd.as_bytes())).unwrap_err();
        assert!(matches!(err, MateError::Vcd { .. }), "{err}");
    }

    #[test]
    fn non_monotonic_time_rejected() {
        let (n, _) = counter(2);
        let vcd = "$var wire 1 ! q0 $end\n$enddefinitions $end\n#1\n#1\n";
        let err = read_vcd(&n, BufReader::new(vcd.as_bytes())).unwrap_err();
        assert!(matches!(err, MateError::Vcd { .. }), "{err}");
    }

    #[test]
    fn timestamp_gaps_repeat_values() {
        let (n, _) = counter(1);
        // q0 goes high at #0 and the next change is at #3.
        let q0_id = {
            // Build the header mapping ourselves: single var for q0.
            "!"
        };
        let vcd = format!(
            "$var wire 1 {q0_id} q0 $end\n$enddefinitions $end\n#0\n1{q0_id}\n#3\n0{q0_id}\n"
        );
        let trace = read_vcd(&n, BufReader::new(vcd.as_bytes())).unwrap();
        assert_eq!(trace.num_cycles(), 4);
        let q0 = n.find_net("q0").unwrap();
        assert_eq!(
            trace.net_history(q0).collect::<Vec<_>>(),
            vec![true, true, true, false]
        );
    }

    #[test]
    fn error_display() {
        let e = MateError::UnknownNet {
            line: 0,
            name: "x".into(),
        };
        assert!(format!("{e}").contains("unknown net"));
        let e = MateError::Vcd {
            line: 3,
            message: "bad".into(),
        };
        assert!(format!("{e}").contains("line 3"));
    }
}
