//! The levelized two-valued simulation engine.

use mate_netlist::prelude::*;

/// A snapshot of simulator state, used by fault-injection campaigns to
/// compare a faulty run against the golden run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Stored value of every flip-flop, indexed like
    /// [`Topology::seq_cells`].
    pub state: Vec<bool>,
    /// The cycle counter.
    pub cycle: u64,
}

/// A full checkpoint of simulator state: the complete net-value bitmap plus
/// the cycle counter.
///
/// Unlike [`SimSnapshot`], which covers only the flip-flops, a checkpoint
/// restores the simulator *exactly* — including primary-input levels and the
/// settled flag — so a fault-injection campaign can resume at the injection
/// cycle without replaying the warm-up prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimCheckpoint {
    values: BitSet,
    settled: bool,
    cycle: u64,
}

impl SimCheckpoint {
    /// The cycle counter at capture time.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

/// A cycle-based simulator for a validated netlist.
///
/// The lifecycle per clock cycle is:
///
/// 1. [`Simulator::set_input`] — drive primary inputs,
/// 2. [`Simulator::settle`] — propagate through the combinational cloud
///    (called implicitly by [`Simulator::value`] and [`Simulator::tick`]),
/// 3. [`Simulator::tick`] — latch all flip-flops and advance the cycle.
///
/// All flip-flops power up to `false`, matching the reset state the RTL
/// layer synthesizes.
///
/// SEU injection uses [`Simulator::flip_ff`] *between* ticks: the flip-flop's
/// stored value is inverted, exactly like a single-event upset that hits the
/// cell at a clock boundary.
#[derive(Clone, Debug)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    topo: &'n Topology,
    /// Current value of every net.
    values: BitSet,
    /// `true` while `values` reflects the current inputs/state.
    settled: bool,
    cycle: u64,
    /// Reusable latch buffer for [`Simulator::tick`], so the per-cycle hot
    /// path allocates nothing.
    latch_scratch: Vec<bool>,
}

impl<'n> Simulator<'n> {
    /// Creates a simulator with all flip-flops and inputs at `false`.
    pub fn new(netlist: &'n Netlist, topo: &'n Topology) -> Self {
        Self {
            netlist,
            topo,
            values: BitSet::new(netlist.num_nets()),
            settled: false,
            cycle: 0,
            latch_scratch: Vec::with_capacity(topo.seq_cells().len()),
        }
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The topology of the netlist under simulation.
    pub fn topology(&self) -> &'n Topology {
        self.topo
    }

    /// The current cycle number (number of completed [`Simulator::tick`]s).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drives a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert_eq!(
            self.netlist.net(net).driver(),
            NetDriver::Input,
            "{} is not a primary input",
            self.netlist.net(net).name()
        );
        if self.values.contains(net.index()) != value {
            self.values.set(net.index(), value);
            self.settled = false;
        }
    }

    /// Propagates the current inputs and flip-flop state through the
    /// combinational logic.  Idempotent; cheap when already settled.
    pub fn settle(&mut self) {
        if self.settled {
            return;
        }
        for &cell_id in self.topo.comb_order() {
            let cell = self.netlist.cell(cell_id);
            let tt = self
                .netlist
                .cell_type_of(cell_id)
                .truth_table()
                .expect("comb cells have truth tables");
            let mut row = 0usize;
            for (pin, &net) in cell.inputs().iter().enumerate() {
                row |= (self.values.contains(net.index()) as usize) << pin;
            }
            self.values.set(cell.output().index(), tt.eval(row));
        }
        self.settled = true;
    }

    /// Reads the settled value of a net in the current cycle.
    pub fn value(&mut self, net: NetId) -> bool {
        self.settle();
        self.values.contains(net.index())
    }

    /// Reads a net value without forcing a settle.  Only meaningful when the
    /// caller knows the simulator is settled (e.g. right after
    /// [`Simulator::tick`]).
    pub fn value_unsettled(&self, net: NetId) -> bool {
        self.values.contains(net.index())
    }

    /// Direct access to the settled value bitmap (one bit per net).
    pub fn values(&mut self) -> &BitSet {
        self.settle();
        &self.values
    }

    /// Latches every flip-flop from its data input and advances the cycle.
    pub fn tick(&mut self) {
        self.settle();
        // Two-phase: sample all D pins first, then update the Q nets, so
        // FF-to-FF shifts behave like real edge-triggered logic.  The latch
        // buffer is reused across ticks to keep the hot path allocation-free.
        let mut next = std::mem::take(&mut self.latch_scratch);
        next.clear();
        for &ff in self.topo.seq_cells() {
            let d = self.netlist.cell(ff).inputs()[0];
            next.push(self.values.contains(d.index()));
        }
        for (&ff, &v) in self.topo.seq_cells().iter().zip(&next) {
            let q = self.netlist.cell(ff).output();
            if self.values.contains(q.index()) != v {
                self.values.set(q.index(), v);
                self.settled = false;
            }
        }
        self.latch_scratch = next;
        self.cycle += 1;
    }

    /// Flips the stored value of a flip-flop — a single-event upset.
    ///
    /// Call between ticks; the flipped value participates in the following
    /// combinational evaluation and is latched downstream at the next tick.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a sequential cell.
    pub fn flip_ff(&mut self, ff: CellId) {
        assert!(
            self.netlist.is_seq_cell(ff),
            "cell {} is not a flip-flop",
            self.netlist.cell(ff).name()
        );
        let q = self.netlist.cell(ff).output();
        let old = self.values.contains(q.index());
        self.values.set(q.index(), !old);
        self.settled = false;
    }

    /// Reads a multi-bit bus as an integer (`nets[0]` is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 nets are given.
    pub fn read_bus(&mut self, nets: &[NetId]) -> u64 {
        assert!(nets.len() <= 64, "bus wider than 64 bits");
        self.settle();
        let mut v = 0u64;
        for (i, &net) in nets.iter().enumerate() {
            v |= (self.values.contains(net.index()) as u64) << i;
        }
        v
    }

    /// Drives a multi-bit input bus from an integer (`nets[0]` is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if a net is not a primary input or more than 64 nets are
    /// given.
    pub fn write_bus(&mut self, nets: &[NetId], value: u64) {
        assert!(nets.len() <= 64, "bus wider than 64 bits");
        for (i, &net) in nets.iter().enumerate() {
            self.set_input(net, value & (1 << i) != 0);
        }
    }

    /// Captures the flip-flop state vector.
    pub fn snapshot(&self) -> SimSnapshot {
        let state = self
            .topo
            .seq_cells()
            .iter()
            .map(|&ff| self.values.contains(self.netlist.cell(ff).output().index()))
            .collect();
        SimSnapshot {
            state,
            cycle: self.cycle,
        }
    }

    /// Restores a previously captured flip-flop state vector.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different netlist (state
    /// length mismatch).
    pub fn restore(&mut self, snapshot: &SimSnapshot) {
        assert_eq!(
            snapshot.state.len(),
            self.topo.seq_cells().len(),
            "snapshot incompatible with this netlist"
        );
        for (&ff, &v) in self.topo.seq_cells().iter().zip(&snapshot.state) {
            let q = self.netlist.cell(ff).output();
            self.values.set(q.index(), v);
        }
        self.cycle = snapshot.cycle;
        self.settled = false;
    }

    /// Captures the complete simulator state (every net value, the settled
    /// flag, and the cycle counter).
    pub fn checkpoint(&self) -> SimCheckpoint {
        SimCheckpoint {
            values: self.values.clone(),
            settled: self.settled,
            cycle: self.cycle,
        }
    }

    /// Restores a checkpoint captured by [`Simulator::checkpoint`].
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint was taken from a netlist with a different
    /// net count.
    pub fn restore_checkpoint(&mut self, checkpoint: &SimCheckpoint) {
        assert_eq!(
            checkpoint.values.capacity(),
            self.values.capacity(),
            "checkpoint incompatible with this netlist"
        );
        self.values.clone_from(&checkpoint.values);
        self.settled = checkpoint.settled;
        self.cycle = checkpoint.cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::{counter, figure1, tmr_register};

    #[test]
    fn combinational_eval_matches_logic() {
        let (n, topo) = figure1();
        let mut sim = Simulator::new(&n, &topo);
        let get = |name: &str| n.find_net(name).unwrap();
        // a=1 b=1 -> f = NAND = 0; c=0 d=1 -> g = 1; e=0 -> h=1
        for (name, v) in [
            ("a", true),
            ("b", true),
            ("c", false),
            ("d", true),
            ("e", false),
        ] {
            sim.set_input(get(name), v);
        }
        assert!(!sim.value(get("f")));
        assert!(sim.value(get("g")));
        assert!(sim.value(get("h")));
        assert!(!sim.value(get("k"))); // g & f = 0
        assert!(sim.value(get("l"))); // g | h = 1
    }

    #[test]
    fn counter_counts() {
        let (n, topo) = counter(6);
        let mut sim = Simulator::new(&n, &topo);
        let en = n.find_net("en").unwrap();
        sim.set_input(en, true);
        for _ in 0..37 {
            sim.tick();
        }
        let mut value = 0usize;
        for i in 0..6 {
            let q = n.find_net(&format!("q{i}")).unwrap();
            value |= (sim.value(q) as usize) << i;
        }
        assert_eq!(value, 37);
        // Disable: value must hold.
        sim.set_input(en, false);
        for _ in 0..5 {
            sim.tick();
        }
        let mut held = 0usize;
        for i in 0..6 {
            let q = n.find_net(&format!("q{i}")).unwrap();
            held |= (sim.value(q) as usize) << i;
        }
        assert_eq!(held, 37);
    }

    #[test]
    fn tick_is_edge_triggered() {
        // Two chained FFs must shift, not fall through.
        let lib = Library::open15();
        let mut n = Netlist::new("shift", lib);
        let din = n.add_input("din");
        let q0 = n.add_net("q0");
        let q1 = n.add_net("q1");
        n.add_cell_to("DFF", "ff0", &[din], q0).unwrap();
        n.add_cell_to("DFF", "ff1", &[q0], q1).unwrap();
        n.set_output(q1);
        let topo = n.validate().unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(din, true);
        sim.tick();
        assert!(sim.value(q0));
        assert!(!sim.value(q1), "value must not fall through both FFs");
        sim.tick();
        assert!(sim.value(q1));
    }

    #[test]
    fn flip_ff_injects_seu() {
        let (n, topo) = counter(4);
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(n.find_net("en").unwrap(), true);
        sim.tick(); // q = 0001
        let ff0 = topo.seq_cells()[0];
        sim.flip_ff(ff0);
        assert!(!sim.value(n.find_net("q0").unwrap()));
    }

    #[test]
    #[should_panic(expected = "not a flip-flop")]
    fn flip_comb_cell_panics() {
        let (n, topo) = counter(2);
        let mut sim = Simulator::new(&n, &topo);
        sim.flip_ff(topo.comb_order()[0]);
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn set_non_input_panics() {
        let (n, topo) = counter(2);
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(n.find_net("q0").unwrap(), true);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (n, topo) = counter(5);
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(n.find_net("en").unwrap(), true);
        for _ in 0..11 {
            sim.tick();
        }
        let snap = sim.snapshot();
        for _ in 0..7 {
            sim.tick();
        }
        assert_ne!(sim.snapshot().state, snap.state);
        sim.restore(&snap);
        assert_eq!(sim.snapshot(), snap);
        assert_eq!(sim.cycle(), 11);
    }

    #[test]
    fn checkpoint_restores_exact_state() {
        let (n, topo) = counter(5);
        let mut sim = Simulator::new(&n, &topo);
        let en = n.find_net("en").unwrap();
        sim.set_input(en, true);
        for _ in 0..9 {
            sim.tick();
        }
        let cp = sim.checkpoint();
        assert_eq!(cp.cycle(), 9);
        // Diverge: different input level and more cycles.
        sim.set_input(en, false);
        for _ in 0..6 {
            sim.tick();
        }
        sim.restore_checkpoint(&cp);
        assert_eq!(sim.cycle(), 9);
        // The restored run must continue exactly like the original would
        // have, including the restored input level (en=1 keeps counting).
        for _ in 0..3 {
            sim.tick();
        }
        let mut value = 0usize;
        for i in 0..5 {
            let q = n.find_net(&format!("q{i}")).unwrap();
            value |= (sim.value(q) as usize) << i;
        }
        assert_eq!(value, 12);
    }

    #[test]
    fn tmr_masks_single_upset() {
        let (n, topo) = tmr_register();
        let mut sim = Simulator::new(&n, &topo);
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        // Load 1 into all replicas.
        sim.set_input(load, true);
        sim.set_input(din, true);
        sim.tick();
        // Vote mode.
        sim.set_input(load, false);
        sim.tick();
        let vote = n.find_net("vote").unwrap();
        assert!(sim.value(vote));
        // Flip one replica: the vote must hold and the replica must heal.
        let ff0 = topo.seq_cells()[0];
        sim.flip_ff(ff0);
        assert!(sim.value(vote), "majority still 1");
        sim.tick();
        let r0 = n.cell(ff0).output();
        assert!(sim.value(r0), "replica reloaded from vote");
    }

    #[test]
    fn settle_is_idempotent() {
        let (n, topo) = figure1();
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(n.find_net("a").unwrap(), true);
        let v1 = sim.value(n.find_net("f").unwrap());
        let v2 = sim.value(n.find_net("f").unwrap());
        assert_eq!(v1, v2);
    }
}
