//! Simulation-based equivalence checking between netlists.
//!
//! Used to validate the optimization passes of [`mate_netlist::opt`]: two
//! netlists with the same port names are driven with identical random
//! stimuli for many cycles and must produce identical primary outputs in
//! every cycle.  This is not a formal proof, but with hundreds of random
//! cycles it reliably catches real rewrite bugs — the same methodology
//! netlist simulators use for regression sign-off.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mate_netlist::{NetId, Netlist, Topology};

use crate::engine::Simulator;

/// A concrete counterexample found by [`check_equiv`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mismatch {
    /// The cycle in which the outputs diverged.
    pub cycle: usize,
    /// Name of the first differing output net.
    pub output: String,
    /// The value the first ("golden") netlist produced.
    pub golden: bool,
}

/// Checks that two netlists behave identically under `cycles` cycles of
/// seeded random stimulus.
///
/// Inputs are matched by *name* (optimization preserves them); outputs are
/// matched by declaration *position* (an optimizer may reroute an output to
/// an equivalent net with a different name).
///
/// # Errors
///
/// Returns the first [`Mismatch`] found.
///
/// # Panics
///
/// Panics if the input names or the output counts do not match up.
pub fn check_equiv(
    a: (&Netlist, &Topology),
    b: (&Netlist, &Topology),
    cycles: usize,
    seed: u64,
) -> Result<(), Mismatch> {
    let (na, ta) = a;
    let (nb, tb) = b;

    let inputs_a: Vec<NetId> = na.inputs().to_vec();
    let inputs_b: Vec<NetId> = inputs_a
        .iter()
        .map(|&i| {
            nb.find_net(na.net(i).name())
                .unwrap_or_else(|| panic!("input `{}` missing in second netlist", na.net(i).name()))
        })
        .collect();
    let outputs_a: Vec<NetId> = na.outputs().to_vec();
    let outputs_b: Vec<NetId> = nb.outputs().to_vec();
    assert_eq!(outputs_a.len(), outputs_b.len(), "output counts must match");

    let mut sim_a = Simulator::new(na, ta);
    let mut sim_b = Simulator::new(nb, tb);
    let mut rng = StdRng::seed_from_u64(seed);
    for cycle in 0..cycles {
        for (&ia, &ib) in inputs_a.iter().zip(&inputs_b) {
            let v: bool = rng.gen();
            sim_a.set_input(ia, v);
            sim_b.set_input(ib, v);
        }
        for (&oa, &ob) in outputs_a.iter().zip(&outputs_b) {
            let va = sim_a.value(oa);
            let vb = sim_b.value(ob);
            if va != vb {
                return Err(Mismatch {
                    cycle,
                    output: na.net(oa).name().to_owned(),
                    golden: va,
                });
            }
        }
        sim_a.tick();
        sim_b.tick();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::examples::{counter, figure1, tmr_register};
    use mate_netlist::opt::optimize;
    use mate_netlist::random::{random_circuit, RandomCircuitConfig};

    #[test]
    fn identical_netlists_are_equivalent() {
        let (a, ta) = counter(4);
        let (b, tb) = counter(4);
        check_equiv((&a, &ta), (&b, &tb), 64, 1).unwrap();
    }

    #[test]
    fn different_behaviour_is_caught() {
        let (a, ta) = counter(4);
        // Compare against a counter whose enable is inverted — it counts on
        // exactly the opposite cycles.
        let lib = mate_netlist::Library::open15();
        let mut n = mate_netlist::Netlist::new("counter", lib);
        let en = n.add_input("en");
        let nen = n.add_cell("INV", "inv_en", &[en]).unwrap();
        let qs: Vec<_> = (0..4).map(|i| n.add_net(&format!("q{i}"))).collect();
        let mut carry = nen;
        for (i, &q) in qs.iter().enumerate() {
            let d = n.add_cell("XOR2", &format!("s{i}"), &[q, carry]).unwrap();
            n.add_cell_to("DFF", &format!("f{i}"), &[d], q).unwrap();
            if i + 1 < 4 {
                carry = n.add_cell("AND2", &format!("c{i}"), &[q, carry]).unwrap();
            }
            n.set_output(q);
        }
        let tb = n.validate().unwrap();
        let err = check_equiv((&a, &ta), (&n, &tb), 32, 7).unwrap_err();
        assert!(err.output.starts_with('q'));
    }

    #[test]
    fn optimized_figure1_is_equivalent() {
        let (n, topo) = figure1();
        let opt = optimize(&n, &topo);
        check_equiv((&n, &topo), (&opt.netlist, &opt.topo), 128, 3).unwrap();
    }

    #[test]
    fn optimized_tmr_is_equivalent() {
        let (n, topo) = tmr_register();
        let opt = optimize(&n, &topo);
        check_equiv((&n, &topo), (&opt.netlist, &opt.topo), 128, 4).unwrap();
    }

    #[test]
    fn optimized_random_circuits_are_equivalent() {
        for seed in 0..60u64 {
            let (n, topo) = random_circuit(RandomCircuitConfig::default(), seed);
            let opt = optimize(&n, &topo);
            assert!(
                opt.netlist.num_cells() <= n.num_cells(),
                "optimization must not grow the netlist"
            );
            check_equiv((&n, &topo), (&opt.netlist, &opt.topo), 64, seed).unwrap_or_else(|m| {
                panic!("seed {seed}: {m:?}");
            });
        }
    }
}
