//! Cycle-accurate gate-level simulation for synchronous netlists.
//!
//! The paper records value-change-dump (VCD) traces of fully synthesized
//! processors with a commercial netlist simulator; this crate provides the
//! equivalent substrate:
//!
//! * [`engine`] — a levelized two-valued simulator: evaluate the
//!   combinational cloud in topological order, then latch every flip-flop on
//!   the (implicit) rising clock edge.  Single-bit SEU injection flips a
//!   flip-flop's stored value between two cycles.
//! * [`trace`] — dense per-cycle wire traces ([`trace::WaveTrace`]), the
//!   in-memory analogue of a VCD file.
//! * [`vcd`] — VCD writer and reader, round-trip compatible.
//! * [`testbench`] — drives a netlist with input stimuli and external
//!   devices (instruction/data memories) and records traces.
//! * [`wide`] — a block-lane bit-parallel engine over the compile-once
//!   [`mate_netlist::SoaNetlist`] arena: one [`mate_netlist::LaneBlock`]
//!   per net carries 64/256/512 independent fault scenarios, the substrate
//!   of batched campaigns.
//! * [`transposed`] — column-major bit-plane traces
//!   ([`transposed::TransposedTrace`]): one packed word covers 64 cycles of
//!   one net, so trace analyses (MATE evaluation, coverage ranking) run
//!   word-parallel on the cycle axis.
//! * [`delta`] — an event-driven differential engine
//!   ([`delta::DeltaSimulator`]): lane blocks carry XOR-deltas against the
//!   golden trace and only the dirty fan-out frontier is re-evaluated each
//!   cycle, so campaign work scales with fault-cone activity instead of
//!   netlist size.
//!
//! # Example
//!
//! ```
//! use mate_netlist::examples::counter;
//! use mate_sim::Simulator;
//!
//! let (n, topo) = counter(4);
//! let mut sim = Simulator::new(&n, &topo);
//! sim.set_input(n.find_net("en").unwrap(), true);
//! for _ in 0..5 {
//!     sim.tick();
//! }
//! // After 5 enabled cycles the counter holds 5 = 0b0101.
//! assert!(sim.value(n.find_net("q0").unwrap()));
//! assert!(!sim.value(n.find_net("q1").unwrap()));
//! assert!(sim.value(n.find_net("q2").unwrap()));
//! ```

pub mod delta;
pub mod engine;
pub mod equiv;
pub mod testbench;
pub mod trace;
pub mod transposed;
pub mod vcd;
pub mod wide;

pub use delta::DeltaSimulator;
pub use engine::{SimCheckpoint, SimSnapshot, Simulator};
pub use equiv::{check_equiv, Mismatch};
pub use mate_netlist::MateError;
pub use testbench::{InputWave, SnapshotDevice, Testbench, TestbenchCheckpoint};
pub use trace::WaveTrace;
pub use transposed::{CycleView, TransposedTrace};
pub use vcd::{read_vcd, write_vcd};
pub use wide::{BlockSimulator, WideSimulator};
