//! Event-driven differential simulation against a golden trace.
//!
//! The paper's premise is that most SEUs are masked quickly: almost every
//! campaign lane diverges from the golden run inside a small fault cone and
//! re-converges within a few cycles.  A [`BlockSimulator`] campaign ignores
//! that sparsity — it re-evaluates every combinational cell of every cycle
//! for every lane chunk, then XOR-scans the full state to detect
//! convergence.  [`DeltaSimulator`] exploits it.
//!
//! Instead of absolute values, each net carries a **delta block**: lane `l`
//! of `delta[net]` is `actual XOR golden` for that net in scenario `l`.
//! Because campaign stimuli equal the golden stimuli by construction, input
//! deltas are identically zero and never need to be applied.  A settle then
//! touches only the *dirty frontier*: the fan-out rows (via the
//! [`SoaNetlist`] fan-out CSR) of nets whose delta is nonzero in any lane,
//! swept in levelized row order through a bitset worklist — the same
//! generation-free forward-sweep pattern as `core/src/propagate.rs`.  A
//! row's absolute input values are recovered on the fly as
//! `golden XOR delta` (one [`TransposedTrace`] bit probe per pin), so the
//! full golden state never has to be materialized per lane.
//!
//! Convergence detection is free: the simulator keeps the exact set of
//! nets with nonzero delta, so "all lanes back on the golden trajectory"
//! is simply [`DeltaSimulator::quiescent`] — no full-state scan.
//!
//! # Soundness
//!
//! A settle at cycle `t` re-evaluates a row iff it is enqueued.  Seeding
//! enqueues (a) every comb reader row of every nonzero-delta net and (b)
//! the driver row of every comb-driven nonzero-delta net; the sweep
//! enqueues the reader rows of any net whose delta *changes*.  Rows are
//! processed in ascending levelized order, and a reader row is always at a
//! strictly higher level than its producer, so one forward sweep reaches a
//! fixed point.  Any skipped row has all-zero input deltas throughout the
//! sweep and a zero output delta — its inputs are exactly the golden
//! values, and the golden trace is itself a settled fixed point, so
//! re-evaluating it would reproduce the golden output.  Rule (b) covers
//! stale deltas: a net left nonzero by an earlier cycle whose cone has gone
//! quiet is recomputed (and cleared) by its driver before any higher row
//! could read it.

use std::borrow::Cow;

use mate_netlist::prelude::*;

use crate::transposed::{CycleView, TransposedTrace};
use crate::wide::BlockSimulator;

/// An event-driven differential block simulator: one XOR-delta block per
/// net, re-evaluating only the dirty fan-out frontier each cycle.
///
/// Mirrors [`BlockSimulator`] semantics exactly — lane `l` of
/// `golden XOR delta` is cycle-for-cycle identical to a scalar run with the
/// same flips — under the contract that primary inputs follow the golden
/// trace (which campaign stimuli do by construction).
#[derive(Clone, Debug)]
pub struct DeltaSimulator<'n, B: LaneBlock = u64> {
    netlist: &'n Netlist,
    /// The flattened evaluation schedule (owned by default; share one arena
    /// across simulators with [`DeltaSimulator::with_arena`]).
    soa: Cow<'n, SoaNetlist>,
    /// One packed delta block per net: lane `l` is `actual XOR golden`.
    delta: Vec<B>,
    /// Unordered list of nets with nonzero delta.
    nonzero: Vec<u32>,
    /// Position-plus-one of each net in `nonzero` (0 = absent).
    pos: Vec<u32>,
    /// Row worklist bitset for the settle sweep.
    queued: Vec<u64>,
    /// Run index of each row (rows within a run share TT and arity).
    row_run: Vec<u32>,
    /// Reusable input-pin buffer for row evaluation.
    row_buf: [B; TruthTable::MAX_INPUTS],
    /// Tick dedup stamps, one per flip-flop.
    ff_stamp: Vec<u32>,
    stamp_gen: u32,
    /// Reusable (ff, next-delta) gather buffer for the two-phase tick.
    tick_scratch: Vec<(u32, B)>,
    cycle: u64,
}

impl<'n, B: LaneBlock> DeltaSimulator<'n, B> {
    /// Creates a differential simulator with every net on the golden
    /// trajectory (all deltas zero), flattening the netlist into its own
    /// [`SoaNetlist`] arena.
    pub fn new(netlist: &'n Netlist, topo: &'n Topology) -> Self {
        Self::from_cow(netlist, Cow::Owned(SoaNetlist::build(netlist, topo)))
    }

    /// Creates a differential simulator sharing a prebuilt arena (the
    /// compile-once path: one [`SoaNetlist::build`] serves any number of
    /// simulators and lane widths).
    ///
    /// # Panics
    ///
    /// Panics if the arena was built for a different netlist shape.
    pub fn with_arena(netlist: &'n Netlist, soa: &'n SoaNetlist) -> Self {
        Self::from_cow(netlist, Cow::Borrowed(soa))
    }

    fn from_cow(netlist: &'n Netlist, soa: Cow<'n, SoaNetlist>) -> Self {
        assert_eq!(
            soa.num_nets(),
            netlist.num_nets(),
            "arena incompatible with this netlist"
        );
        assert_eq!(
            soa.num_cells(),
            netlist.num_cells(),
            "arena incompatible with this netlist"
        );
        let mut row_run = vec![0u32; soa.num_rows()];
        for (ri, run) in soa.runs().iter().enumerate() {
            for r in run.rows() {
                row_run[r] = ri as u32;
            }
        }
        let num_nets = netlist.num_nets();
        let num_rows = soa.num_rows();
        let num_ffs = soa.ff_d().len();
        Self {
            netlist,
            soa,
            delta: vec![B::ZERO; num_nets],
            nonzero: Vec::new(),
            pos: vec![0u32; num_nets],
            queued: vec![0u64; num_rows.div_ceil(64)],
            row_run,
            row_buf: [B::ZERO; TruthTable::MAX_INPUTS],
            ff_stamp: vec![0u32; num_ffs],
            stamp_gen: 0,
            tick_scratch: Vec::new(),
            cycle: 0,
        }
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The SoA arena the settle sweep streams.
    pub fn arena(&self) -> &SoaNetlist {
        &self.soa
    }

    /// The current cycle number (the golden-trace cycle deltas are
    /// relative to).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets every lane onto the golden trajectory at `cycle` — the
    /// differential analogue of [`BlockSimulator::load_from_trace`], but
    /// O(previously dirty nets) instead of O(nets): all deltas become zero,
    /// which *is* the golden state.
    pub fn begin(&mut self, cycle: usize) {
        for &net in &self.nonzero {
            self.delta[net as usize] = B::ZERO;
            self.pos[net as usize] = 0;
        }
        self.nonzero.clear();
        self.cycle = cycle as u64;
    }

    /// Flips the stored value of a flip-flop in a single lane — one SEU in
    /// scenario `lane`, leaving all other lanes untouched.  Call between
    /// [`DeltaSimulator::begin`] and the first
    /// [`DeltaSimulator::settle`].
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a sequential cell or `lane >= B::WIDTH`.
    pub fn flip_ff(&mut self, ff: CellId, lane: usize) {
        assert!(
            self.netlist.is_seq_cell(ff),
            "cell {} is not a flip-flop",
            self.netlist.cell(ff).name()
        );
        assert!(lane < B::WIDTH, "lane {lane} out of range");
        let q = self.netlist.cell(ff).output().index();
        let mut block = self.delta[q];
        block.flip_lane(lane);
        self.set_delta(q, block);
    }

    /// Nets whose delta is nonzero in at least one lane, in no particular
    /// order.  Empty iff every lane sits exactly on the golden trace.
    pub fn nonzero_nets(&self) -> &[u32] {
        &self.nonzero
    }

    /// `true` iff every lane is back on the golden trajectory — the
    /// frontier-empty convergence test that replaces the full-state XOR
    /// scan of the full-settle engine.
    pub fn quiescent(&self) -> bool {
        self.nonzero.is_empty()
    }

    /// The packed delta block of a net (lane `l` = `actual XOR golden` in
    /// scenario `l`).  Zero for any net on the golden trajectory.
    pub fn delta(&self, net: NetId) -> B {
        self.delta[net.index()]
    }

    /// The packed delta block of a net by raw index — the hot-loop variant
    /// of [`DeltaSimulator::delta`] for scans over
    /// [`DeltaSimulator::nonzero_nets`].
    #[inline]
    pub fn delta_raw(&self, net: usize) -> B {
        self.delta[net]
    }

    /// One scan of the nonzero frontier accumulating the lane-wise OR of
    /// deltas into up to three observation groups: bit `k` of `flags[net]`
    /// routes the net's delta into result `k`.  Every net outside the
    /// frontier equals golden in all lanes, so the accumulators are exact
    /// divergence masks for whatever each flag bit marks (primary outputs,
    /// architectural state, next-cycle flip-flop D inputs, ...).
    ///
    /// This is the shared classification scan of the differential campaign
    /// engine and the fault-space collapsing prober.
    ///
    /// # Panics
    ///
    /// Panics if `flags` is shorter than the net count.
    pub fn scan_flagged(&self, flags: &[u8]) -> [B; 3] {
        let mut acc = [B::ZERO; 3];
        for &net in &self.nonzero {
            let f = flags[net as usize];
            if f != 0 {
                let d = self.delta[net as usize];
                if f & 1 != 0 {
                    acc[0] |= d;
                }
                if f & 2 != 0 {
                    acc[1] |= d;
                }
                if f & 4 != 0 {
                    acc[2] |= d;
                }
            }
        }
        acc
    }

    /// Masks every delta down to the lanes in `keep`, dropping nets whose
    /// remaining delta is zero from the nonzero set.
    ///
    /// This is the retirement hook of the differential campaign engine:
    /// once a lane's fault is classified its delta bits are dead weight —
    /// they keep dirtying the frontier and forcing re-evaluation of a fan
    /// cone nobody reads.  Clearing them lets the frontier collapse to the
    /// cones of the still-undecided lanes, which is where the event-driven
    /// engine's advantage over full re-settling comes from.
    pub fn retain_lanes(&mut self, keep: B) {
        let mut i = 0;
        while i < self.nonzero.len() {
            let net = self.nonzero[i] as usize;
            let masked = self.delta[net] & keep;
            self.delta[net] = masked;
            if masked.is_zero() {
                let last = *self.nonzero.last().unwrap();
                self.nonzero.swap_remove(i);
                self.pos[net] = 0;
                if (last as usize) != net {
                    self.pos[last as usize] = i as u32 + 1;
                }
            } else {
                i += 1;
            }
        }
    }

    /// Updates a net's delta and its nonzero-set membership.
    #[inline]
    fn set_delta(&mut self, net: usize, value: B) {
        Self::set_delta_parts(
            &mut self.delta,
            &mut self.nonzero,
            &mut self.pos,
            net,
            value,
        );
    }

    /// Field-split body of [`DeltaSimulator::set_delta`], callable while
    /// the arena is borrowed.
    #[inline]
    fn set_delta_parts(
        delta: &mut [B],
        nonzero: &mut Vec<u32>,
        pos: &mut [u32],
        net: usize,
        value: B,
    ) {
        let present = pos[net] != 0;
        let is_nonzero = !value.is_zero();
        delta[net] = value;
        if is_nonzero && !present {
            nonzero.push(net as u32);
            pos[net] = nonzero.len() as u32;
        } else if !is_nonzero && present {
            let i = (pos[net] - 1) as usize;
            let last = *nonzero.last().unwrap();
            nonzero.swap_remove(i);
            pos[net] = 0;
            if (last as usize) != net {
                pos[last as usize] = i as u32 + 1;
            }
        }
    }

    /// Propagates deltas through the combinational logic at the current
    /// cycle: re-evaluates exactly the dirty fan-out frontier, in levelized
    /// row order.  `golden` must be the transposed golden trace the run was
    /// seeded from.
    ///
    /// # Panics
    ///
    /// Panics if the trace has a different net count or does not cover the
    /// current cycle.
    pub fn settle(&mut self, golden: &TransposedTrace) {
        assert_eq!(
            golden.num_nets(),
            self.netlist.num_nets(),
            "trace incompatible with this netlist"
        );
        let view = golden.cycle_view(self.cycle as usize);
        let soa = self.soa.as_ref();
        let num_rows = soa.num_rows();
        // Adaptive sweep selection.  The event sweep touches roughly
        // `fanout + 1` rows per dirty net at a higher per-row cost than a
        // straight-line pass (bitset pops, membership bookkeeping, cascade
        // enqueues), so once the frontier covers more than ~1/8 of the rows
        // a full levelized pass over every row is cheaper — it needs no
        // queue and no per-row membership updates, just one O(nets) rebuild
        // of the nonzero set at the end.  Both sweeps compute the identical
        // fixed point (a clean-input row re-derives its golden output, i.e.
        // delta 0), so the choice is invisible to callers.
        if self.nonzero.len() * 8 >= num_rows {
            self.settle_all_rows(view);
            return;
        }
        // Seed: comb readers of every dirty net, plus the driver row of
        // every comb-driven dirty net (stale-delta clearing).
        for i in 0..self.nonzero.len() {
            let net = self.nonzero[i] as usize;
            // Reader tokens are sorted: comb rows first, D-pin tokens last.
            for &tok in soa.net_readers(net) {
                if tok as usize >= num_rows {
                    break;
                }
                self.queued[tok as usize / 64] |= 1u64 << (tok % 64);
            }
            if let Some(row) = soa.net_driver_row(net) {
                self.queued[row / 64] |= 1u64 << (row % 64);
            }
        }
        // Forward sweep: pop rows lowest-first; cascade enqueues always
        // land at strictly higher rows, so one pass reaches the fixed
        // point.
        let runs = soa.runs();
        let mut run = None;
        let mut run_end = 0usize;
        let mut wi = 0usize;
        while wi < self.queued.len() {
            let word = self.queued[wi];
            if word == 0 {
                wi += 1;
                continue;
            }
            self.queued[wi] = word & (word - 1);
            let row = wi * 64 + word.trailing_zeros() as usize;
            // Rows pop in ascending order and runs tile the row space, so
            // consecutive rows usually share a run — reload only on exit.
            if row >= run_end {
                let r = &runs[self.row_run[row] as usize];
                run_end = r.rows().end;
                run = Some(r);
            }
            let run = run.expect("row belongs to a run");
            let arity = run.arity();
            for (slot, &pin) in self.row_buf.iter_mut().zip(soa.row_pins(row)) {
                let pin = pin as usize;
                // Absolute value = golden XOR delta, lane-wise.  The golden
                // bit is unpredictable, so complement via a branch-free
                // mask instead of a conditional.
                *slot = self.delta[pin] ^ B::mask_from(view.value(pin));
            }
            let out = soa.row_out(row) as usize;
            let out_delta =
                run.tt().eval_blocks(&self.row_buf[..arity]) ^ B::mask_from(view.value(out));
            if out_delta != self.delta[out] {
                Self::set_delta_parts(
                    &mut self.delta,
                    &mut self.nonzero,
                    &mut self.pos,
                    out,
                    out_delta,
                );
                for &tok in soa.net_readers(out) {
                    if tok as usize >= num_rows {
                        break;
                    }
                    debug_assert!(tok as usize > row, "levelized reader order");
                    self.queued[tok as usize / 64] |= 1u64 << (tok % 64);
                }
            }
        }
    }

    /// Dense-frontier sweep: one straight-line levelized pass over every
    /// comb row in delta space, exactly like the full-settle engine's
    /// schedule but on deltas (pin value = delta XOR golden).  A row whose
    /// inputs all sit on golden re-derives its golden output, i.e. delta
    /// zero, so the pass reaches the same fixed point as the event sweep.
    /// The nonzero set is rebuilt afterwards in one pass over the only nets
    /// that can carry a delta: row outputs and flip-flop Q nets (inputs are
    /// clean by construction).
    fn settle_all_rows(&mut self, view: CycleView<'_>) {
        let soa = self.soa.as_ref();
        for run in soa.runs() {
            let tt = run.tt();
            let arity = run.arity();
            for row in run.rows() {
                for (slot, &pin) in self.row_buf.iter_mut().zip(soa.row_pins(row)) {
                    let pin = pin as usize;
                    *slot = self.delta[pin] ^ B::mask_from(view.value(pin));
                }
                let out = soa.row_out(row) as usize;
                self.delta[out] =
                    tt.eval_blocks(&self.row_buf[..arity]) ^ B::mask_from(view.value(out));
            }
        }
        // Membership rebuild: drop the stale set, then re-admit every net
        // that can be dirty.
        for &net in &self.nonzero {
            self.pos[net as usize] = 0;
        }
        self.nonzero.clear();
        for row in 0..soa.num_rows() {
            let out = soa.row_out(row) as usize;
            if !self.delta[out].is_zero() {
                self.nonzero.push(out as u32);
                self.pos[out] = self.nonzero.len() as u32;
            }
        }
        for &q in soa.ff_q() {
            let q = q as usize;
            if !self.delta[q].is_zero() {
                self.nonzero.push(q as u32);
                self.pos[q] = self.nonzero.len() as u32;
            }
        }
    }

    /// Latches every flip-flop and advances the cycle: the new Q delta is
    /// the settled D delta (golden Q at `t+1` is golden D at `t`, so deltas
    /// latch like values).  Only flip-flops adjacent to a dirty net are
    /// touched; call after [`DeltaSimulator::settle`].
    pub fn tick(&mut self) {
        let soa = self.soa.as_ref();
        let num_rows = soa.num_rows();
        self.stamp_gen = self.stamp_gen.wrapping_add(1);
        if self.stamp_gen == 0 {
            self.ff_stamp.fill(0);
            self.stamp_gen = 1;
        }
        // Phase 1: gather next deltas for every affected flip-flop — those
        // with a dirty D input (delta latches in) or a dirty Q output
        // (delta latches out).  Two-phase so a Q-feeds-D chain latches from
        // pre-tick values, exactly like the full-state engines.
        let mut moves = std::mem::take(&mut self.tick_scratch);
        moves.clear();
        for i in 0..self.nonzero.len() {
            let net = self.nonzero[i] as usize;
            // D-pin tokens sit at the sorted tail of the reader list.
            for &tok in soa.net_readers(net).iter().rev() {
                if (tok as usize) < num_rows {
                    break;
                }
                let ff = tok as usize - num_rows;
                if self.ff_stamp[ff] != self.stamp_gen {
                    self.ff_stamp[ff] = self.stamp_gen;
                    moves.push((ff as u32, self.delta[soa.ff_d()[ff] as usize]));
                }
            }
            if let Some(ff) = soa.ff_of_q(net) {
                if self.ff_stamp[ff] != self.stamp_gen {
                    self.ff_stamp[ff] = self.stamp_gen;
                    moves.push((ff as u32, self.delta[soa.ff_d()[ff] as usize]));
                }
            }
        }
        // Phase 2: apply.
        for &(ff, block) in &moves {
            let q = soa.ff_q()[ff as usize] as usize;
            Self::set_delta_parts(&mut self.delta, &mut self.nonzero, &mut self.pos, q, block);
        }
        self.tick_scratch = moves;
        self.cycle += 1;
    }
}

/// Asserts that `delta`'s view of the world matches a full-state block
/// simulator lane for lane: `golden XOR delta == wide` on every net.
/// Test-support helper shared by the sim and campaign test suites.
pub fn assert_matches_block<B: LaneBlock>(
    delta: &DeltaSimulator<'_, B>,
    wide: &mut BlockSimulator<'_, B>,
    golden: &TransposedTrace,
) {
    let cycle = delta.cycle() as usize;
    for i in 0..delta.netlist().num_nets() {
        let net = NetId::from_index(i);
        let absolute = delta.delta(net) ^ B::splat(golden.value(cycle, net));
        assert_eq!(
            absolute,
            wide.value_block(net),
            "net {net} cycle {cycle} diverged from the full-settle engine"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::trace::WaveTrace;
    use mate_netlist::examples::{counter, tmr_register};

    /// Golden constant-input run of `counter(bits)` with `en` high.
    fn golden_counter(bits: usize, cycles: usize) -> (Netlist, Topology, WaveTrace) {
        let (n, topo) = counter(bits);
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(n.find_net("en").unwrap(), true);
        let mut trace = WaveTrace::new(n.num_nets());
        for _ in 0..cycles {
            trace.capture(&mut sim);
            sim.tick();
        }
        (n, topo, trace)
    }

    #[test]
    fn no_flip_stays_quiescent() {
        let (n, topo, trace) = golden_counter(4, 8);
        let golden = TransposedTrace::from_trace(&trace);
        let mut sim: DeltaSimulator<'_, u64> = DeltaSimulator::new(&n, &topo);
        sim.begin(2);
        for _ in 2..7 {
            sim.settle(&golden);
            assert!(sim.quiescent());
            sim.tick();
        }
    }

    #[test]
    fn flip_matches_block_simulator_per_cycle() {
        fn check<B: LaneBlock>() {
            let (n, topo, trace) = golden_counter(4, 10);
            let golden = TransposedTrace::from_trace(&trace);
            let en = n.find_net("en").unwrap();
            for (inject, ff_i, lane) in [(1, 0, 0), (3, 2, B::WIDTH - 1), (5, 3, B::WIDTH / 2)] {
                let ff = topo.seq_cells()[ff_i];
                let mut wide: BlockSimulator<'_, B> = BlockSimulator::new(&n, &topo);
                wide.load_from_trace(&trace, inject);
                wide.flip_ff(ff, lane);
                let mut delta: DeltaSimulator<'_, B> = DeltaSimulator::new(&n, &topo);
                delta.begin(inject);
                delta.flip_ff(ff, lane);
                for _ in inject..9 {
                    wide.set_input(en, true);
                    wide.settle();
                    delta.settle(&golden);
                    assert_matches_block(&delta, &mut wide, &golden);
                    wide.tick();
                    delta.tick();
                }
            }
        }
        check::<u64>();
        check::<B256>();
        check::<B512>();
    }

    #[test]
    fn retain_lanes_masks_and_matches_fresh_seed() {
        fn check<B: LaneBlock>() {
            let (n, topo, trace) = golden_counter(4, 10);
            let golden = TransposedTrace::from_trace(&trace);
            let inject = 2;
            let keep_lane = B::WIDTH / 2;
            // Two faulty lanes, then retire all but `keep_lane`.
            let mut masked: DeltaSimulator<'_, B> = DeltaSimulator::new(&n, &topo);
            masked.begin(inject);
            masked.flip_ff(topo.seq_cells()[0], 0);
            masked.flip_ff(topo.seq_cells()[2], keep_lane);
            masked.settle(&golden);
            let mut keep = B::ZERO;
            keep.flip_lane(keep_lane);
            masked.retain_lanes(keep);
            // No retired bits survive anywhere, and membership is exact.
            for &net in masked.nonzero_nets() {
                let d = masked.delta_raw(net as usize);
                assert!(!d.is_zero());
                assert_eq!(d & !keep, B::ZERO);
            }
            // The kept lane evolves exactly like a run that never carried
            // the other fault.
            let mut lone: DeltaSimulator<'_, B> = DeltaSimulator::new(&n, &topo);
            lone.begin(inject);
            lone.flip_ff(topo.seq_cells()[2], keep_lane);
            lone.settle(&golden);
            for _ in inject..9 {
                for net in 0..n.num_nets() {
                    assert_eq!(masked.delta_raw(net) & keep, lone.delta_raw(net) & keep);
                }
                masked.tick();
                lone.tick();
                masked.settle(&golden);
                lone.settle(&golden);
            }
            // Retiring every lane empties the frontier outright.
            masked.retain_lanes(B::ZERO);
            assert!(masked.quiescent());
        }
        check::<u64>();
        check::<B256>();
        check::<B512>();
    }

    #[test]
    fn double_flip_cancels() {
        let (n, topo, trace) = golden_counter(3, 4);
        let golden = TransposedTrace::from_trace(&trace);
        let mut sim: DeltaSimulator<'_, u64> = DeltaSimulator::new(&n, &topo);
        sim.begin(1);
        let ff = topo.seq_cells()[1];
        sim.flip_ff(ff, 5);
        assert!(!sim.quiescent());
        sim.flip_ff(ff, 5);
        assert!(sim.quiescent());
        sim.settle(&golden);
        assert!(sim.quiescent());
    }

    #[test]
    fn begin_resets_previous_chunk() {
        let (n, topo, trace) = golden_counter(4, 8);
        let golden = TransposedTrace::from_trace(&trace);
        let mut sim: DeltaSimulator<'_, u64> = DeltaSimulator::new(&n, &topo);
        sim.begin(1);
        sim.flip_ff(topo.seq_cells()[0], 0);
        sim.settle(&golden);
        assert!(!sim.quiescent());
        // Re-seeding drops all of the first chunk's state.
        sim.begin(3);
        assert!(sim.quiescent());
        assert_eq!(sim.cycle(), 3);
        sim.settle(&golden);
        assert!(sim.quiescent());
    }

    #[test]
    fn tmr_flip_converges_within_one_cycle() {
        // A TMR-protected register masks any single-replica flip: the vote
        // output never diverges and the frontier empties after one tick.
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(load, true);
        sim.set_input(din, true);
        sim.tick();
        sim.set_input(load, false);
        let mut trace = WaveTrace::new(n.num_nets());
        for _ in 0..4 {
            trace.capture(&mut sim);
            sim.tick();
        }
        let golden = TransposedTrace::from_trace(&trace);
        let vote = n.find_net("vote").unwrap();
        let mut delta: DeltaSimulator<'_, B256> = DeltaSimulator::new(&n, &topo);
        delta.begin(0);
        delta.flip_ff(topo.seq_cells()[0], 77);
        delta.settle(&golden);
        assert!(!delta.quiescent());
        assert!(delta.delta(vote).is_zero(), "TMR vote must mask the flip");
        // The replica reloads from the voted value, so the flip washes out.
        delta.tick();
        delta.settle(&golden);
        assert!(delta.quiescent());
    }

    #[test]
    fn shared_arena_matches_owned() {
        let (n, topo, trace) = golden_counter(3, 6);
        let golden = TransposedTrace::from_trace(&trace);
        let arena = SoaNetlist::build(&n, &topo);
        let ff = topo.seq_cells()[0];
        let mut owned: DeltaSimulator<'_, u64> = DeltaSimulator::new(&n, &topo);
        let mut shared: DeltaSimulator<'_, u64> = DeltaSimulator::with_arena(&n, &arena);
        for sim in [&mut owned, &mut shared] {
            sim.begin(1);
            sim.flip_ff(ff, 3);
            sim.settle(&golden);
        }
        for i in 0..n.num_nets() {
            let net = NetId::from_index(i);
            assert_eq!(owned.delta(net), shared.delta(net), "net {net}");
        }
    }

    #[test]
    #[should_panic(expected = "not a flip-flop")]
    fn flip_comb_cell_panics() {
        let (n, topo) = counter(2);
        let mut sim: DeltaSimulator<'_, u64> = DeltaSimulator::new(&n, &topo);
        sim.flip_ff(topo.comb_order()[0], 0);
    }

    #[test]
    #[should_panic(expected = "beyond trace")]
    fn settle_past_trace_panics() {
        let (n, topo, trace) = golden_counter(2, 3);
        let golden = TransposedTrace::from_trace(&trace);
        let mut sim: DeltaSimulator<'_, u64> = DeltaSimulator::new(&n, &topo);
        sim.begin(3);
        sim.settle(&golden);
    }
}
