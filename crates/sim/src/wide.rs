//! Bit-parallel block-lane simulation over the SoA arena.
//!
//! A [`BlockSimulator`] holds one [`LaneBlock`] per net: bit lane `l` is the
//! value of that net in scenario `l`, so [`LaneBlock::WIDTH`] independent
//! fault scenarios advance in lock-step through each combinational settle
//! and clock tick.  This is the classic word-level trick of
//! parallel-pattern fault simulators, applied to SEU campaigns: seed all
//! lanes from the golden run at the injection cycle, flip one flip-flop per
//! lane, and compare every lane against the golden trace with plain XOR
//! blocks.  [`WideSimulator`] is the historical 64-lane (`u64`)
//! instantiation; [`B256`](mate_netlist::B256) and
//! [`B512`](mate_netlist::B512) run 256 and 512 scenarios per pass.
//!
//! The settle loop streams the compile-once [`SoaNetlist`] arena — levelized
//! per-cell-type runs over flat CSR pin arrays — instead of chasing the
//! pointer-rich netlist graph cell by cell; the schedule is topologically
//! equivalent, so the engine mirrors [`Simulator`](crate::Simulator)
//! semantics exactly (same two-phase latch, settle-order-independent fixed
//! point).  Lane `l` of a block run is cycle-for-cycle identical to a scalar
//! run with the same initial state, stimuli, and flip.

use std::borrow::Cow;

use mate_netlist::prelude::*;

use crate::trace::WaveTrace;

/// A block-lane bit-parallel simulator for a validated netlist, generic
/// over the lane container `B` (`u64` = 64 lanes, [`B256`] = 256,
/// [`B512`] = 512).
///
/// Lanes share primary-input values (campaign stimuli are common to all
/// scenarios); they diverge only through [`BlockSimulator::flip_ff`] and
/// the propagation that follows.
#[derive(Clone, Debug)]
pub struct BlockSimulator<'n, B: LaneBlock = u64> {
    netlist: &'n Netlist,
    topo: &'n Topology,
    /// The flattened evaluation schedule (owned by default; share one arena
    /// across simulators with [`BlockSimulator::with_arena`]).
    soa: Cow<'n, SoaNetlist>,
    /// One packed block per net; lane `l` is the net's value in scenario `l`.
    values: Vec<B>,
    settled: bool,
    cycle: u64,
    /// Reusable input-pin buffer for the settle loop.
    row_buf: [B; TruthTable::MAX_INPUTS],
    /// Reusable latch buffer for the tick loop.
    latch_scratch: Vec<B>,
}

/// The 64-lane `u64` instantiation of [`BlockSimulator`] — the baseline
/// engine all wider blocks are checked against.
pub type WideSimulator<'n> = BlockSimulator<'n, u64>;

impl<'n, B: LaneBlock> BlockSimulator<'n, B> {
    /// Creates a block simulator with every net at `0` in all lanes,
    /// flattening the netlist into its own [`SoaNetlist`] arena.
    pub fn new(netlist: &'n Netlist, topo: &'n Topology) -> Self {
        Self::from_cow(netlist, topo, Cow::Owned(SoaNetlist::build(netlist, topo)))
    }

    /// Creates a block simulator sharing a prebuilt arena (the compile-once
    /// path: one [`SoaNetlist::build`] serves any number of simulators and
    /// lane widths).
    ///
    /// # Panics
    ///
    /// Panics if the arena was built for a different netlist shape.
    pub fn with_arena(netlist: &'n Netlist, topo: &'n Topology, soa: &'n SoaNetlist) -> Self {
        Self::from_cow(netlist, topo, Cow::Borrowed(soa))
    }

    fn from_cow(netlist: &'n Netlist, topo: &'n Topology, soa: Cow<'n, SoaNetlist>) -> Self {
        assert_eq!(
            soa.num_nets(),
            netlist.num_nets(),
            "arena incompatible with this netlist"
        );
        assert_eq!(
            soa.num_cells(),
            netlist.num_cells(),
            "arena incompatible with this netlist"
        );
        Self {
            netlist,
            topo,
            values: vec![B::ZERO; netlist.num_nets()],
            soa,
            settled: false,
            cycle: 0,
            row_buf: [B::ZERO; TruthTable::MAX_INPUTS],
            latch_scratch: Vec::with_capacity(topo.seq_cells().len()),
        }
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The topology of the netlist under simulation.
    pub fn topology(&self) -> &'n Topology {
        self.topo
    }

    /// The SoA arena the settle loop streams.
    pub fn arena(&self) -> &SoaNetlist {
        &self.soa
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Seeds every lane with the settled values of `trace` at `cycle` and
    /// sets the cycle counter accordingly.
    ///
    /// Because flip-flop outputs do not change during a combinational
    /// settle, the settled values of cycle `c` carry exactly the flip-flop
    /// state that was live during cycle `c` — so a campaign can inject here
    /// and continue without replaying cycles `0..c`.
    ///
    /// # Panics
    ///
    /// Panics if the trace has a different net count or `cycle` is out of
    /// range.
    pub fn load_from_trace(&mut self, trace: &WaveTrace, cycle: usize) {
        assert_eq!(
            trace.num_nets(),
            self.netlist.num_nets(),
            "trace incompatible with this netlist"
        );
        let words = trace.cycle_words(cycle);
        for (i, value) in self.values.iter_mut().enumerate() {
            let bit = words[i / WORD_LANES] >> (i % WORD_LANES) & 1;
            // Broadcast: all-ones when the golden bit is set, zero otherwise.
            *value = B::splat(bit != 0);
        }
        self.settled = true;
        self.cycle = cycle as u64;
    }

    /// Drives a primary input to the same level in all lanes.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert_eq!(
            self.netlist.net(net).driver(),
            NetDriver::Input,
            "{} is not a primary input",
            self.netlist.net(net).name()
        );
        let block = B::splat(value);
        if self.values[net.index()] != block {
            self.values[net.index()] = block;
            self.settled = false;
        }
    }

    /// Propagates inputs and flip-flop state through the combinational
    /// logic in all lanes at once, streaming the levelized SoA schedule run
    /// by run.  Idempotent; cheap when already settled.
    pub fn settle(&mut self) {
        if self.settled {
            return;
        }
        let soa = self.soa.as_ref();
        for run in soa.runs() {
            let tt = run.tt();
            let arity = run.arity();
            for row in run.rows() {
                for (slot, &net) in self.row_buf.iter_mut().zip(soa.row_pins(row)) {
                    *slot = self.values[net as usize];
                }
                self.values[soa.row_out(row) as usize] = tt.eval_blocks(&self.row_buf[..arity]);
            }
        }
        self.settled = true;
    }

    /// The settled packed value block of a net (lane `l` = scenario `l`).
    pub fn value_block(&mut self, net: NetId) -> B {
        self.settle();
        self.values[net.index()]
    }

    /// Latches every flip-flop from its data input in all lanes and
    /// advances the cycle.
    pub fn tick(&mut self) {
        self.settle();
        // Two-phase latch, exactly like the scalar engine, over the flat
        // D/Q index arrays.
        let mut next = std::mem::take(&mut self.latch_scratch);
        next.clear();
        let soa = self.soa.as_ref();
        next.extend(soa.ff_d().iter().map(|&d| self.values[d as usize]));
        for (&q, &block) in soa.ff_q().iter().zip(&next) {
            if self.values[q as usize] != block {
                self.values[q as usize] = block;
                self.settled = false;
            }
        }
        self.latch_scratch = next;
        self.cycle += 1;
    }

    /// Flips the stored value of a flip-flop in a single lane — one SEU in
    /// scenario `lane`, leaving all other lanes untouched.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a sequential cell or `lane >= B::WIDTH`.
    pub fn flip_ff(&mut self, ff: CellId, lane: usize) {
        assert!(
            self.netlist.is_seq_cell(ff),
            "cell {} is not a flip-flop",
            self.netlist.cell(ff).name()
        );
        assert!(lane < B::WIDTH, "lane {lane} out of range");
        let q = self.netlist.cell(ff).output();
        self.values[q.index()].flip_lane(lane);
        self.settled = false;
    }
}

impl WideSimulator<'_> {
    /// The settled packed value word of a net (bit `l` = lane `l`) — the
    /// historical name of [`BlockSimulator::value_block`] on the 64-lane
    /// engine.
    pub fn value_word(&mut self, net: NetId) -> u64 {
        self.value_block(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use mate_netlist::examples::{counter, tmr_register};

    #[test]
    fn broadcast_lanes_match_scalar_run() {
        let (n, topo) = counter(4);
        let en = n.find_net("en").unwrap();

        // Golden scalar trace.
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(en, true);
        let mut trace = WaveTrace::new(n.num_nets());
        for _ in 0..6 {
            trace.capture(&mut sim);
            sim.tick();
        }

        // Seed wide at cycle 2 and advance in lock-step; with no flips all
        // lanes must reproduce the golden values exactly.
        let mut wide = WideSimulator::new(&n, &topo);
        wide.load_from_trace(&trace, 2);
        for cycle in 2..6 {
            wide.set_input(en, true);
            wide.settle();
            for i in 0..n.num_nets() {
                let net = NetId::from_index(i);
                let expect = if trace.value(cycle, net) { u64::MAX } else { 0 };
                assert_eq!(wide.value_word(net), expect, "net {net} cycle {cycle}");
            }
            wide.tick();
        }
    }

    #[test]
    fn wide_blocks_match_scalar_run() {
        // The 256- and 512-lane engines broadcast-settle identically to the
        // scalar reference, including across a shared prebuilt arena.
        fn check<B: LaneBlock>(use_shared_arena: bool) {
            let (n, topo) = counter(4);
            let en = n.find_net("en").unwrap();
            let mut sim = Simulator::new(&n, &topo);
            sim.set_input(en, true);
            let mut trace = WaveTrace::new(n.num_nets());
            for _ in 0..6 {
                trace.capture(&mut sim);
                sim.tick();
            }
            let arena = SoaNetlist::build(&n, &topo);
            let mut wide: BlockSimulator<'_, B> = if use_shared_arena {
                BlockSimulator::with_arena(&n, &topo, &arena)
            } else {
                BlockSimulator::new(&n, &topo)
            };
            wide.load_from_trace(&trace, 1);
            for cycle in 1..6 {
                wide.set_input(en, true);
                for i in 0..n.num_nets() {
                    let net = NetId::from_index(i);
                    let expect = B::splat(trace.value(cycle, net));
                    assert_eq!(wide.value_block(net), expect, "net {net} cycle {cycle}");
                }
                wide.tick();
            }
        }
        check::<B256>(false);
        check::<B256>(true);
        check::<B512>(false);
        check::<B512>(true);
    }

    #[test]
    fn flip_affects_only_its_lane() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(load, true);
        sim.set_input(din, true);
        sim.tick();
        sim.set_input(load, false);
        let mut trace = WaveTrace::new(n.num_nets());
        trace.capture(&mut sim);
        // Use the (settled) cycle-0-equivalent row to seed.
        let mut wide = WideSimulator::new(&n, &topo);
        wide.load_from_trace(&trace, 0);
        let ff0 = topo.seq_cells()[0];
        wide.flip_ff(ff0, 7);
        let r0 = n.cell(ff0).output();
        let word = wide.value_word(r0);
        // Lane 7 flipped (replica loaded 1, now 0); all other lanes hold 1.
        assert_eq!(word, !(1u64 << 7));
        // The TMR vote masks the flip in every lane.
        let vote = n.find_net("vote").unwrap();
        assert_eq!(wide.value_word(vote), u64::MAX);
    }

    #[test]
    fn block_flip_affects_only_its_lane() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(load, true);
        sim.set_input(din, true);
        sim.tick();
        sim.set_input(load, false);
        let mut trace = WaveTrace::new(n.num_nets());
        trace.capture(&mut sim);
        let mut wide: BlockSimulator<'_, B512> = BlockSimulator::new(&n, &topo);
        wide.load_from_trace(&trace, 0);
        let ff0 = topo.seq_cells()[0];
        // A lane beyond the old 64-lane range.
        wide.flip_ff(ff0, 300);
        let r0 = n.cell(ff0).output();
        let block = wide.value_block(r0);
        let mut expect = B512::ONES;
        expect.flip_lane(300);
        assert_eq!(block, expect);
        // The TMR vote masks the flip in every lane.
        let vote = n.find_net("vote").unwrap();
        assert_eq!(wide.value_block(vote), B512::ONES);
    }

    #[test]
    #[should_panic(expected = "not a flip-flop")]
    fn flip_comb_cell_panics() {
        let (n, topo) = counter(2);
        let mut wide = WideSimulator::new(&n, &topo);
        wide.flip_ff(topo.comb_order()[0], 0);
    }

    #[test]
    #[should_panic(expected = "lane 64 out of range")]
    fn flip_lane_out_of_range_panics() {
        let (n, topo) = counter(2);
        let mut wide = WideSimulator::new(&n, &topo);
        wide.flip_ff(topo.seq_cells()[0], 64);
    }

    #[test]
    #[should_panic(expected = "arena incompatible")]
    fn mismatched_arena_panics() {
        let (n, topo) = counter(2);
        let (other, other_topo) = counter(5);
        let arena = SoaNetlist::build(&other, &other_topo);
        let _ = WideSimulator::with_arena(&n, &topo, &arena);
    }
}
