//! Bit-parallel 64-lane simulation.
//!
//! A [`WideSimulator`] holds one `u64` per net: bit lane `l` is the value of
//! that net in scenario `l`, so 64 independent fault scenarios advance in
//! lock-step through each combinational settle and clock tick.  This is the
//! classic word-level trick of parallel-pattern fault simulators, applied to
//! SEU campaigns: seed all lanes from the golden run at the injection cycle,
//! flip one flip-flop per lane, and compare every lane against the golden
//! trace with plain XOR words.
//!
//! The wide engine mirrors [`Simulator`](crate::Simulator) semantics exactly
//! — same levelized settle order, same two-phase latch — so lane `l` of a
//! wide run is cycle-for-cycle identical to a scalar run with the same
//! initial state, stimuli, and flip.

use mate_netlist::prelude::*;

use crate::trace::WaveTrace;

/// A 64-lane bit-parallel simulator for a validated netlist.
///
/// Lanes share primary-input values (campaign stimuli are common to all
/// scenarios); they diverge only through [`WideSimulator::flip_ff`] and the
/// propagation that follows.
#[derive(Clone, Debug)]
pub struct WideSimulator<'n> {
    netlist: &'n Netlist,
    topo: &'n Topology,
    /// One packed word per net; bit `l` is the net's value in lane `l`.
    values: Vec<u64>,
    settled: bool,
    cycle: u64,
    /// Reusable input-pin buffer for the settle loop.
    row_buf: [u64; TruthTable::MAX_INPUTS],
    /// Reusable latch buffer for the tick loop.
    latch_scratch: Vec<u64>,
}

impl<'n> WideSimulator<'n> {
    /// Creates a wide simulator with every net at `0` in all lanes.
    pub fn new(netlist: &'n Netlist, topo: &'n Topology) -> Self {
        Self {
            netlist,
            topo,
            values: vec![0u64; netlist.num_nets()],
            settled: false,
            cycle: 0,
            row_buf: [0; TruthTable::MAX_INPUTS],
            latch_scratch: Vec::with_capacity(topo.seq_cells().len()),
        }
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The topology of the netlist under simulation.
    pub fn topology(&self) -> &'n Topology {
        self.topo
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Seeds every lane with the settled values of `trace` at `cycle` and
    /// sets the cycle counter accordingly.
    ///
    /// Because flip-flop outputs do not change during a combinational
    /// settle, the settled values of cycle `c` carry exactly the flip-flop
    /// state that was live during cycle `c` — so a campaign can inject here
    /// and continue without replaying cycles `0..c`.
    ///
    /// # Panics
    ///
    /// Panics if the trace has a different net count or `cycle` is out of
    /// range.
    pub fn load_from_trace(&mut self, trace: &WaveTrace, cycle: usize) {
        assert_eq!(
            trace.num_nets(),
            self.netlist.num_nets(),
            "trace incompatible with this netlist"
        );
        let words = trace.cycle_words(cycle);
        for (i, value) in self.values.iter_mut().enumerate() {
            let bit = words[i / 64] >> (i % 64) & 1;
            // Broadcast: all-ones when the golden bit is set, zero otherwise.
            *value = 0u64.wrapping_sub(bit);
        }
        self.settled = true;
        self.cycle = cycle as u64;
    }

    /// Drives a primary input to the same level in all 64 lanes.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert_eq!(
            self.netlist.net(net).driver(),
            NetDriver::Input,
            "{} is not a primary input",
            self.netlist.net(net).name()
        );
        let word = if value { u64::MAX } else { 0 };
        if self.values[net.index()] != word {
            self.values[net.index()] = word;
            self.settled = false;
        }
    }

    /// Propagates inputs and flip-flop state through the combinational
    /// logic in all lanes at once.  Idempotent; cheap when already settled.
    pub fn settle(&mut self) {
        if self.settled {
            return;
        }
        for &cell_id in self.topo.comb_order() {
            let cell = self.netlist.cell(cell_id);
            let tt = self
                .netlist
                .cell_type_of(cell_id)
                .truth_table()
                .expect("comb cells have truth tables");
            let inputs = cell.inputs();
            for (pin, &net) in inputs.iter().enumerate() {
                self.row_buf[pin] = self.values[net.index()];
            }
            self.values[cell.output().index()] = tt.eval_wide(&self.row_buf[..inputs.len()]);
        }
        self.settled = true;
    }

    /// The settled packed value word of a net (bit `l` = lane `l`).
    pub fn value_word(&mut self, net: NetId) -> u64 {
        self.settle();
        self.values[net.index()]
    }

    /// Latches every flip-flop from its data input in all lanes and
    /// advances the cycle.
    pub fn tick(&mut self) {
        self.settle();
        // Two-phase latch, exactly like the scalar engine.
        let mut next = std::mem::take(&mut self.latch_scratch);
        next.clear();
        for &ff in self.topo.seq_cells() {
            let d = self.netlist.cell(ff).inputs()[0];
            next.push(self.values[d.index()]);
        }
        for (&ff, &word) in self.topo.seq_cells().iter().zip(&next) {
            let q = self.netlist.cell(ff).output();
            if self.values[q.index()] != word {
                self.values[q.index()] = word;
                self.settled = false;
            }
        }
        self.latch_scratch = next;
        self.cycle += 1;
    }

    /// Flips the stored value of a flip-flop in a single lane — one SEU in
    /// scenario `lane`, leaving all other lanes untouched.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a sequential cell or `lane >= 64`.
    pub fn flip_ff(&mut self, ff: CellId, lane: usize) {
        assert!(
            self.netlist.is_seq_cell(ff),
            "cell {} is not a flip-flop",
            self.netlist.cell(ff).name()
        );
        assert!(lane < 64, "lane {lane} out of range");
        let q = self.netlist.cell(ff).output();
        self.values[q.index()] ^= 1u64 << lane;
        self.settled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use mate_netlist::examples::{counter, tmr_register};

    #[test]
    fn broadcast_lanes_match_scalar_run() {
        let (n, topo) = counter(4);
        let en = n.find_net("en").unwrap();

        // Golden scalar trace.
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(en, true);
        let mut trace = WaveTrace::new(n.num_nets());
        for _ in 0..6 {
            trace.capture(&mut sim);
            sim.tick();
        }

        // Seed wide at cycle 2 and advance in lock-step; with no flips all
        // lanes must reproduce the golden values exactly.
        let mut wide = WideSimulator::new(&n, &topo);
        wide.load_from_trace(&trace, 2);
        for cycle in 2..6 {
            wide.set_input(en, true);
            wide.settle();
            for i in 0..n.num_nets() {
                let net = NetId::from_index(i);
                let expect = if trace.value(cycle, net) { u64::MAX } else { 0 };
                assert_eq!(wide.value_word(net), expect, "net {net} cycle {cycle}");
            }
            wide.tick();
        }
    }

    #[test]
    fn flip_affects_only_its_lane() {
        let (n, topo) = tmr_register();
        let load = n.find_net("load").unwrap();
        let din = n.find_net("din").unwrap();
        let mut sim = Simulator::new(&n, &topo);
        sim.set_input(load, true);
        sim.set_input(din, true);
        sim.tick();
        sim.set_input(load, false);
        let mut trace = WaveTrace::new(n.num_nets());
        trace.capture(&mut sim);
        // Use the (settled) cycle-0-equivalent row to seed.
        let mut wide = WideSimulator::new(&n, &topo);
        wide.load_from_trace(&trace, 0);
        let ff0 = topo.seq_cells()[0];
        wide.flip_ff(ff0, 7);
        let r0 = n.cell(ff0).output();
        let word = wide.value_word(r0);
        // Lane 7 flipped (replica loaded 1, now 0); all other lanes hold 1.
        assert_eq!(word, !(1u64 << 7));
        // The TMR vote masks the flip in every lane.
        let vote = n.find_net("vote").unwrap();
        assert_eq!(wide.value_word(vote), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "not a flip-flop")]
    fn flip_comb_cell_panics() {
        let (n, topo) = counter(2);
        let mut wide = WideSimulator::new(&n, &topo);
        wide.flip_ff(topo.comb_order()[0], 0);
    }
}
