//! Lane-level equivalence of the bit-parallel engine.
//!
//! The wide engine is only sound if each of its 64 lanes behaves exactly
//! like an independent scalar [`Simulator`]: same settle order, same
//! two-phase latch, same fault propagation.  These properties check that on
//! randomly generated synchronous circuits: seed a [`WideSimulator`] from a
//! golden trace, flip one flip-flop in lane 0, and the lane must track a
//! scalar run with the same flip cycle-for-cycle on *every* net — while all
//! unflipped lanes keep reproducing the golden trace.

use proptest::prelude::*;

use mate_netlist::random::{random_circuit, RandomCircuitConfig};
use mate_netlist::{LaneBlock, NetId, SoaNetlist, B256, B512};
use mate_sim::{BlockSimulator, Simulator, WaveTrace, WideSimulator};

/// Deterministic pseudo-random stimulus bit for input `i` at `cycle`.
fn stim_bit(seed: u64, input: usize, cycle: usize) -> bool {
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((input as u64) << 32) | cycle as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x >> 37) & 1 == 1
}

/// Generic body of `flipped_lane_tracks_scalar_at_every_block_width`: run
/// one random circuit at lane container `B`, flipping an *arbitrary* lane
/// (not just lane 0), and check every lane of every net each cycle.
fn check_block_width<B: LaneBlock>(seed: u64) -> Result<(), TestCaseError> {
    let cfg = RandomCircuitConfig {
        inputs: 4,
        ffs: 10,
        gates: 40,
        outputs: 3,
    };
    let (n, topo) = random_circuit(cfg, seed);
    let inputs = n.inputs().to_vec();
    let cycles = 10usize;
    let inject_cycle = (seed % cycles as u64) as usize;
    let ff = topo.seq_cells()[(seed / 7 % topo.seq_cells().len() as u64) as usize];
    let flip_lane = (seed / 13 % B::WIDTH as u64) as usize;

    let mut golden = Simulator::new(&n, &topo);
    let mut trace = WaveTrace::new(n.num_nets());
    for c in 0..cycles {
        for (i, &input) in inputs.iter().enumerate() {
            golden.set_input(input, stim_bit(seed, i, c));
        }
        trace.capture(&mut golden);
        golden.tick();
    }

    let mut scalar = Simulator::new(&n, &topo);
    for c in 0..inject_cycle {
        for (i, &input) in inputs.iter().enumerate() {
            scalar.set_input(input, stim_bit(seed, i, c));
        }
        scalar.settle();
        scalar.tick();
    }
    scalar.flip_ff(ff);

    let mut wide: BlockSimulator<'_, B> = BlockSimulator::new(&n, &topo);
    wide.load_from_trace(&trace, inject_cycle);
    wide.flip_ff(ff, flip_lane);

    for c in inject_cycle..cycles {
        for (i, &input) in inputs.iter().enumerate() {
            let bit = stim_bit(seed, i, c);
            scalar.set_input(input, bit);
            wide.set_input(input, bit);
        }
        scalar.settle();
        wide.settle();
        for idx in 0..n.num_nets() {
            let net = NetId::from_index(idx);
            let block = wide.value_block(net);
            for lane in 0..B::WIDTH {
                let expect = if lane == flip_lane {
                    scalar.value(net)
                } else {
                    trace.value(c, net)
                };
                prop_assert_eq!(
                    block.lane(lane),
                    expect,
                    "net {} cycle {c} lane {lane}/{} (flip lane {flip_lane})",
                    n.net(net).name(),
                    B::WIDTH
                );
            }
        }
        scalar.tick();
        wide.tick();
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lane 0 of a wide run with a single flip is cycle-for-cycle identical
    /// to a scalar run with the same flip, and every other (unflipped) lane
    /// keeps reproducing the golden trace.
    #[test]
    fn flipped_lane_tracks_scalar_simulator(seed in 0u64..3_000) {
        let cfg = RandomCircuitConfig { inputs: 4, ffs: 10, gates: 40, outputs: 3 };
        let (n, topo) = random_circuit(cfg, seed);
        let inputs = n.inputs().to_vec();
        let cycles = 12usize;
        let inject_cycle = (seed % cycles as u64) as usize;
        let ff = topo.seq_cells()[(seed / 7 % topo.seq_cells().len() as u64) as usize];

        // Golden scalar trace.
        let mut golden = Simulator::new(&n, &topo);
        let mut trace = WaveTrace::new(n.num_nets());
        for c in 0..cycles {
            for (i, &input) in inputs.iter().enumerate() {
                golden.set_input(input, stim_bit(seed, i, c));
            }
            trace.capture(&mut golden);
            golden.tick();
        }

        // Scalar faulty run: replay to the injection cycle, flip, continue.
        let mut scalar = Simulator::new(&n, &topo);
        for c in 0..inject_cycle {
            for (i, &input) in inputs.iter().enumerate() {
                scalar.set_input(input, stim_bit(seed, i, c));
            }
            scalar.settle();
            scalar.tick();
        }
        scalar.flip_ff(ff);

        // Wide faulty run: seed all lanes from the golden trace, flip lane 0.
        let mut wide = WideSimulator::new(&n, &topo);
        wide.load_from_trace(&trace, inject_cycle);
        wide.flip_ff(ff, 0);

        for c in inject_cycle..cycles {
            for (i, &input) in inputs.iter().enumerate() {
                let bit = stim_bit(seed, i, c);
                scalar.set_input(input, bit);
                wide.set_input(input, bit);
            }
            scalar.settle();
            wide.settle();
            for idx in 0..n.num_nets() {
                let net = NetId::from_index(idx);
                let word = wide.value_word(net);
                // Lane 0 must equal the faulty scalar simulator.
                prop_assert_eq!(
                    word & 1 == 1,
                    scalar.value(net),
                    "net {} cycle {} lane 0 diverged from scalar",
                    n.net(net).name(), c
                );
                // Lanes 1..64 were never flipped: they must stay golden.
                let golden_rest = if trace.value(c, net) { !1u64 } else { 0 };
                prop_assert_eq!(
                    word & !1u64,
                    golden_rest,
                    "net {} cycle {}: unflipped lanes diverged from golden",
                    n.net(net).name(), c
                );
            }
            scalar.tick();
            wide.tick();
        }
    }

    /// With no flips at all, every lane reproduces the golden trace from an
    /// arbitrary seed cycle onwards.
    #[test]
    fn broadcast_run_reproduces_golden_trace(seed in 0u64..3_000) {
        let cfg = RandomCircuitConfig { inputs: 3, ffs: 8, gates: 30, outputs: 2 };
        let (n, topo) = random_circuit(cfg, seed.wrapping_add(91));
        let inputs = n.inputs().to_vec();
        let cycles = 10usize;
        let start = (seed % cycles as u64) as usize;

        let mut golden = Simulator::new(&n, &topo);
        let mut trace = WaveTrace::new(n.num_nets());
        for c in 0..cycles {
            for (i, &input) in inputs.iter().enumerate() {
                golden.set_input(input, stim_bit(seed, i, c));
            }
            trace.capture(&mut golden);
            golden.tick();
        }

        let mut wide = WideSimulator::new(&n, &topo);
        wide.load_from_trace(&trace, start);
        for c in start..cycles {
            for (i, &input) in inputs.iter().enumerate() {
                wide.set_input(input, stim_bit(seed, i, c));
            }
            wide.settle();
            for idx in 0..n.num_nets() {
                let net = NetId::from_index(idx);
                let expect = if trace.value(c, net) { u64::MAX } else { 0 };
                prop_assert_eq!(
                    wide.value_word(net),
                    expect,
                    "net {} cycle {}",
                    n.net(net).name(), c
                );
            }
            wide.tick();
        }
    }

    /// The 256- and 512-lane block engines are lane-for-lane identical to
    /// independent scalar simulators, with the flip in an arbitrary lane.
    #[test]
    fn flipped_lane_tracks_scalar_at_every_block_width(seed in 0u64..3_000) {
        check_block_width::<B256>(seed)?;
        check_block_width::<B512>(seed)?;
    }

    /// Graph → [`SoaNetlist`] → evaluation round-trip: the arena is
    /// consistent with the graph it was built from, and a scalar sweep over
    /// the flat arrays (`settle_scalar` + a manual FF tick through
    /// `ff_d`/`ff_q`) reproduces the pointer-walking [`Simulator`]
    /// cycle-for-cycle on every net.
    #[test]
    fn soa_arena_round_trips_the_graph_evaluation(seed in 0u64..3_000) {
        let cfg = RandomCircuitConfig { inputs: 4, ffs: 9, gates: 35, outputs: 3 };
        let (n, topo) = random_circuit(cfg, seed.wrapping_add(47));
        let soa = SoaNetlist::build(&n, &topo);
        soa.assert_consistent(&n, &topo);

        let inputs = n.inputs().to_vec();
        let mut sim = Simulator::new(&n, &topo);
        let mut values = vec![false; n.num_nets()];
        for c in 0..10usize {
            for (i, &input) in inputs.iter().enumerate() {
                let bit = stim_bit(seed, i, c);
                sim.set_input(input, bit);
                values[input.index()] = bit;
            }
            sim.settle();
            soa.settle_scalar(&mut values);
            for idx in 0..n.num_nets() {
                let net = NetId::from_index(idx);
                prop_assert_eq!(
                    values[idx],
                    sim.value(net),
                    "net {} cycle {c}",
                    n.net(net).name()
                );
            }
            sim.tick();
            // Two-phase FF update over the flat arrays: gather every D,
            // then scatter to the Qs.
            let next: Vec<bool> = soa.ff_d().iter().map(|&d| values[d as usize]).collect();
            for (&q, bit) in soa.ff_q().iter().zip(next) {
                values[q as usize] = bit;
            }
        }
    }
}
