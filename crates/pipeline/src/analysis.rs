//! The `Analyze` stage: netlist lint + MATE soundness verification (and,
//! under the SAT backend, per-wire completeness proofs) as a cached
//! pipeline step.
//!
//! Wraps [`mate_analyze`] so the static-verification layer participates in
//! the content-addressed artifact cache like every other stage: the artifact
//! key covers the design, the verified MATE set, the proof backend, the
//! enumeration cap, and the conflict budget — but not the thread count,
//! which never changes results.

use std::collections::HashMap;

use mate::MateSet;
use mate_analyze::encode::CoverageProof;
use mate_analyze::verify::{Counterexample, MateVerdict, ProofBackend, Verdict};
use mate_analyze::{
    count_coverage, count_denied, count_verdicts, coverage_diagnostics, prove_wire_coverage,
    run_lints, sort_diagnostics, verify_mates, CoverageCounts, Diagnostic, Locus, Severity,
    SolveStats, VerdictCounts, VerifyConfig, WireCoverage,
};
use mate_netlist::{MateError, NetId};

use crate::hash::ContentHasher;
use crate::stage::Stage;
use crate::stages::Design;

/// Combined output of the lint, verification, and coverage layers.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisReport {
    /// Canonically sorted lint diagnostics (including `mate-coverage`
    /// warnings for coverage gaps under the SAT backend).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-(MATE, wire) verdicts, sorted by (mate index, wire).
    pub verdicts: Vec<MateVerdict>,
    /// Per-wire completeness certificates, sorted by wire.  Empty under
    /// [`ProofBackend::Enumeration`] (the pass needs the solver).
    pub coverage: Vec<WireCoverage>,
    /// The proof backend the verdicts were computed with.
    pub backend: ProofBackend,
    /// The enumeration cap the verdicts were computed under.
    pub max_assignments: u64,
    /// The per-call conflict budget under [`ProofBackend::Sat`].
    pub conflict_budget: u64,
}

impl AnalysisReport {
    /// Proved / Bounded / Refuted tallies.
    pub fn counts(&self) -> VerdictCounts {
        count_verdicts(&self.verdicts)
    }

    /// Complete / gap / undecided tallies of the coverage pass.
    pub fn coverage_counts(&self) -> CoverageCounts {
        count_coverage(&self.coverage)
    }

    /// Number of diagnostics at or above `deny` severity.
    pub fn denied(&self, deny: Severity) -> usize {
        count_denied(&self.diagnostics, deny)
    }

    /// `true` when nothing blocks a release: no refuted MATE, no
    /// diagnostic at or above `deny`, and — when `deny_bounded` — no
    /// bounded (uncertified) verdict either.
    pub fn gate_passes_with(&self, deny: Severity, deny_bounded: bool) -> bool {
        let counts = self.counts();
        counts.refuted == 0 && self.denied(deny) == 0 && (!deny_bounded || counts.bounded == 0)
    }

    /// `true` when nothing blocks a release: no refuted MATE and no
    /// diagnostic at or above `deny`.
    pub fn gate_passes(&self, deny: Severity) -> bool {
        self.gate_passes_with(deny, false)
    }

    /// Element-wise sum of every recorded solver-counter block (verdicts
    /// and coverage proofs) — the deterministic cost of the proofs.
    pub fn solver_totals(&self) -> SolveStats {
        let mut total = SolveStats::default();
        for v in &self.verdicts {
            if let Some(s) = v.stats {
                total = total.merge(s);
            }
        }
        for c in &self.coverage {
            let s = match &c.proof {
                CoverageProof::Complete { stats }
                | CoverageProof::Gap { stats, .. }
                | CoverageProof::Undecided { stats } => stats,
            };
            total = total.merge(*s);
        }
        total
    }
}

/// Lint the design and verify `mates` against it (the static-verification
/// pipeline stage).
#[derive(Clone, Debug)]
pub struct Analyze {
    /// Engine selection and limits; `threads` is excluded from the
    /// fingerprint.
    pub config: VerifyConfig,
}

impl<'a> Stage<(&'a Design, &'a MateSet)> for Analyze {
    type Output = AnalysisReport;

    fn name(&self) -> &'static str {
        "analyze"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        h.str(self.config.backend.label());
        h.u64(self.config.max_assignments);
        h.u64(self.config.conflict_budget);
        // `threads` excluded: verdicts are bit-identical per thread count.
    }

    fn execute(&self, (design, mates): &(&Design, &MateSet)) -> Result<AnalysisReport, MateError> {
        let mut diagnostics = run_lints(&design.netlist);
        let verdicts = verify_mates(&design.netlist, &design.topology, mates, &self.config);
        let coverage = match self.config.backend {
            ProofBackend::Sat => {
                prove_wire_coverage(&design.netlist, &design.topology, mates, &self.config)
            }
            ProofBackend::Enumeration => Vec::new(),
        };
        diagnostics.extend(coverage_diagnostics(&design.netlist, &coverage));
        sort_diagnostics(&mut diagnostics);
        Ok(AnalysisReport {
            diagnostics,
            verdicts,
            coverage,
            backend: self.config.backend,
            max_assignments: self.config.max_assignments,
            conflict_budget: self.config.conflict_budget,
        })
    }

    fn encode(
        &self,
        (design, _): &(&Design, &MateSet),
        output: &AnalysisReport,
    ) -> Result<Vec<u8>, MateError> {
        let n = &design.netlist;
        let mut text = format!(
            "# analyze v2 backend={} cap={} budget={} diags={} verdicts={} coverage={}\n",
            output.backend.label(),
            output.max_assignments,
            output.conflict_budget,
            output.diagnostics.len(),
            output.verdicts.len(),
            output.coverage.len()
        );
        for d in &output.diagnostics {
            let (kind, locus) = match d.locus {
                Locus::Net(id) => ("net", n.net(id).name().to_owned()),
                Locus::Cell(id) => ("cell", n.cell(id).name().to_owned()),
                Locus::Design => ("design", "-".to_owned()),
            };
            text.push_str(&format!(
                "D\t{}\t{}\t{kind}\t{locus}\t{}\n",
                d.severity, d.code, d.message
            ));
        }
        for v in &output.verdicts {
            let wire = n.net(v.wire).name();
            let stats = encode_stats(v.stats.as_ref());
            match &v.verdict {
                Verdict::Proved { checked } => {
                    text.push_str(&format!(
                        "V\t{}\t{wire}\tproved\t{checked}\t{stats}\n",
                        v.mate_index
                    ));
                }
                Verdict::Bounded { checked } => {
                    text.push_str(&format!(
                        "V\t{}\t{wire}\tbounded\t{checked}\t{stats}\n",
                        v.mate_index
                    ));
                }
                Verdict::Refuted { counterexample } => {
                    let assign = counterexample
                        .assignment
                        .iter()
                        .map(|&(net, b)| format!("{}={}", n.net(net).name(), u8::from(b)))
                        .collect::<Vec<_>>()
                        .join(" ");
                    text.push_str(&format!(
                        "V\t{}\t{wire}\trefuted\t{}\t{}\t{assign}\t{stats}\n",
                        v.mate_index,
                        u8::from(counterexample.origin_value),
                        n.net(counterexample.endpoint).name()
                    ));
                }
            }
        }
        for c in &output.coverage {
            let wire = n.net(c.wire).name();
            match &c.proof {
                CoverageProof::Complete { stats } => {
                    text.push_str(&format!(
                        "C\t{wire}\t{}\tcomplete\t{}\n",
                        c.mates,
                        encode_stats(Some(stats))
                    ));
                }
                CoverageProof::Gap {
                    origin_value,
                    assignment,
                    stats,
                } => {
                    let assign = assignment
                        .iter()
                        .map(|&(net, b)| format!("{}={}", n.net(net).name(), u8::from(b)))
                        .collect::<Vec<_>>()
                        .join(" ");
                    text.push_str(&format!(
                        "C\t{wire}\t{}\tgap\t{}\t{assign}\t{}\n",
                        c.mates,
                        u8::from(*origin_value),
                        encode_stats(Some(stats))
                    ));
                }
                CoverageProof::Undecided { stats } => {
                    text.push_str(&format!(
                        "C\t{wire}\t{}\tundecided\t{}\n",
                        c.mates,
                        encode_stats(Some(stats))
                    ));
                }
            }
        }
        Ok(text.into_bytes())
    }

    fn decode(
        &self,
        (design, _): &(&Design, &MateSet),
        bytes: &[u8],
    ) -> Result<AnalysisReport, MateError> {
        let n = &design.netlist;
        let text = artifact_utf8(self.name(), bytes)?;
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| MateError::artifact(self.name(), "empty artifact"))?;
        let header_field = |key: &str| -> Result<&str, MateError> {
            header
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix(key))
                .ok_or_else(|| MateError::artifact(self.name(), format!("header missing {key}")))
        };
        let max_assignments = header_field("cap=")?
            .parse::<u64>()
            .map_err(|_| MateError::artifact(self.name(), "header cap= is not a number"))?;
        let backend = match header_field("backend=")? {
            "sat" => ProofBackend::Sat,
            "enum" => ProofBackend::Enumeration,
            other => {
                return Err(MateError::artifact(
                    self.name(),
                    format!("header backend=`{other}` is not a proof backend"),
                ))
            }
        };
        let conflict_budget = header_field("budget=")?
            .parse::<u64>()
            .map_err(|_| MateError::artifact(self.name(), "header budget= is not a number"))?;

        let cells_by_name: HashMap<&str, mate_netlist::CellId> = n
            .cells()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name(), mate_netlist::CellId::from_index(i)))
            .collect();
        let net = |idx: usize, name: &str| -> Result<NetId, MateError> {
            n.find_net(name).ok_or_else(|| {
                MateError::artifact(
                    self.name(),
                    format!("line {}: unknown net `{name}`", idx + 1),
                )
            })
        };

        let parse_assign = |idx: usize, text: &str| -> Result<Vec<(NetId, bool)>, MateError> {
            let mut assignment = Vec::new();
            for pair in text.split(' ').filter(|p| !p.is_empty()) {
                let (name, value) = pair
                    .rsplit_once('=')
                    .ok_or_else(|| bad_line(self.name(), idx))?;
                let value = match value {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad_line(self.name(), idx)),
                };
                assignment.push((net(idx, name)?, value));
            }
            Ok(assignment)
        };

        let mut diagnostics = Vec::new();
        let mut verdicts = Vec::new();
        let mut coverage = Vec::new();
        for (idx, line) in lines {
            let mut fields = line.split('\t');
            match fields.next() {
                Some("D") => {
                    let (Some(sev), Some(code), Some(kind), Some(locus), Some(message)) = (
                        fields.next(),
                        fields.next(),
                        fields.next(),
                        fields.next(),
                        fields.next(),
                    ) else {
                        return Err(bad_line(self.name(), idx));
                    };
                    let severity = match sev {
                        "error" => Severity::Error,
                        "warning" => Severity::Warning,
                        "info" => Severity::Info,
                        _ => return Err(bad_line(self.name(), idx)),
                    };
                    let code = intern_code(code).ok_or_else(|| {
                        MateError::artifact(
                            self.name(),
                            format!("line {}: unknown lint code `{code}`", idx + 1),
                        )
                    })?;
                    let locus = match kind {
                        "net" => Locus::Net(net(idx, locus)?),
                        "cell" => Locus::Cell(*cells_by_name.get(locus).ok_or_else(|| {
                            MateError::artifact(
                                self.name(),
                                format!("line {}: unknown cell `{locus}`", idx + 1),
                            )
                        })?),
                        "design" => Locus::Design,
                        _ => return Err(bad_line(self.name(), idx)),
                    };
                    diagnostics.push(Diagnostic {
                        severity,
                        code,
                        locus,
                        message: message.to_owned(),
                    });
                }
                Some("V") => {
                    let (Some(mate), Some(wire), Some(kind)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Err(bad_line(self.name(), idx));
                    };
                    let mate_index: usize = parse_field(self.name(), idx, mate)?;
                    let wire = net(idx, wire)?;
                    let verdict = match kind {
                        "proved" | "bounded" => {
                            let checked: u64 = parse_field(
                                self.name(),
                                idx,
                                fields.next().ok_or_else(|| bad_line(self.name(), idx))?,
                            )?;
                            if kind == "proved" {
                                Verdict::Proved { checked }
                            } else {
                                Verdict::Bounded { checked }
                            }
                        }
                        "refuted" => {
                            let (Some(origin), Some(endpoint), Some(assign)) =
                                (fields.next(), fields.next(), fields.next())
                            else {
                                return Err(bad_line(self.name(), idx));
                            };
                            let origin_value = match origin {
                                "0" => false,
                                "1" => true,
                                _ => return Err(bad_line(self.name(), idx)),
                            };
                            let endpoint = net(idx, endpoint)?;
                            Verdict::Refuted {
                                counterexample: Counterexample {
                                    origin_value,
                                    assignment: parse_assign(idx, assign)?,
                                    endpoint,
                                },
                            }
                        }
                        _ => return Err(bad_line(self.name(), idx)),
                    };
                    let stats = decode_stats(
                        self.name(),
                        idx,
                        fields.next().ok_or_else(|| bad_line(self.name(), idx))?,
                    )?;
                    verdicts.push(MateVerdict {
                        mate_index,
                        wire,
                        verdict,
                        stats,
                    });
                }
                Some("C") => {
                    let (Some(wire), Some(mates), Some(kind)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Err(bad_line(self.name(), idx));
                    };
                    let wire = net(idx, wire)?;
                    let mates: usize = parse_field(self.name(), idx, mates)?;
                    let required_stats =
                        |stats: Option<SolveStats>| stats.ok_or_else(|| bad_line(self.name(), idx));
                    let proof = match kind {
                        "complete" | "undecided" => {
                            let stats = required_stats(decode_stats(
                                self.name(),
                                idx,
                                fields.next().ok_or_else(|| bad_line(self.name(), idx))?,
                            )?)?;
                            if kind == "complete" {
                                CoverageProof::Complete { stats }
                            } else {
                                CoverageProof::Undecided { stats }
                            }
                        }
                        "gap" => {
                            let (Some(origin), Some(assign), Some(stats)) =
                                (fields.next(), fields.next(), fields.next())
                            else {
                                return Err(bad_line(self.name(), idx));
                            };
                            let origin_value = match origin {
                                "0" => false,
                                "1" => true,
                                _ => return Err(bad_line(self.name(), idx)),
                            };
                            CoverageProof::Gap {
                                origin_value,
                                assignment: parse_assign(idx, assign)?,
                                stats: required_stats(decode_stats(self.name(), idx, stats)?)?,
                            }
                        }
                        _ => return Err(bad_line(self.name(), idx)),
                    };
                    coverage.push(WireCoverage { wire, mates, proof });
                }
                Some(other) => {
                    return Err(MateError::artifact(
                        self.name(),
                        format!("line {}: unknown record `{other}`", idx + 1),
                    ));
                }
                None => return Err(bad_line(self.name(), idx)),
            }
        }
        Ok(AnalysisReport {
            diagnostics,
            verdicts,
            coverage,
            backend,
            max_assignments,
            conflict_budget,
        })
    }
}

/// Maps a decoded lint code back to the pass's `&'static str` identifier.
fn intern_code(code: &str) -> Option<&'static str> {
    const CODES: [&str; 8] = [
        "undriven-net",
        "multi-driven-net",
        "comb-loop",
        "dangling-ff",
        "unreachable-cell",
        "cone-stats",
        "gmt-gap",
        "mate-coverage",
    ];
    CODES.iter().find(|&&c| c == code).copied()
}

/// Solver counters as one artifact field: `conflicts:decisions:propagations:
/// learned:restarts`, or `-` when the enumeration backend recorded none.
fn encode_stats(stats: Option<&SolveStats>) -> String {
    stats.map_or_else(
        || "-".to_owned(),
        |s| {
            format!(
                "{}:{}:{}:{}:{}",
                s.conflicts, s.decisions, s.propagations, s.learned, s.restarts
            )
        },
    )
}

/// Inverse of [`encode_stats`].
fn decode_stats(stage: &str, idx: usize, text: &str) -> Result<Option<SolveStats>, MateError> {
    if text == "-" {
        return Ok(None);
    }
    let mut parts = text.split(':');
    let mut take = || -> Result<u64, MateError> {
        parse_field(
            stage,
            idx,
            parts.next().ok_or_else(|| bad_line(stage, idx))?,
        )
    };
    let stats = SolveStats {
        conflicts: take()?,
        decisions: take()?,
        propagations: take()?,
        learned: take()?,
        restarts: take()?,
    };
    if parts.next().is_some() {
        return Err(bad_line(stage, idx));
    }
    Ok(Some(stats))
}

fn artifact_utf8<'b>(stage: &str, bytes: &'b [u8]) -> Result<&'b str, MateError> {
    std::str::from_utf8(bytes)
        .map_err(|e| MateError::artifact(stage, format!("non-UTF-8 artifact: {e}")))
}

fn bad_line(stage: &str, idx: usize) -> MateError {
    MateError::artifact(stage, format!("line {}: malformed", idx + 1))
}

fn parse_field<T: std::str::FromStr>(stage: &str, idx: usize, text: &str) -> Result<T, MateError> {
    text.parse()
        .map_err(|_| MateError::artifact(stage, format!("line {}: bad number `{text}`", idx + 1)))
}
