//! The `Analyze` stage: netlist lint + MATE soundness verification as a
//! cached pipeline step.
//!
//! Wraps [`mate_analyze`] so the static-verification layer participates in
//! the content-addressed artifact cache like every other stage: the artifact
//! key covers the design, the verified MATE set, and the enumeration cap —
//! but not the thread count, which never changes results.

use std::collections::HashMap;

use mate::MateSet;
use mate_analyze::verify::{Counterexample, MateVerdict, Verdict};
use mate_analyze::{
    count_denied, count_verdicts, run_lints, verify_mates, Diagnostic, Locus, Severity,
    VerdictCounts, VerifyConfig,
};
use mate_netlist::{MateError, NetId};

use crate::hash::ContentHasher;
use crate::stage::Stage;
use crate::stages::Design;

/// Combined output of the lint and verification layers.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisReport {
    /// Canonically sorted lint diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-(MATE, wire) verdicts, sorted by (mate index, wire).
    pub verdicts: Vec<MateVerdict>,
    /// The enumeration cap the verdicts were computed under.
    pub max_assignments: u64,
}

impl AnalysisReport {
    /// Proved / Bounded / Refuted tallies.
    pub fn counts(&self) -> VerdictCounts {
        count_verdicts(&self.verdicts)
    }

    /// Number of diagnostics at or above `deny` severity.
    pub fn denied(&self, deny: Severity) -> usize {
        count_denied(&self.diagnostics, deny)
    }

    /// `true` when nothing blocks a release: no refuted MATE and no
    /// diagnostic at or above `deny`.
    pub fn gate_passes(&self, deny: Severity) -> bool {
        self.counts().refuted == 0 && self.denied(deny) == 0
    }
}

/// Lint the design and verify `mates` against it (the static-verification
/// pipeline stage).
#[derive(Clone, Debug)]
pub struct Analyze {
    /// Enumeration limits; `threads` is excluded from the fingerprint.
    pub config: VerifyConfig,
}

impl<'a> Stage<(&'a Design, &'a MateSet)> for Analyze {
    type Output = AnalysisReport;

    fn name(&self) -> &'static str {
        "analyze"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        h.u64(self.config.max_assignments);
        // `threads` excluded: verdicts are bit-identical per thread count.
    }

    fn execute(&self, (design, mates): &(&Design, &MateSet)) -> Result<AnalysisReport, MateError> {
        Ok(AnalysisReport {
            diagnostics: run_lints(&design.netlist),
            verdicts: verify_mates(&design.netlist, &design.topology, mates, &self.config),
            max_assignments: self.config.max_assignments,
        })
    }

    fn encode(
        &self,
        (design, _): &(&Design, &MateSet),
        output: &AnalysisReport,
    ) -> Result<Vec<u8>, MateError> {
        let n = &design.netlist;
        let mut text = format!(
            "# analyze v1 cap={} diags={} verdicts={}\n",
            output.max_assignments,
            output.diagnostics.len(),
            output.verdicts.len()
        );
        for d in &output.diagnostics {
            let (kind, locus) = match d.locus {
                Locus::Net(id) => ("net", n.net(id).name().to_owned()),
                Locus::Cell(id) => ("cell", n.cell(id).name().to_owned()),
                Locus::Design => ("design", "-".to_owned()),
            };
            text.push_str(&format!(
                "D\t{}\t{}\t{kind}\t{locus}\t{}\n",
                d.severity, d.code, d.message
            ));
        }
        for v in &output.verdicts {
            let wire = n.net(v.wire).name();
            match &v.verdict {
                Verdict::Proved { checked } => {
                    text.push_str(&format!("V\t{}\t{wire}\tproved\t{checked}\n", v.mate_index));
                }
                Verdict::Bounded { checked } => {
                    text.push_str(&format!(
                        "V\t{}\t{wire}\tbounded\t{checked}\n",
                        v.mate_index
                    ));
                }
                Verdict::Refuted { counterexample } => {
                    let assign = counterexample
                        .assignment
                        .iter()
                        .map(|&(net, b)| format!("{}={}", n.net(net).name(), u8::from(b)))
                        .collect::<Vec<_>>()
                        .join(" ");
                    text.push_str(&format!(
                        "V\t{}\t{wire}\trefuted\t{}\t{}\t{assign}\n",
                        v.mate_index,
                        u8::from(counterexample.origin_value),
                        n.net(counterexample.endpoint).name()
                    ));
                }
            }
        }
        Ok(text.into_bytes())
    }

    fn decode(
        &self,
        (design, _): &(&Design, &MateSet),
        bytes: &[u8],
    ) -> Result<AnalysisReport, MateError> {
        let n = &design.netlist;
        let text = artifact_utf8(self.name(), bytes)?;
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| MateError::artifact(self.name(), "empty artifact"))?;
        let max_assignments = header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("cap="))
            .ok_or_else(|| MateError::artifact(self.name(), "header missing cap="))?
            .parse::<u64>()
            .map_err(|_| MateError::artifact(self.name(), "header cap= is not a number"))?;

        let cells_by_name: HashMap<&str, mate_netlist::CellId> = n
            .cells()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name(), mate_netlist::CellId::from_index(i)))
            .collect();
        let net = |idx: usize, name: &str| -> Result<NetId, MateError> {
            n.find_net(name).ok_or_else(|| {
                MateError::artifact(
                    self.name(),
                    format!("line {}: unknown net `{name}`", idx + 1),
                )
            })
        };

        let mut diagnostics = Vec::new();
        let mut verdicts = Vec::new();
        for (idx, line) in lines {
            let mut fields = line.split('\t');
            match fields.next() {
                Some("D") => {
                    let (Some(sev), Some(code), Some(kind), Some(locus), Some(message)) = (
                        fields.next(),
                        fields.next(),
                        fields.next(),
                        fields.next(),
                        fields.next(),
                    ) else {
                        return Err(bad_line(self.name(), idx));
                    };
                    let severity = match sev {
                        "error" => Severity::Error,
                        "warning" => Severity::Warning,
                        "info" => Severity::Info,
                        _ => return Err(bad_line(self.name(), idx)),
                    };
                    let code = intern_code(code).ok_or_else(|| {
                        MateError::artifact(
                            self.name(),
                            format!("line {}: unknown lint code `{code}`", idx + 1),
                        )
                    })?;
                    let locus = match kind {
                        "net" => Locus::Net(net(idx, locus)?),
                        "cell" => Locus::Cell(*cells_by_name.get(locus).ok_or_else(|| {
                            MateError::artifact(
                                self.name(),
                                format!("line {}: unknown cell `{locus}`", idx + 1),
                            )
                        })?),
                        "design" => Locus::Design,
                        _ => return Err(bad_line(self.name(), idx)),
                    };
                    diagnostics.push(Diagnostic {
                        severity,
                        code,
                        locus,
                        message: message.to_owned(),
                    });
                }
                Some("V") => {
                    let (Some(mate), Some(wire), Some(kind)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Err(bad_line(self.name(), idx));
                    };
                    let mate_index: usize = parse_field(self.name(), idx, mate)?;
                    let wire = net(idx, wire)?;
                    let verdict = match kind {
                        "proved" | "bounded" => {
                            let checked: u64 = parse_field(
                                self.name(),
                                idx,
                                fields.next().ok_or_else(|| bad_line(self.name(), idx))?,
                            )?;
                            if kind == "proved" {
                                Verdict::Proved { checked }
                            } else {
                                Verdict::Bounded { checked }
                            }
                        }
                        "refuted" => {
                            let (Some(origin), Some(endpoint), Some(assign)) =
                                (fields.next(), fields.next(), fields.next())
                            else {
                                return Err(bad_line(self.name(), idx));
                            };
                            let origin_value = match origin {
                                "0" => false,
                                "1" => true,
                                _ => return Err(bad_line(self.name(), idx)),
                            };
                            let endpoint = net(idx, endpoint)?;
                            let mut assignment = Vec::new();
                            for pair in assign.split(' ').filter(|p| !p.is_empty()) {
                                let (name, value) = pair
                                    .rsplit_once('=')
                                    .ok_or_else(|| bad_line(self.name(), idx))?;
                                let value = match value {
                                    "0" => false,
                                    "1" => true,
                                    _ => return Err(bad_line(self.name(), idx)),
                                };
                                assignment.push((net(idx, name)?, value));
                            }
                            Verdict::Refuted {
                                counterexample: Counterexample {
                                    origin_value,
                                    assignment,
                                    endpoint,
                                },
                            }
                        }
                        _ => return Err(bad_line(self.name(), idx)),
                    };
                    verdicts.push(MateVerdict {
                        mate_index,
                        wire,
                        verdict,
                    });
                }
                Some(other) => {
                    return Err(MateError::artifact(
                        self.name(),
                        format!("line {}: unknown record `{other}`", idx + 1),
                    ));
                }
                None => return Err(bad_line(self.name(), idx)),
            }
        }
        Ok(AnalysisReport {
            diagnostics,
            verdicts,
            max_assignments,
        })
    }
}

/// Maps a decoded lint code back to the pass's `&'static str` identifier.
fn intern_code(code: &str) -> Option<&'static str> {
    const CODES: [&str; 7] = [
        "undriven-net",
        "multi-driven-net",
        "comb-loop",
        "dangling-ff",
        "unreachable-cell",
        "cone-stats",
        "gmt-gap",
    ];
    CODES.iter().find(|&&c| c == code).copied()
}

fn artifact_utf8<'b>(stage: &str, bytes: &'b [u8]) -> Result<&'b str, MateError> {
    std::str::from_utf8(bytes)
        .map_err(|e| MateError::artifact(stage, format!("non-UTF-8 artifact: {e}")))
}

fn bad_line(stage: &str, idx: usize) -> MateError {
    MateError::artifact(stage, format!("line {}: malformed", idx + 1))
}

fn parse_field<T: std::str::FromStr>(stage: &str, idx: usize, text: &str) -> Result<T, MateError> {
    text.parse()
        .map_err(|_| MateError::artifact(stage, format!("line {}: bad number `{text}`", idx + 1)))
}
