//! Per-run stage accounting: timings and cache hit/miss counters.

use std::fmt;
use std::time::Duration;

use crate::hash::ContentHash;

/// One executed (or cache-served) stage.
#[derive(Clone, Debug)]
pub struct StageRecord {
    /// Stage name.
    pub stage: String,
    /// `true` when the output came from the artifact store.
    pub cached: bool,
    /// Wall-clock time spent in the pipeline for this stage (including
    /// decode on hits and execute+encode on misses).
    pub elapsed: Duration,
    /// The artifact key the stage resolved to.
    pub key: ContentHash,
    /// Optional free-form annotation a stage owner attaches after the run
    /// (e.g. the campaign stage records its fault-space collapsing stats
    /// here).  Purely diagnostic: never part of any artifact key.
    pub detail: Option<String>,
}

/// The stage-by-stage record of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Records in execution order.
    pub records: Vec<StageRecord>,
}

impl RunSummary {
    /// Appends one record.
    pub fn push(&mut self, stage: &str, cached: bool, elapsed: Duration, key: ContentHash) {
        self.records.push(StageRecord {
            stage: stage.to_owned(),
            cached,
            elapsed,
            key,
            detail: None,
        });
    }

    /// Attaches a diagnostic note to the most recent record (no-op on an
    /// empty summary).
    pub fn annotate_last(&mut self, detail: impl Into<String>) {
        if let Some(last) = self.records.last_mut() {
            last.detail = Some(detail.into());
        }
    }

    /// Number of stages run.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no stage ran.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of cache hits.
    pub fn hits(&self) -> usize {
        self.records.iter().filter(|r| r.cached).count()
    }

    /// Number of cache misses (stages that executed and persisted).
    pub fn misses(&self) -> usize {
        self.records.len() - self.hits()
    }

    /// `true` when every stage was served from the artifact store.
    pub fn all_cached(&self) -> bool {
        !self.records.is_empty() && self.misses() == 0
    }

    /// A machine-readable JSON object in the style of the `BENCH_*.json`
    /// artifacts: per-stage millis + cached flag, plus the hit/miss totals.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"cached\":{},\"millis\":{:.3},\"key\":\"{}\"",
                r.stage,
                r.cached,
                r.elapsed.as_secs_f64() * 1e3,
                r.key
            ));
            if let Some(detail) = &r.detail {
                let escaped = detail.replace('\\', "\\\\").replace('"', "\\\"");
                out.push_str(&format!(",\"detail\":\"{escaped}\""));
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"hits\":{},\"misses\":{}}}",
            self.hits(),
            self.misses()
        ));
        out
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>8} {:>10}  key", "stage", "cache", "time")?;
        for r in &self.records {
            writeln!(
                f,
                "{:<16} {:>8} {:>9.1}ms  {}",
                r.stage,
                if r.cached { "hit" } else { "miss" },
                r.elapsed.as_secs_f64() * 1e3,
                r.key
            )?;
            if let Some(detail) = &r.detail {
                writeln!(f, "{:<16} {detail}", "")?;
            }
        }
        write!(
            f,
            "{} stages: {} served from the artifact cache, {} computed",
            self.len(),
            self.hits(),
            self.misses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_json() {
        let mut s = RunSummary::default();
        assert!(!s.all_cached());
        s.push("a", true, Duration::from_millis(2), ContentHash(1));
        s.push("b", false, Duration::from_millis(5), ContentHash(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert!(!s.all_cached());
        let json = s.to_json();
        assert!(json.contains("\"hits\":1"), "{json}");
        assert!(json.contains("\"stage\":\"a\""), "{json}");
        assert!(!json.contains("detail"), "{json}");
        let text = s.to_string();
        assert!(text.contains("miss"), "{text}");
    }

    #[test]
    fn annotation_lands_on_last_record_and_serializes() {
        let mut s = RunSummary::default();
        s.annotate_last("dropped"); // no-op on empty summary
        s.push("campaign", false, Duration::from_millis(1), ContentHash(9));
        s.annotate_last("42 points, 3 classes \"quoted\"");
        assert_eq!(
            s.records[0].detail.as_deref(),
            Some("42 points, 3 classes \"quoted\"")
        );
        let json = s.to_json();
        assert!(json.contains("\"detail\":\"42 points"), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        let text = s.to_string();
        assert!(text.contains("3 classes"), "{text}");
    }

    #[test]
    fn all_cached_requires_only_hits() {
        let mut s = RunSummary::default();
        s.push("a", true, Duration::ZERO, ContentHash(1));
        s.push("b", true, Duration::ZERO, ContentHash(2));
        assert!(s.all_cached());
    }
}
