//! Staged analysis pipeline with a content-addressed artifact cache.
//!
//! The paper's flow is a fixed offline→online chain (Section 4):
//! gate-library analysis → per-wire MATE search → trace capture →
//! evaluate/select → HAFI campaign.  This crate turns that chain into a
//! typed, cached pipeline:
//!
//! * [`Stage<In>`](Stage) — one step; its output is a serializable
//!   *artifact* keyed by `H(stage name, version, config, input keys)`.
//! * [`ArtifactStore`] — the on-disk content-addressed store
//!   (`target/mate-artifacts` by default, `$MATE_ARTIFACT_DIR` override).
//! * [`Pipeline`] — runs stages, serving unchanged prefixes from the store
//!   and recording per-stage timings plus cache hit/miss counters in a
//!   [`RunSummary`].
//! * [`Flow`] — the canonical chain pre-wired for the repo's examples and
//!   bench drivers.
//!
//! # Example
//!
//! ```
//! use mate::SearchConfig;
//! use mate_pipeline::{
//!     ArtifactStore, DesignSource, Flow, TraceSource, WireSetSpec,
//! };
//!
//! let root = std::env::temp_dir().join(format!("mate-doc-{}", std::process::id()));
//! let store = ArtifactStore::new(&root);
//! let source = DesignSource::Builder {
//!     label: "tmr-register",
//!     build: mate_netlist::examples::tmr_register,
//! };
//! let mut flow = Flow::new(store, source)?;
//! let search = flow.search(WireSetSpec::AllFfs, SearchConfig::default())?;
//! let trace = flow.capture(
//!     TraceSource::Stimuli {
//!         waves: vec![
//!             ("load".into(), vec![true, false]),
//!             ("din".into(), vec![true]),
//!         ],
//!     },
//!     16,
//! )?;
//! let report = flow.evaluate(
//!     WireSetSpec::AllFfs,
//!     (&search.value.mates, search.key),
//!     trace.part(),
//! )?;
//! assert!(report.value.masked_fraction() > 0.5);
//! // First run: all four stages computed; a re-run over the same store
//! // would be served entirely from the artifact cache.
//! assert_eq!(flow.summary().misses(), 4);
//! # std::fs::remove_dir_all(&root).ok();
//! # Ok::<(), mate_netlist::MateError>(())
//! ```

pub mod analysis;
pub mod flow;
pub mod hash;
pub mod stage;
pub mod stages;
pub mod store;
pub mod summary;

pub use analysis::{AnalysisReport, Analyze};
pub use flow::Flow;
pub use hash::{ContentHash, ContentHasher};
pub use stage::{Pipeline, Stage, Staged, ENGINE_LAYOUT_VERSION};
pub use stages::{
    ingest_gate, Campaign, Design, DesignSource, Evaluate, GmtLibrary, GmtReport, LoadDesign,
    MateSearch, SearchOutput, Select, TraceCapture, TraceSource, WireSetSpec,
};
pub use store::{ArtifactStore, STORE_ENV};
pub use summary::{RunSummary, StageRecord};
