//! The concrete stages of the paper's flow:
//! `LoadDesign → GmtLibrary → MateSearch → TraceCapture → Evaluate →
//! Select → Campaign`.
//!
//! Artifacts reuse the repo's existing text formats wherever one exists —
//! structural Verilog for designs, `mate-set v1` for MATE sets, VCD for
//! traces — and add two small line formats for evaluation reports and
//! campaign results.  All of them are keyed by net *names*, which is why
//! [`Stage::decode`] receives the design again.

use std::collections::HashMap;
use std::io::BufReader;
use std::path::PathBuf;
use std::time::Duration;

use mate::eval::{evaluate, EvalReport, PruneMatrix};
use mate::{
    ff_wires, ff_wires_filtered, read_mates, search_design, select_top_n, write_mates, GmtCache,
    MateSet, PropagationMode, SearchConfig, SearchStats, SearchStrategy,
};
use mate_analyze::{run_lints, sort_diagnostics, Severity};
use mate_cores::{AvrWorkload, Msp430Workload};
use mate_hafi::{
    run_campaign_wide, CampaignConfig, CampaignResult, DesignHarness, FaultEffect, FaultPoint,
    FaultSpace, PruningStats, StimulusHarness,
};
use mate_netlist::verilog::{parse_verilog, to_verilog};
use mate_netlist::yosys::{parse_yosys_netlist, to_yosys_json};
use mate_netlist::{Library, MateError, NetId, Netlist, Topology};
use mate_sim::{read_vcd, write_vcd, InputWave, Testbench, WaveTrace};

use crate::hash::ContentHasher;
use crate::stage::Stage;

/// A loaded design: the netlist plus its validated topology.
#[derive(Clone, Debug)]
pub struct Design {
    /// The flat gate-level netlist.
    pub netlist: Netlist,
    /// Levelization, fan-out indices, sequential cells.
    pub topology: Topology,
}

/// Where a design comes from.
pub enum DesignSource {
    /// Structural-Verilog text (parsed with the OpenCell15 library).
    Verilog {
        /// Short human label for the key fingerprint.
        label: String,
        /// The Verilog source.
        text: String,
    },
    /// A deterministic in-process builder (e.g. core elaboration).  The
    /// stage [always runs](Stage::always_runs) for this source — separate
    /// elaborations produce identical net ids, which downstream harnesses
    /// rely on — and the built netlist's Verilog form refines the key, so
    /// the cache is still content-addressed.
    Builder {
        /// Stable label naming the builder.
        label: &'static str,
        /// The elaboration function.
        build: fn() -> (Netlist, Topology),
    },
    /// An external gate-level netlist in Yosys `write_json` format.
    ///
    /// The fingerprint covers the ingested **file bytes** (not the path),
    /// so editing the file recomputes every downstream artifact while
    /// moving or copying it does not.  Ingest runs the `mate-analyze` lint
    /// passes as a mandatory gate: any `Error`-severity finding (undriven
    /// or multiply-driven nets, combinational loops) rejects the netlist
    /// before simulation ([`ingest_gate`]).
    YosysJson {
        /// Path to the Yosys JSON file.
        path: PathBuf,
        /// Explicit top module; `None` auto-selects (the `top` attribute,
        /// or the single non-blackbox module).
        top: Option<String>,
    },
}

impl std::fmt::Debug for DesignSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Verilog { label, .. } => f.debug_struct("Verilog").field("label", label).finish(),
            Self::Builder { label, .. } => f.debug_struct("Builder").field("label", label).finish(),
            Self::YosysJson { path, top } => f
                .debug_struct("YosysJson")
                .field("path", path)
                .field("top", top)
                .finish(),
        }
    }
}

/// Rejects ingested designs carrying any `Error`-severity lint finding.
///
/// Runs the full `mate-analyze` pass set on the (possibly unvalidated)
/// netlist and folds every error — undriven nets, multiply-driven nets,
/// combinational loops — into one typed [`MateError::Ingest`] naming the
/// module.  Warnings and infos pass.  This is the mandatory gate between
/// an external netlist and the simulator: [`Netlist::validate`] alone
/// would catch the same defects, but the lint passes report *all* of them
/// at once with per-net diagnostics instead of failing on the first.
///
/// # Errors
///
/// Returns [`MateError::Ingest`] listing every error-severity diagnostic.
pub fn ingest_gate(netlist: &Netlist) -> Result<(), MateError> {
    let mut diags = run_lints(netlist);
    diags.retain(|d| d.severity == Severity::Error);
    if diags.is_empty() {
        return Ok(());
    }
    sort_diagnostics(&mut diags);
    let rendered = diags
        .iter()
        .map(|d| {
            format!(
                "{}[{}] {}: {}",
                d.severity,
                d.code,
                d.locus.name(netlist),
                d.message
            )
        })
        .collect::<Vec<_>>()
        .join("; ");
    Err(MateError::ingest(
        netlist.name(),
        format!(
            "rejected by the lint gate ({} error finding{}): {rendered}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        ),
    ))
}

/// Pipeline source stage: obtain a [`Design`].
#[derive(Debug)]
pub struct LoadDesign {
    /// Where the design comes from.
    pub source: DesignSource,
}

impl Stage<()> for LoadDesign {
    type Output = Design;

    fn name(&self) -> &'static str {
        "load-design"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        match &self.source {
            DesignSource::Verilog { label, text } => {
                h.str("verilog");
                h.str(label);
                h.str(text);
            }
            DesignSource::Builder { label, .. } => {
                h.str("builder");
                h.str(label);
            }
            DesignSource::YosysJson { path, top } => {
                h.str("yosys-json");
                h.str(top.as_deref().unwrap_or(""));
                // The *bytes* are the identity, not the path: an edited
                // file recomputes downstream, a moved one still hits.
                match std::fs::read(path) {
                    Ok(bytes) => h.bytes(&bytes),
                    // Unreadable files fail in execute(); the fingerprint
                    // only needs to not collide with a readable state.
                    Err(e) => h.str(&format!("unreadable: {e}")),
                }
            }
        }
    }

    fn always_runs(&self) -> bool {
        matches!(self.source, DesignSource::Builder { .. })
    }

    fn execute(&self, _input: &()) -> Result<Design, MateError> {
        let (netlist, topology) = match &self.source {
            DesignSource::Verilog { text, .. } => parse_verilog(text, Library::open15())?,
            DesignSource::Builder { build, .. } => build(),
            DesignSource::YosysJson { path, top } => {
                let display = path.display().to_string();
                let src = std::fs::read_to_string(path)
                    .map_err(|e| MateError::in_file(&display, MateError::io("yosys json", e)))?;
                let wrap = |e: MateError| MateError::in_file(&display, e);
                let netlist =
                    parse_yosys_netlist(&src, Library::open15(), top.as_deref()).map_err(wrap)?;
                ingest_gate(&netlist).map_err(wrap)?;
                let topology = netlist.validate().map_err(|e| wrap(e.into()))?;
                (netlist, topology)
            }
        };
        Ok(Design { netlist, topology })
    }

    fn encode(&self, _input: &(), output: &Design) -> Result<Vec<u8>, MateError> {
        match &self.source {
            // External designs round-trip through the Yosys writer: it
            // preserves net/cell ids exactly and handles names (`$true`,
            // `d[0]`) that structural Verilog cannot spell.
            DesignSource::YosysJson { .. } => Ok(to_yosys_json(&output.netlist).into_bytes()),
            _ => Ok(to_verilog(&output.netlist).into_bytes()),
        }
    }

    fn decode(&self, _input: &(), bytes: &[u8]) -> Result<Design, MateError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| MateError::artifact(self.name(), format!("non-UTF-8 artifact: {e}")))?;
        let (netlist, topology) = match &self.source {
            DesignSource::YosysJson { .. } => {
                let netlist = parse_yosys_netlist(text, Library::open15(), None)?;
                let topology = netlist.validate()?;
                (netlist, topology)
            }
            _ => parse_verilog(text, Library::open15())?,
        };
        Ok(Design { netlist, topology })
    }

    fn output_fingerprint(&self, output: &Design, h: &mut ContentHasher) {
        // Builder configs are just a label; hashing the elaborated netlist
        // keeps downstream keys content-addressed.
        match &self.source {
            DesignSource::YosysJson { .. } => h.str(&to_yosys_json(&output.netlist)),
            _ => h.str(&to_verilog(&output.netlist)),
        }
    }
}

/// Selects the faulty-wire set of a search, evaluation, or campaign.
#[derive(Clone, Debug)]
pub enum WireSetSpec {
    /// Every flip-flop output.
    AllFfs,
    /// Flip-flop outputs passing a named filter; `id` must uniquely name
    /// the predicate since functions cannot be hashed.
    FilteredFfs {
        /// Stable identifier folded into artifact keys.
        id: &'static str,
        /// The filter over net names.
        keep: fn(&str) -> bool,
    },
    /// Explicit net names.
    Named(Vec<String>),
}

impl WireSetSpec {
    /// Resolves the spec against a design.
    ///
    /// # Errors
    ///
    /// Returns [`MateError::UnknownNet`] for names the netlist lacks.
    pub fn resolve(&self, design: &Design) -> Result<Vec<NetId>, MateError> {
        match self {
            Self::AllFfs => Ok(ff_wires(&design.netlist, &design.topology)),
            Self::FilteredFfs { keep, .. } => {
                Ok(ff_wires_filtered(&design.netlist, &design.topology, keep))
            }
            Self::Named(names) => names
                .iter()
                .map(|name| {
                    design
                        .netlist
                        .find_net(name)
                        .ok_or_else(|| MateError::UnknownNet {
                            line: 0,
                            name: name.clone(),
                        })
                })
                .collect(),
        }
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        match self {
            Self::AllFfs => h.str("all-ffs"),
            Self::FilteredFfs { id, .. } => {
                h.str("filtered-ffs");
                h.str(id);
            }
            Self::Named(names) => {
                h.str("named");
                h.usize(names.len());
                for n in names {
                    h.str(n);
                }
            }
        }
    }
}

/// Gate-library analysis (step 1 of Section 4): the gate-masking-term table
/// for every combinational cell type × faulty input pin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GmtReport {
    /// `(cell type, input pins, GMT entries across its pins)` rows.
    pub rows: Vec<(String, usize, usize)>,
    /// Total masking cubes across the library.
    pub total_entries: usize,
}

/// Pipeline stage wrapping the gate-library analysis.
#[derive(Debug, Default)]
pub struct GmtLibrary;

impl Stage<&Design> for GmtLibrary {
    type Output = GmtReport;

    fn name(&self) -> &'static str {
        "gmt-library"
    }

    fn fingerprint(&self, _h: &mut ContentHasher) {}

    fn execute(&self, input: &&Design) -> Result<GmtReport, MateError> {
        let library = input.netlist.library().clone();
        let cache = GmtCache::new();
        let mut rows = Vec::new();
        let mut total = 0usize;
        for (ty, cell) in library.iter() {
            if cell.truth_table().is_none() {
                continue;
            }
            let mut entries = 0usize;
            for pin in 0..cell.num_pins() {
                entries += cache.cubes(&library, ty, 1 << pin).len();
            }
            total += entries;
            rows.push((cell.name().to_owned(), cell.num_pins(), entries));
        }
        Ok(GmtReport {
            rows,
            total_entries: total,
        })
    }

    fn encode(&self, _input: &&Design, output: &GmtReport) -> Result<Vec<u8>, MateError> {
        let mut text = format!("# gmt v1 total={}\n", output.total_entries);
        for (name, pins, entries) in &output.rows {
            text.push_str(&format!("{name} {pins} {entries}\n"));
        }
        Ok(text.into_bytes())
    }

    fn decode(&self, _input: &&Design, bytes: &[u8]) -> Result<GmtReport, MateError> {
        let text = artifact_utf8(self.name(), bytes)?;
        let mut rows = Vec::new();
        let mut total = None;
        for (idx, line) in text.lines().enumerate() {
            if let Some(rest) = line.strip_prefix("# gmt v1 total=") {
                total = Some(parse_field(self.name(), idx, rest)?);
                continue;
            }
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| bad_line(self.name(), idx))?
                .to_owned();
            let pins = parse_field(self.name(), idx, parts.next().unwrap_or(""))?;
            let entries = parse_field(self.name(), idx, parts.next().unwrap_or(""))?;
            rows.push((name, pins, entries));
        }
        let total_entries =
            total.ok_or_else(|| MateError::artifact(self.name(), "missing header"))?;
        Ok(GmtReport {
            rows,
            total_entries,
        })
    }
}

/// The output of the MATE search stage: the deduplicated set plus the
/// search statistics (cached statistics report the timings of the run that
/// produced the artifact).
#[derive(Clone, Debug)]
pub struct SearchOutput {
    /// The summarized MATE set.
    pub mates: MateSet,
    /// Statistics of the producing search run.
    pub stats: SearchStats,
}

/// Per-wire MATE search (step 2 of Section 4).
#[derive(Clone, Debug)]
pub struct MateSearch {
    /// The faulty-wire set to search.
    pub wires: WireSetSpec,
    /// Search parameters.
    pub config: SearchConfig,
}

fn fingerprint_search_config(config: &SearchConfig, h: &mut ContentHasher) {
    h.usize(config.depth);
    h.usize(config.max_terms);
    h.usize(config.max_candidates);
    h.usize(config.max_paths);
    h.str(match config.strategy {
        SearchStrategy::Exhaustive => "exhaustive",
        SearchStrategy::Repair => "repair",
    });
    h.str(match config.propagation {
        PropagationMode::Reference => "reference",
        PropagationMode::Optimized => "optimized",
    });
    // `threads` is deliberately excluded: results are bit-identical for
    // every thread count.
}

impl Stage<&Design> for MateSearch {
    type Output = SearchOutput;

    fn name(&self) -> &'static str {
        "mate-search"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        self.wires.fingerprint(h);
        fingerprint_search_config(&self.config, h);
    }

    fn execute(&self, input: &&Design) -> Result<SearchOutput, MateError> {
        let wires = self.wires.resolve(input)?;
        let ds = search_design(&input.netlist, &input.topology, &wires, &self.config);
        let stats = ds.stats.clone();
        Ok(SearchOutput {
            mates: ds.into_mate_set(),
            stats,
        })
    }

    fn encode(&self, input: &&Design, output: &SearchOutput) -> Result<Vec<u8>, MateError> {
        let s = &output.stats;
        let mut buf = format!(
            "# search v1 faulty_wires={} avg_cone={} median_cone={} unmaskable={} \
             candidates={} num_mates={} gmt_entries={} run_time={} max_wire_time={} \
             total_wire_time={}\n",
            s.faulty_wires,
            s.avg_cone,
            s.median_cone,
            s.unmaskable,
            s.candidates,
            s.num_mates,
            s.gmt_entries,
            s.run_time.as_secs_f64(),
            s.max_wire_time.as_secs_f64(),
            s.total_wire_time.as_secs_f64()
        )
        .into_bytes();
        write_mates(&input.netlist, &output.mates, &mut buf)?;
        Ok(buf)
    }

    fn decode(&self, input: &&Design, bytes: &[u8]) -> Result<SearchOutput, MateError> {
        let text = artifact_utf8(self.name(), bytes)?;
        let header = text
            .lines()
            .find_map(|l| l.strip_prefix("# search v1 "))
            .ok_or_else(|| MateError::artifact(self.name(), "missing `# search v1` header"))?;
        let mut stats = SearchStats::default();
        for field in header.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| MateError::artifact(self.name(), format!("bad field `{field}`")))?;
            let num = || -> Result<f64, MateError> {
                value.parse().map_err(|_| {
                    MateError::artifact(self.name(), format!("bad value in `{field}`"))
                })
            };
            match key {
                "faulty_wires" => stats.faulty_wires = num()? as usize,
                "avg_cone" => stats.avg_cone = num()?,
                "median_cone" => stats.median_cone = num()? as usize,
                "unmaskable" => stats.unmaskable = num()? as usize,
                "candidates" => stats.candidates = num()? as u64,
                "num_mates" => stats.num_mates = num()? as usize,
                "gmt_entries" => stats.gmt_entries = num()? as usize,
                "run_time" => stats.run_time = Duration::from_secs_f64(num()?),
                "max_wire_time" => stats.max_wire_time = Duration::from_secs_f64(num()?),
                "total_wire_time" => stats.total_wire_time = Duration::from_secs_f64(num()?),
                _ => {}
            }
        }
        let mates = read_mates(&input.netlist, BufReader::new(text.as_bytes()))?;
        Ok(SearchOutput { mates, stats })
    }
}

/// Where a workload trace (or campaign stimulus) comes from.
#[derive(Clone, Debug)]
pub enum TraceSource {
    /// The AVR core running `program` with `dmem` preloaded.
    Avr {
        /// Flash image (16-bit words).
        program: Vec<u16>,
        /// Initial data memory.
        dmem: Vec<u8>,
    },
    /// The MSP430 core running `image`.
    Msp430 {
        /// Unified memory image (16-bit words).
        image: Vec<u16>,
    },
    /// Named primary-input waves driving the design itself (the last value
    /// of each wave is held).
    Stimuli {
        /// `(input net name, per-cycle values)` pairs.
        waves: Vec<(String, Vec<bool>)>,
    },
}

impl TraceSource {
    fn fingerprint(&self, h: &mut ContentHasher) {
        match self {
            Self::Avr { program, dmem } => {
                h.str("avr");
                h.usize(program.len());
                for &w in program {
                    h.u64(u64::from(w));
                }
                h.bytes(dmem);
            }
            Self::Msp430 { image } => {
                h.str("msp430");
                h.usize(image.len());
                for &w in image {
                    h.u64(u64::from(w));
                }
            }
            Self::Stimuli { waves } => {
                h.str("stimuli");
                h.usize(waves.len());
                for (name, values) in waves {
                    h.str(name);
                    h.usize(values.len());
                    for &v in values {
                        h.bool(v);
                    }
                }
            }
        }
    }

    /// Builds the harness this source describes.  Core harnesses elaborate
    /// their own system; deterministic elaboration guarantees its net ids
    /// match the pipeline design's.
    fn harness(&self, design: &Design) -> Result<Box<dyn DesignHarness + Sync>, MateError> {
        match self {
            Self::Avr { program, dmem } => {
                Ok(Box::new(AvrWorkload::new(program.clone(), dmem.clone())))
            }
            Self::Msp430 { image } => Ok(Box::new(Msp430Workload::new(image.clone()))),
            Self::Stimuli { waves } => {
                let mut harness =
                    StimulusHarness::new(design.netlist.clone(), design.topology.clone());
                for (name, values) in waves {
                    let net =
                        design
                            .netlist
                            .find_net(name)
                            .ok_or_else(|| MateError::UnknownNet {
                                line: 0,
                                name: name.clone(),
                            })?;
                    harness = harness.drive(net, values.clone());
                }
                Ok(Box::new(harness))
            }
        }
    }
}

/// Records the fault-free workload trace (the paper's VCD capture step).
#[derive(Clone, Debug)]
pub struct TraceCapture {
    /// The workload.
    pub source: TraceSource,
    /// Trace length in clock cycles.
    pub cycles: usize,
}

impl Stage<&Design> for TraceCapture {
    type Output = WaveTrace;

    fn name(&self) -> &'static str {
        "trace-capture"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        self.source.fingerprint(h);
        h.usize(self.cycles);
    }

    fn execute(&self, input: &&Design) -> Result<WaveTrace, MateError> {
        match &self.source {
            TraceSource::Stimuli { waves } => {
                let mut tb = Testbench::new(&input.netlist, &input.topology);
                for (name, values) in waves {
                    let net =
                        input
                            .netlist
                            .find_net(name)
                            .ok_or_else(|| MateError::UnknownNet {
                                line: 0,
                                name: name.clone(),
                            })?;
                    tb.drive(net, InputWave::from_vec(values.clone()));
                }
                Ok(tb.run(self.cycles))
            }
            source => Ok(source.harness(input)?.testbench().run(self.cycles)),
        }
    }

    fn encode(&self, input: &&Design, output: &WaveTrace) -> Result<Vec<u8>, MateError> {
        let mut buf = Vec::new();
        write_vcd(&input.netlist, output, &mut buf)?;
        Ok(buf)
    }

    fn decode(&self, input: &&Design, bytes: &[u8]) -> Result<WaveTrace, MateError> {
        read_vcd(&input.netlist, BufReader::new(bytes))
    }
}

/// Evaluates a MATE set on a trace (the prune-matrix step).
#[derive(Clone, Debug)]
pub struct Evaluate {
    /// The fault-space wires the matrix covers.
    pub wires: WireSetSpec,
}

impl<'a> Stage<(&'a Design, &'a MateSet, &'a WaveTrace)> for Evaluate {
    type Output = EvalReport;

    fn name(&self) -> &'static str {
        "evaluate"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        self.wires.fingerprint(h);
    }

    fn execute(
        &self,
        (design, mates, trace): &(&Design, &MateSet, &WaveTrace),
    ) -> Result<EvalReport, MateError> {
        let wires = self.wires.resolve(design)?;
        Ok(evaluate(mates, trace, &wires))
    }

    fn encode(
        &self,
        (design, _, _): &(&Design, &MateSet, &WaveTrace),
        output: &EvalReport,
    ) -> Result<Vec<u8>, MateError> {
        let m = &output.matrix;
        let mut text = format!(
            "# eval v1 wires={} cycles={} effective={} avg_inputs={} std_inputs={}\n",
            m.wires().len(),
            m.cycles(),
            output.effective,
            output.avg_inputs,
            output.std_inputs
        );
        text.push_str("# triggers");
        for t in &output.triggers {
            text.push_str(&format!(" {t}"));
        }
        text.push('\n');
        for (idx, &wire) in m.wires().iter().enumerate() {
            text.push_str(design.netlist.net(wire).name());
            for word in m.row_words(idx) {
                text.push_str(&format!(" {word:x}"));
            }
            text.push('\n');
        }
        Ok(text.into_bytes())
    }

    fn decode(
        &self,
        (design, _, _): &(&Design, &MateSet, &WaveTrace),
        bytes: &[u8],
    ) -> Result<EvalReport, MateError> {
        let text = artifact_utf8(self.name(), bytes)?;
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| MateError::artifact(self.name(), "empty artifact"))?;
        let header = header
            .strip_prefix("# eval v1 ")
            .ok_or_else(|| MateError::artifact(self.name(), "missing `# eval v1` header"))?;
        let mut wires_len = 0usize;
        let mut cycles = 0usize;
        let mut effective = 0usize;
        let mut avg_inputs = 0f64;
        let mut std_inputs = 0f64;
        for field in header.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| MateError::artifact(self.name(), format!("bad field `{field}`")))?;
            let num = || -> Result<f64, MateError> {
                value.parse().map_err(|_| {
                    MateError::artifact(self.name(), format!("bad value in `{field}`"))
                })
            };
            match key {
                "wires" => wires_len = num()? as usize,
                "cycles" => cycles = num()? as usize,
                "effective" => effective = num()? as usize,
                "avg_inputs" => avg_inputs = num()?,
                "std_inputs" => std_inputs = num()?,
                _ => {}
            }
        }
        let (_, trig_line) = lines
            .next()
            .ok_or_else(|| MateError::artifact(self.name(), "missing trigger line"))?;
        let trig_line = trig_line
            .strip_prefix("# triggers")
            .ok_or_else(|| MateError::artifact(self.name(), "missing `# triggers` line"))?;
        let triggers: Vec<usize> = trig_line
            .split_whitespace()
            .map(|t| parse_field(self.name(), 1, t))
            .collect::<Result<_, _>>()?;

        let mut wires = Vec::with_capacity(wires_len);
        let mut rows: Vec<Vec<u64>> = Vec::with_capacity(wires_len);
        for (idx, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().ok_or_else(|| bad_line(self.name(), idx))?;
            let wire = design
                .netlist
                .find_net(name)
                .ok_or_else(|| MateError::UnknownNet {
                    line: idx + 1,
                    name: name.to_owned(),
                })?;
            let words: Vec<u64> = parts
                .map(|w| {
                    u64::from_str_radix(w, 16).map_err(|_| {
                        MateError::artifact(self.name(), format!("bad hex word `{w}`"))
                    })
                })
                .collect::<Result<_, _>>()?;
            wires.push(wire);
            rows.push(words);
        }
        if wires.len() != wires_len {
            return Err(MateError::artifact(
                self.name(),
                format!("expected {wires_len} wire rows, found {}", wires.len()),
            ));
        }
        let mut matrix = PruneMatrix::new(&wires, cycles);
        for (idx, words) in rows.iter().enumerate() {
            for (word_idx, &word) in words.iter().enumerate() {
                matrix.mark_cycle_word(idx, word_idx, word);
            }
        }
        Ok(EvalReport {
            matrix,
            triggers,
            effective,
            avg_inputs,
            std_inputs,
        })
    }
}

/// Greedy top-N MATE selection (step 3 of Section 4).
#[derive(Clone, Debug)]
pub struct Select {
    /// The fault-space wires coverage is counted over.
    pub wires: WireSetSpec,
    /// How many MATEs to keep.
    pub top_n: usize,
}

impl<'a> Stage<(&'a Design, &'a MateSet, &'a WaveTrace)> for Select {
    type Output = MateSet;

    fn name(&self) -> &'static str {
        "select"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        self.wires.fingerprint(h);
        h.usize(self.top_n);
    }

    fn execute(
        &self,
        (design, mates, trace): &(&Design, &MateSet, &WaveTrace),
    ) -> Result<MateSet, MateError> {
        let wires = self.wires.resolve(design)?;
        Ok(select_top_n(mates, trace, &wires, self.top_n))
    }

    fn encode(
        &self,
        (design, _, _): &(&Design, &MateSet, &WaveTrace),
        output: &MateSet,
    ) -> Result<Vec<u8>, MateError> {
        let mut buf = Vec::new();
        write_mates(&design.netlist, output, &mut buf)?;
        Ok(buf)
    }

    fn decode(
        &self,
        (design, _, _): &(&Design, &MateSet, &WaveTrace),
        bytes: &[u8],
    ) -> Result<MateSet, MateError> {
        read_mates(&design.netlist, BufReader::new(bytes))
    }
}

/// Runs the (sampled) fault-injection campaign on the batched engine.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// The workload driving the design.
    pub source: TraceSource,
    /// Campaign parameters.
    pub config: CampaignConfig,
    /// Restrict the fault space to these wires (`None` = every flip-flop).
    pub wires: Option<WireSetSpec>,
}

impl Stage<&Design> for Campaign {
    type Output = CampaignResult;

    fn name(&self) -> &'static str {
        "campaign"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        self.source.fingerprint(h);
        h.usize(self.config.cycles);
        match self.config.sample {
            Some(n) => {
                h.bool(true);
                h.usize(n);
            }
            None => h.bool(false),
        }
        h.u64(self.config.seed);
        // `threads`, `lanes`, `engine`, and `pruning` excluded: records are
        // bit-identical for every thread count, lane width, batched engine,
        // and pruning mode (enforced by the campaign proptests and the
        // pruning equivalence gate), so none of them may split the cache —
        // an artifact computed without collapsing must hit for a collapsed
        // configuration and vice versa.
        match &self.wires {
            Some(spec) => {
                h.bool(true);
                spec.fingerprint(h);
            }
            None => h.bool(false),
        }
    }

    fn execute(&self, input: &&Design) -> Result<CampaignResult, MateError> {
        let harness = self.source.harness(input)?;
        let space = match &self.wires {
            Some(spec) => {
                let wires = spec.resolve(input)?;
                FaultSpace::for_wires(&input.netlist, &input.topology, &wires, self.config.cycles)
            }
            None => FaultSpace::all_ffs(&input.netlist, &input.topology, self.config.cycles),
        };
        run_campaign_wide(harness.as_ref(), &space, &self.config)
    }

    fn encode(&self, input: &&Design, output: &CampaignResult) -> Result<Vec<u8>, MateError> {
        let mut text = format!("# campaign v1 records={}\n", output.records.len());
        for (point, effect) in &output.records {
            let effect = match effect {
                FaultEffect::MaskedWithinOneCycle => "masked".to_owned(),
                FaultEffect::SilentRecovery { after } => format!("recovery:{after}"),
                FaultEffect::Latent => "latent".to_owned(),
                FaultEffect::OutputFailure { after } => format!("failure:{after}"),
            };
            text.push_str(&format!(
                "{} {} {effect}\n",
                input.netlist.net(point.wire).name(),
                point.cycle
            ));
        }
        Ok(text.into_bytes())
    }

    fn decode(&self, input: &&Design, bytes: &[u8]) -> Result<CampaignResult, MateError> {
        let text = artifact_utf8(self.name(), bytes)?;
        let ff_of: HashMap<&str, (mate_netlist::CellId, NetId)> = input
            .topology
            .seq_cells()
            .iter()
            .map(|&ff| {
                let wire = input.netlist.cell(ff).output();
                (input.netlist.net(wire).name(), (ff, wire))
            })
            .collect();
        let mut records = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().ok_or_else(|| bad_line(self.name(), idx))?;
            let cycle: usize = parse_field(self.name(), idx, parts.next().unwrap_or(""))?;
            let effect = parts.next().ok_or_else(|| bad_line(self.name(), idx))?;
            let &(ff, wire) = ff_of.get(name).ok_or_else(|| MateError::UnknownNet {
                line: idx + 1,
                name: name.to_owned(),
            })?;
            let effect = if effect == "masked" {
                FaultEffect::MaskedWithinOneCycle
            } else if effect == "latent" {
                FaultEffect::Latent
            } else if let Some(after) = effect.strip_prefix("recovery:") {
                FaultEffect::SilentRecovery {
                    after: parse_field(self.name(), idx, after)?,
                }
            } else if let Some(after) = effect.strip_prefix("failure:") {
                FaultEffect::OutputFailure {
                    after: parse_field(self.name(), idx, after)?,
                }
            } else {
                return Err(MateError::artifact(
                    self.name(),
                    format!("line {}: unknown effect `{effect}`", idx + 1),
                ));
            };
            records.push((FaultPoint { ff, wire, cycle }, effect));
        }
        // Cached artifacts carry no collapsing accounting (the stats are
        // diagnostic, not part of the result): report an idle stats block.
        Ok(CampaignResult {
            records,
            pruning: PruningStats::default(),
        })
    }
}

fn artifact_utf8<'b>(stage: &str, bytes: &'b [u8]) -> Result<&'b str, MateError> {
    std::str::from_utf8(bytes)
        .map_err(|e| MateError::artifact(stage, format!("non-UTF-8 artifact: {e}")))
}

fn bad_line(stage: &str, idx: usize) -> MateError {
    MateError::artifact(stage, format!("line {}: malformed", idx + 1))
}

fn parse_field<T: std::str::FromStr>(stage: &str, idx: usize, text: &str) -> Result<T, MateError> {
    text.parse()
        .map_err(|_| MateError::artifact(stage, format!("line {}: bad number `{text}`", idx + 1)))
}
