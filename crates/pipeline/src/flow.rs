//! [`Flow`]: the canonical stage chain, pre-wired.
//!
//! Examples and bench binaries all run some prefix of
//! `LoadDesign → GmtLibrary → MateSearch → TraceCapture → Evaluate →
//! Select → Campaign`; `Flow` owns the pipeline and the loaded design and
//! threads the artifact keys so callers never handle hashes directly.

use mate::eval::EvalReport;
use mate::{MateSet, SearchConfig};
use mate_analyze::VerifyConfig;
use mate_hafi::{CampaignConfig, CampaignResult};
use mate_sim::WaveTrace;

use mate_netlist::MateError;

use crate::analysis::{AnalysisReport, Analyze};
use crate::hash::ContentHash;
use crate::stage::{Pipeline, Staged};
use crate::stages::{
    Campaign, Design, DesignSource, Evaluate, GmtLibrary, GmtReport, LoadDesign, MateSearch,
    SearchOutput, Select, TraceCapture, TraceSource, WireSetSpec,
};
use crate::store::ArtifactStore;
use crate::summary::RunSummary;

/// A pipeline bound to one loaded design.
#[derive(Debug)]
pub struct Flow {
    pipeline: Pipeline,
    design: Staged<Design>,
}

impl Flow {
    /// Loads `source` through the pipeline over `store`.
    ///
    /// # Errors
    ///
    /// Propagates design-loading and store errors.
    pub fn new(store: ArtifactStore, source: DesignSource) -> Result<Self, MateError> {
        let mut pipeline = Pipeline::new(store);
        let design = pipeline.run(&LoadDesign { source }, (), &[])?;
        Ok(Self { pipeline, design })
    }

    /// Like [`Flow::new`] over the default store
    /// (see [`ArtifactStore::default_root`]).
    ///
    /// # Errors
    ///
    /// Propagates design-loading and store errors.
    pub fn open_default(source: DesignSource) -> Result<Self, MateError> {
        Self::new(ArtifactStore::open_default(), source)
    }

    /// The loaded design.
    pub fn design(&self) -> &Design {
        &self.design.value
    }

    /// The design's artifact key.
    pub fn design_key(&self) -> ContentHash {
        self.design.key
    }

    /// Gate-library analysis for this design's cell library.
    ///
    /// # Errors
    ///
    /// Propagates stage and store errors.
    pub fn gmt_library(&mut self) -> Result<Staged<GmtReport>, MateError> {
        self.pipeline
            .run(&GmtLibrary, &self.design.value, &[self.design.key])
    }

    /// Per-wire MATE search over `wires` with `config`.
    ///
    /// # Errors
    ///
    /// Propagates stage and store errors.
    pub fn search(
        &mut self,
        wires: WireSetSpec,
        config: SearchConfig,
    ) -> Result<Staged<SearchOutput>, MateError> {
        self.pipeline.run(
            &MateSearch { wires, config },
            &self.design.value,
            &[self.design.key],
        )
    }

    /// Records the fault-free trace of `source` for `cycles` cycles.
    ///
    /// # Errors
    ///
    /// Propagates stage and store errors.
    pub fn capture(
        &mut self,
        source: TraceSource,
        cycles: usize,
    ) -> Result<Staged<WaveTrace>, MateError> {
        self.pipeline.run(
            &TraceCapture { source, cycles },
            &self.design.value,
            &[self.design.key],
        )
    }

    /// Evaluates `mates` on `trace` over `wires`.
    ///
    /// Upstream values arrive as `(value, key)` pairs — see
    /// [`Staged::part`].
    ///
    /// # Errors
    ///
    /// Propagates stage and store errors.
    pub fn evaluate(
        &mut self,
        wires: WireSetSpec,
        (mates, mates_key): (&MateSet, ContentHash),
        (trace, trace_key): (&WaveTrace, ContentHash),
    ) -> Result<Staged<EvalReport>, MateError> {
        self.pipeline.run(
            &Evaluate { wires },
            (&self.design.value, mates, trace),
            &[self.design.key, mates_key, trace_key],
        )
    }

    /// Greedy top-N selection of `mates` by coverage on `trace`.
    ///
    /// # Errors
    ///
    /// Propagates stage and store errors.
    pub fn select(
        &mut self,
        wires: WireSetSpec,
        top_n: usize,
        (mates, mates_key): (&MateSet, ContentHash),
        (trace, trace_key): (&WaveTrace, ContentHash),
    ) -> Result<Staged<MateSet>, MateError> {
        self.pipeline.run(
            &Select { wires, top_n },
            (&self.design.value, mates, trace),
            &[self.design.key, mates_key, trace_key],
        )
    }

    /// Lints the design and independently verifies `mates` against it
    /// (the static-verification gate).
    ///
    /// # Errors
    ///
    /// Propagates stage and store errors.
    pub fn analyze(
        &mut self,
        (mates, mates_key): (&MateSet, ContentHash),
        config: VerifyConfig,
    ) -> Result<Staged<AnalysisReport>, MateError> {
        self.pipeline.run(
            &Analyze { config },
            (&self.design.value, mates),
            &[self.design.key, mates_key],
        )
    }

    /// Runs the injection campaign for `source` over the design's fault
    /// space (restricted to `wires` when given).
    ///
    /// # Errors
    ///
    /// Propagates stage and store errors.
    pub fn campaign(
        &mut self,
        source: TraceSource,
        config: CampaignConfig,
        wires: Option<WireSetSpec>,
    ) -> Result<Staged<CampaignResult>, MateError> {
        let staged = self.pipeline.run(
            &Campaign {
                source,
                config,
                wires,
            },
            &self.design.value,
            &[self.design.key],
        )?;
        // Surface the collapsing accounting in the run summary — but only
        // for computed stages: cached artifacts carry no stats, and a
        // zeroed block would read as "nothing collapsed".
        let computed = self
            .pipeline
            .summary()
            .records
            .last()
            .is_some_and(|r| r.stage == "campaign" && !r.cached);
        if computed {
            self.pipeline
                .annotate_last(format!("pruning: {}", staged.value.pruning));
        }
        Ok(staged)
    }

    /// The per-stage records so far.
    pub fn summary(&self) -> &RunSummary {
        self.pipeline.summary()
    }

    /// Consumes the flow, returning the run summary.
    pub fn into_summary(self) -> RunSummary {
        self.pipeline.into_summary()
    }
}
