//! The on-disk content-addressed artifact store.
//!
//! Layout: `<root>/<stage-name>/<32-hex-key>.art`.  Writes go through a
//! temporary file in the same directory followed by an atomic rename, so a
//! concurrent reader never observes a half-written artifact and a crashed
//! run never poisons the cache.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mate_netlist::MateError;

use crate::hash::ContentHash;

/// Environment variable overriding the default store location.
pub const STORE_ENV: &str = "MATE_ARTIFACT_DIR";

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A content-addressed artifact store rooted at one directory.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (lazily — no I/O happens until the first save) a store rooted
    /// at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The default store root: `$MATE_ARTIFACT_DIR` if set, else
    /// `target/mate-artifacts` under the current directory.
    pub fn default_root() -> PathBuf {
        match std::env::var_os(STORE_ENV) {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from("target").join("mate-artifacts"),
        }
    }

    /// Opens the default store (see [`ArtifactStore::default_root`]).
    pub fn open_default() -> Self {
        Self::new(Self::default_root())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, stage: &str, key: &ContentHash) -> PathBuf {
        self.root.join(stage).join(format!("{}.art", key.hex()))
    }

    /// Returns `true` when an artifact for `(stage, key)` exists.
    pub fn contains(&self, stage: &str, key: &ContentHash) -> bool {
        self.path(stage, key).is_file()
    }

    /// Loads the artifact bytes for `(stage, key)`, or `None` on a miss.
    ///
    /// # Errors
    ///
    /// Returns [`MateError::Io`] for I/O failures other than the file not
    /// existing.
    pub fn load(&self, stage: &str, key: &ContentHash) -> Result<Option<Vec<u8>>, MateError> {
        let path = self.path(stage, key);
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(MateError::io(path.display().to_string(), e)),
        }
    }

    /// Persists `bytes` as the artifact for `(stage, key)` via a temp file
    /// and atomic rename.
    ///
    /// # Errors
    ///
    /// Returns [`MateError::Io`] when the store directory cannot be created
    /// or written.
    pub fn save(&self, stage: &str, key: &ContentHash, bytes: &[u8]) -> Result<(), MateError> {
        let path = self.path(stage, key);
        let dir = path.parent().expect("artifact path always has a parent");
        fs::create_dir_all(dir).map_err(|e| MateError::io(dir.display().to_string(), e))?;
        let tmp = dir.join(format!(
            ".{}.{}.{}.tmp",
            key.hex(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes).map_err(|e| MateError::io(tmp.display().to_string(), e))?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            MateError::io(path.display().to_string(), e)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mate-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let root = scratch("roundtrip");
        let store = ArtifactStore::new(&root);
        let key = ContentHash(42);
        assert!(!store.contains("search", &key));
        assert_eq!(store.load("search", &key).unwrap(), None);
        store.save("search", &key, b"payload").unwrap();
        assert!(store.contains("search", &key));
        assert_eq!(
            store.load("search", &key).unwrap().as_deref(),
            Some(&b"payload"[..])
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn keys_do_not_collide_across_stages() {
        let root = scratch("stages");
        let store = ArtifactStore::new(&root);
        let key = ContentHash(7);
        store.save("a", &key, b"one").unwrap();
        assert!(!store.contains("b", &key));
        let _ = fs::remove_dir_all(&root);
    }
}
