//! Stable content hashing for artifact keys.
//!
//! Artifact keys must be identical across runs, platforms, and (ideally)
//! compiler versions, so the store cannot use [`std::hash`] (whose hashers
//! are explicitly unstable).  This module implements 128-bit FNV-1a over a
//! tagged byte stream: every field written through [`ContentHasher`] is
//! prefixed with a type tag and a length, so `("ab", "c")` and `("a", "bc")`
//! hash differently.

use std::fmt;

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content hash, the key of one artifact in the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// The 32-character lowercase hex form used as the on-disk file name.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a hasher over tagged, length-prefixed fields.
#[derive(Clone, Debug)]
pub struct ContentHasher {
    state: u128,
}

impl ContentHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    fn raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes raw bytes with a length prefix.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.raw(b"b");
        self.raw(&(bytes.len() as u64).to_le_bytes());
        self.raw(bytes);
    }

    /// Hashes a string field.
    pub fn str(&mut self, s: &str) {
        self.raw(b"s");
        self.raw(&(s.len() as u64).to_le_bytes());
        self.raw(s.as_bytes());
    }

    /// Hashes an integer field.
    pub fn u64(&mut self, v: u64) {
        self.raw(b"u");
        self.raw(&v.to_le_bytes());
    }

    /// Hashes a `usize` field (widened, so 32/64-bit hosts agree).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Hashes a boolean field.
    pub fn bool(&mut self, v: bool) {
        self.raw(b"t");
        self.raw(&[u8::from(v)]);
    }

    /// Hashes an `f64` field by its bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.raw(b"f");
        self.raw(&v.to_bits().to_le_bytes());
    }

    /// Folds another content hash in (artifact-key chaining).
    pub fn hash(&mut self, h: &ContentHash) {
        self.raw(b"h");
        self.raw(&h.0.to_le_bytes());
    }

    /// Finalizes the key.
    pub fn finish(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = ContentHasher::new();
        a.str("hello");
        a.u64(7);
        let mut b = ContentHasher::new();
        b.str("hello");
        b.u64(7);
        assert_eq!(a.finish(), b.finish());

        let mut c = ContentHasher::new();
        c.u64(7);
        c.str("hello");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn field_boundaries_matter() {
        let mut a = ContentHasher::new();
        a.str("ab");
        a.str("c");
        let mut b = ContentHasher::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_32_chars() {
        let h = ContentHasher::new().finish();
        assert_eq!(h.hex().len(), 32);
        assert_eq!(h.hex(), h.to_string());
    }
}
