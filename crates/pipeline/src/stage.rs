//! The typed stage abstraction and the pipeline runner.
//!
//! A [`Stage<In>`] is one step of the paper's offline→online flow.  Its
//! identity is `(name, version, config fingerprint)`; the key of its output
//! artifact is the hash of that identity plus the keys of its inputs, so an
//! unchanged prefix of the chain re-resolves to the same keys and is served
//! from the [`ArtifactStore`](crate::ArtifactStore) without recomputation.

use std::time::{Duration, Instant};

use mate_netlist::MateError;

use crate::hash::{ContentHash, ContentHasher};
use crate::store::ArtifactStore;
use crate::summary::RunSummary;

/// Version of the evaluation-engine memory layout, folded into **every**
/// artifact key.  Bump whenever the kernels that produce artifacts change
/// their data layout or lane semantics (e.g. the structure-of-arrays arena
/// and 256/512-lane blocks of version 2; the fan-out CSR and differential
/// campaign engine of version 3), so artifacts cached by an older engine
/// layout miss instead of being trusted across engine generations.
pub const ENGINE_LAYOUT_VERSION: u32 = 3;

/// One typed step of the analysis pipeline.
///
/// `In` is the stage's input (typically `()` for sources or a tuple of
/// references to upstream outputs); [`Stage::Output`] is the produced value.
/// Every output must be serializable ([`Stage::encode`]/[`Stage::decode`])
/// so it can live in the artifact store; `decode` receives the input again
/// because most artifacts (mate sets, traces) are keyed by net *names* and
/// need the design to resolve them.
pub trait Stage<In> {
    /// The produced value.
    type Output;

    /// Stable stage name — doubles as the store subdirectory.
    fn name(&self) -> &'static str;

    /// Bump when the stage's algorithm or artifact format changes; old
    /// artifacts then miss instead of being mis-decoded.
    fn version(&self) -> u32 {
        1
    }

    /// Folds the stage *configuration* into the artifact key.
    fn fingerprint(&self, h: &mut ContentHasher);

    /// `true` for stages that must execute even on a cache hit (e.g.
    /// in-memory elaboration of a core netlist, which is required to obtain
    /// the output value at all).  Their artifacts still classify the run as
    /// hit or miss and feed downstream keys.
    fn always_runs(&self) -> bool {
        false
    }

    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// Stage-specific [`MateError`]s.
    fn execute(&self, input: &In) -> Result<Self::Output, MateError>;

    /// Serializes the output into artifact bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MateError`] when the output cannot be serialized.
    fn encode(&self, input: &In, output: &Self::Output) -> Result<Vec<u8>, MateError>;

    /// Reconstructs an output from artifact bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MateError`] on malformed artifacts (the pipeline falls
    /// back to [`Stage::execute`]).
    fn decode(&self, input: &In, bytes: &[u8]) -> Result<Self::Output, MateError>;

    /// Optionally refines the artifact key with the produced *content* —
    /// used by [`always_runs`](Stage::always_runs) sources whose
    /// configuration is just a label, so downstream keys stay
    /// content-addressed.
    fn output_fingerprint(&self, _output: &Self::Output, _h: &mut ContentHasher) {}
}

/// A stage output together with its artifact key, for chaining.
#[derive(Clone, Debug)]
pub struct Staged<T> {
    /// The in-memory value.
    pub value: T,
    /// The content-addressed key of the artifact holding `value`.
    pub key: ContentHash,
}

impl<T> Staged<T> {
    /// Borrows the value with its key — the shape downstream stages take
    /// their inputs in.
    pub fn part(&self) -> (&T, ContentHash) {
        (&self.value, self.key)
    }
}

/// Executes stages against one artifact store, recording per-stage timing
/// and cache hits/misses.
#[derive(Debug)]
pub struct Pipeline {
    store: ArtifactStore,
    summary: RunSummary,
}

impl Pipeline {
    /// A pipeline over `store` with an empty run summary.
    pub fn new(store: ArtifactStore) -> Self {
        Self {
            store,
            summary: RunSummary::default(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// The per-stage records accumulated so far.
    pub fn summary(&self) -> &RunSummary {
        &self.summary
    }

    /// Attaches a diagnostic note to the most recently recorded stage (see
    /// [`RunSummary::annotate_last`]).
    pub fn annotate_last(&mut self, detail: impl Into<String>) {
        self.summary.annotate_last(detail);
    }

    /// Consumes the pipeline, returning its summary.
    pub fn into_summary(self) -> RunSummary {
        self.summary
    }

    /// Runs `stage` on `input`, whose upstream artifact keys are `deps`.
    ///
    /// Cache protocol: the output key is
    /// `H(name, engine layout, version, fingerprint, deps)` — see
    /// [`ENGINE_LAYOUT_VERSION`].  If the store holds that key the artifact
    /// is decoded and the stage is *not* executed (a **hit**); otherwise the
    /// stage executes and its encoded output is persisted (a **miss**).  A
    /// corrupt artifact silently falls back to execution.
    ///
    /// # Errors
    ///
    /// Propagates stage and store errors.
    pub fn run<In: Copy, S: Stage<In>>(
        &mut self,
        stage: &S,
        input: In,
        deps: &[ContentHash],
    ) -> Result<Staged<S::Output>, MateError> {
        let start = Instant::now();
        let mut h = ContentHasher::new();
        h.str("mate-stage");
        h.u64(u64::from(ENGINE_LAYOUT_VERSION));
        h.str(stage.name());
        h.u64(u64::from(stage.version()));
        stage.fingerprint(&mut h);
        for dep in deps {
            h.hash(dep);
        }
        let key = h.finish();

        if stage.always_runs() {
            let value = stage.execute(&input)?;
            let mut h = ContentHasher::new();
            h.hash(&key);
            stage.output_fingerprint(&value, &mut h);
            let key = h.finish();
            let cached = self.store.contains(stage.name(), &key);
            if !cached {
                let bytes = stage.encode(&input, &value)?;
                self.store.save(stage.name(), &key, &bytes)?;
            }
            self.record(stage.name(), cached, start.elapsed(), key);
            return Ok(Staged { value, key });
        }

        if let Some(bytes) = self.store.load(stage.name(), &key)? {
            if let Ok(value) = stage.decode(&input, &bytes) {
                self.record(stage.name(), true, start.elapsed(), key);
                return Ok(Staged { value, key });
            }
        }
        let value = stage.execute(&input)?;
        let bytes = stage.encode(&input, &value)?;
        self.store.save(stage.name(), &key, &bytes)?;
        self.record(stage.name(), false, start.elapsed(), key);
        Ok(Staged { value, key })
    }

    fn record(&mut self, stage: &str, cached: bool, elapsed: Duration, key: ContentHash) {
        self.summary.push(stage, cached, elapsed, key);
    }
}
