//! The Analyze stage fingerprint after the SAT backend landed: the proof
//! backend and conflict budget are part of the artifact identity, the
//! thread count is not.  Plants a report under one configuration and
//! probes it with maximally different execution-only settings (hit) and
//! with a backend/budget switch (miss).

use std::path::PathBuf;

use mate::SearchConfig;
use mate_analyze::{ProofBackend, VerifyConfig};
use mate_netlist::examples::figure1b;
use mate_pipeline::{
    AnalysisReport, ArtifactStore, ContentHash, DesignSource, Flow, TraceSource, WireSetSpec,
};

/// A fresh scratch store root, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mate-proof-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::new(&self.0)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn figure1b_source() -> DesignSource {
    DesignSource::Builder {
        label: "figure1b",
        build: figure1b,
    }
}

/// Runs the full prefix (search → capture → select) and the Analyze stage
/// with `config`; returns the artifact key, the report, and whether the
/// Analyze record was served from the store.
fn run_analyze(store: ArtifactStore, config: VerifyConfig) -> (ContentHash, AnalysisReport, bool) {
    let mut flow = Flow::new(store, figure1b_source()).unwrap();
    let search = flow
        .search(WireSetSpec::AllFfs, SearchConfig::default())
        .unwrap();
    let trace = flow
        .capture(
            TraceSource::Stimuli {
                waves: vec![("in".into(), vec![true, false, false, true])],
            },
            32,
        )
        .unwrap();
    let selected = flow
        .select(
            WireSetSpec::AllFfs,
            search.value.mates.len(),
            (&search.value.mates, search.key),
            trace.part(),
        )
        .unwrap();
    let analysis = flow.analyze(selected.part(), config).unwrap();
    let summary = flow.into_summary();
    let cached = summary.records.last().unwrap().cached;
    (analysis.key, analysis.value, cached)
}

#[test]
fn backend_switch_misses_while_thread_count_hits() {
    let scratch = Scratch::new("backend-key");

    // Plant: the SAT backend on a single thread.
    let planted_config = VerifyConfig {
        threads: 1,
        backend: ProofBackend::Sat,
        ..VerifyConfig::default()
    };
    let (planted_key, planted, cached) = run_analyze(scratch.store(), planted_config);
    assert!(!cached, "first run must compute");
    assert_eq!(planted.backend, ProofBackend::Sat);
    assert!(
        !planted.coverage.is_empty(),
        "the SAT backend proves per-wire coverage"
    );

    // Probe 1: execution-only change (thread count) — must hit the planted
    // artifact byte-for-byte, coverage certificates and solver stats
    // included.
    let threads_only = VerifyConfig {
        threads: 7,
        backend: ProofBackend::Sat,
        ..VerifyConfig::default()
    };
    let (probe_key, probe, cached) = run_analyze(scratch.store(), threads_only);
    assert!(cached, "thread count must not split the analyze cache");
    assert_eq!(probe_key, planted_key);
    assert_eq!(probe, planted);

    // Probe 2: proof backend switch — a different certificate regime, so
    // the planted artifact must miss.
    let enum_config = VerifyConfig {
        threads: 1,
        backend: ProofBackend::Enumeration,
        ..VerifyConfig::default()
    };
    let (enum_key, enum_report, cached) = run_analyze(scratch.store(), enum_config);
    assert!(!cached, "backend switch must miss the analyze cache");
    assert_ne!(enum_key, planted_key);
    assert_eq!(enum_report.backend, ProofBackend::Enumeration);
    assert!(
        enum_report.coverage.is_empty(),
        "enumeration runs no coverage pass"
    );

    // Probe 3: conflict budget is part of the SAT identity too.
    let tighter_budget = VerifyConfig {
        threads: 1,
        backend: ProofBackend::Sat,
        conflict_budget: 1,
        ..VerifyConfig::default()
    };
    let (budget_key, _, cached) = run_analyze(scratch.store(), tighter_budget);
    assert!(!cached, "budget change must miss the analyze cache");
    assert_ne!(budget_key, planted_key);
}
