//! Acceptance tests for the Yosys JSON frontend: the vendored third core
//! (`vendor/netlists/uart_tx`) ingests through the lint gate, behaves
//! like an 8N1 UART, runs the full pipeline (search → capture → evaluate
//! → select → verify → campaign on every engine/pruning mode), and its
//! artifact cache is keyed by the *bytes* of the external file.

use std::path::{Path, PathBuf};

use mate::SearchConfig;
use mate_analyze::VerifyConfig;
use mate_hafi::{CampaignConfig, CampaignEngine, CampaignPruning};
use mate_netlist::yosys::parse_yosys_netlist;
use mate_netlist::{Library, MateError};
use mate_pipeline::{ingest_gate, ArtifactStore, DesignSource, Flow, TraceSource, WireSetSpec};
use mate_sim::{InputWave, Testbench};

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mate-ingest-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::new(self.0.join("store"))
    }

    fn file(&self, name: &str, contents: &str) -> PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn vendored_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../vendor/netlists/uart_tx/uart_tx.json")
}

fn uart_source() -> DesignSource {
    DesignSource::YosysJson {
        path: vendored_path(),
        top: None,
    }
}

/// Stimulus transmitting `byte` once: reset, then a single `wr` pulse.
fn uart_waves(byte: u8) -> TraceSource {
    let mut waves = vec![
        ("rst".to_owned(), vec![true, false]),
        ("wr".to_owned(), vec![false, false, true, false]),
    ];
    for bit in 0..8 {
        waves.push((format!("din[{bit}]"), vec![byte >> bit & 1 == 1]));
    }
    TraceSource::Stimuli { waves }
}

#[test]
fn vendored_uart_transmits_a_frame() {
    let src = std::fs::read_to_string(vendored_path()).unwrap();
    let netlist = parse_yosys_netlist(&src, Library::open15(), None).unwrap();
    ingest_gate(&netlist).unwrap();
    let topo = netlist.validate().unwrap();
    assert_eq!(
        topo.seq_cells().len(),
        17,
        "busy + baud[2] + bitcnt[4] + shift[10]"
    );

    let byte = 0xA5u8;
    let mut tb = Testbench::new(&netlist, &topo);
    let wave = |values: Vec<bool>| InputWave::from_vec(values);
    tb.drive(netlist.find_net("rst").unwrap(), wave(vec![true, false]));
    tb.drive(
        netlist.find_net("wr").unwrap(),
        wave(vec![false, false, true, false]),
    );
    for bit in 0..8 {
        tb.drive(
            netlist.find_net(&format!("din[{bit}]")).unwrap(),
            wave(vec![byte >> bit & 1 == 1]),
        );
    }
    let trace = tb.run(60);

    let tx = netlist.outputs()[0];
    assert_eq!(netlist.net(tx).name().contains("busy"), false);
    let busy = netlist.find_net("busy").unwrap();

    // The line idles high, then the start bit pulls it low.
    let first_low = (0..60).find(|&c| !trace.value(c, tx)).expect("start bit");
    assert!(trace.value(0, tx), "line must idle high");

    // 8N1 frame, LSB first, 4 cycles per bit: 0, d0..d7, 1.
    let mut expected = vec![false];
    expected.extend((0..8).map(|bit| byte >> bit & 1 == 1));
    expected.push(true);
    for (k, &bit) in expected.iter().enumerate() {
        for phase in 0..4 {
            let cycle = first_low + 4 * k + phase;
            assert_eq!(
                trace.value(cycle, tx),
                bit,
                "frame bit {k} phase {phase} (cycle {cycle})"
            );
            assert!(trace.value(cycle, busy), "busy during the frame");
        }
    }
    // After the stop bit the line is idle and busy falls.
    let after = first_low + 40;
    assert!(trace.value(after, tx));
    assert!(!trace.value(after, busy), "busy must clear after the frame");
}

/// The full paper pipeline on the external core: MATE search, golden
/// trace, prune-matrix evaluation, top-N selection, independent soundness
/// verification, and the injection campaign on every engine × pruning
/// combination — all bit-identical across engines.
#[test]
fn vendored_core_runs_the_full_pipeline() {
    let scratch = Scratch::new("full-pipeline");
    let search_config = SearchConfig {
        depth: 2,
        max_terms: 2,
        max_candidates: 64,
        max_paths: 1 << 12,
        threads: 1,
        ..SearchConfig::default()
    };

    let mut flow = Flow::new(scratch.store(), uart_source()).unwrap();
    let search = flow.search(WireSetSpec::AllFfs, search_config).unwrap();
    assert_eq!(search.value.stats.faulty_wires, 17);

    let trace = flow.capture(uart_waves(0x5A), 48).unwrap();
    let report = flow
        .evaluate(
            WireSetSpec::AllFfs,
            (&search.value.mates, search.key),
            trace.part(),
        )
        .unwrap();
    assert_eq!(report.value.matrix.wires().len(), 17);

    let selected = flow
        .select(
            WireSetSpec::AllFfs,
            4,
            (&search.value.mates, search.key),
            trace.part(),
        )
        .unwrap();
    assert!(selected.value.mates().len() <= 4);

    // Independent soundness verification: no refuted MATE.
    let analysis = flow
        .analyze(
            (&search.value.mates, search.key),
            VerifyConfig {
                max_assignments: 1 << 12,
                threads: 1,
                ..VerifyConfig::default()
            },
        )
        .unwrap();
    let counts = analysis.value.counts();
    assert_eq!(counts.refuted, 0, "unsound MATE on the vendored core");

    // Campaign: every engine × pruning combination, bit-identical records.
    let combos = [
        (CampaignEngine::FullSettle, CampaignPruning::Off),
        (CampaignEngine::FullSettle, CampaignPruning::Collapse),
        (CampaignEngine::Differential, CampaignPruning::Off),
        (CampaignEngine::Differential, CampaignPruning::Collapse),
    ];
    let mut reference = None;
    for (engine, pruning) in combos {
        // A fresh store per combo forces a real recompute on every engine
        // (they share one cache key by design — bit-identical invariant).
        let combo_scratch = Scratch::new(&format!("combo-{engine:?}-{pruning:?}"));
        let mut flow = Flow::new(combo_scratch.store(), uart_source()).unwrap();
        let result = flow
            .campaign(
                uart_waves(0x5A),
                CampaignConfig {
                    cycles: 48,
                    threads: 1,
                    engine,
                    pruning,
                    ..CampaignConfig::default()
                },
                None,
            )
            .unwrap();
        assert_eq!(result.value.records.len(), 17 * 48);
        match &reference {
            None => reference = Some(result.value.records.clone()),
            Some(expected) => assert_eq!(
                &result.value.records, expected,
                "{engine:?}/{pruning:?} diverged from the reference records"
            ),
        }
    }
}

/// The external-file fingerprint covers bytes, not paths: identical bytes
/// at another path hit, touched bytes (even semantics-preserving
/// whitespace) miss.
#[test]
fn external_file_cache_is_keyed_by_bytes() {
    let scratch = Scratch::new("byte-key");
    let text = std::fs::read_to_string(vendored_path()).unwrap();
    let original = scratch.file("core.json", &text);

    let source = |path: &Path| DesignSource::YosysJson {
        path: path.to_path_buf(),
        top: None,
    };

    let flow = Flow::new(scratch.store(), source(&original)).unwrap();
    assert!(!flow.summary().records[0].cached);
    drop(flow);

    // Unchanged file: served from the cache ("0 computed").
    let flow = Flow::new(scratch.store(), source(&original)).unwrap();
    assert!(flow.summary().records[0].cached);
    assert!(flow.summary().all_cached(), "{}", flow.summary());
    drop(flow);

    // Same bytes, different path: still a hit.
    let moved = scratch.file("renamed.json", &text);
    let flow = Flow::new(scratch.store(), source(&moved)).unwrap();
    assert!(flow.summary().records[0].cached, "bytes are the identity");
    drop(flow);

    // Touched bytes (trailing whitespace — same netlist!): recompute.
    let touched = scratch.file("touched.json", &format!("{text}\n"));
    let flow = Flow::new(scratch.store(), source(&touched)).unwrap();
    assert!(
        !flow.summary().records[0].cached,
        "changed bytes must miss even when the parsed netlist is identical"
    );
}

/// Each structural-defect class an external netlist can carry is rejected
/// by the lint gate with a typed, context-carrying error — before any
/// simulation.
#[test]
fn ingest_gate_rejects_ill_formed_external_netlists() {
    let scratch = Scratch::new("gate-reject");
    let load = |path: &Path| {
        Flow::new(
            scratch.store(),
            DesignSource::YosysJson {
                path: path.to_path_buf(),
                top: None,
            },
        )
        .err()
        .expect("ill-formed netlist must be rejected")
    };

    // Undriven net: g's A input is never driven and is not a port.
    let undriven = scratch.file(
        "undriven.json",
        r#"{"modules": {"m": {
            "ports": {"y": {"direction": "output", "bits": [3]}},
            "cells": {"g": {"type": "$_NOT_", "connections": {"A": [2], "Y": [3]}}},
            "netnames": {"mystery": {"bits": [2]}, "y": {"bits": [3]}}
        }}}"#,
    );
    let err = load(&undriven);
    let text = err.to_string();
    assert!(matches!(err, MateError::File { .. }), "{err}");
    assert!(text.contains("undriven-net"), "{text}");
    assert!(text.contains("mystery"), "{text}");
    assert!(text.contains("lint gate"), "{text}");

    // Multiply-driven net: two gates drive bit 4.
    let multi = scratch.file(
        "multi.json",
        r#"{"modules": {"m": {
            "ports": {
                "a": {"direction": "input", "bits": [2]},
                "y": {"direction": "output", "bits": [4]}
            },
            "cells": {
                "g0": {"type": "$_NOT_", "connections": {"A": [2], "Y": [4]}},
                "g1": {"type": "$_BUF_", "connections": {"A": [2], "Y": [4]}}
            },
            "netnames": {"a": {"bits": [2]}, "y": {"bits": [4]}}
        }}}"#,
    );
    let text = load(&multi).to_string();
    assert!(text.contains("multi-driven-net"), "{text}");

    // Combinational loop: two NOTs chasing each other.
    let comb_loop = scratch.file(
        "loop.json",
        r#"{"modules": {"m": {
            "ports": {"y": {"direction": "output", "bits": [2]}},
            "cells": {
                "g0": {"type": "$_NOT_", "connections": {"A": [3], "Y": [2]}},
                "g1": {"type": "$_NOT_", "connections": {"A": [2], "Y": [3]}}
            },
            "netnames": {"p": {"bits": [2]}, "q": {"bits": [3]}}
        }}}"#,
    );
    let text = load(&comb_loop).to_string();
    assert!(text.contains("comb-loop"), "{text}");
}

/// The vendored netlist file itself passes `mate-analyze`-grade scrutiny:
/// zero error- and zero warning-severity findings.
#[test]
fn vendored_netlist_is_lint_clean() {
    let src = std::fs::read_to_string(vendored_path()).unwrap();
    let netlist = parse_yosys_netlist(&src, Library::open15(), None).unwrap();
    let diags = mate_analyze::run_lints(&netlist);
    let errors: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == mate_analyze::Severity::Error)
        .collect();
    assert!(errors.is_empty(), "{errors:?}");
}
