//! Acceptance tests for the artifact cache: pipeline results are
//! bit-identical to direct calls, unchanged prefixes are served from the
//! store, and config changes miss.

use std::path::PathBuf;

use mate::{ff_wires, search_design, SearchConfig};
use mate_hafi::CampaignConfig;
use mate_netlist::examples::{figure1b, tmr_register};
use mate_netlist::verilog::to_verilog;
use mate_netlist::MateError;
use mate_pipeline::{
    ArtifactStore, ContentHasher, DesignSource, Flow, Pipeline, Stage, TraceSource, WireSetSpec,
    ENGINE_LAYOUT_VERSION,
};

/// A fresh scratch store root, removed by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mate-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::new(&self.0)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tmr_source() -> DesignSource {
    DesignSource::Builder {
        label: "tmr-register",
        build: tmr_register,
    }
}

fn tmr_waves() -> TraceSource {
    TraceSource::Stimuli {
        waves: vec![
            ("load".into(), vec![true, false, false, false, true, false]),
            ("din".into(), vec![true, true, true, true, false]),
        ],
    }
}

#[test]
fn pipeline_search_is_bit_identical_to_direct_calls() {
    let scratch = Scratch::new("bit-identical");
    let config = SearchConfig::default();

    // Direct path: the repo's classic hand-wired flow.
    let (n, topo) = tmr_register();
    let wires = ff_wires(&n, &topo);
    let direct = search_design(&n, &topo, &wires, &config).into_mate_set();

    // Pipeline path, computed (first run) and decoded (second run).
    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    let computed = flow.search(WireSetSpec::AllFfs, config).unwrap();
    assert_eq!(computed.value.mates, direct);

    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    let decoded = flow.search(WireSetSpec::AllFfs, config).unwrap();
    assert_eq!(decoded.value.mates, direct);
    assert_eq!(decoded.key, computed.key);
    assert_eq!(flow.summary().hits(), flow.summary().len());
}

#[test]
fn unchanged_inputs_serve_every_stage_from_the_cache() {
    let scratch = Scratch::new("all-hit");
    let config = SearchConfig::default();

    let run = |store: ArtifactStore| {
        let mut flow = Flow::new(store, tmr_source()).unwrap();
        flow.gmt_library().unwrap();
        let search = flow.search(WireSetSpec::AllFfs, config).unwrap();
        let trace = flow.capture(tmr_waves(), 16).unwrap();
        let report = flow
            .evaluate(
                WireSetSpec::AllFfs,
                (&search.value.mates, search.key),
                trace.part(),
            )
            .unwrap();
        let selected = flow
            .select(
                WireSetSpec::AllFfs,
                2,
                (&search.value.mates, search.key),
                trace.part(),
            )
            .unwrap();
        let campaign = flow
            .campaign(
                tmr_waves(),
                CampaignConfig {
                    cycles: 12,
                    ..CampaignConfig::default()
                },
                None,
            )
            .unwrap();
        (flow.into_summary(), search, report, selected, campaign)
    };

    let (first, search1, report1, selected1, campaign1) = run(scratch.store());
    assert_eq!(first.len(), 7, "{first}");
    assert_eq!(first.hits(), 0, "{first}");

    let (second, search2, report2, selected2, campaign2) = run(scratch.store());
    // Zero work on the second run: cache-hit counter == stage count.
    assert_eq!(second.hits(), second.len(), "{second}");
    assert!(second.all_cached(), "{second}");

    // ... and the decoded artifacts are bit-identical to the computed ones.
    assert_eq!(search2.value.mates, search1.value.mates);
    assert_eq!(report2.value.matrix, report1.value.matrix);
    assert_eq!(report2.value.triggers, report1.value.triggers);
    assert_eq!(report2.value.effective, report1.value.effective);
    assert_eq!(selected2.value, selected1.value);
    assert_eq!(campaign2.value.records, campaign1.value.records);
}

#[test]
fn changed_search_config_misses_while_the_prefix_hits() {
    let scratch = Scratch::new("config-miss");

    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    flow.search(WireSetSpec::AllFfs, SearchConfig::default())
        .unwrap();
    assert_eq!(flow.summary().misses(), 2);

    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    let changed = SearchConfig {
        depth: 2,
        ..SearchConfig::default()
    };
    flow.search(WireSetSpec::AllFfs, changed).unwrap();
    let summary = flow.summary();
    assert!(summary.records[0].cached, "design should hit: {summary}");
    assert!(
        !summary.records[1].cached,
        "changed SearchConfig must miss: {summary}"
    );

    // The thread count is not part of the identity: results are
    // bit-identical for every thread count, so it must hit.
    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    let threads_only = SearchConfig {
        threads: 3,
        ..SearchConfig::default()
    };
    flow.search(WireSetSpec::AllFfs, threads_only).unwrap();
    assert!(flow.summary().records[1].cached, "{}", flow.summary());
}

/// Plants a campaign artifact under one engine configuration and proves a
/// maximally different engine configuration — pruning mode, engine, lane
/// width, thread count all changed — still hits it.  Collapsing is an
/// invisible optimization: records are bit-identical for every mode, so
/// pre-existing artifacts must keep serving after the collapsing layer
/// landed.
#[test]
fn pruning_and_engine_config_never_split_the_campaign_cache() {
    use mate_hafi::{CampaignEngine, CampaignPruning, LaneWidth};

    let scratch = Scratch::new("pruning-hit");
    let planted_config = CampaignConfig {
        cycles: 12,
        threads: 1,
        lanes: LaneWidth::W64,
        engine: CampaignEngine::FullSettle,
        pruning: CampaignPruning::Off,
        ..CampaignConfig::default()
    };

    // Plant: computed without collapsing, on the full-settle engine.
    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    let planted = flow.campaign(tmr_waves(), planted_config, None).unwrap();
    let summary = flow.into_summary();
    let record = summary.records.last().unwrap();
    assert!(!record.cached);
    assert!(
        record
            .detail
            .as_deref()
            .is_some_and(|d| d.contains("pruning")),
        "computed campaign stage should carry collapsing stats: {summary}"
    );

    // Probe: collapsing on, auto engine, wide lanes, threaded — must hit
    // the planted artifact byte-for-byte.
    let probe_config = CampaignConfig {
        cycles: 12,
        threads: 3,
        lanes: LaneWidth::W512,
        engine: CampaignEngine::Auto,
        pruning: CampaignPruning::Collapse,
        ..CampaignConfig::default()
    };
    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    let probe = flow.campaign(tmr_waves(), probe_config, None).unwrap();
    let summary = flow.into_summary();
    let record = summary.records.last().unwrap();
    assert!(
        record.cached,
        "pruning/engine/lanes/threads must not split the cache: {summary}"
    );
    assert_eq!(probe.key, planted.key);
    assert_eq!(probe.value.records, planted.value.records);
    // Cached artifacts carry no collapsing accounting and no annotation.
    assert_eq!(probe.value.pruning.points, 0);
    assert!(record.detail.is_none(), "{summary}");
}

#[test]
fn verilog_sources_flow_and_wire_specs_key_separately() {
    let scratch = Scratch::new("verilog");
    let (n, _) = figure1b();
    let source = || DesignSource::Verilog {
        label: "figure1b".into(),
        text: to_verilog(&n),
    };

    let mut flow = Flow::new(scratch.store(), source()).unwrap();
    let design = flow.design();
    let wires = ff_wires(&design.netlist, &design.topology);
    let direct = search_design(
        &design.netlist,
        &design.topology,
        &wires,
        &SearchConfig::default(),
    )
    .into_mate_set();
    let names: Vec<String> = wires
        .iter()
        .map(|&w| design.netlist.net(w).name().to_owned())
        .collect();
    let all = flow
        .search(WireSetSpec::AllFfs, SearchConfig::default())
        .unwrap();
    assert_eq!(all.value.mates, direct);
    let named = flow
        .search(WireSetSpec::Named(names), SearchConfig::default())
        .unwrap();
    // Same wires, but a different spec identity: separate artifact.
    assert_ne!(named.key, all.key);
    assert_eq!(named.value.mates, all.value.mates);

    // A second Verilog load of identical text is a cache hit.
    let flow = Flow::new(scratch.store(), source()).unwrap();
    assert!(flow.summary().records[0].cached);
}

/// A trivial stage for exercising the key protocol directly.
struct ByteStage;

impl Stage<()> for ByteStage {
    type Output = u8;

    fn name(&self) -> &'static str {
        "byte"
    }

    fn fingerprint(&self, h: &mut ContentHasher) {
        h.u64(7);
    }

    fn execute(&self, (): &()) -> Result<u8, MateError> {
        Ok(41)
    }

    fn encode(&self, (): &(), output: &u8) -> Result<Vec<u8>, MateError> {
        Ok(vec![*output])
    }

    fn decode(&self, (): &(), bytes: &[u8]) -> Result<u8, MateError> {
        Ok(bytes[0])
    }
}

#[test]
fn engine_layout_version_invalidates_pre_soa_artifacts() {
    let scratch = Scratch::new("engine-layout");

    // The pre-SoA key scheme hashed (name, stage version, fingerprint, deps)
    // without the engine-layout version.  Plant a stale artifact under that
    // legacy key — holding the value 99, which the stage never produces.
    let legacy = {
        let mut h = ContentHasher::new();
        h.str("mate-stage");
        h.str("byte");
        h.u64(1);
        h.u64(7);
        h.finish()
    };
    scratch.store().save("byte", &legacy, &[99]).unwrap();

    let mut pipeline = Pipeline::new(scratch.store());
    let out = pipeline.run(&ByteStage, (), &[]).unwrap();
    assert_ne!(out.key, legacy, "engine layout must be part of the key");
    assert!(
        !pipeline.summary().records[0].cached,
        "pre-SoA artifact must miss, not decode: {}",
        pipeline.summary()
    );
    assert_eq!(out.value, 41, "value recomputed, not the stale artifact");

    // The same engine layout re-resolves to the same key and hits.
    let mut pipeline = Pipeline::new(scratch.store());
    let again = pipeline.run(&ByteStage, (), &[]).unwrap();
    assert_eq!(again.key, out.key);
    assert!(pipeline.summary().records[0].cached);

    // Bumping the layout version changes the key: recompute what run() would
    // hash with a different engine generation and check it diverges.
    let next_gen = {
        let mut h = ContentHasher::new();
        h.str("mate-stage");
        h.u64(u64::from(ENGINE_LAYOUT_VERSION + 1));
        h.str("byte");
        h.u64(1);
        h.u64(7);
        h.finish()
    };
    assert_ne!(next_gen, out.key);
}

#[test]
fn gmt_report_roundtrips_and_counts_entries() {
    let scratch = Scratch::new("gmt");
    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    let first = flow.gmt_library().unwrap();
    assert!(first.value.total_entries > 0);
    assert!(!first.value.rows.is_empty());

    let mut flow = Flow::new(scratch.store(), tmr_source()).unwrap();
    let second = flow.gmt_library().unwrap();
    assert!(flow.summary().records[1].cached);
    assert_eq!(second.value, first.value);
}
