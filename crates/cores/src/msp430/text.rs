//! Text front end for the MSP430 assembler.
//!
//! Accepts the classic TI-style syntax:
//!
//! ```text
//! ; 16-bit countdown
//!     mov  #5, r4
//! loop:
//!     sub  #1, r4
//!     jnz  loop
//!     halt
//! ```
//!
//! Supported operands: registers `r0..r15` (aliases `pc`, `sp`, `sr`),
//! immediates `#imm` (decimal or `#0x..`), indirect `@rN`, auto-increment
//! `@rN+`, indexed `x(rN)`, and label references for jumps.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use super::asm::{Assembler, Label};
use super::isa::{Dst, JumpCond, Src};

/// Errors produced by [`parse_asm`].
#[derive(Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_number(token: &str, line: usize) -> Result<u16, AsmError> {
    let value = if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        i64::from_str_radix(hex, 16)
    } else if let Some(neg) = token.strip_prefix('-') {
        neg.parse::<i64>().map(|v| -v)
    } else {
        token.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad number `{token}`")))?;
    if !(-32768..65536).contains(&value) {
        return Err(err(line, format!("number `{token}` out of word range")));
    }
    Ok(value as u16)
}

fn parse_reg(token: &str, line: usize) -> Result<u8, AsmError> {
    match token.to_ascii_lowercase().as_str() {
        "pc" => return Ok(0),
        "sp" => return Ok(1),
        "sr" => return Ok(2),
        _ => {}
    }
    let rest = token
        .strip_prefix(['r', 'R'])
        .ok_or_else(|| err(line, format!("expected register, got `{token}`")))?;
    let n: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register `{token}`")))?;
    if n >= 16 {
        return Err(err(line, format!("register `{token}` out of range")));
    }
    Ok(n)
}

fn parse_src(token: &str, line: usize) -> Result<Src, AsmError> {
    if let Some(imm) = token.strip_prefix('#') {
        return Ok(Src::Imm(parse_number(imm, line)?));
    }
    if let Some(ind) = token.strip_prefix('@') {
        return if let Some(reg) = ind.strip_suffix('+') {
            Ok(Src::AutoInc(parse_reg(reg, line)?))
        } else {
            Ok(Src::Indirect(parse_reg(ind, line)?))
        };
    }
    if let Some((offset, rest)) = token.split_once('(') {
        let reg = rest
            .strip_suffix(')')
            .ok_or_else(|| err(line, format!("missing `)` in `{token}`")))?;
        return Ok(Src::Indexed(
            parse_reg(reg.trim(), line)?,
            parse_number(offset.trim(), line)?,
        ));
    }
    Ok(Src::Reg(parse_reg(token, line)?))
}

fn parse_dst(token: &str, line: usize) -> Result<Dst, AsmError> {
    if let Some((offset, rest)) = token.split_once('(') {
        let reg = rest
            .strip_suffix(')')
            .ok_or_else(|| err(line, format!("missing `)` in `{token}`")))?;
        return Ok(Dst::Indexed(
            parse_reg(reg.trim(), line)?,
            parse_number(offset.trim(), line)?,
        ));
    }
    Ok(Dst::Reg(parse_reg(token, line)?))
}

/// Assembles MSP430 text into a word image.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending source line for unknown
/// mnemonics, malformed operands, and undefined or duplicate labels.
pub fn parse_asm(source: &str) -> Result<Vec<u16>, AsmError> {
    let mut asm = Assembler::new();
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut bound: HashMap<String, usize> = HashMap::new();
    let mut get_label = |asm: &mut Assembler, name: &str| -> Label {
        *labels
            .entry(name.to_owned())
            .or_insert_with(|| asm.new_label())
    };

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                break;
            }
            if bound.insert(name.to_owned(), line_no).is_some() {
                return Err(err(line_no, format!("label `{name}` defined twice")));
            }
            let label = get_label(&mut asm, name);
            asm.bind(label);
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        let (mnemonic, operand_text) = match rest.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o.trim()),
            None => (rest, ""),
        };
        let operands: Vec<&str> = if operand_text.is_empty() {
            Vec::new()
        } else {
            operand_text.split(',').map(str::trim).collect()
        };
        let want = |n: usize| -> Result<(), AsmError> {
            if operands.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!(
                        "`{mnemonic}` expects {n} operand(s), got {}",
                        operands.len()
                    ),
                ))
            }
        };

        let mnemonic_lc = mnemonic.to_ascii_lowercase();
        match mnemonic_lc.as_str() {
            "nop" => {
                want(0)?;
                asm.nop();
            }
            "halt" => {
                want(0)?;
                asm.halt();
            }
            "mov" | "add" | "addc" | "sub" | "subc" | "cmp" | "bit" | "bic" | "bis" | "xor"
            | "and" => {
                want(2)?;
                let src = parse_src(operands[0], line_no)?;
                let dst = parse_dst(operands[1], line_no)?;
                match mnemonic_lc.as_str() {
                    "mov" => asm.mov(src, dst),
                    "add" => asm.add(src, dst),
                    "addc" => asm.addc(src, dst),
                    "sub" => asm.sub(src, dst),
                    "subc" => asm.subc(src, dst),
                    "cmp" => asm.cmp(src, dst),
                    "bit" => asm.bit(src, dst),
                    "bic" => asm.bic(src, dst),
                    "bis" => asm.bis(src, dst),
                    "xor" => asm.xor(src, dst),
                    _ => asm.and(src, dst),
                };
            }
            "rrc" | "rra" | "swpb" | "sxt" => {
                want(1)?;
                let reg = parse_reg(operands[0], line_no)?;
                match mnemonic_lc.as_str() {
                    "rrc" => asm.rrc(reg),
                    "rra" => asm.rra(reg),
                    "swpb" => asm.swpb(reg),
                    _ => asm.sxt(reg),
                };
            }
            "jne" | "jnz" | "jeq" | "jz" | "jnc" | "jc" | "jn" | "jge" | "jl" | "jmp" => {
                want(1)?;
                let label = get_label(&mut asm, operands[0]);
                let cond = match mnemonic_lc.as_str() {
                    "jne" | "jnz" => JumpCond::Jne,
                    "jeq" | "jz" => JumpCond::Jeq,
                    "jnc" => JumpCond::Jnc,
                    "jc" => JumpCond::Jc,
                    "jn" => JumpCond::Jn,
                    "jge" => JumpCond::Jge,
                    "jl" => JumpCond::Jl,
                    _ => JumpCond::Jmp,
                };
                asm.jump(cond, label);
            }
            other => return Err(err(line_no, format!("unknown mnemonic `{other}`"))),
        }
    }

    for name in labels.keys() {
        if !bound.contains_key(name) {
            return Err(AsmError {
                line: 0,
                message: format!("label `{name}` used but never defined"),
            });
        }
    }
    Ok(asm.assemble())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msp430::model::Msp430Model;

    #[test]
    fn countdown_program_runs() {
        let image = parse_asm(
            "    mov #5, r4\n    mov #0, r5\nloop:\n    add r4, r5\n    sub #1, r4\n    \
             jnz loop\n    halt\n",
        )
        .unwrap();
        let mut m = Msp430Model::new(&image);
        m.run(1000);
        assert!(m.halted());
        assert_eq!(m.regs[5], 15);
    }

    #[test]
    fn all_addressing_modes() {
        let image = parse_asm(
            "    mov #0x300, r4\n    mov #0xBEEF, 0(r4)\n    mov #1, 1(r4)\n    mov @r4, r5\n    \
             mov #0x300, r6\n    mov @r6+, r7\n    mov 0(r6), r8\n    halt\n",
        )
        .unwrap();
        let mut m = Msp430Model::new(&image);
        m.run(1000);
        assert!(m.halted());
        assert_eq!(m.regs[5], 0xBEEF);
        assert_eq!(m.regs[7], 0xBEEF);
        assert_eq!(m.regs[8], 1);
        assert_eq!(m.mem[0x301], 1);
    }

    #[test]
    fn register_aliases() {
        // `mov #addr, pc` is a branch.
        let image = parse_asm("    mov #4, pc\n    halt\n    mov #7, r10\n    halt\n").unwrap();
        let mut m = Msp430Model::new(&image);
        m.run(100);
        assert!(m.halted());
        assert_eq!(m.regs[10], 7);
    }

    #[test]
    fn text_matches_programmatic_assembler() {
        let text = parse_asm("    mov #100, r4\n    add @r4+, 2(r5)\n    halt\n").unwrap();
        let mut a = Assembler::new();
        a.mov(Src::Imm(100), Dst::Reg(4));
        a.add(Src::AutoInc(4), Dst::Indexed(5, 2));
        a.halt();
        assert_eq!(text, a.assemble());
    }

    #[test]
    fn error_reporting() {
        assert!(parse_asm("    frob r1\n")
            .unwrap_err()
            .message
            .contains("unknown"));
        assert!(parse_asm("    mov #1\n")
            .unwrap_err()
            .message
            .contains("expects 2"));
        assert!(parse_asm("    mov #1, r99\n")
            .unwrap_err()
            .message
            .contains("range"));
        assert!(parse_asm("    mov 2(r4, r5\n")
            .unwrap_err()
            .message
            .contains(")"));
        assert!(parse_asm("    jmp away\n")
            .unwrap_err()
            .message
            .contains("never defined"));
    }
}
