//! Simulation harness binding the unified memory to the MSP430 core.

use std::cell::RefCell;
use std::rc::Rc;

use mate_netlist::{Netlist, Topology};
use mate_sim::{Simulator, SnapshotDevice, Testbench, WaveTrace};

use super::core::{build_msp430, Msp430Ports};
use super::isa::SrFlags;
use super::model::MEM_WORDS;

/// The unified memory device: asynchronous read every cycle, write when
/// `mem_we` is high.  Snapshots capture the full image, four 16-bit words
/// per `u64`.
struct Msp430Mem {
    mem: Rc<RefCell<Vec<u16>>>,
    ports: Msp430Ports,
}

impl<'n> SnapshotDevice<'n> for Msp430Mem {
    fn on_cycle(&mut self, sim: &mut Simulator<'n>) {
        let addr = sim.read_bus(self.ports.mem_addr.nets()) as usize % MEM_WORDS;
        let rdata = self.mem.borrow()[addr];
        sim.write_bus(self.ports.mem_rdata.nets(), u64::from(rdata));
        if sim.value(self.ports.mem_we.bit(0)) {
            let wdata = sim.read_bus(self.ports.mem_wdata.nets()) as u16;
            self.mem.borrow_mut()[addr] = wdata;
        }
    }

    fn state(&self) -> Vec<u64> {
        self.mem
            .borrow()
            .chunks(4)
            .map(|chunk| {
                let mut packed = 0u64;
                for (i, &w) in chunk.iter().enumerate() {
                    packed |= u64::from(w) << (16 * i);
                }
                packed
            })
            .collect()
    }

    fn load_state(&mut self, state: &[u64]) {
        let mut mem = self.mem.borrow_mut();
        assert_eq!(
            state.len(),
            mem.len().div_ceil(4),
            "memory snapshot mismatch"
        );
        for (i, word) in mem.iter_mut().enumerate() {
            *word = (state[i / 4] >> (16 * (i % 4))) as u16;
        }
    }
}

/// The result of running a program on the gate-level core.
#[derive(Clone, Debug)]
pub struct Msp430Run {
    /// The recorded wire-level trace.
    pub trace: WaveTrace,
    /// Final memory contents (word-addressed).
    pub mem: Vec<u16>,
    /// Final register values R0..R15.
    pub regs: [u16; 16],
    /// Final status flags.
    pub flags: SrFlags,
    /// Whether `CPUOFF` was reached.
    pub halted: bool,
    /// First cycle with `CPUOFF` high, if any.
    pub halt_cycle: Option<usize>,
}

/// An elaborated MSP430 core plus the machinery to run programs on it.
///
/// # Example
///
/// ```
/// use mate_cores::msp430::asm::Assembler;
/// use mate_cores::msp430::isa::{Dst, Src};
/// use mate_cores::msp430::system::Msp430System;
///
/// let sys = Msp430System::new();
/// let mut a = Assembler::new();
/// a.mov(Src::Imm(40), Dst::Reg(4));
/// a.add(Src::Imm(2), Dst::Reg(4));
/// a.halt();
/// let run = sys.run(&a.assemble(), 200);
/// assert!(run.halted);
/// assert_eq!(run.regs[4], 42);
/// ```
#[derive(Debug)]
pub struct Msp430System {
    netlist: Netlist,
    topo: Topology,
    ports: Msp430Ports,
}

impl Default for Msp430System {
    fn default() -> Self {
        Self::new()
    }
}

impl Msp430System {
    /// Elaborates the core.
    pub fn new() -> Self {
        let (netlist, topo, ports) = build_msp430();
        Self {
            netlist,
            topo,
            ports,
        }
    }

    /// The gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The validated topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The architectural bus handles.
    pub fn ports(&self) -> &Msp430Ports {
        &self.ports
    }

    /// Builds a testbench with the unified memory attached; returns the
    /// shared memory handle.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the memory size.
    pub fn testbench(&self, image: &[u16]) -> (Testbench<'_>, Rc<RefCell<Vec<u16>>>) {
        assert!(image.len() <= MEM_WORDS, "image overflows memory");
        let mut words = vec![0u16; MEM_WORDS];
        words[..image.len()].copy_from_slice(image);
        let mem = Rc::new(RefCell::new(words));

        let mut tb = Testbench::new(&self.netlist, &self.topo);
        // Snapshotable, so MSP430 campaigns can seed faulty runs from
        // golden-state checkpoints instead of replaying the warm-up prefix.
        tb.attach_snapshot(Box::new(Msp430Mem {
            mem: mem.clone(),
            ports: self.ports.clone(),
        }));
        (tb, mem)
    }

    /// Runs `image` for exactly `cycles` cycles and collects the results.
    pub fn run(&self, image: &[u16], cycles: usize) -> Msp430Run {
        let (mut tb, mem) = self.testbench(image);
        let trace = tb.run(cycles);
        let words = mem.borrow().clone();
        self.collect(trace, &words)
    }

    /// Extracts architectural results from a recorded trace.
    pub fn collect(&self, trace: WaveTrace, mem: &[u16]) -> Msp430Run {
        let last = trace.num_cycles() - 1;
        let p = &self.ports;
        let mut regs = [0u16; 16];
        for (i, q) in p.regs.iter().enumerate() {
            regs[i] = trace.bus_value(last, q.nets()) as u16;
        }
        let flags = SrFlags::from_word(regs[2]);
        let halted_net = p.halted.bit(0);
        let halt_cycle = (0..trace.num_cycles()).find(|&c| trace.value(c, halted_net));
        Msp430Run {
            mem: mem.to_vec(),
            regs,
            flags,
            halted: halt_cycle.is_some(),
            halt_cycle,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msp430::asm::Assembler;
    use crate::msp430::isa::{Dst, Src};
    use crate::msp430::model::Msp430Model;

    fn cross_check(build: impl FnOnce(&mut Assembler), cycles: usize) {
        let mut a = Assembler::new();
        build(&mut a);
        let image = a.assemble();

        let mut model = Msp430Model::new(&image);
        model.run(cycles);
        assert!(model.halted(), "model must halt");

        let sys = Msp430System::new();
        let run = sys.run(&image, cycles * 8);
        assert!(run.halted, "netlist must halt");
        assert_eq!(run.regs[..], model.regs[..], "registers diverge");
        assert_eq!(run.mem, model.mem, "memory diverges");
    }

    #[test]
    fn quickstart_doc_program() {
        let sys = Msp430System::new();
        let mut a = Assembler::new();
        a.mov(Src::Imm(40), Dst::Reg(4));
        a.add(Src::Imm(2), Dst::Reg(4));
        a.halt();
        let run = sys.run(&a.assemble(), 200);
        assert!(run.halted);
        assert_eq!(run.regs[4], 42);
    }

    #[test]
    fn arithmetic_matches_model() {
        cross_check(
            |a| {
                a.mov(Src::Imm(0x7FFF), Dst::Reg(4));
                a.add(Src::Imm(1), Dst::Reg(4)); // overflow
                a.mov(Src::Imm(10), Dst::Reg(5));
                a.sub(Src::Imm(20), Dst::Reg(5)); // borrow
                a.addc(Src::Reg(4), Dst::Reg(5));
                a.subc(Src::Imm(1), Dst::Reg(4));
                a.cmp(Src::Reg(4), Dst::Reg(5));
                a.halt();
            },
            200,
        );
    }

    #[test]
    fn logic_and_format_two_match_model() {
        cross_check(
            |a| {
                a.mov(Src::Imm(0xA5C3), Dst::Reg(4));
                a.and(Src::Imm(0x0FF0), Dst::Reg(4));
                a.bis(Src::Imm(0x8001), Dst::Reg(4));
                a.bic(Src::Imm(0x0001), Dst::Reg(4));
                a.xor(Src::Imm(0xFFFF), Dst::Reg(4));
                a.bit(Src::Imm(0x8000), Dst::Reg(4));
                a.halt();
            },
            200,
        );
    }

    #[test]
    fn one_operand_ops_match_model() {
        cross_check(
            |a| {
                a.mov(Src::Imm(0x8005), Dst::Reg(4));
                a.rra(4);
                a.rrc(4);
                a.mov(Src::Imm(0x12FF), Dst::Reg(5));
                a.swpb(5);
                a.mov(Src::Imm(0x0080), Dst::Reg(6));
                a.sxt(6);
                a.halt();
            },
            200,
        );
    }

    #[test]
    fn memory_modes_match_model() {
        cross_check(
            |a| {
                a.mov(Src::Imm(0x300), Dst::Reg(4));
                a.mov(Src::Imm(0x1111), Dst::Indexed(4, 0));
                a.mov(Src::Imm(0x2222), Dst::Indexed(4, 1));
                a.mov(Src::Indirect(4), Dst::Reg(5));
                a.add(Src::AutoInc(4), Dst::Reg(5));
                a.add(Src::AutoInc(4), Dst::Reg(5));
                a.mov(Src::Imm(0x2FE), Dst::Reg(6));
                a.mov(Src::Indexed(6, 2), Dst::Reg(7));
                a.add(Src::Reg(5), Dst::Indexed(6, 3));
                a.halt();
            },
            400,
        );
    }

    #[test]
    fn loops_and_jumps_match_model() {
        cross_check(
            |a| {
                a.mov(Src::Imm(10), Dst::Reg(4));
                a.mov(Src::Imm(0), Dst::Reg(5));
                let head = a.new_label();
                a.bind(head);
                a.add(Src::Reg(4), Dst::Reg(5));
                a.sub(Src::Imm(1), Dst::Reg(4));
                a.jnz(head);
                // Signed comparisons.
                a.mov(Src::Imm(0xFFFE), Dst::Reg(6)); // -2
                a.cmp(Src::Imm(1), Dst::Reg(6));
                let neg = a.new_label();
                let done = a.new_label();
                a.jl(neg);
                a.mov(Src::Imm(111), Dst::Reg(7));
                a.jmp(done);
                a.bind(neg);
                a.mov(Src::Imm(222), Dst::Reg(7));
                a.bind(done);
                a.halt();
            },
            600,
        );
    }

    #[test]
    fn mov_to_pc_branches_on_netlist() {
        cross_check(
            |a| {
                a.mov(Src::Imm(5), Dst::Reg(0)); // words 0-1; jump to 5
                a.halt(); // words 2-3
                a.nop(); // word 4
                         // word 5:
                a.mov(Src::Imm(0xCAFE), Dst::Reg(10)); // words 5-6
                a.halt();
            },
            200,
        );
    }

    #[test]
    fn halt_parks_fsm_in_fetch() {
        let sys = Msp430System::new();
        let mut a = Assembler::new();
        a.halt();
        let run = sys.run(&a.assemble(), 60);
        assert!(run.halted);
        let halt_at = run.halt_cycle.unwrap();
        let state_nets = sys.ports().state.nets();
        for c in halt_at + 2..run.trace.num_cycles() {
            assert_eq!(
                run.trace.bus_value(c, state_nets),
                super::super::core::state::FETCH,
                "cycle {c}"
            );
        }
        // PC frozen.
        let pc = sys.ports().regs[0].nets();
        assert_eq!(
            run.trace.bus_value(halt_at + 1, pc),
            run.trace.bus_value(run.trace.num_cycles() - 1, pc)
        );
    }
}
