//! MSP430-subset instruction set: encoding and decoding.
//!
//! Real MSP430 encodings are used (format I, format II, jumps) with two
//! documented simplifications: the machine is word-addressed (PC and
//! auto-increment advance by one word, jump offsets count words) and the
//! `B/W` byte-mode bit plus the R2/R3 constant generator are not
//! implemented (the assembler never emits them).

use std::fmt;

/// Two-operand (format I) operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op2 {
    /// `dst ← src` (no flags).
    Mov,
    /// `dst ← dst + src`.
    Add,
    /// `dst ← dst + src + C`.
    Addc,
    /// `dst ← dst − src − 1 + C`.
    Subc,
    /// `dst ← dst − src`.
    Sub,
    /// Flags of `dst − src`, result discarded.
    Cmp,
    /// Flags of `dst & src`, result discarded.
    Bit,
    /// `dst ← dst & !src` (no flags).
    Bic,
    /// `dst ← dst | src` (no flags).
    Bis,
    /// `dst ← dst ^ src`.
    Xor,
    /// `dst ← dst & src`.
    And,
}

impl Op2 {
    /// The format-I opcode nibble.
    pub fn opcode(self) -> u16 {
        match self {
            Op2::Mov => 4,
            Op2::Add => 5,
            Op2::Addc => 6,
            Op2::Subc => 7,
            Op2::Sub => 8,
            Op2::Cmp => 9,
            Op2::Bit => 11,
            Op2::Bic => 12,
            Op2::Bis => 13,
            Op2::Xor => 14,
            Op2::And => 15,
        }
    }

    fn from_opcode(op: u16) -> Option<Op2> {
        Some(match op {
            4 => Op2::Mov,
            5 => Op2::Add,
            6 => Op2::Addc,
            7 => Op2::Subc,
            8 => Op2::Sub,
            9 => Op2::Cmp,
            11 => Op2::Bit,
            12 => Op2::Bic,
            13 => Op2::Bis,
            14 => Op2::Xor,
            15 => Op2::And,
            _ => return None, // 10 = DADD, unsupported
        })
    }

    /// Whether the operation stores its result.
    pub fn writes(self) -> bool {
        !matches!(self, Op2::Cmp | Op2::Bit)
    }

    /// Whether the operation updates the status flags.
    pub fn sets_flags(self) -> bool {
        !matches!(self, Op2::Mov | Op2::Bic | Op2::Bis)
    }
}

/// Single-operand (format II) operations — register mode only in this core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op1 {
    /// Rotate right through carry.
    Rrc,
    /// Swap bytes (no flags).
    Swpb,
    /// Arithmetic shift right.
    Rra,
    /// Sign-extend the low byte.
    Sxt,
}

impl Op1 {
    /// The format-II opcode (bits 9..7).
    pub fn opcode(self) -> u16 {
        match self {
            Op1::Rrc => 0,
            Op1::Swpb => 1,
            Op1::Rra => 2,
            Op1::Sxt => 3,
        }
    }

    fn from_opcode(op: u16) -> Option<Op1> {
        Some(match op {
            0 => Op1::Rrc,
            1 => Op1::Swpb,
            2 => Op1::Rra,
            3 => Op1::Sxt,
            _ => return None, // PUSH/CALL/RETI unsupported
        })
    }

    /// Whether the operation updates the status flags.
    pub fn sets_flags(self) -> bool {
        !matches!(self, Op1::Swpb)
    }
}

/// Jump conditions (bits 12..10 of the jump format).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JumpCond {
    /// `Z == 0`
    Jne,
    /// `Z == 1`
    Jeq,
    /// `C == 0`
    Jnc,
    /// `C == 1`
    Jc,
    /// `N == 1`
    Jn,
    /// `N ^ V == 0` (signed ≥)
    Jge,
    /// `N ^ V == 1` (signed <)
    Jl,
    /// Always.
    Jmp,
}

impl JumpCond {
    /// The 3-bit condition code.
    pub fn code(self) -> u16 {
        match self {
            JumpCond::Jne => 0,
            JumpCond::Jeq => 1,
            JumpCond::Jnc => 2,
            JumpCond::Jc => 3,
            JumpCond::Jn => 4,
            JumpCond::Jge => 5,
            JumpCond::Jl => 6,
            JumpCond::Jmp => 7,
        }
    }

    /// Decodes a 3-bit condition code.
    pub fn from_code(code: u16) -> JumpCond {
        match code & 7 {
            0 => JumpCond::Jne,
            1 => JumpCond::Jeq,
            2 => JumpCond::Jnc,
            3 => JumpCond::Jc,
            4 => JumpCond::Jn,
            5 => JumpCond::Jge,
            6 => JumpCond::Jl,
            _ => JumpCond::Jmp,
        }
    }

    /// Evaluates the condition against status flags.
    pub fn eval(self, sr: SrFlags) -> bool {
        match self {
            JumpCond::Jne => !sr.z,
            JumpCond::Jeq => sr.z,
            JumpCond::Jnc => !sr.c,
            JumpCond::Jc => sr.c,
            JumpCond::Jn => sr.n,
            JumpCond::Jge => sr.n == sr.v,
            JumpCond::Jl => sr.n != sr.v,
            JumpCond::Jmp => true,
        }
    }
}

/// The status-register flags (bit positions follow the real SR: C=0, Z=1,
/// N=2, CPUOFF=4, V=8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SrFlags {
    /// Carry.
    pub c: bool,
    /// Zero.
    pub z: bool,
    /// Negative.
    pub n: bool,
    /// Overflow.
    pub v: bool,
    /// CPU halted (`CPUOFF`).
    pub cpuoff: bool,
}

impl SrFlags {
    /// Bit position of `CPUOFF` in SR.
    pub const CPUOFF_BIT: u16 = 4;

    /// Unpacks from an SR word.
    pub fn from_word(sr: u16) -> Self {
        Self {
            c: sr & 1 != 0,
            z: sr & 2 != 0,
            n: sr & 4 != 0,
            cpuoff: sr & (1 << Self::CPUOFF_BIT) != 0,
            v: sr & 0x100 != 0,
        }
    }

    /// Merges the flag bits into an SR word, preserving unrelated bits.
    pub fn merge_into(self, sr: u16) -> u16 {
        let mut out = sr & !0x0107;
        out |= self.c as u16;
        out |= (self.z as u16) << 1;
        out |= (self.n as u16) << 2;
        out |= (self.v as u16) << 8;
        out |= sr & (1 << Self::CPUOFF_BIT);
        // cpuoff is not produced by ALU flag updates; keep SR's bit.
        out
    }
}

/// A source operand with its addressing mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Src {
    /// Register direct `Rn`.
    Reg(u8),
    /// Indexed `x(Rn)` — extension word holds `x`.
    Indexed(u8, u16),
    /// Indirect `@Rn`.
    Indirect(u8),
    /// Indirect auto-increment `@Rn+`.
    AutoInc(u8),
    /// Immediate `#x` — encoded as `@PC+`.
    Imm(u16),
}

/// A destination operand (register or indexed, as in the real encoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dst {
    /// Register direct `Rn`.
    Reg(u8),
    /// Indexed `x(Rn)` — extension word holds `x`.
    Indexed(u8, u16),
}

/// A decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Format I: `op src, dst`.
    Two {
        /// Operation.
        op: Op2,
        /// Source operand.
        src: Src,
        /// Destination operand.
        dst: Dst,
    },
    /// Format II (register mode): `op Rn`.
    One {
        /// Operation.
        op: Op1,
        /// Operand register.
        reg: u8,
    },
    /// Conditional jump with a signed word offset relative to the following
    /// word.
    Jump {
        /// Condition.
        cond: JumpCond,
        /// Signed word offset in `-512..=511`.
        offset: i16,
    },
}

impl Instr {
    /// Encodes into one to three instruction words.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range register numbers or jump offsets.
    pub fn encode(self) -> Vec<u16> {
        match self {
            Instr::Two { op, src, dst } => {
                let (rs, a_s, src_ext) = match src {
                    Src::Reg(r) => (r, 0u16, None),
                    Src::Indexed(r, x) => (r, 1, Some(x)),
                    Src::Indirect(r) => (r, 2, None),
                    Src::AutoInc(r) => (r, 3, None),
                    Src::Imm(x) => (0, 3, Some(x)),
                };
                let (rd, ad, dst_ext) = match dst {
                    Dst::Reg(r) => (r, 0u16, None),
                    Dst::Indexed(r, x) => (r, 1, Some(x)),
                };
                assert!(rs < 16 && rd < 16, "register out of range");
                let word =
                    op.opcode() << 12 | u16::from(rs) << 8 | ad << 7 | a_s << 4 | u16::from(rd);
                let mut words = vec![word];
                words.extend(src_ext);
                words.extend(dst_ext);
                words
            }
            Instr::One { op, reg } => {
                assert!(reg < 16, "register out of range");
                vec![0b000100 << 10 | op.opcode() << 7 | u16::from(reg)]
            }
            Instr::Jump { cond, offset } => {
                assert!(
                    (-512..512).contains(&offset),
                    "jump offset {offset} out of 10-bit range"
                );
                vec![0b001 << 13 | cond.code() << 10 | (offset as u16 & 0x3FF)]
            }
        }
    }

    /// Decodes the instruction starting at `words[0]`; returns the
    /// instruction and the number of words consumed.  `None` for encodings
    /// outside the supported subset.
    pub fn decode(words: &[u16]) -> Option<(Instr, usize)> {
        let w = *words.first()?;
        if w >> 13 == 0b001 {
            let raw = w & 0x3FF;
            let offset = if raw & 0x200 != 0 {
                (raw | 0xFC00) as i16
            } else {
                raw as i16
            };
            return Some((
                Instr::Jump {
                    cond: JumpCond::from_code(w >> 10),
                    offset,
                },
                1,
            ));
        }
        if w >> 10 == 0b000100 {
            // Format II; we support register mode only (As = 0).
            if (w >> 4) & 3 != 0 {
                return None;
            }
            let op = Op1::from_opcode((w >> 7) & 7)?;
            return Some((
                Instr::One {
                    op,
                    reg: (w & 0xF) as u8,
                },
                1,
            ));
        }
        let op = Op2::from_opcode(w >> 12)?;
        let rs = ((w >> 8) & 0xF) as u8;
        let ad = (w >> 7) & 1;
        let a_s = (w >> 4) & 3;
        let rd = (w & 0xF) as u8;
        let mut used = 1;
        let src = match (a_s, rs) {
            (0, _) => Src::Reg(rs),
            (1, _) => {
                let x = *words.get(used)?;
                used += 1;
                Src::Indexed(rs, x)
            }
            (2, _) => Src::Indirect(rs),
            (3, 0) => {
                let x = *words.get(used)?;
                used += 1;
                Src::Imm(x)
            }
            (3, _) => Src::AutoInc(rs),
            _ => unreachable!(),
        };
        let dst = if ad == 0 {
            Dst::Reg(rd)
        } else {
            let x = *words.get(used)?;
            used += 1;
            Dst::Indexed(rd, x)
        };
        Some((Instr::Two { op, src, dst }, used))
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_operand_roundtrip_all_modes() {
        let srcs = [
            Src::Reg(5),
            Src::Indexed(6, 0x1234),
            Src::Indirect(7),
            Src::AutoInc(8),
            Src::Imm(0xBEEF),
        ];
        let dsts = [Dst::Reg(9), Dst::Indexed(10, 0x0042)];
        let ops = [
            Op2::Mov,
            Op2::Add,
            Op2::Addc,
            Op2::Subc,
            Op2::Sub,
            Op2::Cmp,
            Op2::Bit,
            Op2::Bic,
            Op2::Bis,
            Op2::Xor,
            Op2::And,
        ];
        for op in ops {
            for src in srcs {
                for dst in dsts {
                    let i = Instr::Two { op, src, dst };
                    let words = i.encode();
                    let (decoded, used) = Instr::decode(&words).unwrap();
                    assert_eq!(decoded, i);
                    assert_eq!(used, words.len());
                }
            }
        }
    }

    #[test]
    fn one_operand_and_jump_roundtrip() {
        for op in [Op1::Rrc, Op1::Swpb, Op1::Rra, Op1::Sxt] {
            let i = Instr::One { op, reg: 11 };
            let (d, u) = Instr::decode(&i.encode()).unwrap();
            assert_eq!((d, u), (i, 1));
        }
        for cond in [
            JumpCond::Jne,
            JumpCond::Jeq,
            JumpCond::Jnc,
            JumpCond::Jc,
            JumpCond::Jn,
            JumpCond::Jge,
            JumpCond::Jl,
            JumpCond::Jmp,
        ] {
            for offset in [-512i16, -1, 0, 1, 511] {
                let i = Instr::Jump { cond, offset };
                let (d, u) = Instr::decode(&i.encode()).unwrap();
                assert_eq!((d, u), (i, 1));
            }
        }
    }

    #[test]
    fn immediate_is_pc_autoincrement() {
        let words = Instr::Two {
            op: Op2::Mov,
            src: Src::Imm(7),
            dst: Dst::Reg(4),
        }
        .encode();
        // rs = 0 (PC), As = 3.
        assert_eq!((words[0] >> 8) & 0xF, 0);
        assert_eq!((words[0] >> 4) & 3, 3);
        assert_eq!(words[1], 7);
    }

    #[test]
    fn dadd_and_push_are_unsupported() {
        assert!(Instr::decode(&[10 << 12]).is_none()); // DADD
        assert!(Instr::decode(&[0b000100 << 10 | 4 << 7]).is_none()); // PUSH
    }

    #[test]
    fn truncated_extension_word_is_none() {
        let words = Instr::Two {
            op: Op2::Add,
            src: Src::Imm(1),
            dst: Dst::Reg(5),
        }
        .encode();
        assert!(Instr::decode(&words[..1]).is_none());
    }

    #[test]
    fn sr_flags_pack_and_merge() {
        let f = SrFlags {
            c: true,
            z: false,
            n: true,
            v: true,
            cpuoff: false,
        };
        let sr = f.merge_into(0);
        assert_eq!(sr, 0x0105);
        let back = SrFlags::from_word(sr);
        assert_eq!(back, f);
        // CPUOFF survives flag merges.
        let sr2 = f.merge_into(1 << SrFlags::CPUOFF_BIT);
        assert!(SrFlags::from_word(sr2).cpuoff);
    }

    #[test]
    fn jump_cond_eval() {
        let sr = SrFlags {
            c: false,
            z: true,
            n: true,
            v: false,
            cpuoff: false,
        };
        assert!(JumpCond::Jeq.eval(sr));
        assert!(!JumpCond::Jne.eval(sr));
        assert!(JumpCond::Jnc.eval(sr));
        assert!(JumpCond::Jl.eval(sr));
        assert!(!JumpCond::Jge.eval(sr));
        assert!(JumpCond::Jmp.eval(sr));
    }

    #[test]
    fn op_metadata() {
        assert!(!Op2::Cmp.writes());
        assert!(!Op2::Bit.writes());
        assert!(Op2::Add.writes());
        assert!(!Op2::Mov.sets_flags());
        assert!(Op2::Xor.sets_flags());
        assert!(!Op1::Swpb.sets_flags());
        assert!(Op1::Rra.sets_flags());
    }
}
