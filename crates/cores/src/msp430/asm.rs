//! Programmatic two-pass assembler for the MSP430 subset.
//!
//! # Example
//!
//! ```
//! use mate_cores::msp430::asm::Assembler;
//! use mate_cores::msp430::isa::{Dst, Src};
//!
//! let mut a = Assembler::new();
//! let head = a.new_label();
//! a.mov(Src::Imm(3), Dst::Reg(4));
//! a.bind(head);
//! a.sub(Src::Imm(1), Dst::Reg(4));
//! a.jnz(head);
//! a.halt();
//! let image = a.assemble();
//! assert!(image.len() >= 6);
//! ```

use super::isa::{Dst, Instr, JumpCond, Op1, Op2, SrFlags, Src};

/// A jump target; create with [`Assembler::new_label`], place with
/// [`Assembler::bind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Clone, Copy, Debug)]
enum Slot {
    Fixed(Instr),
    Jump(JumpCond, Label),
}

impl Slot {
    fn words(&self) -> usize {
        match self {
            Slot::Fixed(i) => i.encode().len(),
            Slot::Jump(..) => 1,
        }
    }
}

/// Two-pass assembler producing a word image loaded at address 0.
#[derive(Debug, Default)]
pub struct Assembler {
    slots: Vec<Slot>,
    labels: Vec<Option<usize>>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Word address of the next emitted instruction.
    pub fn here(&self) -> usize {
        self.slots.iter().map(Slot::words).sum()
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.slots.push(Slot::Fixed(instr));
        self
    }

    fn two(&mut self, op: Op2, src: Src, dst: Dst) -> &mut Self {
        self.emit(Instr::Two { op, src, dst })
    }

    /// `MOV src, dst`
    pub fn mov(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Mov, src, dst)
    }

    /// `ADD src, dst`
    pub fn add(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Add, src, dst)
    }

    /// `ADDC src, dst`
    pub fn addc(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Addc, src, dst)
    }

    /// `SUB src, dst`
    pub fn sub(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Sub, src, dst)
    }

    /// `SUBC src, dst`
    pub fn subc(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Subc, src, dst)
    }

    /// `CMP src, dst`
    pub fn cmp(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Cmp, src, dst)
    }

    /// `BIT src, dst`
    pub fn bit(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Bit, src, dst)
    }

    /// `BIC src, dst`
    pub fn bic(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Bic, src, dst)
    }

    /// `BIS src, dst`
    pub fn bis(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Bis, src, dst)
    }

    /// `XOR src, dst`
    pub fn xor(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::Xor, src, dst)
    }

    /// `AND src, dst`
    pub fn and(&mut self, src: Src, dst: Dst) -> &mut Self {
        self.two(Op2::And, src, dst)
    }

    /// `RRC Rn`
    pub fn rrc(&mut self, reg: u8) -> &mut Self {
        self.emit(Instr::One { op: Op1::Rrc, reg })
    }

    /// `RRA Rn`
    pub fn rra(&mut self, reg: u8) -> &mut Self {
        self.emit(Instr::One { op: Op1::Rra, reg })
    }

    /// `SWPB Rn`
    pub fn swpb(&mut self, reg: u8) -> &mut Self {
        self.emit(Instr::One { op: Op1::Swpb, reg })
    }

    /// `SXT Rn`
    pub fn sxt(&mut self, reg: u8) -> &mut Self {
        self.emit(Instr::One { op: Op1::Sxt, reg })
    }

    /// `NOP` — encoded as `MOV R3, R3` like common MSP430 assemblers.
    pub fn nop(&mut self) -> &mut Self {
        self.mov(Src::Reg(3), Dst::Reg(3))
    }

    /// Halt: `BIS #CPUOFF, SR`.
    pub fn halt(&mut self) -> &mut Self {
        self.bis(Src::Imm(1 << SrFlags::CPUOFF_BIT), Dst::Reg(2))
    }

    /// Conditional jump to a label.
    pub fn jump(&mut self, cond: JumpCond, label: Label) -> &mut Self {
        self.slots.push(Slot::Jump(cond, label));
        self
    }

    /// `JNE/JNZ label`
    pub fn jnz(&mut self, label: Label) -> &mut Self {
        self.jump(JumpCond::Jne, label)
    }

    /// `JEQ/JZ label`
    pub fn jz(&mut self, label: Label) -> &mut Self {
        self.jump(JumpCond::Jeq, label)
    }

    /// `JNC label`
    pub fn jnc(&mut self, label: Label) -> &mut Self {
        self.jump(JumpCond::Jnc, label)
    }

    /// `JC label`
    pub fn jc(&mut self, label: Label) -> &mut Self {
        self.jump(JumpCond::Jc, label)
    }

    /// `JN label`
    pub fn jn(&mut self, label: Label) -> &mut Self {
        self.jump(JumpCond::Jn, label)
    }

    /// `JGE label`
    pub fn jge(&mut self, label: Label) -> &mut Self {
        self.jump(JumpCond::Jge, label)
    }

    /// `JL label`
    pub fn jl(&mut self, label: Label) -> &mut Self {
        self.jump(JumpCond::Jl, label)
    }

    /// `JMP label`
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.jump(JumpCond::Jmp, label)
    }

    /// Resolves labels and emits the final word image.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels or out-of-range jump offsets.
    pub fn assemble(&self) -> Vec<u16> {
        // First pass: addresses.
        let mut addrs = Vec::with_capacity(self.slots.len());
        let mut pc = 0usize;
        for slot in &self.slots {
            addrs.push(pc);
            pc += slot.words();
        }
        // Second pass: emit.
        let mut image = Vec::with_capacity(pc);
        for (slot, &addr) in self.slots.iter().zip(&addrs) {
            match *slot {
                Slot::Fixed(i) => image.extend(i.encode()),
                Slot::Jump(cond, label) => {
                    let target = self.labels[label.0]
                        .unwrap_or_else(|| panic!("label L{} never bound", label.0));
                    let offset = target as i32 - (addr as i32 + 1);
                    assert!(
                        (-512..512).contains(&offset),
                        "jump offset {offset} out of range at word {addr}"
                    );
                    image.extend(
                        Instr::Jump {
                            cond,
                            offset: offset as i16,
                        }
                        .encode(),
                    );
                }
            }
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn here_accounts_for_extension_words() {
        let mut a = Assembler::new();
        assert_eq!(a.here(), 0);
        a.mov(Src::Imm(1), Dst::Reg(4)); // 2 words
        assert_eq!(a.here(), 2);
        a.mov(Src::Indexed(4, 3), Dst::Indexed(5, 6)); // 3 words
        assert_eq!(a.here(), 5);
        a.rra(4); // 1 word
        assert_eq!(a.here(), 6);
    }

    #[test]
    fn forward_jump_resolution() {
        let mut a = Assembler::new();
        let done = a.new_label();
        a.jmp(done); // word 0
        a.nop(); // word 1
        a.nop(); // word 2
        a.bind(done); // word 3
        a.halt();
        let image = a.assemble();
        let (instr, _) = Instr::decode(&image).unwrap();
        assert_eq!(
            instr,
            Instr::Jump {
                cond: JumpCond::Jmp,
                offset: 2
            }
        );
    }

    #[test]
    fn backward_jump_with_extension_words() {
        let mut a = Assembler::new();
        let head = a.new_label();
        a.bind(head);
        a.add(Src::Imm(1), Dst::Reg(4)); // words 0-1
        a.jnz(head); // word 2, offset = 0 - 3 = -3
        let image = a.assemble();
        let (instr, _) = Instr::decode(&image[2..]).unwrap();
        assert_eq!(
            instr,
            Instr::Jump {
                cond: JumpCond::Jne,
                offset: -3
            }
        );
    }

    #[test]
    fn halt_sets_cpuoff() {
        let mut a = Assembler::new();
        a.halt();
        let image = a.assemble();
        let (instr, _) = Instr::decode(&image).unwrap();
        assert_eq!(
            instr,
            Instr::Two {
                op: Op2::Bis,
                src: Src::Imm(0x10),
                dst: Dst::Reg(2)
            }
        );
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.jmp(l);
        a.assemble();
    }
}
