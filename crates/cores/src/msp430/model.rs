//! ISA-level reference interpreter for the MSP430 subset.

use super::isa::{Dst, Instr, Op1, Op2, SrFlags, Src};

/// Number of 16-bit words in the unified memory.
pub const MEM_WORDS: usize = 4096;

/// Architectural state and interpreter for the MSP430 subset.
///
/// `regs[0]` is the program counter (word address), `regs[2]` the status
/// register; memory is unified (von Neumann) and word-addressed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msp430Model {
    /// Register file R0..R15.
    pub regs: [u16; 16],
    /// Unified word memory.
    pub mem: Vec<u16>,
    /// Number of executed instructions.
    pub steps: usize,
}

impl Msp430Model {
    /// Creates a model with `program` loaded at word address 0.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the memory.
    pub fn new(image: &[u16]) -> Self {
        assert!(image.len() <= MEM_WORDS, "image overflows memory");
        let mut mem = vec![0u16; MEM_WORDS];
        mem[..image.len()].copy_from_slice(image);
        Self {
            regs: [0; 16],
            mem,
            steps: 0,
        }
    }

    /// The status flags.
    pub fn flags(&self) -> SrFlags {
        SrFlags::from_word(self.regs[2])
    }

    /// Whether the CPU is halted (`CPUOFF`).
    pub fn halted(&self) -> bool {
        self.flags().cpuoff
    }

    fn mem_read(&self, addr: u16) -> u16 {
        self.mem[addr as usize % MEM_WORDS]
    }

    fn mem_write(&mut self, addr: u16, value: u16) {
        let idx = addr as usize % MEM_WORDS;
        self.mem[idx] = value;
    }

    fn fetch_word(&mut self) -> u16 {
        let w = self.mem_read(self.regs[0]);
        self.regs[0] = self.regs[0].wrapping_add(1);
        w
    }

    /// ALU addition with flag computation matching the hardware carries.
    fn alu_add(a: u16, b: u16, cin: bool) -> (u16, bool, bool) {
        let wide = u32::from(a) + u32::from(b) + u32::from(cin as u8);
        let r = wide as u16;
        let c15 = wide > 0xFFFF;
        let c14 = (u32::from(a & 0x7FFF) + u32::from(b & 0x7FFF) + cin as u32) > 0x7FFF;
        (r, c15, c15 != c14)
    }

    fn set_flags(&mut self, f: SrFlags) {
        self.regs[2] = f.merge_into(self.regs[2]);
    }

    /// Executes one instruction.  Does nothing when halted or when the
    /// fetched word is outside the supported subset (such words behave as
    /// one-word NOPs, matching the hardware decoder).
    pub fn step(&mut self) {
        if self.halted() {
            return;
        }
        self.steps += 1;
        let first = self.fetch_word();
        // Peek the following words for decode; the interpreter re-fetches
        // operand extension words itself to keep PC exact.
        let pc = self.regs[0];
        let lookahead = [first, self.mem_read(pc), self.mem_read(pc.wrapping_add(1))];
        let Some((instr, _)) = Instr::decode(&lookahead) else {
            return; // unsupported encodings are NOPs
        };
        match instr {
            Instr::Jump { cond, offset } => {
                if cond.eval(self.flags()) {
                    self.regs[0] = self.regs[0].wrapping_add(offset as u16);
                }
            }
            Instr::One { op, reg } => {
                let v = self.regs[reg as usize];
                let f = self.flags();
                let (r, new_f) = match op {
                    Op1::Rra => {
                        let r = (v >> 1) | (v & 0x8000);
                        (r, Some(self.shift_flags(r, v & 1 != 0)))
                    }
                    Op1::Rrc => {
                        let r = (v >> 1) | ((f.c as u16) << 15);
                        (r, Some(self.shift_flags(r, v & 1 != 0)))
                    }
                    Op1::Swpb => (v.rotate_left(8), None),
                    Op1::Sxt => {
                        let r = v as u8 as i8 as i16 as u16;
                        let z = r == 0;
                        (
                            r,
                            Some(SrFlags {
                                c: !z,
                                z,
                                n: r & 0x8000 != 0,
                                v: false,
                                cpuoff: false,
                            }),
                        )
                    }
                };
                self.regs[reg as usize] = r;
                if let Some(f) = new_f {
                    self.set_flags(f);
                }
            }
            Instr::Two { op, src, dst } => {
                let src_val = match src {
                    Src::Reg(r) => self.regs[r as usize],
                    Src::Indexed(r, _) => {
                        let x = self.fetch_word();
                        self.mem_read(self.regs[r as usize].wrapping_add(x))
                    }
                    Src::Indirect(r) => self.mem_read(self.regs[r as usize]),
                    Src::AutoInc(r) => {
                        let v = self.mem_read(self.regs[r as usize]);
                        self.regs[r as usize] = self.regs[r as usize].wrapping_add(1);
                        v
                    }
                    Src::Imm(_) => self.fetch_word(),
                };
                let (dst_reg, dst_addr) = match dst {
                    Dst::Reg(r) => (Some(r), None),
                    Dst::Indexed(r, _) => {
                        // The hardware computes `Rn + x` in the same cycle it
                        // fetches the extension word, so PC-relative
                        // destinations see R0 *before* the increment.
                        let base = self.regs[r as usize];
                        let x = self.fetch_word();
                        (None, Some(base.wrapping_add(x)))
                    }
                };
                let dst_val = match (dst_reg, dst_addr) {
                    (Some(r), _) => self.regs[r as usize],
                    (_, Some(a)) => self.mem_read(a),
                    _ => unreachable!(),
                };
                let f = self.flags();
                let mut result = dst_val;
                let mut new_flags: Option<SrFlags> = None;
                let logic_flags = |r: u16, v_flag: bool| SrFlags {
                    c: r != 0,
                    z: r == 0,
                    n: r & 0x8000 != 0,
                    v: v_flag,
                    cpuoff: false,
                };
                match op {
                    Op2::Mov => result = src_val,
                    Op2::Add | Op2::Addc | Op2::Sub | Op2::Subc | Op2::Cmp => {
                        let (b, cin) = match op {
                            Op2::Add => (src_val, false),
                            Op2::Addc => (src_val, f.c),
                            Op2::Sub | Op2::Cmp => (!src_val, true),
                            Op2::Subc => (!src_val, f.c),
                            _ => unreachable!(),
                        };
                        let (r, c, v) = Self::alu_add(dst_val, b, cin);
                        new_flags = Some(SrFlags {
                            c,
                            z: r == 0,
                            n: r & 0x8000 != 0,
                            v,
                            cpuoff: false,
                        });
                        if op != Op2::Cmp {
                            result = r;
                        }
                    }
                    Op2::Bit => {
                        let r = dst_val & src_val;
                        new_flags = Some(logic_flags(r, false));
                    }
                    Op2::And => {
                        result = dst_val & src_val;
                        new_flags = Some(logic_flags(result, false));
                    }
                    Op2::Xor => {
                        result = dst_val ^ src_val;
                        let v = src_val & 0x8000 != 0 && dst_val & 0x8000 != 0;
                        new_flags = Some(logic_flags(result, v));
                    }
                    Op2::Bic => result = dst_val & !src_val,
                    Op2::Bis => result = dst_val | src_val,
                }
                if op.writes() {
                    match (dst_reg, dst_addr) {
                        (Some(r), _) => self.regs[r as usize] = result,
                        (_, Some(a)) => self.mem_write(a, result),
                        _ => unreachable!(),
                    }
                }
                if let Some(f) = new_flags {
                    self.set_flags(f);
                }
            }
        }
    }

    fn shift_flags(&self, r: u16, c: bool) -> SrFlags {
        SrFlags {
            c,
            z: r == 0,
            n: r & 0x8000 != 0,
            v: false,
            cpuoff: false,
        }
    }

    /// Runs until `CPUOFF` or at most `max_steps` instructions; returns the
    /// executed count.
    pub fn run(&mut self, max_steps: usize) -> usize {
        for step in 0..max_steps {
            if self.halted() {
                return step;
            }
            self.step();
        }
        max_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msp430::asm::Assembler;

    fn run_asm(build: impl FnOnce(&mut Assembler)) -> Msp430Model {
        let mut a = Assembler::new();
        build(&mut a);
        let mut m = Msp430Model::new(&a.assemble());
        m.run(100_000);
        assert!(m.halted(), "program must halt");
        m
    }

    #[test]
    fn mov_add_immediates() {
        let m = run_asm(|a| {
            a.mov(Src::Imm(100), Dst::Reg(4));
            a.mov(Src::Imm(23), Dst::Reg(5));
            a.add(Src::Reg(5), Dst::Reg(4));
            a.halt();
        });
        assert_eq!(m.regs[4], 123);
    }

    #[test]
    fn sub_sets_carry_like_msp430() {
        // MSP430: C = 1 when no borrow.
        let m = run_asm(|a| {
            a.mov(Src::Imm(5), Dst::Reg(4));
            a.sub(Src::Imm(3), Dst::Reg(4));
            a.halt();
        });
        assert_eq!(m.regs[4], 2);
        assert!(m.flags().c, "5-3 has no borrow → C=1");
        let m = run_asm(|a| {
            a.mov(Src::Imm(3), Dst::Reg(4));
            a.sub(Src::Imm(5), Dst::Reg(4));
            a.halt();
        });
        assert_eq!(m.regs[4], 0xFFFE);
        assert!(!m.flags().c);
        assert!(m.flags().n);
    }

    #[test]
    fn memory_modes() {
        let m = run_asm(|a| {
            a.mov(Src::Imm(0x200), Dst::Reg(4)); // pointer
            a.mov(Src::Imm(0xAB), Dst::Indexed(4, 0)); // mem[0x200] = 0xAB
            a.mov(Src::Imm(0xCD), Dst::Indexed(4, 1)); // mem[0x201] = 0xCD
            a.mov(Src::Indirect(4), Dst::Reg(5)); // R5 = 0xAB
            a.mov(Src::AutoInc(4), Dst::Reg(6)); // R6 = 0xAB, R4 = 0x201
            a.mov(Src::AutoInc(4), Dst::Reg(7)); // R7 = 0xCD, R4 = 0x202
            a.mov(Src::Imm(0x200), Dst::Reg(8));
            a.mov(Src::Indexed(8, 1), Dst::Reg(9)); // R9 = 0xCD
            a.halt();
        });
        assert_eq!(m.regs[5], 0xAB);
        assert_eq!(m.regs[6], 0xAB);
        assert_eq!(m.regs[7], 0xCD);
        assert_eq!(m.regs[4], 0x202);
        assert_eq!(m.regs[9], 0xCD);
        assert_eq!(m.mem[0x200], 0xAB);
    }

    #[test]
    fn jumps_and_loop() {
        let m = run_asm(|a| {
            a.mov(Src::Imm(5), Dst::Reg(4));
            a.mov(Src::Imm(0), Dst::Reg(5));
            let head = a.new_label();
            a.bind(head);
            a.add(Src::Reg(4), Dst::Reg(5));
            a.sub(Src::Imm(1), Dst::Reg(4));
            a.jnz(head);
            a.halt();
        });
        assert_eq!(m.regs[5], 15);
        assert_eq!(m.regs[4], 0);
    }

    #[test]
    fn logic_ops_and_flags() {
        let m = run_asm(|a| {
            a.mov(Src::Imm(0xF0F0), Dst::Reg(4));
            a.and(Src::Imm(0x0FF0), Dst::Reg(4)); // 0x00F0
            a.bis(Src::Imm(0x0001), Dst::Reg(4)); // 0x00F1
            a.bic(Src::Imm(0x00F0), Dst::Reg(4)); // 0x0001
            a.xor(Src::Imm(0x0003), Dst::Reg(4)); // 0x0002
            a.halt();
        });
        assert_eq!(m.regs[4], 0x0002);
        assert!(m.flags().c, "XOR result non-zero → C=1");
    }

    #[test]
    fn one_operand_ops() {
        let m = run_asm(|a| {
            a.mov(Src::Imm(0x8005), Dst::Reg(4));
            a.rra(4); // 0xC002, C=1
            a.mov(Src::Imm(0x0001), Dst::Reg(5));
            a.rrc(5); // C was 1 → 0x8000, C=1
            a.mov(Src::Imm(0x12FF), Dst::Reg(6));
            a.swpb(6); // 0xFF12
            a.mov(Src::Imm(0x00F0), Dst::Reg(7));
            a.sxt(7); // 0xFFF0
            a.halt();
        });
        assert_eq!(m.regs[4], 0xC002);
        assert_eq!(m.regs[5], 0x8000);
        assert_eq!(m.regs[6], 0xFF12);
        assert_eq!(m.regs[7], 0xFFF0);
    }

    #[test]
    fn mov_to_pc_is_branch() {
        let m = run_asm(|a| {
            a.mov(Src::Imm(5), Dst::Reg(0)); // jump to word 5
            a.halt(); // word 2 (skipped? no: mov imm occupies 0-1, halt at 2)
            a.nop(); // 3
            a.nop(); // 4
                     // word 5:
            a.mov(Src::Imm(7), Dst::Reg(10));
            a.halt();
        });
        assert_eq!(m.regs[10], 7);
    }

    #[test]
    fn signed_jumps() {
        let m = run_asm(|a| {
            a.mov(Src::Imm(0xFFF0), Dst::Reg(4)); // -16
            a.cmp(Src::Imm(5), Dst::Reg(4)); // -16 - 5 → N^V=1
            let less = a.new_label();
            let done = a.new_label();
            a.jl(less);
            a.mov(Src::Imm(1), Dst::Reg(5));
            a.jmp(done);
            a.bind(less);
            a.mov(Src::Imm(2), Dst::Reg(5));
            a.bind(done);
            a.halt();
        });
        assert_eq!(m.regs[5], 2);
    }

    #[test]
    fn halted_model_freezes() {
        let mut a = Assembler::new();
        a.halt();
        let mut m = Msp430Model::new(&a.assemble());
        m.run(10);
        let snapshot = m.clone();
        m.step();
        assert_eq!(m, snapshot);
    }
}
