//! The two paper workloads for the MSP430 core: `fib()` and `conv()`.

use super::asm::Assembler;
use super::isa::{Dst, Src};
use crate::Termination;

/// Number of Fibonacci iterations per pass.
pub const FIB_ITERATIONS: u16 = 20;
/// Word address of the Fibonacci result array.
pub const FIB_BASE: u16 = 0x300;
/// Convolution input length.
pub const CONV_N: u16 = 8;
/// Convolution kernel length.
pub const CONV_K: u16 = 3;
/// Word address of the convolution input `x`.
pub const CONV_X_BASE: u16 = 0x300;
/// Word address of the kernel `h`.
pub const CONV_H_BASE: u16 = 0x340;
/// Word address of the output `y`.
pub const CONV_Y_BASE: u16 = 0x380;

/// Builds the Fibonacci workload: 16-bit Fibonacci numbers stored to
/// `mem[FIB_BASE..]`.
///
/// Register use: R4 = a, R5 = b, R6 = store pointer, R7 = loop counter.
pub fn fib(termination: Termination) -> Vec<u16> {
    let mut a = Assembler::new();
    let start = a.new_label();
    a.bind(start);
    a.mov(Src::Imm(1), Dst::Reg(4));
    a.mov(Src::Imm(1), Dst::Reg(5));
    a.mov(Src::Imm(FIB_BASE), Dst::Reg(6));
    a.mov(Src::Imm(FIB_ITERATIONS), Dst::Reg(7));
    let head = a.new_label();
    a.bind(head);
    a.mov(Src::Reg(4), Dst::Indexed(6, 0)); // mem[R6] = a
    a.add(Src::Imm(1), Dst::Reg(6));
    a.mov(Src::Reg(4), Dst::Reg(8)); // tmp = a
    a.add(Src::Reg(5), Dst::Reg(4)); // a += b
    a.mov(Src::Reg(8), Dst::Reg(5)); // b = tmp
    a.sub(Src::Imm(1), Dst::Reg(7));
    a.jnz(head);
    match termination {
        Termination::Halt => {
            a.halt();
        }
        Termination::Loop => {
            a.jmp(start);
        }
    }
    a.assemble()
}

/// The memory contents a correct `fib` pass leaves at `FIB_BASE..`.
pub fn fib_expected() -> Vec<u16> {
    let (mut a, mut b) = (1u16, 1u16);
    (0..FIB_ITERATIONS)
        .map(|_| {
            let r = a;
            let next = a.wrapping_add(b);
            b = a;
            a = next;
            r
        })
        .collect()
}

/// Builds the convolution workload `y[n] = Σ_k x[n+k]·h[k]` with a software
/// shift-add multiply (16-bit wrapping arithmetic).  Returns the memory
/// image (program + data).
///
/// Register use: R4 = n, R5 = k, R6 = acc, R7/R8 = multiply operands,
/// R9 = product, R10 = bit counter, R11 = x pointer, R12 = h pointer.
pub fn conv(termination: Termination) -> Vec<u16> {
    let mut a = Assembler::new();
    let start = a.new_label();
    a.bind(start);
    a.mov(Src::Imm(0), Dst::Reg(4)); // n = 0
    let outer = a.new_label();
    a.bind(outer);
    a.mov(Src::Imm(0), Dst::Reg(6)); // acc = 0
    a.mov(Src::Imm(CONV_X_BASE), Dst::Reg(11));
    a.add(Src::Reg(4), Dst::Reg(11)); // R11 = &x[n]
    a.mov(Src::Imm(CONV_H_BASE), Dst::Reg(12)); // R12 = &h[0]
    a.mov(Src::Imm(CONV_K), Dst::Reg(5)); // k = K
    let inner = a.new_label();
    a.bind(inner);
    a.mov(Src::AutoInc(11), Dst::Reg(7)); // R7 = x[n+k]
    a.mov(Src::AutoInc(12), Dst::Reg(8)); // R8 = h[k]
                                          // R9 = R7 * R8 (shift-add, 16 rounds).
    a.mov(Src::Imm(0), Dst::Reg(9));
    a.mov(Src::Imm(16), Dst::Reg(10));
    let mloop = a.new_label();
    let skip = a.new_label();
    a.bind(mloop);
    a.rra(8); // LSB of R8 into C (RRA keeps sign; fine for the bit test)
    let no_add = a.new_label();
    a.jnc(no_add);
    a.add(Src::Reg(7), Dst::Reg(9));
    a.bind(no_add);
    a.add(Src::Reg(7), Dst::Reg(7)); // R7 <<= 1
    a.sub(Src::Imm(1), Dst::Reg(10));
    a.jnz(mloop);
    a.bind(skip);
    a.add(Src::Reg(9), Dst::Reg(6)); // acc += product
    a.sub(Src::Imm(1), Dst::Reg(5));
    a.jnz(inner);
    // y[n] = acc
    a.mov(Src::Imm(CONV_Y_BASE), Dst::Reg(13));
    a.add(Src::Reg(4), Dst::Reg(13));
    a.mov(Src::Reg(6), Dst::Indexed(13, 0));
    a.add(Src::Imm(1), Dst::Reg(4));
    a.cmp(Src::Imm(CONV_N), Dst::Reg(4));
    a.jnz(outer);
    match termination {
        Termination::Halt => {
            a.halt();
        }
        Termination::Loop => {
            a.jmp(start);
        }
    }

    let mut image = a.assemble();
    assert!(image.len() < CONV_X_BASE as usize, "program overlaps data");
    image.resize(CONV_Y_BASE as usize, 0);
    for (i, x) in conv_input().iter().enumerate() {
        image[CONV_X_BASE as usize + i] = *x;
    }
    for (i, h) in conv_kernel().iter().enumerate() {
        image[CONV_H_BASE as usize + i] = *h;
    }
    image
}

/// The convolution input signal `x` (length `CONV_N + CONV_K`).
pub fn conv_input() -> Vec<u16> {
    (0..CONV_N + CONV_K).map(|i| 5 * i + 11).collect()
}

/// The convolution kernel `h`.
pub fn conv_kernel() -> Vec<u16> {
    vec![3, 7, 2]
}

/// The output `y` a correct `conv` pass produces (16-bit wrapping).
pub fn conv_expected() -> Vec<u16> {
    let x = conv_input();
    let h = conv_kernel();
    (0..CONV_N as usize)
        .map(|n| {
            let mut acc = 0u16;
            for (k, &hk) in h.iter().enumerate() {
                acc = acc.wrapping_add(x[n + k].wrapping_mul(hk));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msp430::model::Msp430Model;
    use crate::msp430::system::Msp430System;

    #[test]
    fn fib_model_produces_fibonacci() {
        let mut m = Msp430Model::new(&fib(Termination::Halt));
        m.run(10_000);
        assert!(m.halted());
        let expect = fib_expected();
        let base = FIB_BASE as usize;
        assert_eq!(&m.mem[base..base + expect.len()], &expect[..]);
        assert_eq!(expect[..6], [1, 2, 3, 5, 8, 13]);
    }

    #[test]
    fn conv_model_matches_reference() {
        let mut m = Msp430Model::new(&conv(Termination::Halt));
        m.run(100_000);
        assert!(m.halted());
        let expect = conv_expected();
        let base = CONV_Y_BASE as usize;
        assert_eq!(&m.mem[base..base + expect.len()], &expect[..]);
    }

    #[test]
    fn fib_netlist_matches_model() {
        let image = fib(Termination::Halt);
        let mut model = Msp430Model::new(&image);
        model.run(10_000);
        let sys = Msp430System::new();
        let run = sys.run(&image, 4000);
        assert!(run.halted);
        assert_eq!(run.mem, model.mem);
        assert_eq!(run.regs[..], model.regs[..]);
    }

    #[test]
    fn conv_netlist_matches_model() {
        let image = conv(Termination::Halt);
        let mut model = Msp430Model::new(&image);
        model.run(100_000);
        let sys = Msp430System::new();
        let run = sys.run(&image, 40_000);
        assert!(run.halted, "conv must finish");
        assert_eq!(run.mem, model.mem);
    }

    #[test]
    fn looping_variant_never_halts() {
        let sys = Msp430System::new();
        let run = sys.run(&fib(Termination::Loop), 3000);
        assert!(!run.halted);
    }
}
