//! Gate-level elaboration of the multi-cycle MSP430-compatible core.

use mate_netlist::{Netlist, Topology};
use mate_rtl::{ModuleBuilder, RegisterFile, Signal};

/// FSM state encodings.
pub mod state {
    /// Fetch the instruction word at `PC`.
    pub const FETCH: u64 = 0;
    /// Resolve the source operand (and jumps).
    pub const SRC: u64 = 1;
    /// Second cycle of indexed source addressing.
    pub const SRC_IDX: u64 = 2;
    /// Fetch the destination extension word.
    pub const DST_EXT: u64 = 3;
    /// Read the destination memory operand.
    pub const DST_READ: u64 = 4;
    /// Execute the ALU operation and write registers/flags.
    pub const EXEC: u64 = 5;
    /// Write the result back to memory.
    pub const WRITE: u64 = 6;
}

/// Handles to the architecturally interesting buses of the elaborated core.
#[derive(Clone, Debug)]
pub struct Msp430Ports {
    /// Unified memory word address (16 bits, output).
    pub mem_addr: Signal,
    /// Memory read data (16 bits, input).
    pub mem_rdata: Signal,
    /// Memory write data (16 bits, output).
    pub mem_wdata: Signal,
    /// Memory write enable (1 bit, output).
    pub mem_we: Signal,
    /// `CPUOFF` — the core is halted (1 bit, output).
    pub halted: Signal,
    /// FSM state register (3 bits, output).
    pub state: Signal,
    /// Instruction register (16 bits).
    pub ir: Signal,
    /// Q buses of R0..R15 (R0 = PC, R2 = SR).
    pub regs: Vec<Signal>,
}

fn any(m: &mut ModuleBuilder, sigs: &[&Signal]) -> Signal {
    assert!(!sigs.is_empty());
    let bits: Vec<_> = sigs
        .iter()
        .map(|s| {
            assert_eq!(s.width(), 1);
            s.bit(0)
        })
        .collect();
    let bundle = Signal::from_nets(bits);
    m.reduce_or(&bundle)
}

/// Elaborates the MSP430-compatible core into a gate-level netlist.
///
/// See the module documentation of [`crate::msp430`] for the architecture
/// and the documented simplifications (word addressing, no byte mode, no
/// constant generator).
///
/// # Panics
///
/// Never panics for the fixed architecture parameters used here.
pub fn build_msp430() -> (Netlist, Topology, Msp430Ports) {
    let mut m = ModuleBuilder::new("msp430");

    let mem_rdata = m.input("mem_rdata", 16);

    // Micro-architectural state.
    let st = m.reg("state", 3);
    let ir = m.reg("ir", 16);
    let srcv = m.reg("srcv", 16);
    let mar = m.reg("mar", 16);
    let mdr = m.reg("mdr", 16);
    let res = m.reg("res", 16);
    let rf = RegisterFile::new(&mut m, "r", 16, 16);

    let r0 = rf.register(0).clone(); // PC
    let r2 = rf.register(2).clone(); // SR

    // FSM state decode.
    let st_onehot = m.decoder(&st);
    let s_fetch = st_onehot[state::FETCH as usize].clone();
    let s_src = st_onehot[state::SRC as usize].clone();
    let s_src_idx = st_onehot[state::SRC_IDX as usize].clone();
    let s_dst_ext = st_onehot[state::DST_EXT as usize].clone();
    let s_dst_read = st_onehot[state::DST_READ as usize].clone();
    let s_exec = st_onehot[state::EXEC as usize].clone();
    let s_write = st_onehot[state::WRITE as usize].clone();

    // Status flags live in R2.
    let flag_c = r2.bit_signal(0);
    let flag_z = r2.bit_signal(1);
    let flag_n = r2.bit_signal(2);
    let flag_v = r2.bit_signal(8);
    let halted = r2.bit_signal(4);
    let running = m.not(&halted);

    // ------------------------------------------------------------------
    // Instruction decode (from IR).
    // ------------------------------------------------------------------
    let op4 = ir.slice(12, 16);
    let oh = m.decoder(&op4); // 16 one-hots over the top nibble
    let ir15 = ir.bit_signal(15);
    let ir14 = ir.bit_signal(14);
    let ir13 = ir.bit_signal(13);
    let fmt_two = m.or(&ir15, &ir14);
    let n15 = m.not(&ir15);
    let n14 = m.not(&ir14);
    let jmp_hi = m.and(&n15, &n14);
    let fmt_jump = m.and(&jmp_hi, &ir13);
    // Format II: top ten bits 000100 — i.e. nibble == 1 and IR[11:10] == 0.
    let ir11 = ir.bit_signal(11);
    let ir10 = ir.bit_signal(10);
    let n11 = m.not(&ir11);
    let n10 = m.not(&ir10);
    let low_zero = m.and(&n11, &n10);
    let fmt_one = m.and(&oh[1], &low_zero);

    let rs = ir.slice(8, 12);
    let rd = ir.slice(0, 4);
    let as_mode = ir.slice(4, 6);
    let ad = ir.bit_signal(7);
    let as_oh = m.decoder(&as_mode);
    let (as_reg, as_idx, as_ind, as_inc) = (
        as_oh[0].clone(),
        as_oh[1].clone(),
        as_oh[2].clone(),
        as_oh[3].clone(),
    );

    // Valid-instruction gating: DADD (nibble 10) is not implemented and
    // behaves as a NOP; format II supports register mode and RRC/SWPB/RRA/
    // SXT only.
    let not_dadd = m.not(&oh[10]);
    let valid2 = m.and(&fmt_two, &not_dadd);
    let op1 = ir.slice(7, 10);
    let op1_oh = m.decoder(&op1);
    let op1_known = any(&mut m, &[&op1_oh[0], &op1_oh[1], &op1_oh[2], &op1_oh[3]]);
    let one_reg_mode = as_reg.clone();
    let one_pre = m.and(&fmt_one, &op1_known);
    let one_ok = m.and(&one_pre, &one_reg_mode);

    // Register-file read ports.
    let rf_rs = rf.read(&mut m, &rs);
    let rf_rd = rf.read(&mut m, &rd);

    // ------------------------------------------------------------------
    // ALU (used in EXEC).
    // ------------------------------------------------------------------
    let dst_val = m.mux(&ad, &rf_rd, &mdr);
    let is_sub_like = any(&mut m, &[&oh[7], &oh[8], &oh[9]]); // SUBC, SUB, CMP
    let srcv_not = m.not(&srcv);
    let alu_b = m.mux(&is_sub_like, &srcv, &srcv_not);
    let sub_one = any(&mut m, &[&oh[8], &oh[9]]); // SUB, CMP: +1
    let carry_ops = any(&mut m, &[&oh[6], &oh[7]]); // ADDC, SUBC: +C
    let carry_cin = m.and(&carry_ops, &flag_c);
    let cin = m.or(&sub_one, &carry_cin);
    let (sum, carries) = m.adder(&dst_val, &alu_b, &cin);
    let c15 = carries.bit_signal(15);
    let c14 = carries.bit_signal(14);

    let and_r = m.and(&srcv, &dst_val);
    let bic_r = m.and(&srcv_not, &dst_val);
    let bis_r = m.or(&srcv, &dst_val);
    let xor_r = m.xor(&srcv, &dst_val);

    // Format II results operate on SRCV.
    let srcv_lsb = srcv.bit_signal(0);
    let srcv_msb = srcv.bit_signal(15);
    let rra_r = srcv.slice(1, 16).concat(&srcv_msb);
    let rrc_r = srcv.slice(1, 16).concat(&flag_c);
    let swpb_r = srcv.slice(8, 16).concat(&srcv.slice(0, 8));
    let low_msb = srcv.bit_signal(7);
    let sxt_r = {
        let mut bits = srcv.slice(0, 8).nets().to_vec();
        bits.extend(std::iter::repeat(low_msb.bit(0)).take(8));
        Signal::from_nets(bits)
    };

    // Result selection (default: adder, covers ADD/ADDC/SUB/SUBC/CMP).
    let and_like = any(&mut m, &[&oh[11], &oh[15]]); // BIT, AND
    let mut result = sum.clone();
    result = m.mux(&oh[4], &result, &srcv); // MOV
    result = m.mux(&and_like, &result, &and_r);
    result = m.mux(&oh[12], &result, &bic_r); // BIC
    result = m.mux(&oh[13], &result, &bis_r); // BIS
    result = m.mux(&oh[14], &result, &xor_r); // XOR
    let one_rrc = m.and(&one_ok, &op1_oh[0]);
    let one_swpb = m.and(&one_ok, &op1_oh[1]);
    let one_rra = m.and(&one_ok, &op1_oh[2]);
    let one_sxt = m.and(&one_ok, &op1_oh[3]);
    result = m.mux(&one_rrc, &result, &rrc_r);
    result = m.mux(&one_swpb, &result, &swpb_r);
    result = m.mux(&one_rra, &result, &rra_r);
    result = m.mux(&one_sxt, &result, &sxt_r);

    // Flags.
    let z_new = m.is_zero(&result);
    let n_new = result.bit_signal(15);
    let arith = any(&mut m, &[&oh[5], &oh[6], &oh[7], &oh[8], &oh[9]]);
    let logic_flags = any(&mut m, &[&and_like, &oh[14], &one_sxt]);
    let shift_flags = any(&mut m, &[&one_rrc, &one_rra]);
    let nz = m.not(&z_new);
    let mut c_new = c15.clone();
    c_new = m.mux(&logic_flags, &c_new, &nz);
    c_new = m.mux(&shift_flags, &c_new, &srcv_lsb);
    let v_arith = m.xor(&c15, &c14);
    let dst_msb = dst_val.bit_signal(15);
    let v_xor = m.and(&srcv_msb, &dst_msb);
    let zero1 = m.zero();
    let mut v_new = m.mux(&arith, &zero1, &v_arith);
    let xor_sel = oh[14].clone();
    let v_xor_sel = m.mux(&xor_sel, &v_new, &v_xor);
    v_new = v_xor_sel;

    let op2_flags = any(&mut m, &[&arith, &and_like, &oh[14]]);
    let op1_flags = any(&mut m, &[&one_rrc, &one_rra, &one_sxt]);
    let valid2_flags = m.and(&valid2, &op2_flags);
    let flags_any = m.or(&valid2_flags, &op1_flags);
    let flags_we = m.and(&s_exec, &flags_any);

    // ------------------------------------------------------------------
    // Jumps (resolved in SRC).
    // ------------------------------------------------------------------
    let cond = ir.slice(10, 13);
    let nzf = m.not(&flag_z);
    let ncf = m.not(&flag_c);
    let sless = m.xor(&flag_n, &flag_v);
    let nge = m.not(&sless);
    let one1 = m.one();
    let cond_val = m.mux_tree(
        &cond,
        &[
            nzf,
            flag_z.clone(),
            ncf,
            flag_c.clone(),
            flag_n.clone(),
            nge,
            sless,
            one1,
        ],
    );
    let jump_ev_pre = m.and(&s_src, &fmt_jump);
    let jump_ev = m.and(&jump_ev_pre, &cond_val);
    let off10 = m.sext(&ir.slice(0, 10), 16);
    let target = m.add(&r0, &off10);

    // ------------------------------------------------------------------
    // Memory interface.
    // ------------------------------------------------------------------
    let src_mem_pre = m.or(&as_ind, &as_inc);
    let src_mem_g = m.and(&s_src, &src_mem_pre);
    let src_mem = m.and(&src_mem_g, &valid2);
    let idx_addr = m.add(&rf_rs, &mdr);
    let mar_sel = m.or(&s_dst_read, &s_write);
    let mut mem_addr = r0.clone();
    mem_addr = m.mux(&src_mem, &mem_addr, &rf_rs);
    mem_addr = m.mux(&s_src_idx, &mem_addr, &idx_addr);
    mem_addr = m.mux(&mar_sel, &mem_addr, &mar);
    let mem_we = s_write.clone();
    let mem_wdata = res.clone();

    // ------------------------------------------------------------------
    // Micro-register updates.
    // ------------------------------------------------------------------
    let fetch_go = m.and(&s_fetch, &running);
    m.drive_reg_en(&ir, &fetch_go, &mem_rdata);

    let src_reg_sel = m.and(&s_src, &as_reg);
    let src_reg2 = m.and(&src_reg_sel, &valid2);
    let src_one = m.and(&s_src, &one_ok);
    let srcv_en = any(&mut m, &[&src_mem, &src_reg2, &src_one, &s_src_idx]);
    let mut srcv_d = mem_rdata.clone();
    srcv_d = m.mux(&src_reg2, &srcv_d, &rf_rs);
    srcv_d = m.mux(&src_one, &srcv_d, &rf_rd);
    m.drive_reg_en(&srcv, &srcv_en, &srcv_d);

    let src_idx_fetch_pre = m.and(&s_src, &as_idx);
    let src_idx_fetch = m.and(&src_idx_fetch_pre, &valid2);
    let mdr_en = m.or(&src_idx_fetch, &s_dst_read);
    m.drive_reg_en(&mdr, &mdr_en, &mem_rdata);

    let mar_d = m.add(&rf_rd, &mem_rdata);
    m.drive_reg_en(&mar, &s_dst_ext, &mar_d);

    m.drive_reg_en(&res, &s_exec, &result);

    // ------------------------------------------------------------------
    // FSM transitions.
    // ------------------------------------------------------------------
    let c_fetch = m.constant(state::FETCH, 3);
    let c_src = m.constant(state::SRC, 3);
    let c_src_idx = m.constant(state::SRC_IDX, 3);
    let c_dst_ext = m.constant(state::DST_EXT, 3);
    let c_dst_read = m.constant(state::DST_READ, 3);
    let c_exec = m.constant(state::EXEC, 3);
    let c_write = m.constant(state::WRITE, 3);

    // From SRC.
    let dst_phase = m.mux(&ad, &c_exec, &c_dst_ext);
    let mut src_next = c_fetch.clone(); // jumps and invalid encodings
    {
        let t = m.mux(&as_idx, &dst_phase, &c_src_idx);
        let valid_two_next = t;
        src_next = m.mux(&valid2, &src_next, &valid_two_next);
        src_next = m.mux(&one_ok, &src_next, &c_exec);
        // fmt_jump overrides back to FETCH.
        src_next = m.mux(&fmt_jump, &src_next, &c_fetch);
    }

    // From EXEC.
    let op2_writes = {
        let no_write = any(&mut m, &[&oh[9], &oh[11]]); // CMP, BIT
        let nw = m.not(&no_write);
        m.and(&valid2, &nw)
    };
    let mem_write_pre = m.and(&op2_writes, &ad);
    let exec_next = m.mux(&mem_write_pre, &c_fetch, &c_write);

    let mut st_next = c_src.clone(); // from FETCH
    st_next = m.mux(&s_src, &st_next, &src_next);
    st_next = m.mux(&s_src_idx, &st_next, &dst_phase);
    st_next = m.mux(&s_dst_ext, &st_next, &c_dst_read);
    st_next = m.mux(&s_dst_read, &st_next, &c_exec);
    st_next = m.mux(&s_exec, &st_next, &exec_next);
    st_next = m.mux(&s_write, &st_next, &c_fetch);
    // Halted: park in FETCH.
    let halt_hold = m.and(&s_fetch, &halted);
    st_next = m.mux(&halt_hold, &st_next, &c_fetch);
    m.drive_reg(&st, &st_next);

    // ------------------------------------------------------------------
    // Register file write port + PC/SR overrides.
    // ------------------------------------------------------------------
    let src_autoinc_pre = m.and(&s_src, &as_inc);
    let src_autoinc = m.and(&src_autoinc_pre, &valid2);
    let nad = m.not(&ad);
    let reg_write_pre = m.and(&op2_writes, &nad);
    let exec_reg_write_sel = m.or(&reg_write_pre, &one_ok);
    let exec_reg_write = m.and(&s_exec, &exec_reg_write_sel);
    let we = m.or(&src_autoinc, &exec_reg_write);
    let waddr = m.mux(&s_exec, &rs, &rd);
    let rs_inc = m.inc(&rf_rs);
    let wdata = m.mux(&s_exec, &rs_inc, &result);

    // PC events.
    let pc_ev = any(&mut m, &[&fetch_go, &src_idx_fetch, &s_dst_ext]);
    let pc_plus1 = m.inc(&r0);

    let flag_sigs = (c_new.clone(), z_new.clone(), n_new.clone(), v_new.clone());
    let pc_sigs = (
        pc_ev.clone(),
        jump_ev.clone(),
        pc_plus1.clone(),
        target.clone(),
    );
    let flags_we_c = flags_we.clone();
    let regs: Vec<Signal> = (0..16).map(|i| rf.register(i).clone()).collect();
    rf.finish_write_with(&mut m, &we, &waddr, &wdata, |m, i, loaded| match i {
        0 => {
            let (pc_ev, jump_ev, pc_plus1, target) = &pc_sigs;
            let jumped = m.mux(jump_ev, loaded, target);
            m.mux(pc_ev, &jumped, pc_plus1)
        }
        2 => {
            let (c_new, z_new, n_new, v_new) = &flag_sigs;
            let cbit = m.mux(&flags_we_c, &loaded.bit_signal(0), c_new);
            let zbit = m.mux(&flags_we_c, &loaded.bit_signal(1), z_new);
            let nbit = m.mux(&flags_we_c, &loaded.bit_signal(2), n_new);
            let vbit = m.mux(&flags_we_c, &loaded.bit_signal(8), v_new);
            let mut bits = vec![cbit.bit(0), zbit.bit(0), nbit.bit(0)];
            bits.extend_from_slice(loaded.slice(3, 8).nets());
            bits.push(vbit.bit(0));
            bits.extend_from_slice(loaded.slice(9, 16).nets());
            Signal::from_nets(bits)
        }
        _ => loaded.clone(),
    });

    // ------------------------------------------------------------------
    // Primary outputs.  The memory buses are qualified by the bus strobe: a
    // memory controller samples the address only in access states and the
    // write data only during WRITE, so unstrobed glitches are not
    // architecturally observable.  The FSM state stays internal.
    // ------------------------------------------------------------------
    let mem_active = any(
        &mut m,
        &[
            &fetch_go,
            &src_mem,
            &src_idx_fetch,
            &s_src_idx,
            &s_dst_ext,
            &s_dst_read,
            &s_write,
        ],
    );
    let addr_gate_bus = Signal::from_nets(vec![mem_active.bit(0); mem_addr.width()]);
    let mem_addr = m.and(&mem_addr, &addr_gate_bus);
    let wdata_gate_bus = Signal::from_nets(vec![s_write.bit(0); mem_wdata.width()]);
    let mem_wdata = m.and(&mem_wdata, &wdata_gate_bus);
    for s in [&mem_addr, &mem_wdata, &mem_we, &halted] {
        m.output(s);
    }

    let (netlist, topo) = m
        .finish()
        .expect("MSP430 core elaborates to a valid netlist");
    let ports = Msp430Ports {
        mem_addr,
        mem_rdata,
        mem_wdata,
        mem_we,
        halted,
        state: st,
        ir,
        regs,
    };
    (netlist, topo, ports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::stats::NetlistStats;

    #[test]
    fn msp430_elaborates_with_expected_state() {
        let (n, topo, ports) = build_msp430();
        let stats = NetlistStats::compute(&n, &topo);
        // 256 RF + 16 IR + 16 SRCV + 16 MAR + 16 MDR + 16 RES + 3 state.
        assert_eq!(stats.num_ffs, 339);
        assert_eq!(ports.regs.len(), 16);
        assert_eq!(ports.mem_addr.width(), 16);
        assert!(stats.num_comb > 1000);
    }

    #[test]
    fn outputs_cover_bus_and_state() {
        let (n, _, ports) = build_msp430();
        for bit in ports
            .mem_addr
            .nets()
            .iter()
            .chain(ports.mem_wdata.nets())
            .chain(ports.mem_we.nets())
        {
            assert!(n.outputs().contains(bit));
        }
        // The FSM state is observable in traces but not a primary output.
        for bit in ports.state.nets() {
            assert!(!n.outputs().contains(bit));
        }
    }
}
