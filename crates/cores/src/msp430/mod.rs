//! The 16-bit MSP430-compatible multi-cycle core.
//!
//! Architectural summary:
//!
//! * 16 × 16-bit registers; `R0` is the program counter, `R2` the status
//!   register (C/Z/N/V flags plus the `CPUOFF` halt bit),
//! * von-Neumann bus: one 16-bit word-addressed memory for code and data,
//! * a 7-state multi-cycle control FSM (fetch, source, source-indexed,
//!   destination-extension, destination-read, execute, write-back),
//! * MSP430 format-I (two-operand), format-II (single-operand) and jump
//!   encodings; word operations only (the `B/W` bit is accepted and
//!   ignored),
//! * addressing modes: register, indexed `x(Rn)`, indirect `@Rn`,
//!   auto-increment `@Rn+`, and immediate `#imm` (`@PC+`).

pub mod asm;
pub mod core;
pub mod isa;
pub mod model;
pub mod programs;
pub mod system;
pub mod text;

pub use asm::Assembler;
pub use core::{build_msp430, Msp430Ports};
pub use isa::{Dst, Instr, JumpCond, Op1, Op2, SrFlags, Src};
pub use model::Msp430Model;
pub use system::Msp430System;
pub use text::parse_asm;
