//! [`DesignHarness`] adapters: a core plus a fixed workload, re-runnable for
//! fault-injection campaigns.

use mate_hafi::DesignHarness;
use mate_netlist::{Netlist, Topology};
use mate_sim::Testbench;

use crate::avr::system::AvrSystem;
use crate::msp430::system::Msp430System;

/// An [`AvrSystem`] bound to one program and data image.
///
/// # Example
///
/// ```
/// use mate_cores::avr::programs;
/// use mate_cores::{AvrWorkload, Termination};
/// use mate_hafi::{golden_run, DesignHarness};
///
/// let workload = AvrWorkload::new(programs::fib(Termination::Loop), vec![]);
/// let golden = golden_run(&workload, 64);
/// assert_eq!(golden.trace.num_cycles(), 64);
/// ```
#[derive(Debug)]
pub struct AvrWorkload {
    sys: AvrSystem,
    program: Vec<u16>,
    dmem: Vec<u8>,
}

impl AvrWorkload {
    /// Elaborates the core and fixes the workload.
    pub fn new(program: Vec<u16>, dmem: Vec<u8>) -> Self {
        Self {
            sys: AvrSystem::new(),
            program,
            dmem,
        }
    }

    /// The underlying system.
    pub fn system(&self) -> &AvrSystem {
        &self.sys
    }
}

impl DesignHarness for AvrWorkload {
    fn netlist(&self) -> &Netlist {
        self.sys.netlist()
    }

    fn topology(&self) -> &Topology {
        self.sys.topology()
    }

    fn testbench(&self) -> Testbench<'_> {
        self.sys.testbench(&self.program, &self.dmem).0
    }
}

/// A [`Msp430System`] bound to one memory image.
///
/// # Example
///
/// ```
/// use mate_cores::msp430::programs;
/// use mate_cores::{Msp430Workload, Termination};
/// use mate_hafi::{golden_run, DesignHarness};
///
/// let workload = Msp430Workload::new(programs::fib(Termination::Loop));
/// let golden = golden_run(&workload, 64);
/// assert_eq!(golden.trace.num_cycles(), 64);
/// ```
#[derive(Debug)]
pub struct Msp430Workload {
    sys: Msp430System,
    image: Vec<u16>,
}

impl Msp430Workload {
    /// Elaborates the core and fixes the memory image.
    pub fn new(image: Vec<u16>) -> Self {
        Self {
            sys: Msp430System::new(),
            image,
        }
    }

    /// The underlying system.
    pub fn system(&self) -> &Msp430System {
        &self.sys
    }
}

impl DesignHarness for Msp430Workload {
    fn netlist(&self) -> &Netlist {
        self.sys.netlist()
    }

    fn topology(&self) -> &Topology {
        self.sys.topology()
    }

    fn testbench(&self) -> Testbench<'_> {
        self.sys.testbench(&self.image).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avr::programs as avr_programs;
    use crate::msp430::programs as msp_programs;
    use crate::Termination;
    use mate_hafi::golden_run;

    #[test]
    fn avr_workload_runs_are_reproducible() {
        let w = AvrWorkload::new(avr_programs::fib(Termination::Loop), vec![]);
        let a = golden_run(&w, 50);
        let b = golden_run(&w, 50);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn msp430_workload_runs_are_reproducible() {
        let w = Msp430Workload::new(msp_programs::conv(Termination::Loop));
        let a = golden_run(&w, 50);
        let b = golden_run(&w, 50);
        assert_eq!(a.trace, b.trace);
    }
}
