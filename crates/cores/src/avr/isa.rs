//! AVR-subset instruction set: encoding and decoding.
//!
//! Instructions are 16-bit words.  The five top bits select the operation;
//! the remaining bits form one of four formats:
//!
//! | format | layout                                  | used by |
//! |--------|-----------------------------------------|---------|
//! | R      | `op[15:11] rd[10:6] rr[5:1] 0`          | MOV/ADD/…/OUT |
//! | I      | `op[15:11] rd[10:8] imm[7:0]` (rd+16)   | LDI/CPI/SUBI/ANDI/ORI |
//! | M      | `op[15:11] r[10:6] ptr[5:4] inc[3] 000` | LD/ST |
//! | B      | `op[15:11] cond[10:8] off[7:0]`         | BR |
//! | J      | `op[15:11] off[10:0]`                   | RJMP |

use std::fmt;

/// Data-pointer register selector for LD/ST.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ptr {
    /// X pointer — register `r26`.
    X,
    /// Y pointer — register `r28`.
    Y,
    /// Z pointer — register `r30`.
    Z,
}

impl Ptr {
    /// The register index backing this pointer.
    pub fn reg(self) -> u8 {
        match self {
            Ptr::X => 26,
            Ptr::Y => 28,
            Ptr::Z => 30,
        }
    }

    fn code(self) -> u16 {
        match self {
            Ptr::X => 0,
            Ptr::Y => 1,
            Ptr::Z => 2,
        }
    }

    fn from_code(code: u16) -> Option<Ptr> {
        match code {
            0 => Some(Ptr::X),
            1 => Some(Ptr::Y),
            2 => Some(Ptr::Z),
            _ => None,
        }
    }
}

/// Branch condition (tested against the SREG flags).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `Z == 1`
    Eq,
    /// `Z == 0`
    Ne,
    /// `C == 1`
    Cs,
    /// `C == 0`
    Cc,
    /// `N == 1`
    Mi,
    /// `N == 0`
    Pl,
    /// `N ^ V == 1` (signed less-than)
    Lt,
    /// `N ^ V == 0` (signed greater-or-equal)
    Ge,
}

impl Cond {
    /// 3-bit condition code.
    pub fn code(self) -> u16 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Cs => 2,
            Cond::Cc => 3,
            Cond::Mi => 4,
            Cond::Pl => 5,
            Cond::Lt => 6,
            Cond::Ge => 7,
        }
    }

    /// Decodes a 3-bit condition code.
    pub fn from_code(code: u16) -> Cond {
        match code & 7 {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Cs,
            3 => Cond::Cc,
            4 => Cond::Mi,
            5 => Cond::Pl,
            6 => Cond::Lt,
            _ => Cond::Ge,
        }
    }

    /// Evaluates the condition against flags.
    pub fn eval(self, f: Flags) -> bool {
        let s = f.n ^ f.v;
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Lt => s,
            Cond::Ge => !s,
        }
    }
}

/// The AVR status flags we model (C, Z, N, V, H).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Carry / borrow.
    pub c: bool,
    /// Zero.
    pub z: bool,
    /// Negative (bit 7 of the result).
    pub n: bool,
    /// Two's-complement overflow.
    pub v: bool,
    /// Half carry (bit 3 carry, for BCD support).
    pub h: bool,
}

impl Flags {
    /// Packs into bit order `C=0, Z=1, N=2, V=3, H=4`.
    pub fn to_bits(self) -> u8 {
        (self.c as u8)
            | (self.z as u8) << 1
            | (self.n as u8) << 2
            | (self.v as u8) << 3
            | (self.h as u8) << 4
    }

    /// Unpacks from [`Flags::to_bits`] order.
    pub fn from_bits(bits: u8) -> Self {
        Self {
            c: bits & 1 != 0,
            z: bits & 2 != 0,
            n: bits & 4 != 0,
            v: bits & 8 != 0,
            h: bits & 16 != 0,
        }
    }
}

/// One decoded instruction of the AVR subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Freeze the pipeline permanently.
    Halt,
    /// `rd ← imm` (rd in 16..=23).
    Ldi {
        /// Destination register (16..=23).
        rd: u8,
        /// Immediate byte.
        imm: u8,
    },
    /// `rd ← rr`.
    Mov {
        /// Destination register.
        rd: u8,
        /// Source register.
        rr: u8,
    },
    /// `rd ← rd + rr`.
    Add {
        /// Destination register.
        rd: u8,
        /// Source register.
        rr: u8,
    },
    /// `rd ← rd + rr + C`.
    Adc {
        /// Destination register.
        rd: u8,
        /// Source register.
        rr: u8,
    },
    /// `rd ← rd − rr`.
    Sub {
        /// Destination register.
        rd: u8,
        /// Source register.
        rr: u8,
    },
    /// `rd ← rd − rr − C`.
    Sbc {
        /// Destination register.
        rd: u8,
        /// Source register.
        rr: u8,
    },
    /// `rd ← rd & rr`.
    And {
        /// Destination register.
        rd: u8,
        /// Source register.
        rr: u8,
    },
    /// `rd ← rd | rr`.
    Or {
        /// Destination register.
        rd: u8,
        /// Source register.
        rr: u8,
    },
    /// `rd ← rd ^ rr`.
    Eor {
        /// Destination register.
        rd: u8,
        /// Source register.
        rr: u8,
    },
    /// Compare: flags of `rd − rr`, result discarded.
    Cp {
        /// Left operand register.
        rd: u8,
        /// Right operand register.
        rr: u8,
    },
    /// Compare with immediate (rd in 16..=23).
    Cpi {
        /// Left operand register (16..=31).
        rd: u8,
        /// Immediate byte.
        imm: u8,
    },
    /// `rd ← rd − imm` (rd in 16..=23).
    Subi {
        /// Destination register (16..=31).
        rd: u8,
        /// Immediate byte.
        imm: u8,
    },
    /// `rd ← rd & imm` (rd in 16..=23).
    Andi {
        /// Destination register (16..=31).
        rd: u8,
        /// Immediate byte.
        imm: u8,
    },
    /// `rd ← rd | imm` (rd in 16..=23).
    Ori {
        /// Destination register (16..=31).
        rd: u8,
        /// Immediate byte.
        imm: u8,
    },
    /// `rd ← rd + 1` (C unchanged).
    Inc {
        /// Destination register.
        rd: u8,
    },
    /// `rd ← rd − 1` (C unchanged).
    Dec {
        /// Destination register.
        rd: u8,
    },
    /// Logical shift right; C gets bit 0.
    Lsr {
        /// Destination register.
        rd: u8,
    },
    /// Rotate right through carry.
    Ror {
        /// Destination register.
        rd: u8,
    },
    /// Arithmetic shift right (sign preserved).
    Asr {
        /// Destination register.
        rd: u8,
    },
    /// `rd ← dmem[ptr]`, optional pointer post-increment.
    Ld {
        /// Destination register.
        rd: u8,
        /// Pointer register selector.
        ptr: Ptr,
        /// Post-increment the pointer register.
        postinc: bool,
    },
    /// `dmem[ptr] ← rr`, optional pointer post-increment.
    St {
        /// Pointer register selector.
        ptr: Ptr,
        /// Post-increment the pointer register.
        postinc: bool,
        /// Source register.
        rr: u8,
    },
    /// Conditional relative branch.
    Br {
        /// Condition.
        cond: Cond,
        /// Signed word offset relative to the following instruction.
        offset: i8,
    },
    /// Unconditional relative jump (11-bit signed offset).
    Rjmp {
        /// Signed word offset relative to the following instruction.
        offset: i16,
    },
    /// Write `rr` to the output port.
    Out {
        /// Source register.
        rr: u8,
    },
}

/// Opcode numbers (bits 15..11).
pub(crate) mod opcode {
    pub const NOP: u16 = 0;
    pub const LDI: u16 = 1;
    pub const MOV: u16 = 2;
    pub const ADD: u16 = 3;
    pub const ADC: u16 = 4;
    pub const SUB: u16 = 5;
    pub const SBC: u16 = 6;
    pub const AND: u16 = 7;
    pub const OR: u16 = 8;
    pub const EOR: u16 = 9;
    pub const CP: u16 = 10;
    pub const CPI: u16 = 11;
    pub const SUBI: u16 = 12;
    pub const ANDI: u16 = 13;
    pub const ORI: u16 = 14;
    pub const INC: u16 = 15;
    pub const DEC: u16 = 16;
    pub const LSR: u16 = 17;
    pub const ROR: u16 = 18;
    pub const ASR: u16 = 19;
    pub const LD: u16 = 20;
    pub const ST: u16 = 21;
    pub const BR: u16 = 22;
    pub const RJMP: u16 = 23;
    pub const OUT: u16 = 24;
    pub const HALT: u16 = 25;
}

fn r_format(op: u16, rd: u8, rr: u8) -> u16 {
    assert!(rd < 32 && rr < 32, "register out of range");
    op << 11 | u16::from(rd) << 6 | u16::from(rr) << 1
}

fn i_format(op: u16, rd: u8, imm: u8) -> u16 {
    assert!(
        (16..24).contains(&rd),
        "immediate ops use r16..r23 (3-bit field), got r{rd}"
    );
    op << 11 | u16::from(rd - 16) << 8 | u16::from(imm)
}

fn m_format(op: u16, r: u8, ptr: Ptr, inc: bool) -> u16 {
    assert!(r < 32, "register out of range");
    op << 11 | u16::from(r) << 6 | ptr.code() << 4 | (inc as u16) << 3
}

impl Instr {
    /// Encodes the instruction into its 16-bit word.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range register numbers or offsets (assembler bugs).
    pub fn encode(self) -> u16 {
        use opcode::*;
        match self {
            Instr::Nop => NOP << 11,
            Instr::Halt => HALT << 11,
            Instr::Ldi { rd, imm } => i_format(LDI, rd, imm),
            Instr::Mov { rd, rr } => r_format(MOV, rd, rr),
            Instr::Add { rd, rr } => r_format(ADD, rd, rr),
            Instr::Adc { rd, rr } => r_format(ADC, rd, rr),
            Instr::Sub { rd, rr } => r_format(SUB, rd, rr),
            Instr::Sbc { rd, rr } => r_format(SBC, rd, rr),
            Instr::And { rd, rr } => r_format(AND, rd, rr),
            Instr::Or { rd, rr } => r_format(OR, rd, rr),
            Instr::Eor { rd, rr } => r_format(EOR, rd, rr),
            Instr::Cp { rd, rr } => r_format(CP, rd, rr),
            Instr::Cpi { rd, imm } => i_format(CPI, rd, imm),
            Instr::Subi { rd, imm } => i_format(SUBI, rd, imm),
            Instr::Andi { rd, imm } => i_format(ANDI, rd, imm),
            Instr::Ori { rd, imm } => i_format(ORI, rd, imm),
            Instr::Inc { rd } => r_format(INC, rd, 0),
            Instr::Dec { rd } => r_format(DEC, rd, 0),
            Instr::Lsr { rd } => r_format(LSR, rd, 0),
            Instr::Ror { rd } => r_format(ROR, rd, 0),
            Instr::Asr { rd } => r_format(ASR, rd, 0),
            Instr::Ld { rd, ptr, postinc } => m_format(LD, rd, ptr, postinc),
            Instr::St { ptr, postinc, rr } => m_format(ST, rr, ptr, postinc),
            Instr::Br { cond, offset } => BR << 11 | cond.code() << 8 | u16::from(offset as u8),
            Instr::Rjmp { offset } => {
                assert!(
                    (-1024..1024).contains(&offset),
                    "rjmp offset {offset} out of 11-bit range"
                );
                RJMP << 11 | (offset as u16 & 0x7FF)
            }
            Instr::Out { rr } => r_format(OUT, rr, 0),
        }
    }

    /// Decodes a 16-bit word; unknown opcodes decode to `None`.
    pub fn decode(word: u16) -> Option<Instr> {
        use opcode::*;
        let op = word >> 11;
        let rd = ((word >> 6) & 0x1F) as u8;
        let rr = ((word >> 1) & 0x1F) as u8;
        let rd_i = ((word >> 8) & 0x7) as u8 + 16;
        let imm = (word & 0xFF) as u8;
        Some(match op {
            NOP => Instr::Nop,
            HALT => Instr::Halt,
            LDI => Instr::Ldi { rd: rd_i, imm },
            MOV => Instr::Mov { rd, rr },
            ADD => Instr::Add { rd, rr },
            ADC => Instr::Adc { rd, rr },
            SUB => Instr::Sub { rd, rr },
            SBC => Instr::Sbc { rd, rr },
            AND => Instr::And { rd, rr },
            OR => Instr::Or { rd, rr },
            EOR => Instr::Eor { rd, rr },
            CP => Instr::Cp { rd, rr },
            CPI => Instr::Cpi { rd: rd_i, imm },
            SUBI => Instr::Subi { rd: rd_i, imm },
            ANDI => Instr::Andi { rd: rd_i, imm },
            ORI => Instr::Ori { rd: rd_i, imm },
            INC => Instr::Inc { rd },
            DEC => Instr::Dec { rd },
            LSR => Instr::Lsr { rd },
            ROR => Instr::Ror { rd },
            ASR => Instr::Asr { rd },
            LD => Instr::Ld {
                rd,
                ptr: Ptr::from_code((word >> 4) & 3)?,
                postinc: word & 8 != 0,
            },
            ST => Instr::St {
                ptr: Ptr::from_code((word >> 4) & 3)?,
                postinc: word & 8 != 0,
                rr: rd,
            },
            BR => Instr::Br {
                cond: Cond::from_code((word >> 8) & 7),
                offset: imm as i8,
            },
            RJMP => {
                let raw = word & 0x7FF;
                let offset = if raw & 0x400 != 0 {
                    (raw | 0xF800) as i16
                } else {
                    raw as i16
                };
                Instr::Rjmp { offset }
            }
            OUT => Instr::Out { rr: rd },
            _ => return None,
        })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instrs() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ldi { rd: 16, imm: 0xAB },
            Instr::Ldi { rd: 23, imm: 0x01 },
            Instr::Mov { rd: 0, rr: 31 },
            Instr::Add { rd: 5, rr: 6 },
            Instr::Adc { rd: 31, rr: 0 },
            Instr::Sub { rd: 1, rr: 2 },
            Instr::Sbc { rd: 3, rr: 4 },
            Instr::And { rd: 7, rr: 8 },
            Instr::Or { rd: 9, rr: 10 },
            Instr::Eor { rd: 11, rr: 11 },
            Instr::Cp { rd: 12, rr: 13 },
            Instr::Cpi { rd: 17, imm: 42 },
            Instr::Subi { rd: 18, imm: 1 },
            Instr::Andi { rd: 19, imm: 0x0F },
            Instr::Ori { rd: 20, imm: 0x80 },
            Instr::Inc { rd: 14 },
            Instr::Dec { rd: 15 },
            Instr::Lsr { rd: 21 },
            Instr::Ror { rd: 22 },
            Instr::Asr { rd: 24 },
            Instr::Out { rr: 25 },
            Instr::Rjmp { offset: -3 },
            Instr::Rjmp { offset: 1023 },
            Instr::Rjmp { offset: -1024 },
        ];
        for ptr in [Ptr::X, Ptr::Y, Ptr::Z] {
            for postinc in [false, true] {
                v.push(Instr::Ld {
                    rd: 4,
                    ptr,
                    postinc,
                });
                v.push(Instr::St {
                    ptr,
                    postinc,
                    rr: 28,
                });
            }
        }
        for cond in [
            Cond::Eq,
            Cond::Ne,
            Cond::Cs,
            Cond::Cc,
            Cond::Mi,
            Cond::Pl,
            Cond::Lt,
            Cond::Ge,
        ] {
            v.push(Instr::Br { cond, offset: -128 });
            v.push(Instr::Br { cond, offset: 127 });
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in all_instrs() {
            let w = i.encode();
            assert_eq!(Instr::decode(w), Some(i), "word {w:#06x}");
        }
    }

    #[test]
    fn nop_is_word_zero() {
        assert_eq!(Instr::Nop.encode(), 0);
        assert_eq!(Instr::decode(0), Some(Instr::Nop));
    }

    #[test]
    fn unknown_opcode_decodes_none() {
        assert_eq!(Instr::decode(31 << 11), None);
        // LD with reserved pointer code 3.
        assert_eq!(Instr::decode(opcode::LD << 11 | 3 << 4), None);
    }

    #[test]
    #[should_panic(expected = "r16..r23")]
    fn ldi_low_register_panics() {
        Instr::Ldi { rd: 3, imm: 0 }.encode();
    }

    #[test]
    #[should_panic(expected = "11-bit range")]
    fn rjmp_offset_range_checked() {
        Instr::Rjmp { offset: 1024 }.encode();
    }

    #[test]
    fn cond_eval_matrix() {
        let f = Flags {
            c: true,
            z: false,
            n: true,
            v: false,
            h: false,
        };
        assert!(!Cond::Eq.eval(f));
        assert!(Cond::Ne.eval(f));
        assert!(Cond::Cs.eval(f));
        assert!(!Cond::Cc.eval(f));
        assert!(Cond::Mi.eval(f));
        assert!(!Cond::Pl.eval(f));
        assert!(Cond::Lt.eval(f)); // S = N^V = 1
        assert!(!Cond::Ge.eval(f));
    }

    #[test]
    fn flags_pack_roundtrip() {
        for bits in 0..32u8 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn ptr_registers() {
        assert_eq!(Ptr::X.reg(), 26);
        assert_eq!(Ptr::Y.reg(), 28);
        assert_eq!(Ptr::Z.reg(), 30);
    }
}
