//! Gate-level elaboration of the two-stage AVR-compatible core.

use mate_netlist::{Netlist, Topology};
use mate_rtl::{ModuleBuilder, RegisterFile, Signal};

use super::isa::opcode;

/// Handles to the architecturally interesting buses of the elaborated core.
///
/// All signals reference nets of the returned netlist; `imem_*`/`dmem_*` form
/// the Harvard memory interface the simulation harness binds memories to.
#[derive(Clone, Debug)]
pub struct AvrPorts {
    /// Instruction-memory word address (12 bits, output).
    pub imem_addr: Signal,
    /// Instruction-memory read data (16 bits, input).
    pub imem_data: Signal,
    /// Data-memory address (8 bits, output).
    pub dmem_addr: Signal,
    /// Data-memory write data (8 bits, output).
    pub dmem_wdata: Signal,
    /// Data-memory write enable (1 bit, output).
    pub dmem_we: Signal,
    /// Data-memory read data (8 bits, input).
    pub dmem_rdata: Signal,
    /// Output port register (8 bits, output).
    pub port_out: Signal,
    /// High during the execute cycle of an `OUT` (1 bit, output).
    pub port_we: Signal,
    /// Pipeline frozen after `HALT` (1 bit, output).
    pub halted: Signal,
    /// Program counter (12 bits; the flip-flops behind `imem_addr`).
    pub pc: Signal,
    /// Instruction register of the EX stage (16 bits).
    pub ir: Signal,
    /// Status flags `[C, Z, N, V, H]` (5 flip-flops).
    pub sreg: Signal,
    /// Q buses of the 32 general-purpose registers.
    pub regs: Vec<Signal>,
}

/// Ors a list of 1-bit signals.
fn any(m: &mut ModuleBuilder, sigs: &[&Signal]) -> Signal {
    assert!(!sigs.is_empty());
    let mut bits = Vec::with_capacity(sigs.len());
    for s in sigs {
        assert_eq!(s.width(), 1, "`any` combines 1-bit signals");
        bits.push(s.bit(0));
    }
    let bundle = Signal::from_nets(bits);
    m.reduce_or(&bundle)
}

/// Elaborates the AVR-compatible core into a gate-level netlist.
///
/// See the module documentation of [`crate::avr`] for the architecture.
/// The returned topology is validated; the ports expose every bus the
/// harness, the MATE analysis, and the fault-injection campaigns need.
///
/// # Panics
///
/// Never panics for the fixed architecture parameters used here.
pub fn build_avr() -> (Netlist, Topology, AvrPorts) {
    let mut m = ModuleBuilder::new("avr8");

    // External buses.
    let imem_data = m.input("imem_data", 16);
    let dmem_rdata = m.input("dmem_rdata", 8);

    // Architectural state.
    let pc = m.reg("pc", 12);
    let pc_ex = m.reg("pc_ex", 12);
    let ir = m.reg("ir", 16);
    let flag_c = m.reg("flag_c", 1);
    let flag_z = m.reg("flag_z", 1);
    let flag_n = m.reg("flag_n", 1);
    let flag_v = m.reg("flag_v", 1);
    let flag_h = m.reg("flag_h", 1);
    let halted = m.reg("halted", 1);
    let port = m.reg("port", 8);
    let rf = RegisterFile::new(&mut m, "r", 32, 8);

    // ------------------------------------------------------------------
    // Decode (EX stage, from IR).
    // ------------------------------------------------------------------
    let op = ir.slice(11, 16);
    let onehot = m.decoder(&op);
    let is = |o: u16| -> Signal { onehot[o as usize].clone() };

    let rd_r = ir.slice(6, 11);
    let rr_r = ir.slice(1, 6);
    let imm = ir.slice(0, 8);
    // Immediate-format destination register: r16 + IR[10:8].
    let one = m.one();
    let zero = m.zero();
    let rd_i = Signal::from_nets(vec![
        ir.bit(8),
        ir.bit(9),
        ir.bit(10),
        zero.bit(0),
        one.bit(0),
    ]);

    let is_ifmt = any(
        &mut m,
        &[
            &is(opcode::LDI),
            &is(opcode::CPI),
            &is(opcode::SUBI),
            &is(opcode::ANDI),
            &is(opcode::ORI),
        ],
    );
    let rd_sel = m.mux(&is_ifmt, &rd_r, &rd_i);

    // Register-file read ports.
    let a_val = rf.read(&mut m, &rd_sel);
    let b_val = rf.read(&mut m, &rr_r);

    // ------------------------------------------------------------------
    // ALU.
    // ------------------------------------------------------------------
    let is_inc = is(opcode::INC);
    let is_dec = is(opcode::DEC);
    let is_adc = is(opcode::ADC);
    let is_sbc = is(opcode::SBC);
    let is_add = is(opcode::ADD);

    let b_imm = m.mux(&is_ifmt, &b_val, &imm);
    let zero8 = m.constant(0, 8);
    let use_zero_b = any(&mut m, &[&is_inc, &is_dec]);
    let b_eff = m.mux(&use_zero_b, &b_imm, &zero8);

    // Subtract-like ops invert B (DEC uses B=0 inverted = 0xFF, i.e. -1).
    let is_sub_c = any(
        &mut m,
        &[
            &is(opcode::SUB),
            &is(opcode::SBC),
            &is(opcode::CP),
            &is(opcode::CPI),
            &is(opcode::SUBI),
        ],
    );
    let invert_b = any(&mut m, &[&is_sub_c, &is_dec]);
    let b_not = m.not(&b_eff);
    let b_alu = m.mux(&invert_b, &b_eff, &b_not);

    // Carry-in: ADC -> C; SBC -> !C; SUB/CP/CPI/SUBI/INC -> 1; ADD/DEC -> 0.
    let not_c = m.not(&flag_c);
    let adc_cin = m.and(&is_adc, &flag_c);
    let sbc_cin = m.and(&is_sbc, &not_c);
    let is_sub_plain = any(
        &mut m,
        &[
            &is(opcode::SUB),
            &is(opcode::CP),
            &is(opcode::CPI),
            &is(opcode::SUBI),
            &is_inc,
        ],
    );
    let cin = any(&mut m, &[&adc_cin, &sbc_cin, &is_sub_plain]);

    let (sum, carries) = m.adder(&a_val, &b_alu, &cin);
    let c7 = carries.bit_signal(7);
    let c6 = carries.bit_signal(6);
    let c3 = carries.bit_signal(3);

    // Logic unit.
    let and_r = m.and(&a_val, &b_imm);
    let or_r = m.or(&a_val, &b_imm);
    let xor_r = m.xor(&a_val, &b_imm);
    let is_and_like = any(&mut m, &[&is(opcode::AND), &is(opcode::ANDI)]);
    let is_or_like = any(&mut m, &[&is(opcode::OR), &is(opcode::ORI)]);
    let is_eor = is(opcode::EOR);
    let is_logic = any(&mut m, &[&is_and_like, &is_or_like, &is_eor]);
    let logic_r = {
        let t = m.mux(&is_or_like, &xor_r, &or_r);
        m.mux(&is_and_like, &t, &and_r)
    };

    // Shifter (right shifts; LSL is an ADD alias).
    let is_lsr = is(opcode::LSR);
    let is_ror = is(opcode::ROR);
    let is_asr = is(opcode::ASR);
    let is_shift = any(&mut m, &[&is_lsr, &is_ror, &is_asr]);
    let ror_in = m.and(&is_ror, &flag_c);
    let a_msb = a_val.bit_signal(7);
    let asr_in = m.and(&is_asr, &a_msb);
    let shift_msb = m.or(&ror_in, &asr_in);
    let shr = a_val.slice(1, 8).concat(&shift_msb);

    // Result selection.
    let is_mov = is(opcode::MOV);
    let is_ldi = is(opcode::LDI);
    let is_ld = is(opcode::LD);
    let mut result = sum.clone();
    result = m.mux(&is_logic, &result, &logic_r);
    result = m.mux(&is_shift, &result, &shr);
    result = m.mux(&is_mov, &result, &b_val);
    result = m.mux(&is_ldi, &result, &imm);
    result = m.mux(&is_ld, &result, &dmem_rdata);

    // ------------------------------------------------------------------
    // Flags.
    // ------------------------------------------------------------------
    let is_arith_c = any(&mut m, &[&is_add, &is_adc, &is_sub_c]);
    let res_zero = m.is_zero(&result);
    let res_n = result.bit_signal(7);

    // C: shifts take bit 0 of the operand; subtraction inverts the carry.
    let a_lsb = a_val.bit_signal(0);
    let c_arith = {
        let nc7 = m.not(&c7);
        m.mux(&is_sub_c, &c7, &nc7)
    };
    let c_new = m.mux(&is_shift, &c_arith, &a_lsb);
    let c_we = any(&mut m, &[&is_arith_c, &is_shift]);

    // Z: sticky for SBC.
    let z_sticky = m.and(&res_zero, &flag_z);
    let z_new = m.mux(&is_sbc, &res_zero, &z_sticky);

    // V: arithmetic c7^c6; INC/DEC detect 0x80/0x7F; logic 0; shifts N^C.
    let v_arith = m.xor(&c7, &c6);
    let k80 = m.constant(0x80, 8);
    let k7f = m.constant(0x7F, 8);
    let eq80 = m.eq(&result, &k80);
    let eq7f = m.eq(&result, &k7f);
    let v_shift = m.xor(&res_n, &c_new);
    let mut v_new = v_arith;
    v_new = m.mux(&is_inc, &v_new, &eq80);
    v_new = m.mux(&is_dec, &v_new, &eq7f);
    v_new = m.mux(&is_shift, &v_new, &v_shift);
    let zero1 = m.zero();
    v_new = m.mux(&is_logic, &v_new, &zero1);

    // H: only arithmetic; subtraction inverts.
    let h_new = {
        let nc3 = m.not(&c3);
        m.mux(&is_sub_c, &c3, &nc3)
    };
    let h_we = is_arith_c.clone();

    let zn_we = any(
        &mut m,
        &[&is_arith_c, &is_logic, &is_inc, &is_dec, &is_shift],
    );

    m.drive_reg_en(&flag_c, &c_we, &c_new);
    m.drive_reg_en(&flag_z, &zn_we, &z_new);
    m.drive_reg_en(&flag_n, &zn_we, &res_n);
    m.drive_reg_en(&flag_v, &zn_we, &v_new);
    m.drive_reg_en(&flag_h, &h_we, &h_new);

    // ------------------------------------------------------------------
    // Branches and next PC.
    // ------------------------------------------------------------------
    let is_br = is(opcode::BR);
    let is_rjmp = is(opcode::RJMP);
    let is_halt = is(opcode::HALT);
    let cond = ir.slice(8, 11);
    let s_flag = m.xor(&flag_n, &flag_v);
    let nz = m.not(&flag_z);
    let ncf = m.not(&flag_c);
    let nn = m.not(&flag_n);
    let ns = m.not(&s_flag);
    let cond_val = m.mux_tree(
        &cond,
        &[
            flag_z.clone(),
            nz,
            flag_c.clone(),
            ncf,
            flag_n.clone(),
            nn,
            s_flag,
            ns,
        ],
    );
    let br_taken = m.and(&is_br, &cond_val);
    let taken = m.or(&br_taken, &is_rjmp);

    let off8 = m.sext(&imm, 12);
    let off11 = m.sext(&ir.slice(0, 11), 12);
    let offset = m.mux(&is_rjmp, &off8, &off11);
    let pc_ex1 = m.inc(&pc_ex);
    let target = m.add(&pc_ex1, &offset);

    let halted_next = m.or(&halted, &is_halt);
    m.drive_reg(&halted, &halted_next);

    let pc_plus1 = m.inc(&pc);
    let pc_seq = m.mux(&taken, &pc_plus1, &target);
    let pc_next = m.mux(&halted_next, &pc_seq, &pc);
    m.drive_reg(&pc, &pc_next);

    let squash = any(&mut m, &[&taken, &is_halt, &halted]);
    let nop16 = m.constant(0, 16);
    let ir_next = m.mux(&squash, &imem_data, &nop16);
    m.drive_reg(&ir, &ir_next);

    let pc_ex_next = m.mux(&halted, &pc, &pc_ex);
    m.drive_reg(&pc_ex, &pc_ex_next);

    // ------------------------------------------------------------------
    // Data memory and port.
    // ------------------------------------------------------------------
    let ptr_code = ir.slice(4, 6);
    let ptr_onehot = m.decoder(&ptr_code);
    let (is_x, is_y, is_z) = (
        ptr_onehot[0].clone(),
        ptr_onehot[1].clone(),
        ptr_onehot[2].clone(),
    );
    let q26 = rf.register(26).clone();
    let q28 = rf.register(28).clone();
    let q30 = rf.register(30).clone();
    let mut dmem_addr = q26.clone();
    dmem_addr = m.mux(&is_y, &dmem_addr, &q28);
    dmem_addr = m.mux(&is_z, &dmem_addr, &q30);
    let is_st = is(opcode::ST);
    let dmem_we = is_st.clone();
    let dmem_wdata = a_val.clone();

    let is_out = is(opcode::OUT);
    m.drive_reg_en(&port, &is_out, &a_val);

    // ------------------------------------------------------------------
    // Register-file write port with pointer post-increment overrides.
    // ------------------------------------------------------------------
    let rf_we = any(
        &mut m,
        &[
            &is_add,
            &is_adc,
            &is(opcode::SUB),
            &is_sbc,
            &is(opcode::AND),
            &is(opcode::OR),
            &is_eor,
            &is(opcode::SUBI),
            &is(opcode::ANDI),
            &is(opcode::ORI),
            &is_inc,
            &is_dec,
            &is_lsr,
            &is_ror,
            &is_asr,
            &is_mov,
            &is_ldi,
            &is_ld,
        ],
    );
    let is_mem = any(&mut m, &[&is_ld, &is_st]);
    let postinc = ir.bit_signal(3);
    let pi_en = m.and(&is_mem, &postinc);
    let pi_x = m.and(&pi_en, &is_x);
    let pi_y = m.and(&pi_en, &is_y);
    let pi_z = m.and(&pi_en, &is_z);

    let regs: Vec<Signal> = (0..32).map(|i| rf.register(i).clone()).collect();
    rf.finish_write_with(&mut m, &rf_we, &rd_sel, &result, |m, i, loaded| {
        let (ov, q) = match i {
            26 => (&pi_x, &q26),
            28 => (&pi_y, &q28),
            30 => (&pi_z, &q30),
            _ => return loaded.clone(),
        };
        let incremented = m.inc(q);
        m.mux(ov, loaded, &incremented)
    });

    // ------------------------------------------------------------------
    // Primary outputs.  The data-side buses are qualified by their strobes
    // (`LD`/`ST` for the address, `ST`/`OUT` for write data): a memory
    // controller samples them only when strobed, so unstrobed glitches are
    // not architecturally observable.
    // ------------------------------------------------------------------
    let addr_gate = is_mem.clone();
    let addr_gate_bus = Signal::from_nets(vec![addr_gate.bit(0); dmem_addr.width()]);
    let dmem_addr = m.and(&dmem_addr, &addr_gate_bus);
    let wdata_strobe = m.or(&is_st, &is_out);
    let wdata_gate_bus = Signal::from_nets(vec![wdata_strobe.bit(0); dmem_wdata.width()]);
    let dmem_wdata = m.and(&dmem_wdata, &wdata_gate_bus);
    for s in [
        &pc,
        &dmem_addr,
        &dmem_wdata,
        &dmem_we,
        &port,
        &halted,
        &is_out,
    ] {
        m.output(s);
    }

    let sreg = Signal::from_nets(vec![
        flag_c.bit(0),
        flag_z.bit(0),
        flag_n.bit(0),
        flag_v.bit(0),
        flag_h.bit(0),
    ]);

    let (netlist, topo) = m.finish().expect("AVR core elaborates to a valid netlist");
    let ports = AvrPorts {
        imem_addr: pc.clone(),
        imem_data,
        dmem_addr,
        dmem_wdata,
        dmem_we,
        dmem_rdata,
        port_out: port,
        port_we: is_out,
        halted,
        pc,
        ir,
        sreg,
        regs,
    };
    (netlist, topo, ports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_netlist::stats::NetlistStats;

    #[test]
    fn avr_elaborates_with_expected_state() {
        let (n, topo, ports) = build_avr();
        let stats = NetlistStats::compute(&n, &topo);
        // 256 RF + 12 PC + 12 PC_EX + 16 IR + 5 flags + 1 halted + 8 port.
        assert_eq!(stats.num_ffs, 310);
        assert_eq!(ports.regs.len(), 32);
        assert_eq!(ports.imem_addr.width(), 12);
        assert_eq!(ports.dmem_addr.width(), 8);
        assert!(stats.num_comb > 1000, "pipeline logic is non-trivial");
    }

    #[test]
    fn outputs_cover_buses() {
        let (n, _, ports) = build_avr();
        for bit in ports
            .dmem_addr
            .nets()
            .iter()
            .chain(ports.dmem_wdata.nets())
            .chain(ports.halted.nets())
            .chain(ports.pc.nets())
        {
            assert!(n.outputs().contains(bit));
        }
    }
}
