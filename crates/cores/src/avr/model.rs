//! ISA-level reference interpreter for the AVR subset.
//!
//! The gate-level core is cross-checked against this model instruction by
//! instruction; it is also the "ISA level" of the paper's cross-layer story
//! (Section 6.3): faults in ISA-visible state can be handled by
//! software-level fault injection, which is why the paper's preferred fault
//! set excludes the register file.

use super::isa::{Flags, Instr};

/// Architectural state and interpreter for the AVR subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvrModel {
    /// General-purpose registers `r0..r31`.
    pub regs: [u8; 32],
    /// 12-bit program counter (instruction-word address).
    pub pc: u16,
    /// Status flags.
    pub flags: Flags,
    /// Set once `HALT` executes.
    pub halted: bool,
    /// 256-byte data memory.
    pub dmem: Vec<u8>,
    /// Current output-port value.
    pub port: u8,
    /// Every value written to the port, in order.
    pub port_log: Vec<u8>,
    program: Vec<u16>,
}

impl AvrModel {
    /// Creates a model executing `program` with zeroed registers and memory.
    pub fn new(program: &[u16]) -> Self {
        Self {
            regs: [0; 32],
            pc: 0,
            flags: Flags::default(),
            halted: false,
            dmem: vec![0; 256],
            port: 0,
            port_log: Vec::new(),
            program: program.to_vec(),
        }
    }

    /// Pre-loads data memory starting at address 0.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds 256 bytes.
    pub fn load_dmem(&mut self, data: &[u8]) {
        assert!(data.len() <= self.dmem.len(), "data memory overflow");
        self.dmem[..data.len()].copy_from_slice(data);
    }

    fn fetch(&self) -> Instr {
        self.program
            .get(self.pc as usize)
            .and_then(|&w| Instr::decode(w))
            .unwrap_or(Instr::Nop)
    }

    /// ALU addition matching the hardware: returns result and flags computed
    /// from the per-bit carries.
    fn alu_add(a: u8, b: u8, cin: bool) -> (u8, Flags) {
        let wide = u16::from(a) + u16::from(b) + u16::from(cin as u8);
        let r = wide as u8;
        let c7 = wide > 0xFF;
        let c6 = ((a & 0x7F) as u16 + (b & 0x7F) as u16 + cin as u16) > 0x7F;
        let c3 = ((a & 0xF) + (b & 0xF) + cin as u8) > 0xF;
        (
            r,
            Flags {
                c: c7,
                z: r == 0,
                n: r & 0x80 != 0,
                v: c7 != c6,
                h: c3,
            },
        )
    }

    /// Subtraction `a - b - borrow` via `a + !b + !borrow`; AVR flag
    /// polarity (C and H are borrows).
    fn alu_sub(a: u8, b: u8, borrow: bool) -> (u8, Flags) {
        let (r, f) = Self::alu_add(a, !b, !borrow);
        (
            r,
            Flags {
                c: !f.c,
                h: !f.h,
                ..f
            },
        )
    }

    fn logic_flags(&self, r: u8) -> Flags {
        Flags {
            c: self.flags.c,
            z: r == 0,
            n: r & 0x80 != 0,
            v: false,
            h: self.flags.h,
        }
    }

    /// Executes one instruction.  Does nothing when halted.
    pub fn step(&mut self) {
        if self.halted {
            return;
        }
        let instr = self.fetch();
        self.pc = (self.pc + 1) & 0xFFF;
        match instr {
            Instr::Nop => {}
            Instr::Halt => self.halted = true,
            Instr::Ldi { rd, imm } => self.regs[rd as usize] = imm,
            Instr::Mov { rd, rr } => self.regs[rd as usize] = self.regs[rr as usize],
            Instr::Add { rd, rr } => {
                let (r, f) = Self::alu_add(self.regs[rd as usize], self.regs[rr as usize], false);
                self.regs[rd as usize] = r;
                self.flags = f;
            }
            Instr::Adc { rd, rr } => {
                let (r, f) =
                    Self::alu_add(self.regs[rd as usize], self.regs[rr as usize], self.flags.c);
                self.regs[rd as usize] = r;
                self.flags = f;
            }
            Instr::Sub { rd, rr } => {
                let (r, f) = Self::alu_sub(self.regs[rd as usize], self.regs[rr as usize], false);
                self.regs[rd as usize] = r;
                self.flags = f;
            }
            Instr::Sbc { rd, rr } => {
                let (r, mut f) =
                    Self::alu_sub(self.regs[rd as usize], self.regs[rr as usize], self.flags.c);
                // AVR SBC: Z is sticky (only ever cleared).
                f.z &= self.flags.z;
                self.regs[rd as usize] = r;
                self.flags = f;
            }
            Instr::And { rd, rr } => {
                let r = self.regs[rd as usize] & self.regs[rr as usize];
                self.flags = self.logic_flags(r);
                self.regs[rd as usize] = r;
            }
            Instr::Or { rd, rr } => {
                let r = self.regs[rd as usize] | self.regs[rr as usize];
                self.flags = self.logic_flags(r);
                self.regs[rd as usize] = r;
            }
            Instr::Eor { rd, rr } => {
                let r = self.regs[rd as usize] ^ self.regs[rr as usize];
                self.flags = self.logic_flags(r);
                self.regs[rd as usize] = r;
            }
            Instr::Cp { rd, rr } => {
                let (_, f) = Self::alu_sub(self.regs[rd as usize], self.regs[rr as usize], false);
                self.flags = f;
            }
            Instr::Cpi { rd, imm } => {
                let (_, f) = Self::alu_sub(self.regs[rd as usize], imm, false);
                self.flags = f;
            }
            Instr::Subi { rd, imm } => {
                let (r, f) = Self::alu_sub(self.regs[rd as usize], imm, false);
                self.regs[rd as usize] = r;
                self.flags = f;
            }
            Instr::Andi { rd, imm } => {
                let r = self.regs[rd as usize] & imm;
                self.flags = self.logic_flags(r);
                self.regs[rd as usize] = r;
            }
            Instr::Ori { rd, imm } => {
                let r = self.regs[rd as usize] | imm;
                self.flags = self.logic_flags(r);
                self.regs[rd as usize] = r;
            }
            Instr::Inc { rd } => {
                let r = self.regs[rd as usize].wrapping_add(1);
                self.flags = Flags {
                    c: self.flags.c,
                    z: r == 0,
                    n: r & 0x80 != 0,
                    v: r == 0x80,
                    h: self.flags.h,
                };
                self.regs[rd as usize] = r;
            }
            Instr::Dec { rd } => {
                let r = self.regs[rd as usize].wrapping_sub(1);
                self.flags = Flags {
                    c: self.flags.c,
                    z: r == 0,
                    n: r & 0x80 != 0,
                    v: r == 0x7F,
                    h: self.flags.h,
                };
                self.regs[rd as usize] = r;
            }
            Instr::Lsr { rd } => self.shift(rd, false, false),
            Instr::Ror { rd } => self.shift(rd, self.flags.c, false),
            Instr::Asr { rd } => self.shift(rd, false, true),
            Instr::Ld { rd, ptr, postinc } => {
                let p = ptr.reg() as usize;
                let addr = self.regs[p];
                self.regs[rd as usize] = self.dmem[addr as usize];
                if postinc {
                    self.regs[p] = addr.wrapping_add(1);
                }
            }
            Instr::St { ptr, postinc, rr } => {
                let p = ptr.reg() as usize;
                let addr = self.regs[p];
                self.dmem[addr as usize] = self.regs[rr as usize];
                if postinc {
                    self.regs[p] = addr.wrapping_add(1);
                }
            }
            Instr::Br { cond, offset } => {
                if cond.eval(self.flags) {
                    self.pc = self.pc.wrapping_add(offset as u16) & 0xFFF;
                }
            }
            Instr::Rjmp { offset } => {
                self.pc = self.pc.wrapping_add(offset as u16) & 0xFFF;
            }
            Instr::Out { rr } => {
                self.port = self.regs[rr as usize];
                self.port_log.push(self.port);
            }
        }
    }

    fn shift(&mut self, rd: u8, msb_in: bool, arithmetic: bool) {
        let a = self.regs[rd as usize];
        let top = if arithmetic {
            a & 0x80
        } else {
            (msb_in as u8) << 7
        };
        let r = (a >> 1) | top;
        let c = a & 1 != 0;
        let n = r & 0x80 != 0;
        self.flags = Flags {
            c,
            z: r == 0,
            n,
            v: n != c,
            h: self.flags.h,
        };
        self.regs[rd as usize] = r;
    }

    /// Runs until `HALT` or at most `max_steps` instructions.
    ///
    /// Returns the number of executed instructions.
    pub fn run(&mut self, max_steps: usize) -> usize {
        for step in 0..max_steps {
            if self.halted {
                return step;
            }
            self.step();
        }
        max_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avr::isa::{Cond, Ptr};

    fn run(program: &[Instr]) -> AvrModel {
        let words: Vec<u16> = program.iter().map(|i| i.encode()).collect();
        let mut m = AvrModel::new(&words);
        m.run(10_000);
        m
    }

    #[test]
    fn ldi_mov_add() {
        let m = run(&[
            Instr::Ldi { rd: 16, imm: 7 },
            Instr::Ldi { rd: 17, imm: 5 },
            Instr::Mov { rd: 0, rr: 16 },
            Instr::Add { rd: 0, rr: 17 },
            Instr::Halt,
        ]);
        assert_eq!(m.regs[0], 12);
        assert!(m.halted);
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let m = run(&[
            Instr::Ldi { rd: 16, imm: 0x7F },
            Instr::Ldi { rd: 17, imm: 0x01 },
            Instr::Add { rd: 16, rr: 17 },
            Instr::Halt,
        ]);
        assert_eq!(m.regs[16], 0x80);
        assert!(!m.flags.c);
        assert!(m.flags.v, "0x7F + 1 overflows signed");
        assert!(m.flags.n);
        assert!(m.flags.h, "carry out of bit 3");
    }

    #[test]
    fn sub_borrow_flags() {
        let m = run(&[
            Instr::Ldi { rd: 16, imm: 3 },
            Instr::Ldi { rd: 17, imm: 5 },
            Instr::Sub { rd: 16, rr: 17 },
            Instr::Halt,
        ]);
        assert_eq!(m.regs[16], 0xFE);
        assert!(m.flags.c, "borrow sets C");
        assert!(m.flags.n);
        assert!(!m.flags.z);
    }

    #[test]
    fn sixteen_bit_add_via_adc() {
        // 0x01FF + 0x0301 = 0x0500 split into bytes.
        let m = run(&[
            Instr::Ldi { rd: 16, imm: 0xFF },
            Instr::Ldi { rd: 17, imm: 0x01 },
            Instr::Ldi { rd: 18, imm: 0x01 },
            Instr::Ldi { rd: 19, imm: 0x03 },
            Instr::Add { rd: 16, rr: 18 },
            Instr::Adc { rd: 17, rr: 19 },
            Instr::Halt,
        ]);
        assert_eq!(m.regs[16], 0x00);
        assert_eq!(m.regs[17], 0x05);
    }

    #[test]
    fn sbc_z_flag_is_sticky() {
        // 0x0100 - 0x0100 = 0 across two bytes; final Z must be 1 only if
        // both byte results were zero.
        let m = run(&[
            Instr::Ldi { rd: 16, imm: 0x00 },
            Instr::Ldi { rd: 17, imm: 0x01 },
            Instr::Ldi { rd: 18, imm: 0x00 },
            Instr::Ldi { rd: 19, imm: 0x01 },
            Instr::Sub { rd: 16, rr: 18 },
            Instr::Sbc { rd: 17, rr: 19 },
            Instr::Halt,
        ]);
        assert_eq!(m.regs[16], 0);
        assert_eq!(m.regs[17], 0);
        assert!(m.flags.z);
    }

    #[test]
    fn branch_loop_counts() {
        // r16 counts 5 down to 0.
        let m = run(&[
            Instr::Ldi { rd: 16, imm: 5 },
            Instr::Ldi { rd: 17, imm: 0 },
            // loop: inc r17; dec r16; brne loop
            Instr::Inc { rd: 17 },
            Instr::Dec { rd: 16 },
            Instr::Br {
                cond: Cond::Ne,
                offset: -3,
            },
            Instr::Halt,
        ]);
        assert_eq!(m.regs[17], 5);
        assert_eq!(m.regs[16], 0);
    }

    #[test]
    fn memory_postincrement() {
        let mut words = vec![
            Instr::Ldi { rd: 17, imm: 10 }.encode(),
            Instr::Mov { rd: 26, rr: 17 }.encode(), // X = 10
            Instr::Ldi { rd: 16, imm: 0xAA }.encode(),
            Instr::St {
                ptr: Ptr::X,
                postinc: true,
                rr: 16,
            }
            .encode(),
            Instr::St {
                ptr: Ptr::X,
                postinc: false,
                rr: 26,
            }
            .encode(), // mem[11] = X = 11
            Instr::Mov { rd: 26, rr: 17 }.encode(), // X = 10 again
            Instr::Ld {
                rd: 0,
                ptr: Ptr::X,
                postinc: true,
            }
            .encode(),
            Instr::Ld {
                rd: 1,
                ptr: Ptr::X,
                postinc: false,
            }
            .encode(),
            Instr::Halt.encode(),
        ];
        words.push(0);
        let mut m = AvrModel::new(&words);
        m.run(100);
        assert_eq!(m.dmem[10], 0xAA);
        assert_eq!(m.dmem[11], 11);
        assert_eq!(m.regs[0], 0xAA);
        assert_eq!(m.regs[1], 11);
    }

    #[test]
    fn shifts_and_rotate() {
        let m = run(&[
            Instr::Ldi {
                rd: 16,
                imm: 0b1000_0101,
            },
            Instr::Lsr { rd: 16 }, // 0100_0010, C=1
            Instr::Ror { rd: 16 }, // 1010_0001, C=0
            Instr::Halt,
        ]);
        assert_eq!(m.regs[16], 0b1010_0001);
        assert!(!m.flags.c);
        let m = run(&[
            Instr::Ldi {
                rd: 16,
                imm: 0b1000_0100,
            },
            Instr::Asr { rd: 16 },
            Instr::Halt,
        ]);
        assert_eq!(m.regs[16], 0b1100_0010);
    }

    #[test]
    fn out_logs_port_writes() {
        let m = run(&[
            Instr::Ldi { rd: 16, imm: 1 },
            Instr::Out { rr: 16 },
            Instr::Ldi { rd: 16, imm: 2 },
            Instr::Out { rr: 16 },
            Instr::Halt,
        ]);
        assert_eq!(m.port_log, vec![1, 2]);
        assert_eq!(m.port, 2);
    }

    #[test]
    fn halted_model_stays_put() {
        let mut m = AvrModel::new(&[Instr::Halt.encode()]);
        assert_eq!(m.run(10), 1);
        let before = m.clone();
        m.step();
        assert_eq!(m, before);
    }
}
