//! A programmatic two-pass assembler for the AVR subset.
//!
//! Programs are built by calling mnemonic methods; control flow uses
//! [`Label`]s with forward references resolved by [`Assembler::assemble`].
//!
//! # Example
//!
//! ```
//! use mate_cores::avr::asm::Assembler;
//!
//! let mut a = Assembler::new();
//! let loop_head = a.new_label();
//! a.ldi(16, 5);
//! a.bind(loop_head);
//! a.dec(16);
//! a.brne(loop_head);
//! a.halt();
//! let words = a.assemble();
//! assert_eq!(words.len(), 4);
//! ```

use super::isa::{Cond, Instr, Ptr};

/// A branch target; create with [`Assembler::new_label`], place with
/// [`Assembler::bind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Clone, Copy, Debug)]
enum Slot {
    Fixed(Instr),
    Branch(Cond, Label),
    Jump(Label),
}

/// Two-pass assembler producing instruction words.
#[derive(Debug, Default)]
pub struct Assembler {
    slots: Vec<Slot>,
    labels: Vec<Option<usize>>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current location counter (address of the next instruction).
    pub fn here(&self) -> usize {
        self.slots.len()
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice at {} and {}",
            self.labels[label.0].unwrap(),
            self.here()
        );
        self.labels[label.0] = Some(self.here());
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.slots.push(Slot::Fixed(instr));
        self
    }

    /// `NOP`
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// `HALT`
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// `LDI rd, imm` (rd in 16..=23)
    pub fn ldi(&mut self, rd: u8, imm: u8) -> &mut Self {
        self.emit(Instr::Ldi { rd, imm })
    }

    /// `MOV rd, rr`
    pub fn mov(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::Mov { rd, rr })
    }

    /// `ADD rd, rr`
    pub fn add(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::Add { rd, rr })
    }

    /// `ADC rd, rr`
    pub fn adc(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::Adc { rd, rr })
    }

    /// `SUB rd, rr`
    pub fn sub(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::Sub { rd, rr })
    }

    /// `SBC rd, rr`
    pub fn sbc(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::Sbc { rd, rr })
    }

    /// `AND rd, rr`
    pub fn and(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::And { rd, rr })
    }

    /// `OR rd, rr`
    pub fn or(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::Or { rd, rr })
    }

    /// `EOR rd, rr`
    pub fn eor(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::Eor { rd, rr })
    }

    /// `CP rd, rr`
    pub fn cp(&mut self, rd: u8, rr: u8) -> &mut Self {
        self.emit(Instr::Cp { rd, rr })
    }

    /// `CPI rd, imm` (rd in 16..=23)
    pub fn cpi(&mut self, rd: u8, imm: u8) -> &mut Self {
        self.emit(Instr::Cpi { rd, imm })
    }

    /// `SUBI rd, imm` (rd in 16..=23)
    pub fn subi(&mut self, rd: u8, imm: u8) -> &mut Self {
        self.emit(Instr::Subi { rd, imm })
    }

    /// `ANDI rd, imm` (rd in 16..=23)
    pub fn andi(&mut self, rd: u8, imm: u8) -> &mut Self {
        self.emit(Instr::Andi { rd, imm })
    }

    /// `ORI rd, imm` (rd in 16..=23)
    pub fn ori(&mut self, rd: u8, imm: u8) -> &mut Self {
        self.emit(Instr::Ori { rd, imm })
    }

    /// `INC rd`
    pub fn inc(&mut self, rd: u8) -> &mut Self {
        self.emit(Instr::Inc { rd })
    }

    /// `DEC rd`
    pub fn dec(&mut self, rd: u8) -> &mut Self {
        self.emit(Instr::Dec { rd })
    }

    /// `LSR rd`
    pub fn lsr(&mut self, rd: u8) -> &mut Self {
        self.emit(Instr::Lsr { rd })
    }

    /// `ROR rd`
    pub fn ror(&mut self, rd: u8) -> &mut Self {
        self.emit(Instr::Ror { rd })
    }

    /// `ASR rd`
    pub fn asr(&mut self, rd: u8) -> &mut Self {
        self.emit(Instr::Asr { rd })
    }

    /// `LSL rd` — encoded as `ADD rd, rd`, like real AVR.
    pub fn lsl(&mut self, rd: u8) -> &mut Self {
        self.add(rd, rd)
    }

    /// `LD rd, ptr` with optional post-increment.
    pub fn ld(&mut self, rd: u8, ptr: Ptr, postinc: bool) -> &mut Self {
        self.emit(Instr::Ld { rd, ptr, postinc })
    }

    /// `ST ptr, rr` with optional post-increment.
    pub fn st(&mut self, ptr: Ptr, postinc: bool, rr: u8) -> &mut Self {
        self.emit(Instr::St { ptr, postinc, rr })
    }

    /// `OUT rr` — write `rr` to the output port.
    pub fn out(&mut self, rr: u8) -> &mut Self {
        self.emit(Instr::Out { rr })
    }

    /// Conditional branch to `label`.
    pub fn br(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.slots.push(Slot::Branch(cond, label));
        self
    }

    /// `BREQ label`
    pub fn breq(&mut self, label: Label) -> &mut Self {
        self.br(Cond::Eq, label)
    }

    /// `BRNE label`
    pub fn brne(&mut self, label: Label) -> &mut Self {
        self.br(Cond::Ne, label)
    }

    /// `BRCS label`
    pub fn brcs(&mut self, label: Label) -> &mut Self {
        self.br(Cond::Cs, label)
    }

    /// `BRCC label`
    pub fn brcc(&mut self, label: Label) -> &mut Self {
        self.br(Cond::Cc, label)
    }

    /// `BRLT label` (signed less-than)
    pub fn brlt(&mut self, label: Label) -> &mut Self {
        self.br(Cond::Lt, label)
    }

    /// `BRGE label` (signed greater-or-equal)
    pub fn brge(&mut self, label: Label) -> &mut Self {
        self.br(Cond::Ge, label)
    }

    /// `RJMP label`
    pub fn rjmp(&mut self, label: Label) -> &mut Self {
        self.slots.push(Slot::Jump(label));
        self
    }

    /// Resolves labels and produces the instruction words.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels or out-of-range branch offsets.
    pub fn assemble(&self) -> Vec<u16> {
        self.slots
            .iter()
            .enumerate()
            .map(|(addr, slot)| {
                let resolve = |label: Label| -> i32 {
                    let target = self.labels[label.0]
                        .unwrap_or_else(|| panic!("label L{} never bound", label.0));
                    target as i32 - (addr as i32 + 1)
                };
                match *slot {
                    Slot::Fixed(i) => i.encode(),
                    Slot::Branch(cond, label) => {
                        let off = resolve(label);
                        assert!(
                            (-128..=127).contains(&off),
                            "branch offset {off} out of range at address {addr}"
                        );
                        Instr::Br {
                            cond,
                            offset: off as i8,
                        }
                        .encode()
                    }
                    Slot::Jump(label) => {
                        let off = resolve(label);
                        assert!(
                            (-1024..1024).contains(&off),
                            "rjmp offset {off} out of range at address {addr}"
                        );
                        Instr::Rjmp { offset: off as i16 }.encode()
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avr::model::AvrModel;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Assembler::new();
        let skip = a.new_label();
        let done = a.new_label();
        a.ldi(16, 1);
        a.rjmp(skip);
        a.ldi(16, 99); // skipped
        a.bind(skip);
        a.cpi(16, 1);
        a.breq(done);
        a.ldi(16, 98); // skipped
        a.bind(done);
        a.halt();
        let mut m = AvrModel::new(&a.assemble());
        m.run(100);
        assert_eq!(m.regs[16], 1);
    }

    #[test]
    fn backward_branch_offsets() {
        let mut a = Assembler::new();
        a.ldi(16, 3);
        let head = a.new_label();
        a.bind(head);
        a.dec(16);
        a.brne(head);
        a.halt();
        let words = a.assemble();
        // brne at address 2, target 1 → offset -2.
        let decoded = crate::avr::isa::Instr::decode(words[2]).unwrap();
        assert_eq!(
            decoded,
            crate::avr::isa::Instr::Br {
                cond: Cond::Ne,
                offset: -2
            }
        );
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.rjmp(l);
        a.assemble();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.nop();
        a.bind(l);
    }

    #[test]
    fn here_tracks_addresses() {
        let mut a = Assembler::new();
        assert_eq!(a.here(), 0);
        a.nop().nop();
        assert_eq!(a.here(), 2);
    }

    #[test]
    fn lsl_is_add_alias() {
        let mut a = Assembler::new();
        a.lsl(7);
        assert_eq!(
            crate::avr::isa::Instr::decode(a.assemble()[0]).unwrap(),
            crate::avr::isa::Instr::Add { rd: 7, rr: 7 }
        );
    }
}
